//! Store-queue elimination across benchmark personalities: run a handful
//! of the paper's benchmark profiles through all five configurations and
//! print a Figure-2-style comparison.
//!
//! ```sh
//! cargo run --release -p nosq-examples --example store_queue_elimination
//! ```

use nosq_core::{simulate, SimConfig, SimReport};
use nosq_trace::{synthesize, Profile};

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150_000);
    let picks = [
        "adpcm.d", "g721.e", "gzip", "eon.k", "mesa.o", "mcf", "applu",
    ];

    println!(
        "{:<9} | {:>5} | {:>8} {:>8} {:>8} {:>8} | {:>8} {:>6}",
        "bench", "ipc", "assoc-sq", "nosq-nd", "nosq-d", "perfect", "mis/10k", "del%"
    );
    println!("{}", "-".repeat(84));
    for name in picks {
        let profile = Profile::by_name(name).expect("known benchmark");
        let program = synthesize(profile, 42);
        let ideal = simulate(&program, SimConfig::baseline_perfect(budget));
        let rel = |r: &SimReport| r.relative_time(&ideal);
        let sq = simulate(&program, SimConfig::baseline_storesets(budget));
        let nd = simulate(&program, SimConfig::nosq_no_delay(budget));
        let d = simulate(&program, SimConfig::nosq(budget));
        let smb = simulate(&program, SimConfig::perfect_smb(budget));
        println!(
            "{:<9} | {:>5.2} | {:>8.3} {:>8.3} {:>8.3} {:>8.3} | {:>8.1} {:>6.1}",
            name,
            ideal.ipc(),
            rel(&sq),
            rel(&nd),
            rel(&d),
            rel(&smb),
            d.mispredicts_per_10k_loads(),
            d.delayed_pct()
        );
    }
    println!();
    println!("columns are execution time relative to the ideal baseline (lower is faster);");
    println!("the paper's headline: NoSQ-with-delay matches or slightly beats the");
    println!("conventional associative-store-queue design while eliminating the store");
    println!("queue, the out-of-order execution of stores, and most load cache accesses.");
}
