//! The store-load bypassing predictor in isolation: path sensitivity and
//! the confidence/delay mechanism (paper §3.3).
//!
//! ```sh
//! cargo run --release -p nosq-examples --example bypassing_predictor
//! ```

use nosq_core::predictor::{BypassingPredictor, PathHistory, PredictorConfig};

/// Feeds the predictor a load whose bypassing distance depends on the
/// direction of a recent branch; reports steady-state accuracy.
fn path_dependent_accuracy(history_contains_branch: bool) -> f64 {
    let mut p = BypassingPredictor::new(PredictorConfig::paper_default());
    let pc = 0x400;
    let mut correct = 0u32;
    let mut total = 0u32;
    for i in 0..4000u64 {
        // The branch direction alternates with period 2; the distance is
        // 1 on taken paths and 0 on not-taken paths.
        let taken = (i / 2) % 2 == 0;
        let actual_dist = taken as u16;
        let mut h = PathHistory::new();
        if history_contains_branch {
            h.push_branch(taken);
        }
        // Warm-up excluded from the score.
        let scored = i >= 1000;
        match p.predict(pc, &h) {
            Some(pred) if pred.confident => {
                let ok = pred.dist == actual_dist;
                if scored {
                    total += 1;
                    correct += ok as u32;
                }
                if ok {
                    p.train_correct(pc, &h);
                } else {
                    p.train_mispredict(pc, &h, pred.path_sensitive, Some((actual_dist, 0)));
                }
            }
            Some(_) => {
                // Delayed: always safe, never a mis-prediction.
                if scored {
                    total += 1;
                    correct += 1;
                }
                p.train_correct(pc, &h);
            }
            None => {
                if scored {
                    total += 1; // a non-bypassing prediction for a communicating load
                }
                p.train_mispredict(pc, &h, false, Some((actual_dist, 0)));
            }
        }
    }
    100.0 * correct as f64 / total as f64
}

fn main() {
    println!("Path-dependent store-load distance (alternates 0/1 with a branch):");
    println!(
        "  with the branch in the path history : {:>6.2}% correct-or-delayed",
        path_dependent_accuracy(true)
    );
    println!(
        "  without path history (PC-only)      : {:>6.2}% correct-or-delayed",
        path_dependent_accuracy(false)
    );
    println!();
    println!("With the deciding branch visible in the history, the path-sensitive");
    println!("table learns one distance per path and approaches perfect accuracy;");
    println!("without it, the entry's distance flip-flops until the confidence");
    println!("mechanism parks the load in the safe delayed state (paper §3.3).");
}
