//! Quickstart: assemble a tiny store-load program, run it through NoSQ
//! and the conventional baseline, and compare.
//!
//! ```sh
//! cargo run --release -p nosq-examples --example quickstart
//! ```

use nosq_core::{simulate, SimConfig};
use nosq_isa::{Assembler, Cond, Extension, MemWidth, Reg};

fn main() {
    // A loop that spills two values to memory and immediately reloads
    // one — the classic in-window store-load communication NoSQ targets.
    let mut asm = Assembler::new();
    let (base, v, t, i) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    asm.li(base, 0x1000);
    asm.li(i, 20_000);
    let top = asm.label();
    asm.bind(top);
    asm.addi(v, v, 3);
    asm.store(v, base, 0, MemWidth::B8);
    asm.store(v, base, 8, MemWidth::B8);
    asm.load(t, base, 0, MemWidth::B8, Extension::Zero);
    asm.add(v, v, t);
    asm.addi(i, i, -1);
    asm.branch(Cond::Gt, i, Reg::ZERO, top);
    asm.halt();
    let program = asm.finish();

    let budget = 200_000;
    let baseline = simulate(&program, SimConfig::baseline_storesets(budget));
    let nosq = simulate(&program, SimConfig::nosq(budget));

    println!(
        "workload: spill/reload loop ({} committed instructions)",
        nosq.insts
    );
    println!();
    println!("                         baseline (assoc SQ)      NoSQ");
    println!(
        "cycles                   {:>12}        {:>12}",
        baseline.cycles, nosq.cycles
    );
    println!(
        "IPC                      {:>12.3}        {:>12.3}",
        baseline.ipc(),
        nosq.ipc()
    );
    println!(
        "loads                    {:>12}        {:>12}",
        baseline.memory.loads, nosq.memory.loads
    );
    println!(
        "SQ forwards              {:>12}        {:>12}",
        baseline.memory.sq_forwards, "-"
    );
    println!(
        "bypassed loads           {:>12}        {:>12}",
        "-", nosq.memory.bypassed_loads
    );
    println!(
        "bypass mis-predictions   {:>12}        {:>12}",
        "-", nosq.verification.bypass_mispredicts
    );
    println!(
        "data-cache reads         {:>12}        {:>12}",
        baseline.dcache_reads(),
        nosq.dcache_reads()
    );
    println!();
    println!(
        "NoSQ executed {} of {} loads without a store queue — or a cache access —",
        nosq.memory.bypassed_loads, nosq.memory.loads
    );
    println!(
        "and ran {:.1}% {} than the conventional design.",
        100.0 * (1.0 - nosq.cycles as f64 / baseline.cycles as f64).abs(),
        if nosq.cycles <= baseline.cycles {
            "faster"
        } else {
            "slower"
        }
    );
    println!();
    println!("NoSQ report as JSON (SimReport::to_json):");
    println!("{}", nosq.to_json());
}
