//! The session API: incremental execution, observer hooks, and
//! machine-readable reports.
//!
//! The paper's evaluation is all about *time-resolved* behaviour — the
//! bypassing predictor warms up, mis-speculation bursts then subsides.
//! This walkthrough drives one NoSQ simulation incrementally with
//! `step()`/`run_until()`, watches it through two observers (the
//! built-in interval-IPC series and a custom squash timeline), and
//! finishes with a structured `SimReport` serialized as JSON.
//!
//! ```sh
//! cargo run --release -p nosq-examples --example session_observers
//! ```

use nosq_core::observer::{IntervalIpc, SimObserver, SquashEvent};
use nosq_core::{SimConfig, Simulator, StopCondition};
use nosq_trace::{synthesize, Profile};

/// A custom observer: records when each verification squash happened
/// and how much speculative work it threw away.
#[derive(Default)]
struct SquashTimeline {
    events: Vec<(u64, u64)>, // (cycle, squashed insts)
}

impl SimObserver for SquashTimeline {
    fn on_squash(&mut self, ev: &SquashEvent) {
        self.events.push((ev.cycle, ev.squashed));
    }
}

fn main() {
    let profile = Profile::by_name("g721.e").expect("profile exists");
    let program = synthesize(profile, 42);
    let cfg = SimConfig::builder().max_insts(60_000).build(); // NoSQ + delay

    let mut ipc = IntervalIpc::new(2_000);
    let mut squashes = SquashTimeline::default();
    let mut sim = Simulator::new(&program, cfg);
    sim.attach_observer(Box::new(&mut ipc));
    sim.attach_observer(Box::new(&mut squashes));

    // Phase 1: run the first 10k instructions and peek at the live
    // statistics while the bypassing predictor is still cold.
    sim.run_until(StopCondition::Insts(10_000));
    let cold = *sim.stats();

    // Phase 2: single-step a few cycles (each step is exactly one
    // cycle), then run to completion. Interleaving granularities is
    // safe: stepped sessions replay the one-shot run bit for bit.
    for _ in 0..50 {
        sim.step();
    }
    sim.run_until(StopCondition::Done);
    let report = sim.finish();

    println!("g721.e under NoSQ (delay on), one session, two observers");
    println!();
    println!(
        "cold start (first 10k insts): {:.3} IPC, {} bypass mis-predictions",
        cold.ipc(),
        cold.verification.bypass_mispredicts
    );
    println!(
        "full run  ({} insts):      {:.3} IPC, {} bypass mis-predictions",
        report.insts,
        report.ipc(),
        report.verification.bypass_mispredicts
    );
    println!();

    println!("predictor warm-up (IPC per 2k-cycle interval):");
    let samples = ipc.samples();
    for (i, chunk) in samples.chunks(8).take(4).enumerate() {
        let bars: Vec<String> = chunk.iter().map(|v| format!("{v:>5.2}")).collect();
        println!("  cycles {:>6}+ | {}", i * 8 * 2_000, bars.join(" "));
    }
    if samples.len() > 32 {
        println!("  ... ({} intervals total)", samples.len());
    }
    println!();

    let early: Vec<_> = squashes
        .events
        .iter()
        .filter(|(c, _)| *c <= report.cycles / 4)
        .collect();
    println!(
        "squash timeline: {} squashes total, {} in the first quarter of the run",
        squashes.events.len(),
        early.len()
    );
    println!();
    println!("machine-readable report (SimReport::to_json):");
    println!("{}", report.to_json());
}
