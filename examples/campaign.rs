//! The campaign engine: declare a configuration grid, run it in
//! parallel, and read the comparative artifacts — no bespoke sweep
//! loop.
//!
//! This walkthrough reproduces a miniature Figure-2 comparison (three
//! pipeline configurations over four benchmarks) two ways: built
//! programmatically with `Campaign::builder`, then re-parsed from the
//! equivalent spec text that `nosq run <file>` accepts — and shows the
//! two produce byte-identical artifacts.
//!
//! ```sh
//! cargo run --release -p nosq-examples --example campaign
//! ```

use nosq_lab::{artifacts, run_campaign, Campaign, Preset, RunOptions};

fn main() {
    // 1. Declare the grid: configs × profiles (+ a speedup baseline).
    let campaign = Campaign::builder("mini-fig2")
        .preset(Preset::BaselinePerfect)
        .preset(Preset::BaselineStoresets)
        .preset(Preset::Nosq)
        .profiles(["gzip", "gsm.e", "vortex", "applu"])
        .max_insts(20_000)
        .baseline("baseline-perfect")
        .build()
        .expect("statically valid campaign");
    println!(
        "campaign `{}`: {} configs × {} profiles = {} jobs",
        campaign.name,
        campaign.configs.len(),
        campaign.profiles.len(),
        campaign.jobs()
    );

    // 2. Run it. The executor shards jobs across threads lock-free and
    //    reassembles results in grid order, so the output is identical
    //    at any thread count.
    let result = run_campaign(&campaign, &RunOptions::default());
    println!(
        "ran on {} thread(s) in {:.2?}\n",
        result.threads, result.elapsed
    );

    // 3. Read the matrix directly...
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "benchmark", "ideal", "sq", "nosq"
    );
    for (p, profile) in campaign.profiles.iter().enumerate() {
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>10.3}",
            profile.name,
            result.report(p, 0).ipc(),
            result.report(p, 1).ipc(),
            result.report(p, 2).ipc(),
        );
    }

    // 4. ...or as the artifacts `nosq run` writes to disk.
    let files = artifacts(&result);
    println!("\nartifacts:");
    for artifact in &files {
        println!(
            "  {} ({} bytes)",
            artifact.file_name,
            artifact.contents.len()
        );
    }

    // 5. The same campaign as a spec file — what `nosq run` parses —
    //    aggregates to byte-identical artifacts.
    let spec = "
name      = mini-fig2
configs   = baseline-perfect, baseline-storesets, nosq
profiles  = gzip, gsm.e, vortex, applu
max_insts = 20000
baseline  = baseline-perfect
";
    let from_spec = Campaign::from_spec(spec).expect("spec parses");
    let spec_files = artifacts(&run_campaign(&from_spec, &RunOptions::default()));
    assert_eq!(files, spec_files, "builder and spec campaigns agree");
    println!("\nspec-file round-trip: byte-identical artifacts ✓");
}
