//! Partial-word bypassing (paper §3.5): wide-store/narrow-load shifts and
//! the Alpha `sts`/`lds` float32 conversion, bypassed through the
//! injected shift & mask instruction and verified at commit.
//!
//! ```sh
//! cargo run --release -p nosq-examples --example partial_word_bypassing
//! ```

use nosq_core::{simulate, SimConfig};
use nosq_isa::{Assembler, Cond, Extension, MemWidth, Program, Reg};

/// Wide store, narrow sign-extended load at byte offset 4.
fn wide_narrow(iters: i64) -> Program {
    let mut asm = Assembler::new();
    let (base, c, v, t, i) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
    );
    asm.li(base, 0x1000);
    asm.li(i, iters);
    let top = asm.label();
    asm.bind(top);
    asm.addi(c, c, 0x8001);
    asm.shli(v, c, 32);
    asm.add(v, v, c);
    asm.store(v, base, 0, MemWidth::B8);
    asm.load(t, base, 4, MemWidth::B2, Extension::Sign);
    asm.add(c, c, t);
    asm.addi(i, i, -1);
    asm.branch(Cond::Gt, i, Reg::ZERO, top);
    asm.halt();
    asm.finish()
}

/// `sts` then `lds`: the float32 conversion round trip.
fn float_roundtrip(iters: i64) -> Program {
    let mut asm = Assembler::new();
    let (base, i) = (Reg::int(1), Reg::int(2));
    let (f, t) = (Reg::float(0), Reg::float(1));
    asm.li(base, 0x1000);
    asm.li(f, 1.25f64.to_bits() as i64);
    asm.li(i, iters);
    let top = asm.label();
    asm.bind(top);
    asm.sts(f, base, 0);
    asm.lds(t, base, 0);
    asm.fadd(f, t, t);
    asm.fmul(f, f, t);
    asm.addi(i, i, -1);
    asm.branch(Cond::Gt, i, Reg::ZERO, top);
    asm.halt();
    asm.finish()
}

/// Two one-byte stores feeding a two-byte load: un-bypassable, handled
/// by delay.
fn multi_source(iters: i64) -> Program {
    let mut asm = Assembler::new();
    let (base, v, t, i) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    asm.li(base, 0x1000);
    asm.li(i, iters);
    let top = asm.label();
    asm.bind(top);
    asm.addi(v, v, 1);
    asm.store(v, base, 0, MemWidth::B1);
    asm.store(v, base, 1, MemWidth::B1);
    asm.load(t, base, 0, MemWidth::B2, Extension::Zero);
    asm.add(v, v, t);
    asm.addi(i, i, -1);
    asm.branch(Cond::Gt, i, Reg::ZERO, top);
    asm.halt();
    asm.finish()
}

fn report(name: &str, program: &Program) {
    let r = simulate(program, SimConfig::nosq(300_000));
    println!(
        "{name:<28} loads {:>6}  bypassed {:>6}  shift&mask {:>6}  delayed {:>5}  mispredicts {:>4}",
        r.memory.loads, r.memory.bypassed_loads, r.memory.shift_mask_uops, r.memory.delayed_loads, r.verification.bypass_mispredicts
    );
}

fn main() {
    println!("NoSQ partial-word bypassing (paper 3.5):");
    println!();
    report("wide store / narrow load", &wide_narrow(2_000));
    report("sts / lds float32 convert", &float_roundtrip(2_000));
    report("two narrow stores (multi)", &multi_source(2_000));
    println!();
    println!("Single-source partial-word pairs bypass through the injected shift & mask");
    println!("instruction once the predictor learns the shift; the multi-source pattern");
    println!("cannot be bypassed (SMB cannot combine values), so the confidence mechanism");
    println!("converts those loads to safe delayed cache accesses instead of squashing.");
}
