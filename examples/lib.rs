//! Examples package; see the `examples/*.rs` binaries.
