//! The paged last-writer map: per-byte store ground truth without a
//! per-byte hash lookup.
//!
//! The tracer needs, for every byte a load reads, the youngest older
//! store that wrote it. The original implementation kept a
//! `HashMap<u64, ByteWriter>` keyed by byte address — one SipHash probe
//! per byte per memory access, the single hottest operation in the
//! functional front end. This module replaces it with a sparse paged
//! direct-mapped table:
//!
//! * addresses are split into a *page number* (`addr >> PAGE_SHIFT`)
//!   and an in-page byte offset;
//! * page numbers resolve through a small open-addressing index (one
//!   multiplicative-hash probe **per access**, not per byte — bytes
//!   within a page are a direct array index);
//! * page buffers come from an internal arena and every slot is
//!   *epoch-stamped*, so [`LastWriterMap::reset`] invalidates the whole
//!   map in O(1) without touching a single page — a reused map costs
//!   nothing to clear between programs.
//!
//! The map is exact: unlike a lossy direct-mapped cache, index
//! collisions chain through linear probing and the index grows before
//! it saturates, so the reported writer set is byte-for-byte identical
//! to the naive per-byte map (`tests/it_lastwriter.rs` pits the two
//! against each other under proptest).

/// What the tracer records per written byte: identity, position and
/// shape of the writing store.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ByteWriter {
    /// Dynamic sequence number of the store instruction.
    pub store_seq: u64,
    /// 0-based dynamic store index (SSN − 1).
    pub store_index: u64,
    /// The store's base effective address.
    pub store_addr: u64,
    /// The store's access width in bytes.
    pub store_width: u8,
    /// Whether the store was an `sts` (float32 conversion).
    pub store_float32: bool,
}

/// Summary of the writers covering one load's bytes, in exactly the
/// shape the tracer's dependence annotation needs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LoadScan {
    /// The youngest writer over all read bytes, if any byte was written.
    pub youngest: Option<ByteWriter>,
    /// Whether every *written* byte came from the same store.
    pub all_same: bool,
    /// Whether any read byte was never written by a traced store.
    pub any_missing: bool,
}

/// log2 of the page size in bytes; 1 KiB pages keep a page's slot array
/// comfortably inside the L2 while staying coarse enough that the page
/// index stays tiny.
const PAGE_SHIFT: u32 = 10;
const PAGE_SLOTS: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SLOTS as u64) - 1;

/// One byte's slot: the writer plus the epoch that validates it.
#[derive(Copy, Clone)]
struct Slot {
    epoch: u64,
    writer: ByteWriter,
}

const EMPTY_SLOT: Slot = Slot {
    epoch: 0,
    writer: ByteWriter {
        store_seq: 0,
        store_index: 0,
        store_addr: 0,
        store_width: 0,
        store_float32: false,
    },
};

/// One index entry: page tag, validating epoch, page-arena position.
#[derive(Copy, Clone)]
struct IndexEntry {
    tag: u64,
    epoch: u64,
    page: u32,
}

const EMPTY_INDEX: IndexEntry = IndexEntry {
    tag: 0,
    epoch: 0,
    page: 0,
};

/// The paged, epoch-stamped last-writer map. See the module docs.
///
/// ```
/// use nosq_trace::{ByteWriter, LastWriterMap};
///
/// let mut map = LastWriterMap::new();
/// let w = ByteWriter {
///     store_seq: 3,
///     store_index: 0,
///     store_addr: 0x1000,
///     store_width: 8,
///     store_float32: false,
/// };
/// map.record_store(0x1000, 8, w);
/// let scan = map.scan(0x1002, 2);
/// assert_eq!(scan.youngest, Some(w));
/// assert!(scan.all_same && !scan.any_missing);
///
/// map.reset(); // O(1): epoch bump, no page is touched
/// assert!(map.scan(0x1000, 8).youngest.is_none());
/// ```
pub struct LastWriterMap {
    epoch: u64,
    index: Vec<IndexEntry>,
    /// Index entries live in the current epoch.
    live: usize,
    /// Page-buffer arena; `pages[..used]` are claimed in this epoch.
    pages: Vec<Box<[Slot]>>,
    used: usize,
}

impl Default for LastWriterMap {
    fn default() -> LastWriterMap {
        LastWriterMap::new()
    }
}

impl LastWriterMap {
    /// Creates an empty map. Pages are allocated lazily on first store
    /// to each region and recycled forever after.
    pub fn new() -> LastWriterMap {
        LastWriterMap {
            epoch: 1,
            index: vec![EMPTY_INDEX; 64],
            live: 0,
            pages: Vec::new(),
            used: 0,
        }
    }

    /// Invalidates every recorded writer in O(1) (epoch bump). Page
    /// buffers and the index keep their capacity for the next program.
    pub fn reset(&mut self) {
        self.epoch += 1;
        self.live = 0;
        self.used = 0;
    }

    /// Pages currently claimed (diagnostics; bounded by the traced
    /// program's write footprint).
    pub fn pages_in_use(&self) -> usize {
        self.used
    }

    #[inline]
    fn index_slot(&self, page_num: u64) -> usize {
        // Fibonacci multiplicative hash; the index length is a power of
        // two.
        let h = page_num.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & (self.index.len() - 1)
    }

    /// Finds the arena position of `page_num`'s page, if claimed this
    /// epoch.
    #[inline]
    fn find(&self, page_num: u64) -> Option<u32> {
        let mask = self.index.len() - 1;
        let mut i = self.index_slot(page_num);
        loop {
            let e = self.index[i];
            if e.epoch != self.epoch {
                return None; // empty (or stale = empty): not present
            }
            if e.tag == page_num {
                return Some(e.page);
            }
            i = (i + 1) & mask;
        }
    }

    /// Finds or claims the page for `page_num`, growing the index when
    /// it approaches saturation.
    fn claim(&mut self, page_num: u64) -> u32 {
        if (self.live + 1) * 8 >= self.index.len() * 7 {
            self.grow_index();
        }
        let mask = self.index.len() - 1;
        let mut i = self.index_slot(page_num);
        loop {
            let e = self.index[i];
            if e.epoch != self.epoch {
                break; // empty slot: claim here
            }
            if e.tag == page_num {
                return e.page;
            }
            i = (i + 1) & mask;
        }
        let page = self.used as u32;
        if self.used == self.pages.len() {
            self.pages
                .push(vec![EMPTY_SLOT; PAGE_SLOTS].into_boxed_slice());
        }
        self.used += 1;
        self.live += 1;
        self.index[i] = IndexEntry {
            tag: page_num,
            epoch: self.epoch,
            page,
        };
        page
    }

    /// Rebuilds the index at twice the size from this epoch's live
    /// entries (stale entries are dropped for free).
    fn grow_index(&mut self) {
        let old = std::mem::replace(&mut self.index, vec![EMPTY_INDEX; 0]);
        self.index = vec![EMPTY_INDEX; old.len() * 2];
        let mask = self.index.len() - 1;
        for e in old {
            if e.epoch != self.epoch {
                continue;
            }
            let mut i = self.index_slot(e.tag);
            while self.index[i].epoch == self.epoch {
                i = (i + 1) & mask;
            }
            self.index[i] = e;
        }
    }

    /// Records `writer` as the last writer of `width` bytes starting at
    /// `addr` (wrapping addressing, like the architectural memory).
    pub fn record_store(&mut self, addr: u64, width: u64, writer: ByteWriter) {
        let epoch = self.epoch;
        let mut i = 0u64;
        while i < width {
            let byte_addr = addr.wrapping_add(i);
            let page = self.claim(byte_addr >> PAGE_SHIFT) as usize;
            // Fill the run of bytes that lands in this page.
            let offset = (byte_addr & PAGE_MASK) as usize;
            let run = ((PAGE_SLOTS - offset) as u64).min(width - i) as usize;
            let slots = &mut self.pages[page][offset..offset + run];
            for slot in slots {
                *slot = Slot { epoch, writer };
            }
            i += run as u64;
        }
    }

    /// Reports the recorded writer of each of the `width` bytes starting
    /// at `addr` (wrapping addressing), one slot per byte in `out`.
    /// `None` means no traced store wrote that byte. Slots past `width`
    /// are cleared. This is the exact per-byte view the dependence
    /// oracle (`nosq-audit`) builds its producer sets from;
    /// [`LastWriterMap::scan`] is the summarized form the tracer uses.
    ///
    /// # Panics
    ///
    /// Panics if `width > 8` (the ISA's widest access).
    pub fn scan_bytes(&self, addr: u64, width: u64, out: &mut [Option<ByteWriter>; 8]) {
        assert!(width <= 8, "access width {width} exceeds 8 bytes");
        *out = [None; 8];
        let mut i = 0u64;
        while i < width {
            let byte_addr = addr.wrapping_add(i);
            let offset = (byte_addr & PAGE_MASK) as usize;
            let run = ((PAGE_SLOTS - offset) as u64).min(width - i) as usize;
            if let Some(page) = self.find(byte_addr >> PAGE_SHIFT) {
                let slots = &self.pages[page as usize][offset..offset + run];
                for (k, slot) in slots.iter().enumerate() {
                    if slot.epoch == self.epoch {
                        out[i as usize + k] = Some(slot.writer);
                    }
                }
            }
            i += run as u64;
        }
    }

    /// Scans the writers of `width` bytes starting at `addr`, reporting
    /// the youngest one and the coverage facts the tracer annotates
    /// loads with.
    pub fn scan(&self, addr: u64, width: u64) -> LoadScan {
        let mut youngest: Option<ByteWriter> = None;
        let mut all_same = true;
        let mut any_missing = false;
        let mut i = 0u64;
        while i < width {
            let byte_addr = addr.wrapping_add(i);
            let offset = (byte_addr & PAGE_MASK) as usize;
            let run = ((PAGE_SLOTS - offset) as u64).min(width - i) as usize;
            match self.find(byte_addr >> PAGE_SHIFT) {
                Some(page) => {
                    for slot in &self.pages[page as usize][offset..offset + run] {
                        if slot.epoch != self.epoch {
                            any_missing = true;
                            continue;
                        }
                        let w = slot.writer;
                        match youngest {
                            None => youngest = Some(w),
                            Some(y) if w.store_seq != y.store_seq => {
                                all_same = false;
                                if w.store_seq > y.store_seq {
                                    youngest = Some(w);
                                }
                            }
                            Some(_) => {}
                        }
                    }
                }
                None => any_missing = true,
            }
            i += run as u64;
        }
        LoadScan {
            youngest,
            all_same,
            any_missing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn writer(seq: u64, addr: u64, width: u8) -> ByteWriter {
        ByteWriter {
            store_seq: seq,
            store_index: seq,
            store_addr: addr,
            store_width: width,
            store_float32: false,
        }
    }

    #[test]
    fn scan_of_untouched_bytes_is_missing() {
        let map = LastWriterMap::new();
        let scan = map.scan(0x4000, 8);
        assert_eq!(
            scan,
            LoadScan {
                youngest: None,
                all_same: true,
                any_missing: true
            }
        );
    }

    #[test]
    fn youngest_wins_overlap() {
        let mut map = LastWriterMap::new();
        map.record_store(0x100, 8, writer(1, 0x100, 8));
        map.record_store(0x104, 4, writer(2, 0x104, 4));
        let scan = map.scan(0x100, 8);
        assert_eq!(scan.youngest.unwrap().store_seq, 2);
        assert!(!scan.all_same);
        assert!(!scan.any_missing);
        // The low half alone still sees writer 1, fully.
        let low = map.scan(0x100, 4);
        assert_eq!(low.youngest.unwrap().store_seq, 1);
        assert!(low.all_same && !low.any_missing);
    }

    #[test]
    fn cross_page_stores_and_loads_agree() {
        let mut map = LastWriterMap::new();
        let addr = (1u64 << PAGE_SHIFT) - 3; // straddles pages 0 and 1
        map.record_store(addr, 8, writer(7, addr, 8));
        let scan = map.scan(addr, 8);
        assert_eq!(scan.youngest.unwrap().store_seq, 7);
        assert!(scan.all_same && !scan.any_missing);
        assert_eq!(map.pages_in_use(), 2);
    }

    #[test]
    fn reset_invalidates_without_clearing_pages() {
        let mut map = LastWriterMap::new();
        map.record_store(0x2000, 8, writer(1, 0x2000, 8));
        assert!(map.scan(0x2000, 8).youngest.is_some());
        map.reset();
        assert!(map.scan(0x2000, 8).youngest.is_none());
        assert_eq!(map.pages_in_use(), 0);
        // Reclaimed page after reset serves fresh data.
        map.record_store(0x2000, 4, writer(9, 0x2000, 4));
        let scan = map.scan(0x2000, 8);
        assert_eq!(scan.youngest.unwrap().store_seq, 9);
        assert!(scan.any_missing, "upper half was invalidated by reset");
    }

    #[test]
    fn index_grows_past_many_pages() {
        let mut map = LastWriterMap::new();
        // 4096 distinct pages forces several index growths.
        for p in 0..4096u64 {
            map.record_store(p << PAGE_SHIFT, 1, writer(p, p << PAGE_SHIFT, 1));
        }
        for p in (0..4096u64).step_by(97) {
            let scan = map.scan(p << PAGE_SHIFT, 1);
            assert_eq!(scan.youngest.unwrap().store_seq, p);
        }
        assert_eq!(map.pages_in_use(), 4096);
    }

    #[test]
    fn scan_bytes_matches_scan_per_byte() {
        let mut map = LastWriterMap::new();
        map.record_store(0x100, 8, writer(1, 0x100, 8));
        map.record_store(0x104, 2, writer(2, 0x104, 2));
        let mut bytes = [None; 8];
        map.scan_bytes(0x102, 6, &mut bytes);
        // Bytes 0x102..0x104 from store 1, 0x104..0x106 from store 2,
        // 0x106..0x108 from store 1 again; slots past width cleared.
        let seqs: Vec<_> = bytes.iter().map(|w| w.map(|w| w.store_seq)).collect();
        assert_eq!(
            seqs,
            vec![
                Some(1),
                Some(1),
                Some(2),
                Some(2),
                Some(1),
                Some(1),
                None,
                None
            ]
        );
        // Every byte individually agrees with the summarizing scan.
        for i in 0..6u64 {
            let one = map.scan(0x102 + i, 1);
            assert_eq!(one.youngest, bytes[i as usize]);
        }
    }

    #[test]
    fn scan_bytes_crosses_pages_and_wraps() {
        let mut map = LastWriterMap::new();
        let addr = (1u64 << PAGE_SHIFT) - 3;
        map.record_store(addr, 8, writer(7, addr, 8));
        map.record_store(u64::MAX - 1, 4, writer(9, u64::MAX - 1, 4));
        let mut bytes = [None; 8];
        map.scan_bytes(addr, 8, &mut bytes);
        assert!(bytes.iter().all(|w| w.map(|w| w.store_seq) == Some(7)));
        map.scan_bytes(u64::MAX, 4, &mut bytes);
        assert_eq!(bytes[0].unwrap().store_seq, 9); // u64::MAX
        assert_eq!(bytes[1].unwrap().store_seq, 9); // wrapped 0
        assert_eq!(bytes[2].unwrap().store_seq, 9); // wrapped 1
        assert_eq!(bytes[3], None); // wrapped 2: never written
    }

    #[test]
    fn wrapping_addresses_are_handled() {
        let mut map = LastWriterMap::new();
        map.record_store(u64::MAX - 2, 8, writer(1, u64::MAX - 2, 8));
        let scan = map.scan(u64::MAX - 2, 8);
        assert!(scan.all_same && !scan.any_missing);
        let scan = map.scan(0, 2); // wrapped tail
        assert_eq!(scan.youngest.unwrap().store_seq, 1);
    }
}
