//! Workload synthesis: composes kernels to match a benchmark profile.
//!
//! The solver targets [`LOADS_PER_ITER`] dynamic loads per driver
//! iteration and allocates them across kernel calls so the iteration-level
//! mix matches the profile's Table-5 signature:
//!
//! * **total in-window communication %** → spill / strided / path /
//!   call-site calls,
//! * **partial-word %** → wide-narrow, fp-stencil and partial-store calls,
//! * **no-delay mis-prediction rate** → the always-mispredicting
//!   multi-source mass (weighted by how completely the paper says delay
//!   fixed the benchmark) plus half-mispredicting hard-path mass,
//! * **delayed %** → "flaky" path-dependent loads (biased determining bit
//!   outside the predictor's history): they mis-predict a few percent of
//!   occurrences, which drives their confidence below threshold so the
//!   delay mechanism parks them — the paper's benign delayed mass,
//! * **baseline IPC** → pointer-chase vs. cache-resident streaming and
//!   serial vs. parallel ALU filler.
//!
//! Rates below one call per iteration are realized by *period gating*: a
//! global iteration counter masks the call to every 2^k-th iteration.
//! The composition is deterministic for a given `(profile, seed)`.

use nosq_isa::{Assembler, Cond, Program, Reg};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::kernels::{
    self, AluKernel, BranchyKernel, CallSiteKernel, EmitCtx, FpStencilKernel, Kernel,
    PartialStoreKernel, PathDepKernel, PointerChaseKernel, SpillKernel, StreamKernel,
    StridedKernel, WideNarrowKernel,
};
use crate::profiles::{Profile, Suite};

/// Target dynamic loads per driver-loop iteration (sets calibration
/// granularity: 1 call/iteration = 0.5% of loads).
pub const LOADS_PER_ITER: f64 = 200.0;

/// Synthesizes an endless workload for `profile` (the driver loop never
/// exits; cap execution with the tracer's or simulator's instruction
/// budget).
pub fn synthesize(profile: &Profile, seed: u64) -> Program {
    synthesize_iters(profile, seed, None)
}

/// Synthesizes a workload that halts after `iters` driver iterations
/// (`None` = endless).
pub fn synthesize_iters(profile: &Profile, seed: u64, iters: Option<u64>) -> Program {
    let mix = plan_mix(profile);
    build_program(&mix, seed, iters)
}

/// A kernel with its call schedule: `count` calls on every `period`-th
/// driver iteration (period is a power of two).
struct MixEntry {
    kernel: Box<dyn Kernel>,
    count: u32,
    period: u32,
}

/// Converts a fractional calls-per-iteration rate into a (count, period)
/// schedule. Rates below ~1/128 are dropped.
fn rate_to_schedule(rate: f64) -> Option<(u32, u32)> {
    if rate < 1.0 / 128.0 {
        return None;
    }
    if rate >= 0.75 {
        return Some((rate.round().max(1.0) as u32, 1));
    }
    // Pick the power-of-two period whose 1/period is closest to the rate.
    let mut best = (1u32, 1u32, f64::INFINITY);
    for log in 1..=7u32 {
        let period = 1u32 << log;
        let err = (1.0 / period as f64 - rate).abs();
        if err < best.2 {
            best = (1, period, err);
        }
    }
    Some((best.0, best.1))
}

/// Solves the kernel mix for a profile. See the module docs for the
/// allocation strategy.
fn plan_mix(profile: &Profile) -> Vec<MixEntry> {
    let l = LOADS_PER_ITER;
    let comm = profile.comm_pct / 100.0 * l;
    let partial = (profile.partial_pct / 100.0 * l).min(comm);
    let full = comm - partial;
    let is_float = profile.is_float();

    // How completely did delay fix this benchmark in the paper? A high
    // ratio means the mis-predicting loads were the always-wrong,
    // delay-suppressible kind (multi-source); a low ratio means genuinely
    // hard path-dependent loads.
    let nd_rate = profile.mispred_no_delay / 10_000.0;
    let eff = if profile.mispred_no_delay > 0.0 {
        (1.0 - profile.mispred_delay / profile.mispred_no_delay).clamp(0.0, 1.0)
    } else {
        0.0
    };
    // Flaky mass: loads with a biased, unlearnable determining bit. One
    // distance flip costs ~2 mis-predictions (flip and flip-back), so a
    // per-occurrence flip rate r yields ≈2r no-delay mis-predictions;
    // with delay, each mis-prediction zeroes the confidence counter and
    // the load parks for ~32 occurrences, giving a delayed duty cycle of
    // 32/(32 + 1/r + 2). We solve r and the flaky mass jointly against
    // the benchmark's no-delay-mis-prediction and delayed-% targets
    // (prioritizing the former when both cannot hold).
    let delayed_mass = profile.delayed_pct / 100.0 * l;
    let nd_budget = nd_rate * l;
    let (flaky_rate, flaky_r) = if delayed_mass > 0.01 {
        let alpha = 0.8; // fraction of the nd budget granted to flaky loads
        let raw_r = (16.0 * alpha * nd_budget / delayed_mass - 3.0) / 32.0;
        let r = raw_r.clamp(0.004, 0.04);
        let duty = 32.0 / (32.0 + 1.0 / r + 2.0);
        let f = (delayed_mass / duty)
            .min(4.0 * delayed_mass)
            .min(full * 0.9);
        (f, r)
    } else {
        (0.0, 0.04)
    };
    let nd_from_flaky = 2.0 * flaky_r * flaky_rate;
    // Whatever no-delay mis-prediction budget remains is split between
    // always-mispredicting multi-source loads (delay-suppressible) and
    // half-mispredicting hard path loads, per the paper's delay
    // effectiveness for this benchmark.
    let nd_remaining = (nd_budget - nd_from_flaky).max(0.0);
    let ms_rate = (nd_remaining * eff).min(partial.max(0.0));
    let hard_rate = (2.0 * nd_remaining * (1.0 - eff)).min((full - flaky_rate).max(0.0) * 0.5);

    // Remaining partial-word communication: bypassable shapes.
    let p_rem = (partial - ms_rate).max(0.0);
    let fp_rate = if is_float { p_rem * 0.5 } else { 0.0 };
    let wn_loads = (p_rem - fp_rate).max(0.0);
    let wn_pairs: usize = if wn_loads >= 8.0 { 4 } else { 1 };
    let wn_rate = wn_loads / wn_pairs as f64;

    // Remaining full-word communication.
    let f_rem = (full - hard_rate - flaky_rate).max(0.0);
    let (callsite_rate, easy_rate, strided_rate, spill_rate, spill_slots);
    let strided_steps = 12u64;
    let strided_k = 4u64;
    let strided_comm = (strided_steps - strided_k) as f64;
    if f_rem < 8.0 {
        callsite_rate = 0.0;
        easy_rate = 0.0;
        strided_rate = 0.0;
        spill_slots = 4usize;
        spill_rate = f_rem / spill_slots as f64;
    } else {
        callsite_rate = if profile.suite == Suite::SpecFp {
            0.0
        } else {
            f_rem * 0.10
        };
        easy_rate = f_rem * 0.10;
        strided_rate = f_rem * 0.15 / strided_comm;
        spill_slots = 8;
        spill_rate = (f_rem - callsite_rate - easy_rate - strided_rate * strided_comm).max(0.0)
            / spill_slots as f64;
    }

    // Non-communicating loads. Some kernels above already contribute them.
    let noncomm = (l - comm).max(0.0);
    let implicit_noncomm = hard_rate
        + flaky_rate
        + easy_rate // data word per path-dependent call
        + 2.0 * fp_rate // two stencil input reads
        + strided_rate * strided_k as f64; // cross-call recurrence heads
    let branchy_rate = if profile.suite == Suite::SpecFp {
        l * 0.02
    } else {
        l * 0.06
    };
    let mem = profile.mem_intensity();
    let noncomm_left = (noncomm - implicit_noncomm - branchy_rate).max(0.0);
    let chase_rate = noncomm_left * mem * 0.5 / 2.0;
    let stream_rate = (noncomm_left - 2.0 * chase_rate).max(0.0);

    // Cache behaviour knobs.
    let chase_nodes = if mem > 0.6 {
        1 << 20 // 8 MB: beyond L2, memory-latency bound
    } else if mem > 0.3 {
        1 << 16 // 512 KB: L2 resident
    } else {
        1 << 11
    };
    let stream_elems = if mem > 0.6 {
        1 << 18 // 2 MB
    } else if mem > 0.3 {
        1 << 15 // 256 KB
    } else {
        1 << 12 // 32 KB: L1 resident
    };

    // ILP filler.
    let alu_rate = l * 0.12;
    let alu_parallel = profile.baseline_ipc > 1.8;

    let mut mix: Vec<MixEntry> = Vec::new();
    let mut push = |kernel: Box<dyn Kernel>, rate: f64| {
        if let Some((count, period)) = rate_to_schedule(rate) {
            mix.push(MixEntry {
                kernel,
                count,
                period,
            });
        }
    };

    push(Box::new(PartialStoreKernel), ms_rate);
    push(Box::new(PathDepKernel::hard()), hard_rate);
    push(
        Box::new(PathDepKernel::flaky_with_rate(flaky_r)),
        flaky_rate,
    );
    push(Box::new(FpStencilKernel { elems: 256 }), fp_rate);
    push(Box::new(WideNarrowKernel { pairs: wn_pairs }), wn_rate);
    push(Box::new(CallSiteKernel), callsite_rate);
    push(Box::new(PathDepKernel::easy()), easy_rate);
    push(
        Box::new(StridedKernel {
            k: strided_k,
            elems: 128,
            float: is_float,
            steps: strided_steps,
        }),
        strided_rate,
    );
    push(Box::new(SpillKernel { slots: spill_slots }), spill_rate);
    push(
        Box::new(BranchyKernel {
            taken_prob: 0.85,
            words: 512,
        }),
        branchy_rate,
    );
    push(
        Box::new(PointerChaseKernel { nodes: chase_nodes }),
        chase_rate,
    );
    push(
        Box::new(StreamKernel {
            elems: stream_elems,
            stride: 1,
        }),
        stream_rate,
    );
    push(
        Box::new(AluKernel {
            ops: 10,
            parallel: alu_parallel,
        }),
        alu_rate,
    );
    mix
}

/// Emits the driver program: functions first, then per-kernel init, then
/// the shuffled call schedule in an (optionally counted) loop with
/// period gating for sub-1-per-iteration kernels.
fn build_program(mix: &[MixEntry], seed: u64, iters: Option<u64>) -> Program {
    let mut asm = Assembler::new();
    let mut pool = kernels::RegPool::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    let counter = pool.alloc_int(1)[0];
    let iter_ctr = pool.alloc_int(1)[0];

    let main = asm.label();
    asm.jump(main);

    // Emit each kernel as a function, giving each its registers + region.
    let mut entries = Vec::new();
    let mut persistents = Vec::new();
    for (i, entry) in mix.iter().enumerate() {
        let mut persistent = pool.alloc_int(entry.kernel.persistent_int());
        persistent.extend(pool.alloc_float(entry.kernel.persistent_float()));
        let mut cx = EmitCtx {
            asm: &mut asm,
            persistent,
            scratch: kernels::scratch_regs(),
            fscratch: kernels::fscratch_regs(),
            base: 0x100_0000 * (i as u64 + 1),
            rng: &mut rng,
        };
        let label = kernels::emit_function(entry.kernel.as_ref(), &mut cx);
        persistents.push(cx.persistent.clone());
        entries.push(label);
    }

    asm.bind(main);
    asm.li(iter_ctr, 0);
    for (i, entry) in mix.iter().enumerate() {
        let mut cx = EmitCtx {
            asm: &mut asm,
            persistent: persistents[i].clone(),
            scratch: kernels::scratch_regs(),
            fscratch: kernels::fscratch_regs(),
            base: 0x100_0000 * (i as u64 + 1),
            rng: &mut rng,
        };
        entry.kernel.emit_init(&mut cx);
    }

    // Shuffled call schedule (per-period kernels keep one slot).
    let mut schedule: Vec<usize> = Vec::new();
    for (i, entry) in mix.iter().enumerate() {
        schedule.extend(std::iter::repeat_n(i, entry.count as usize));
    }
    for i in (1..schedule.len()).rev() {
        let j = rng.gen_range(0..=i);
        schedule.swap(i, j);
    }

    if let Some(n) = iters {
        asm.li(counter, n as i64);
    }
    let gate = kernels::scratch_regs()[0];
    let top = asm.label();
    asm.bind(top);
    for &i in &schedule {
        if mix[i].period > 1 {
            let skip = asm.label();
            asm.andi(gate, iter_ctr, (mix[i].period - 1) as i64);
            asm.branch(Cond::Ne, gate, Reg::ZERO, skip);
            asm.call(entries[i]);
            asm.bind(skip);
        } else {
            asm.call(entries[i]);
        }
    }
    asm.addi(iter_ctr, iter_ctr, 1);
    match iters {
        Some(_) => {
            asm.addi(counter, counter, -1);
            asm.branch(Cond::Gt, counter, Reg::ZERO, top);
            asm.halt();
        }
        None => asm.jump(top),
    }
    asm.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze_program;

    fn check_profile(name: &str, comm_tol: f64, partial_tol: f64) {
        let p = Profile::by_name(name).unwrap();
        let prog = synthesize(p, 42);
        let stats = analyze_program(&prog, 400_000, 128);
        assert!(
            (stats.comm_pct() - p.comm_pct).abs() <= comm_tol,
            "{name}: comm {}% vs target {}%",
            stats.comm_pct(),
            p.comm_pct
        );
        assert!(
            (stats.partial_pct() - p.partial_pct).abs() <= partial_tol,
            "{name}: partial {}% vs target {}%",
            stats.partial_pct(),
            p.partial_pct
        );
    }

    #[test]
    fn calibration_mesa_o() {
        check_profile("mesa.o", 6.0, 4.0);
    }

    #[test]
    fn calibration_gzip() {
        check_profile("gzip", 4.0, 3.0);
    }

    #[test]
    fn calibration_mcf() {
        check_profile("mcf", 2.0, 1.0);
    }

    #[test]
    fn calibration_suite_wide() {
        // Every profile lands within coarse tolerances.
        for p in Profile::all() {
            let prog = synthesize(p, 9);
            let stats = analyze_program(&prog, 150_000, 128);
            assert!(
                (stats.comm_pct() - p.comm_pct).abs() <= 8.0,
                "{}: comm {}% vs {}%",
                p.name,
                stats.comm_pct(),
                p.comm_pct
            );
            assert!(
                (stats.partial_pct() - p.partial_pct).abs() <= 5.0,
                "{}: partial {}% vs {}%",
                p.name,
                stats.partial_pct(),
                p.partial_pct
            );
        }
    }

    #[test]
    fn calibration_adpcm_no_comm() {
        let p = Profile::by_name("adpcm.d").unwrap();
        let prog = synthesize(p, 42);
        let stats = analyze_program(&prog, 200_000, 128);
        assert_eq!(stats.comm_loads, 0);
        assert!(stats.loads > 0);
    }

    #[test]
    fn deterministic_for_seed() {
        let p = Profile::by_name("gcc").unwrap();
        let a = synthesize(p, 7);
        let b = synthesize(p, 7);
        assert_eq!(a.len(), b.len());
        for ((pa, ia), (pb, ib)) in a.iter().zip(b.iter()) {
            assert_eq!(pa, pb);
            assert_eq!(ia, ib);
        }
    }

    #[test]
    fn counted_variant_halts() {
        let p = Profile::by_name("gsm.e").unwrap();
        let prog = synthesize_iters(p, 1, Some(2));
        let mut tracer = crate::tracer::Tracer::new(&prog, 2_000_000);
        let n = (&mut tracer).count();
        assert!(tracer.state().halted(), "ran {n} insts without halting");
    }

    #[test]
    fn all_profiles_synthesize() {
        for p in Profile::all() {
            let prog = synthesize(p, 1);
            assert!(prog.len() > 10, "{} produced empty program", p.name);
            let mut t = crate::tracer::Tracer::new(&prog, 20_000);
            let n = (&mut t).count();
            assert!(t.error().is_none(), "{}: {:?}", p.name, t.error());
            assert_eq!(n, 20_000, "{} halted early", p.name);
        }
    }

    #[test]
    fn rate_schedule_resolution() {
        assert_eq!(rate_to_schedule(0.0), None);
        assert_eq!(rate_to_schedule(0.001), None);
        assert_eq!(rate_to_schedule(1.0), Some((1, 1)));
        assert_eq!(rate_to_schedule(3.4), Some((3, 1)));
        let (c, p) = rate_to_schedule(0.1).unwrap();
        assert_eq!(c, 1);
        assert!(p == 8 || p == 16, "period {p}");
        let (_, p) = rate_to_schedule(0.5).unwrap();
        assert_eq!(p, 2);
    }
}
