//! Dynamic instruction records with ground-truth memory dependences.

use nosq_isa::{ExecRecord, InstClass};

/// How completely the youngest producing store covers a load's bytes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Coverage {
    /// The single youngest store wrote every byte the load reads;
    /// bypassable by SMB (possibly with a shift, paper §3.5).
    Full,
    /// The load's bytes come from more than one store (or partly from
    /// memory): the narrow-store/wide-load case SMB cannot bypass
    /// because it cannot combine values from multiple sources
    /// (paper §3.3, "Delay").
    Partial,
}

/// Ground truth about the store that produced a load's value.
#[derive(Copy, Clone, Debug)]
pub struct MemDep {
    /// Dynamic sequence number of the youngest older store writing any
    /// byte the load reads.
    pub store_seq: u64,
    /// Distance in dynamic stores: 0 means the most recent store renamed
    /// before the load (paper §3.1, `ld.distbyp = SSNrename - ld.SSNbyp`
    /// with 1-based SSNs).
    pub store_distance: u64,
    /// Distance in dynamic instructions (`load.seq - store.seq`).
    pub inst_distance: u64,
    /// Whether that store supplies all of the load's bytes.
    pub coverage: Coverage,
    /// `load.addr - store.addr` in bytes; meaningful for
    /// [`Coverage::Full`] (the shift amount SMB's shift&mask op needs).
    pub shift: u8,
    /// The producing store's access width in bytes.
    pub store_width: u8,
    /// Whether the producing store was an `sts` (float32 conversion).
    pub store_float32: bool,
}

/// One dynamic instruction as seen by the timing models.
#[derive(Copy, Clone, Debug)]
pub struct DynInst {
    /// Dynamic sequence number (0-based, correct path only).
    pub seq: u64,
    /// The architectural execution record (PC, instruction, addresses,
    /// correct values, branch outcome).
    pub rec: ExecRecord,
    /// Cached instruction class.
    pub class: InstClass,
    /// Number of stores that precede this instruction in the dynamic
    /// stream. For a store this is also its 0-based store index; its SSN
    /// is `stores_before + 1`.
    pub stores_before: u64,
    /// For loads: the youngest older store writing any byte read, if any.
    pub mem_dep: Option<MemDep>,
}

impl DynInst {
    /// This instruction's SSN if it is a store (1-based, as in the paper's
    /// SVW scheme).
    pub fn store_ssn(&self) -> Option<u64> {
        (self.class == InstClass::Store).then_some(self.stores_before + 1)
    }

    /// For a load with a dependence, the SSN of the producing store.
    pub fn dep_ssn(&self) -> Option<u64> {
        self.mem_dep.map(|d| self.stores_before - d.store_distance)
    }

    /// Whether this load's communication involves a partial word on
    /// either side (paper Table 5's "partial-word" column: either the
    /// load or the store is less than eight bytes wide).
    pub fn is_partial_word_comm(&self) -> bool {
        match (&self.mem_dep, self.rec.inst.mem_width()) {
            (Some(dep), Some(w)) => dep.store_width < 8 || w.bytes() < 8,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nosq_isa::{Extension, Inst, MemWidth, Reg};

    fn load_record(width: MemWidth) -> ExecRecord {
        ExecRecord {
            pc: 0,
            inst: Inst::Load {
                rd: Reg::int(1),
                base: Reg::int(2),
                ofs: 0,
                width,
                ext: Extension::Zero,
            },
            addr: 0x100,
            load_value: 0,
            store_data: 0,
            store_mem_bits: 0,
            taken: false,
            next_pc: 4,
        }
    }

    #[test]
    fn ssn_is_one_based() {
        let store = DynInst {
            seq: 5,
            rec: ExecRecord {
                pc: 0,
                inst: Inst::Store {
                    data: Reg::int(1),
                    base: Reg::int(2),
                    ofs: 0,
                    width: MemWidth::B8,
                    float32: false,
                },
                addr: 0x100,
                load_value: 0,
                store_data: 7,
                store_mem_bits: 7,
                taken: false,
                next_pc: 4,
            },
            class: InstClass::Store,
            stores_before: 0,
            mem_dep: None,
        };
        assert_eq!(store.store_ssn(), Some(1));
    }

    #[test]
    fn dep_ssn_from_distance() {
        let load = DynInst {
            seq: 10,
            rec: load_record(MemWidth::B8),
            class: InstClass::Load,
            stores_before: 7,
            mem_dep: Some(MemDep {
                store_seq: 3,
                store_distance: 2,
                inst_distance: 7,
                coverage: Coverage::Full,
                shift: 0,
                store_width: 8,
                store_float32: false,
            }),
        };
        // 7 stores renamed; distance 2 => SSN 5.
        assert_eq!(load.dep_ssn(), Some(5));
    }

    #[test]
    fn partial_word_flag_checks_both_sides() {
        let mut load = DynInst {
            seq: 1,
            rec: load_record(MemWidth::B8),
            class: InstClass::Load,
            stores_before: 1,
            mem_dep: Some(MemDep {
                store_seq: 0,
                store_distance: 0,
                inst_distance: 1,
                coverage: Coverage::Full,
                shift: 0,
                store_width: 8,
                store_float32: false,
            }),
        };
        assert!(!load.is_partial_word_comm());
        load.mem_dep.as_mut().unwrap().store_width = 4;
        assert!(load.is_partial_word_comm());
        load.mem_dep.as_mut().unwrap().store_width = 8;
        load.rec.inst = load_record(MemWidth::B2).inst;
        assert!(load.is_partial_word_comm());
        load.mem_dep = None;
        assert!(!load.is_partial_word_comm());
    }
}
