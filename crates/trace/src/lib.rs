//! # nosq-trace
//!
//! Dynamic-instruction tracing and calibrated synthetic workloads for the
//! NoSQ simulator (Sha, Martin & Roth, MICRO-39 2006).
//!
//! The paper evaluates on SPEC2000 and MediaBench; those binaries (and an
//! Alpha toolchain) are not reproducible here, so this crate substitutes
//! **calibrated synthetic workloads**: compositions of small kernels whose
//! in-window store-load communication signatures are solved against each
//! benchmark's Table-5 profile (total communication %, partial-word %,
//! hard-to-predict mass, delay-needing mass). See `DESIGN.md` §2 for the
//! substitution argument.
//!
//! * [`Tracer`] streams the correct-path dynamic instruction sequence with
//!   ground-truth memory dependences ([`DynInst`], [`MemDep`]).
//! * [`lastwriter`] holds the paged, epoch-stamped per-byte
//!   [`LastWriterMap`] behind the tracer's dependence analysis; a
//!   reusable map makes tracing allocation-free across programs
//!   ([`Tracer::with_arena`]).
//! * [`kernels`] hosts the kernel library.
//! * [`profiles`] defines the 47 benchmark profiles from paper Table 5.
//! * [`synth`] composes kernels into a runnable [`Program`] per profile.
//! * [`analyze`] measures communication signatures (Table 5, left half).
//! * [`depgraph`] derives the exact per-byte store→load
//!   [`DependenceGraph`] — the dependence oracle `nosq-audit` checks the
//!   pipeline against, and the source of [`analyze`]'s stats.
//!
//! [`Program`]: nosq_isa::Program

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod depgraph;
pub mod kernels;
pub mod lastwriter;
pub mod profiles;
pub mod record;
pub mod synth;
pub mod tracer;

pub use analyze::{analyze_program, CommStats};
pub use depgraph::{DepGraphBuilder, DependenceGraph, LoadDep, StoreNode, StoreSet};
pub use lastwriter::{ByteWriter, LastWriterMap, LoadScan};
pub use profiles::{Profile, Suite};
pub use record::{Coverage, DynInst, MemDep};
pub use synth::synthesize;
pub use tracer::{TraceBuffer, Tracer};
