//! Non-communicating memory kernels with controllable cache behaviour.

use nosq_isa::{Cond, Extension, MemWidth};
use rand::Rng;

use super::{EmitCtx, Kernel, KernelStats};

/// Streams reads over a read-only array. Loads never communicate with
/// stores; the footprint controls whether they hit in L1, L2, or memory.
#[derive(Debug, Clone)]
pub struct StreamKernel {
    /// Array size in 8-byte elements.
    pub elems: u64,
    /// Stride between consecutive reads, in elements.
    pub stride: u64,
}

impl Kernel for StreamKernel {
    fn name(&self) -> String {
        format!("stream{}", self.elems)
    }

    fn persistent_int(&self) -> usize {
        2 // base, index
    }

    fn emit_init(&self, cx: &mut EmitCtx<'_>) {
        let base = cx.persistent[0];
        let idx = cx.persistent[1];
        // Touch only a few pages of data; untouched bytes read as zero,
        // which is fine for a sum.
        let seed: Vec<u64> = (0..self.elems.min(512)).map(|i| i * 7 + 1).collect();
        cx.asm.data_u64s(cx.base, &seed);
        cx.asm.li(base, cx.base as i64);
        cx.asm.li(idx, 0);
    }

    fn emit_body(&self, cx: &mut EmitCtx<'_>) {
        let base = cx.persistent[0];
        let idx = cx.persistent[1];
        let [t0, t1, acc, ..] = cx.scratch;
        let no_wrap = cx.asm.label();
        cx.asm.add(t0, base, idx);
        cx.asm.load(t1, t0, 0, MemWidth::B8, Extension::Zero);
        cx.asm.add(acc, acc, t1);
        cx.asm.addi(idx, idx, (self.stride * 8) as i64);
        cx.asm.li(t0, (self.elems * 8) as i64);
        cx.asm.branch(Cond::Lt, idx, t0, no_wrap);
        cx.asm.li(idx, 0);
        cx.asm.bind(no_wrap);
    }

    fn stats(&self) -> KernelStats {
        KernelStats {
            insts: 7.0,
            loads: 1.0,
            comm_loads: 0.0,
            partial_comm: 0.0,
            stores: 0.0,
        }
    }
}

/// Walks a randomized ring of pointers: a serialized load-to-load
/// dependence chain. With a footprint beyond L2 this is memory-latency
/// bound (the `mcf`/`art` personality); loads never communicate.
#[derive(Debug, Clone)]
pub struct PointerChaseKernel {
    /// Number of 8-byte nodes in the ring.
    pub nodes: u64,
}

impl Kernel for PointerChaseKernel {
    fn name(&self) -> String {
        format!("chase{}", self.nodes)
    }

    fn persistent_int(&self) -> usize {
        1 // current pointer
    }

    fn emit_init(&self, cx: &mut EmitCtx<'_>) {
        let cur = cx.persistent[0];
        // Random Hamiltonian cycle over the nodes.
        let n = self.nodes as usize;
        let mut order: Vec<u64> = (0..self.nodes).collect();
        for i in (1..n).rev() {
            let j = cx.rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut next = vec![0u64; n];
        for i in 0..n {
            let from = order[i] as usize;
            let to = order[(i + 1) % n];
            next[from] = cx.base + to * 8;
        }
        cx.asm.data_u64s(cx.base, &next);
        cx.asm.li(cur, (cx.base + order[0] * 8) as i64);
    }

    fn emit_body(&self, cx: &mut EmitCtx<'_>) {
        let cur = cx.persistent[0];
        // Two hops per call amortize call overhead a little.
        cx.asm.load(cur, cur, 0, MemWidth::B8, Extension::Zero);
        cx.asm.load(cur, cur, 0, MemWidth::B8, Extension::Zero);
    }

    fn stats(&self) -> KernelStats {
        KernelStats {
            insts: 2.0,
            loads: 2.0,
            comm_loads: 0.0,
            partial_comm: 0.0,
            stores: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::measure;
    use super::*;

    #[test]
    fn stream_never_communicates() {
        let m = measure(
            &StreamKernel {
                elems: 256,
                stride: 1,
            },
            100,
            100_000,
        );
        assert_eq!(m.loads, 100);
        assert_eq!(m.comm_loads, 0);
        assert_eq!(m.stores, 0);
    }

    #[test]
    fn chase_visits_every_node() {
        let m = measure(&PointerChaseKernel { nodes: 64 }, 40, 100_000);
        assert_eq!(m.loads, 80);
        assert_eq!(m.comm_loads, 0);
    }

    #[test]
    fn chase_ring_is_a_single_cycle() {
        // Follow the generated next-pointers directly.
        use crate::tracer::Tracer;
        use nosq_isa::InstClass;
        let k = PointerChaseKernel { nodes: 16 };
        let prog = super::super::testutil::driver_program(&k, 16);
        let mut seen = std::collections::HashSet::new();
        for d in Tracer::new(&prog, 100_000) {
            if d.class == InstClass::Load {
                seen.insert(d.rec.addr);
            }
        }
        assert_eq!(seen.len(), 16, "walk must cover the whole ring");
    }
}
