//! Strided recurrence kernel: `X[i] = A*X[i-k] + B`.

use nosq_isa::{AluKind, Cond, Extension, MemWidth};

use super::{EmitCtx, Kernel, KernelStats};

/// The loop the paper uses to motivate distance-based dependence
/// representation (§3.1): each load depends on the `k`-th most recent
/// dynamic instance of the *same static store*. A store-PC scheme (which
/// maps a store PC only to its most recent instance) cannot represent
/// this; a distance of `k-1` stores captures it exactly.
#[derive(Debug, Clone)]
pub struct StridedKernel {
    /// Recurrence distance in elements (and, with one store per
    /// step, in dynamic stores).
    pub k: u64,
    /// Ring capacity in elements (must exceed `k`).
    pub elems: u64,
    /// Use floating-point multiply-accumulate instead of integer.
    pub float: bool,
    /// Recurrence steps unrolled per call. Steps beyond the first `k`
    /// depend on stores from the *same call* and therefore communicate
    /// in-window; the first `k` depend on the previous call (usually out
    /// of window).
    pub steps: u64,
}

impl Kernel for StridedKernel {
    fn name(&self) -> String {
        format!("strided{}{}", self.k, if self.float { "f" } else { "" })
    }

    fn persistent_int(&self) -> usize {
        2 // base pointer, byte index
    }

    fn persistent_float(&self) -> usize {
        if self.float {
            1
        } else {
            0
        }
    }

    fn emit_init(&self, cx: &mut EmitCtx<'_>) {
        assert!(self.elems > self.k, "ring must be larger than the stride");
        let base = cx.persistent[0];
        let idx = cx.persistent[1];
        // Seed the ring with nonzero data.
        let words: Vec<u64> = (0..self.elems)
            .map(|i| {
                if self.float {
                    (1.0 + i as f64 / 1024.0).to_bits()
                } else {
                    i + 1
                }
            })
            .collect();
        cx.asm.data_u64s(cx.base, &words);
        cx.asm.li(base, cx.base as i64);
        cx.asm.li(idx, (self.k * 8) as i64);
        if self.float {
            let a = cx.persistent[2];
            cx.asm.li(a, 0.9999f64.to_bits() as i64);
        }
    }

    fn emit_body(&self, cx: &mut EmitCtx<'_>) {
        let base = cx.persistent[0];
        let idx = cx.persistent[1];
        let [t0, t1, t2, ..] = cx.scratch;

        for _ in 0..self.steps {
            let wrap_done = cx.asm.label();
            // t0 = &X[i-k]; load.
            cx.asm.alui(AluKind::Sub, t0, idx, (self.k * 8) as i64);
            cx.asm.add(t0, base, t0);
            if self.float {
                let a = cx.persistent[2];
                let [f0, ..] = cx.fscratch;
                cx.asm.load(f0, t0, 0, MemWidth::B8, Extension::Zero);
                cx.asm.fmul(f0, f0, a);
                // &X[i]; store.
                cx.asm.add(t1, base, idx);
                cx.asm.store(f0, t1, 0, MemWidth::B8);
            } else {
                cx.asm.load(t2, t0, 0, MemWidth::B8, Extension::Zero);
                cx.asm.alui(AluKind::Mul, t2, t2, 3);
                cx.asm.addi(t2, t2, 1);
                cx.asm.add(t1, base, idx);
                cx.asm.store(t2, t1, 0, MemWidth::B8);
            }
            // Advance and wrap to k*8 (so i-k never underflows).
            cx.asm.addi(idx, idx, 8);
            cx.asm.li(t0, (self.elems * 8) as i64);
            cx.asm.branch(Cond::Lt, idx, t0, wrap_done);
            cx.asm.li(idx, (self.k * 8) as i64);
            cx.asm.bind(wrap_done);
        }
    }

    fn stats(&self) -> KernelStats {
        let s = self.steps as f64;
        KernelStats {
            insts: (if self.float { 10.0 } else { 11.0 }) * s,
            loads: s,
            comm_loads: s - self.k as f64,
            partial_comm: 0.0,
            stores: s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{driver_program, measure};
    use super::*;
    use crate::tracer::Tracer;
    use nosq_isa::InstClass;

    #[test]
    fn dependence_distance_is_k_minus_one_stores() {
        let k = StridedKernel {
            k: 3,
            elems: 64,
            float: false,
            steps: 6,
        };
        let prog = driver_program(&k, 40);
        let mut distances = Vec::new();
        for d in Tracer::new(&prog, 100_000) {
            if d.class == InstClass::Load {
                if let Some(dep) = d.mem_dep {
                    distances.push(dep.store_distance);
                }
            }
        }
        // After warm-up (first k iterations read initial data), every load
        // depends on the store from k iterations ago: k-1 stores in between.
        let steady = &distances[..];
        assert!(!steady.is_empty());
        for dist in steady {
            assert_eq!(*dist, 2);
        }
    }

    #[test]
    fn float_variant_communicates_too() {
        let k = StridedKernel {
            k: 2,
            elems: 32,
            float: true,
            steps: 4,
        };
        let m = measure(&k, 60, 100_000);
        assert_eq!(m.loads, 240);
        // Initial reads and ring wrap-arounds touch seed data (non-comm).
        assert!(m.comm_loads >= 200, "comm loads {}", m.comm_loads);
        assert_eq!(m.partial_comm, 0);
    }
}
