//! Synthetic workload kernels.
//!
//! Each kernel is a small code generator that emits one *function* into a
//! program and reports the per-call signature of the code it emits
//! (instructions, loads, in-window-communicating loads, partial-word
//! communication). The [`synth`](crate::synth) module composes kernels per
//! benchmark profile to match the communication signatures of paper
//! Table 5.
//!
//! Kernel taxonomy (what each one exercises):
//!
//! * [`SpillKernel`] — register save/restore: full-word, fixed-distance
//!   store-load pairs (the bread-and-butter SMB case).
//! * [`WideNarrowKernel`] — wide-store/narrow-load with non-zero shifts
//!   (bypassable partial-word, paper §3.5).
//! * [`PartialStoreKernel`] — two narrow stores feeding one wider load
//!   (un-bypassable; must be handled by delay, paper §3.3).
//! * [`StructPackKernel`] — mixed field packing (both of the above).
//! * [`StridedKernel`] — `X[i] = A*X[i-k]`: dependence on a non-most-recent
//!   instance of a static store (distance-based prediction wins, §3.1).
//! * [`StreamKernel`], [`PointerChaseKernel`] — non-communicating loads
//!   with controllable cache behaviour.
//! * [`PathDepKernel`] — store-load distance decided by a branch `noise`
//!   control-flow steps earlier (path-sensitive prediction, §3.3).
//! * [`CallSiteKernel`] — distance decided by call site (the call-PC path
//!   history bits, §3.3).
//! * [`AluKernel`], [`BranchyKernel`] — ILP and branch-predictability
//!   filler with no memory communication.
//! * [`FpStencilKernel`] — `sts`/`lds` single-precision traffic (float
//!   conversion bypassing, §3.5).

mod compute;
mod memory;
mod partial;
mod pathdep;
mod spill;
mod strided;

pub use compute::{AluKernel, BranchyKernel, FpStencilKernel};
pub use memory::{PointerChaseKernel, StreamKernel};
pub use partial::{PartialStoreKernel, StructPackKernel, WideNarrowKernel};
pub use pathdep::{CallSiteKernel, PathDepKernel};
pub use spill::SpillKernel;
pub use strided::StridedKernel;

use nosq_isa::{Assembler, Label, Reg};
use rand::rngs::SmallRng;

/// Per-call signature of the code a kernel emits, used to solve kernel
/// mixes against a profile's communication targets.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct KernelStats {
    /// Approximate dynamic instructions per call.
    pub insts: f64,
    /// Dynamic loads per call.
    pub loads: f64,
    /// Loads per call that communicate with an in-flight store.
    pub comm_loads: f64,
    /// Communicating loads per call involving a partial word.
    pub partial_comm: f64,
    /// Dynamic stores per call.
    pub stores: f64,
}

/// Emission context handed to kernels.
///
/// Kernels receive disjoint persistent registers and a disjoint memory
/// region; scratch registers are shared (their values do not survive
/// across calls).
pub struct EmitCtx<'a> {
    /// The program under construction.
    pub asm: &'a mut Assembler,
    /// Registers owned by this kernel for the program's lifetime.
    pub persistent: Vec<Reg>,
    /// Shared integer scratch registers (clobbered by every kernel).
    pub scratch: [Reg; 6],
    /// Shared floating-point scratch registers.
    pub fscratch: [Reg; 4],
    /// Base of this kernel's private memory region.
    pub base: u64,
    /// Deterministic generator for data-segment contents.
    pub rng: &'a mut SmallRng,
}

/// A synthetic-workload code generator.
///
/// `emit_init` runs once before the driver loop (pointer/index setup and
/// data segments); `emit_body` is the per-call function body (without
/// `ret`, which the driver appends).
pub trait Kernel {
    /// Human-readable kernel name.
    fn name(&self) -> String;
    /// Number of persistent integer registers required.
    fn persistent_int(&self) -> usize;
    /// Number of persistent floating-point registers required.
    fn persistent_float(&self) -> usize {
        0
    }
    /// Emits one-time setup code (runs before the driver loop).
    fn emit_init(&self, cx: &mut EmitCtx<'_>);
    /// Emits the function body executed once per call.
    fn emit_body(&self, cx: &mut EmitCtx<'_>);
    /// Expected per-call signature.
    fn stats(&self) -> KernelStats;
}

/// Allocates persistent registers to kernels from the pools not used as
/// scratch.
#[derive(Debug)]
pub struct RegPool {
    next_int: u8,
    next_float: u8,
}

impl Default for RegPool {
    fn default() -> Self {
        RegPool {
            // r1-r6 are scratch; r7.. are persistent; r30/r31 = LINK/SP.
            next_int: 7,
            // f0-f3 are scratch.
            next_float: 4,
        }
    }
}

impl RegPool {
    /// Creates a pool with all persistent registers free.
    pub fn new() -> RegPool {
        RegPool::default()
    }

    /// Allocates `n` persistent integer registers.
    ///
    /// # Panics
    ///
    /// Panics if the pool is exhausted (more kernels than registers).
    pub fn alloc_int(&mut self, n: usize) -> Vec<Reg> {
        let mut regs = Vec::with_capacity(n);
        for _ in 0..n {
            assert!(
                self.next_int <= 29,
                "persistent integer registers exhausted"
            );
            regs.push(Reg::int(self.next_int));
            self.next_int += 1;
        }
        regs
    }

    /// Allocates `n` persistent floating-point registers.
    ///
    /// # Panics
    ///
    /// Panics if the pool is exhausted.
    pub fn alloc_float(&mut self, n: usize) -> Vec<Reg> {
        let mut regs = Vec::with_capacity(n);
        for _ in 0..n {
            assert!(
                self.next_float <= 30,
                "persistent float registers exhausted"
            );
            regs.push(Reg::float(self.next_float));
            self.next_float += 1;
        }
        regs
    }
}

/// Shared integer scratch registers.
pub fn scratch_regs() -> [Reg; 6] {
    [
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
    ]
}

/// Shared floating-point scratch registers.
pub fn fscratch_regs() -> [Reg; 4] {
    [Reg::float(0), Reg::float(1), Reg::float(2), Reg::float(3)]
}

/// Emits a kernel as a callable function and returns its entry label.
///
/// The label is bound inside; callers `asm.call(label)` it. Used by the
/// synthesizer and by kernel unit tests.
pub fn emit_function(kernel: &dyn Kernel, cx: &mut EmitCtx<'_>) -> Label {
    let entry = cx.asm.label();
    cx.asm.bind(entry);
    kernel.emit_body(cx);
    cx.asm.ret();
    entry
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::record::Coverage;
    use crate::tracer::Tracer;
    use nosq_isa::{Cond, InstClass, Program};
    use rand::SeedableRng;

    /// Measured communication signature of a traced kernel.
    #[derive(Debug, Default)]
    pub struct Measured {
        pub insts: u64,
        pub loads: u64,
        pub comm_loads: u64,
        pub partial_comm: u64,
        pub multi_source: u64,
        pub stores: u64,
    }

    /// Builds a driver that calls `kernel` `iters` times, traces it fully,
    /// and measures its in-window (128-instruction) communication.
    pub fn measure(kernel: &dyn Kernel, iters: i64, max_insts: u64) -> Measured {
        let prog = driver_program(kernel, iters);
        measure_program(&prog, max_insts)
    }

    pub fn driver_program(kernel: &dyn Kernel, iters: i64) -> Program {
        let mut asm = Assembler::new();
        let mut pool = RegPool::new();
        let mut rng = SmallRng::seed_from_u64(0x5eed);
        let counter = pool.alloc_int(1)[0];
        let mut persistent = pool.alloc_int(kernel.persistent_int());
        persistent.extend(pool.alloc_float(kernel.persistent_float()));

        let main = asm.label();
        asm.jump(main);
        let mut cx = EmitCtx {
            asm: &mut asm,
            persistent,
            scratch: scratch_regs(),
            fscratch: fscratch_regs(),
            base: 0x10_0000,
            rng: &mut rng,
        };
        let func = emit_function(kernel, &mut cx);
        let persistent = cx.persistent.clone();
        asm.bind(main);
        let mut cx = EmitCtx {
            asm: &mut asm,
            persistent,
            scratch: scratch_regs(),
            fscratch: fscratch_regs(),
            base: 0x10_0000,
            rng: &mut rng,
        };
        kernel.emit_init(&mut cx);
        asm.li(counter, iters);
        let top = asm.label();
        asm.bind(top);
        asm.call(func);
        asm.addi(counter, counter, -1);
        asm.branch(Cond::Gt, counter, Reg::ZERO, top);
        asm.halt();
        asm.finish()
    }

    pub fn measure_program(prog: &Program, max_insts: u64) -> Measured {
        let mut m = Measured::default();
        for d in Tracer::new(prog, max_insts) {
            m.insts += 1;
            match d.class {
                InstClass::Load => {
                    m.loads += 1;
                    if let Some(dep) = d.mem_dep {
                        if dep.inst_distance < 128 {
                            m.comm_loads += 1;
                            if d.is_partial_word_comm() {
                                m.partial_comm += 1;
                            }
                            if dep.coverage == Coverage::Partial {
                                m.multi_source += 1;
                            }
                        }
                    }
                }
                InstClass::Store => m.stores += 1,
                _ => {}
            }
        }
        m
    }
}
