//! Register spill/fill kernel: full-word, fixed-distance communication.

use nosq_isa::{Extension, MemWidth};

use super::{EmitCtx, Kernel, KernelStats};

/// Saves `slots` values to a stack-like region, does a little compute,
/// and reloads them — the register save/restore pattern around calls that
/// dominates full-word in-window store-load communication in real code.
///
/// Every reload communicates with the save from the same call at a fixed
/// store distance, so a working bypassing predictor should approach 100%
/// accuracy here.
#[derive(Debug, Clone)]
pub struct SpillKernel {
    /// Number of 8-byte slots saved and restored per call.
    pub slots: usize,
}

impl Kernel for SpillKernel {
    fn name(&self) -> String {
        format!("spill{}", self.slots)
    }

    fn persistent_int(&self) -> usize {
        1 // frame base
    }

    fn emit_init(&self, cx: &mut EmitCtx<'_>) {
        let frame = cx.persistent[0];
        cx.asm.li(frame, cx.base as i64);
    }

    fn emit_body(&self, cx: &mut EmitCtx<'_>) {
        let frame = cx.persistent[0];
        let [v, acc, t, ..] = cx.scratch;
        // Save phase: churn a value and store it to each slot.
        for j in 0..self.slots {
            cx.asm.addi(v, v, 1 + j as i64);
            cx.asm.store(v, frame, (8 * j) as i32, MemWidth::B8);
        }
        // Restore phase: reload each slot and accumulate.
        for j in 0..self.slots {
            cx.asm
                .load(t, frame, (8 * j) as i32, MemWidth::B8, Extension::Zero);
            cx.asm.add(acc, acc, t);
        }
    }

    fn stats(&self) -> KernelStats {
        let s = self.slots as f64;
        KernelStats {
            insts: 4.0 * s,
            loads: s,
            comm_loads: s,
            partial_comm: 0.0,
            stores: s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::measure;
    use super::*;

    #[test]
    fn all_loads_communicate_full_word() {
        let k = SpillKernel { slots: 6 };
        let m = measure(&k, 50, 100_000);
        assert_eq!(m.loads, 300);
        assert_eq!(m.comm_loads, 300);
        assert_eq!(m.partial_comm, 0);
        assert_eq!(m.multi_source, 0);
        assert_eq!(m.stores, 300);
    }

    #[test]
    fn stats_match_measurement() {
        let k = SpillKernel { slots: 4 };
        let m = measure(&k, 100, 100_000);
        let s = k.stats();
        let per_call_loads = m.loads as f64 / 100.0;
        assert!((per_call_loads - s.loads).abs() < 1e-9);
    }
}
