//! Compute and control-flow filler kernels.

use nosq_isa::{Cond, Extension, MemWidth};
use rand::Rng;

use super::{EmitCtx, Kernel, KernelStats};

/// Pure integer ALU work with a configurable dependence shape.
#[derive(Debug, Clone)]
pub struct AluKernel {
    /// Instructions per call.
    pub ops: usize,
    /// If true the ops form independent accumulations (high ILP); if
    /// false they form one serial chain (low ILP).
    pub parallel: bool,
}

impl Kernel for AluKernel {
    fn name(&self) -> String {
        format!("alu{}{}", self.ops, if self.parallel { "p" } else { "s" })
    }

    fn persistent_int(&self) -> usize {
        0
    }

    fn emit_init(&self, _cx: &mut EmitCtx<'_>) {}

    fn emit_body(&self, cx: &mut EmitCtx<'_>) {
        let [a, b, c, d, ..] = cx.scratch;
        if self.parallel {
            let accs = [a, b, c, d];
            for j in 0..self.ops {
                let r = accs[j % 4];
                cx.asm.addi(r, r, (j + 1) as i64);
            }
        } else {
            for j in 0..self.ops {
                cx.asm.addi(a, a, (j + 1) as i64);
            }
        }
    }

    fn stats(&self) -> KernelStats {
        KernelStats {
            insts: self.ops as f64,
            loads: 0.0,
            comm_loads: 0.0,
            partial_comm: 0.0,
            stores: 0.0,
        }
    }
}

/// Data-driven conditional branches with controllable predictability.
///
/// Branch directions come from a pre-generated random bit array with
/// P(taken) = `taken_prob`; a bimodal predictor converges to the majority
/// direction, so the steady-state mis-prediction rate approaches
/// `min(p, 1-p)`.
#[derive(Debug, Clone)]
pub struct BranchyKernel {
    /// Probability that a branch is taken.
    pub taken_prob: f64,
    /// Number of backing 64-bit words.
    pub words: u64,
}

impl Kernel for BranchyKernel {
    fn name(&self) -> String {
        "branchy".to_owned()
    }

    fn persistent_int(&self) -> usize {
        2 // data base, bit index
    }

    fn emit_init(&self, cx: &mut EmitCtx<'_>) {
        let data = cx.persistent[0];
        let idx = cx.persistent[1];
        let words: Vec<u64> = (0..self.words)
            .map(|_| {
                let mut w = 0u64;
                for b in 0..64 {
                    if cx.rng.gen_bool(self.taken_prob) {
                        w |= 1 << b;
                    }
                }
                w
            })
            .collect();
        cx.asm.data_u64s(cx.base, &words);
        cx.asm.li(data, cx.base as i64);
        cx.asm.li(idx, 0);
    }

    fn emit_body(&self, cx: &mut EmitCtx<'_>) {
        let data = cx.persistent[0];
        let idx = cx.persistent[1];
        let [t0, w, t2, acc, ..] = cx.scratch;
        let taken_l = cx.asm.label();
        let join = cx.asm.label();
        let no_wrap = cx.asm.label();

        // Fetch the word holding bit `idx`.
        cx.asm.shri(t0, idx, 6);
        cx.asm.shli(t0, t0, 3);
        cx.asm.add(t0, data, t0);
        cx.asm.load(w, t0, 0, MemWidth::B8, Extension::Zero);
        cx.asm.andi(t2, idx, 63);
        cx.asm.alu(nosq_isa::AluKind::Shr, w, w, t2);
        cx.asm.andi(w, w, 1);
        cx.asm.branch(Cond::Ne, w, nosq_isa::Reg::ZERO, taken_l);
        cx.asm.addi(acc, acc, 1);
        cx.asm.jump(join);
        cx.asm.bind(taken_l);
        cx.asm.addi(acc, acc, 2);
        cx.asm.bind(join);
        cx.asm.addi(idx, idx, 1);
        cx.asm.li(t0, (self.words * 64) as i64);
        cx.asm.branch(Cond::Lt, idx, t0, no_wrap);
        cx.asm.li(idx, 0);
        cx.asm.bind(no_wrap);
    }

    fn stats(&self) -> KernelStats {
        KernelStats {
            insts: 14.0,
            loads: 1.0,
            comm_loads: 0.0,
            partial_comm: 0.0,
            stores: 0.0,
        }
    }
}

/// A single-precision stencil using `lds`/`sts`: reads a read-only f32
/// array, writes an output element, and immediately reloads it — 4-byte
/// float communication that exercises SMB's float-conversion transform
/// (paper §3.5).
#[derive(Debug, Clone)]
pub struct FpStencilKernel {
    /// Elements in the input/output arrays.
    pub elems: u64,
}

impl Kernel for FpStencilKernel {
    fn name(&self) -> String {
        format!("fpstencil{}", self.elems)
    }

    fn persistent_int(&self) -> usize {
        2 // base, byte index
    }

    fn emit_init(&self, cx: &mut EmitCtx<'_>) {
        let base = cx.persistent[0];
        let idx = cx.persistent[1];
        // Input: f32 values packed two per u64 word.
        let n_words = self.elems / 2 + 1;
        let words: Vec<u64> = (0..n_words)
            .map(|i| {
                let lo = (1.0 + (2 * i) as f32 / 64.0).to_bits() as u64;
                let hi = (1.0 + (2 * i + 1) as f32 / 64.0).to_bits() as u64;
                lo | (hi << 32)
            })
            .collect();
        cx.asm.data_u64s(cx.base, &words);
        cx.asm.li(base, cx.base as i64);
        cx.asm.li(idx, 0);
    }

    fn emit_body(&self, cx: &mut EmitCtx<'_>) {
        let base = cx.persistent[0];
        let idx = cx.persistent[1];
        let [t0, t1, ..] = cx.scratch;
        let [f0, f1, f2, half] = cx.fscratch;
        cx.asm.li(half, 0.5f64.to_bits() as i64);
        let no_wrap = cx.asm.label();
        let out_ofs = (self.elems * 4 + 64) as i64;

        cx.asm.add(t0, base, idx);
        cx.asm.lds(f0, t0, 0);
        cx.asm.lds(f1, t0, 4);
        cx.asm.fadd(f2, f0, f1);
        cx.asm.fmul(f2, f2, half);
        // Write Z[i] and reload it: sts -> lds communication.
        cx.asm.addi(t1, t0, out_ofs as i32 as i64);
        cx.asm.sts(f2, t1, 0);
        cx.asm.lds(f0, t1, 0);
        cx.asm.fadd(f1, f1, f0);
        cx.asm.addi(idx, idx, 4);
        cx.asm.li(t0, (self.elems * 4 - 4) as i64);
        cx.asm.branch(Cond::Lt, idx, t0, no_wrap);
        cx.asm.li(idx, 0);
        cx.asm.bind(no_wrap);
    }

    fn stats(&self) -> KernelStats {
        KernelStats {
            insts: 13.0,
            loads: 3.0,
            comm_loads: 1.0,
            partial_comm: 1.0,
            stores: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::measure;
    use super::*;

    #[test]
    fn alu_kernel_has_no_memory() {
        let m = measure(
            &AluKernel {
                ops: 10,
                parallel: true,
            },
            50,
            100_000,
        );
        assert_eq!(m.loads, 0);
        assert_eq!(m.stores, 0);
        assert_eq!(m.insts, 2 + 50 * 14 + 1); // jump+li, per-iter call/body/ret/addi/branch, halt
    }

    #[test]
    fn branchy_taken_rate_tracks_probability() {
        use super::super::testutil::driver_program;
        use crate::tracer::Tracer;
        let k = BranchyKernel {
            taken_prob: 0.8,
            words: 128,
        };
        let prog = driver_program(&k, 500);
        let (mut taken, mut total) = (0u64, 0u64);
        for d in Tracer::new(&prog, 1_000_000) {
            // Count only the data-driven diamond branch (Ne condition).
            if let nosq_isa::Inst::Branch { cond: Cond::Ne, .. } = d.rec.inst {
                total += 1;
                if d.rec.taken {
                    taken += 1;
                }
            }
        }
        assert_eq!(total, 500);
        let rate = taken as f64 / total as f64;
        assert!((rate - 0.8).abs() < 0.08, "taken rate {rate}");
    }

    #[test]
    fn fp_stencil_reload_communicates_partially() {
        let m = measure(&FpStencilKernel { elems: 64 }, 60, 100_000);
        assert_eq!(m.loads, 180);
        assert_eq!(m.comm_loads, 60, "only the Z reload communicates");
        assert_eq!(m.partial_comm, 60, "4-byte float comm is partial-word");
        assert_eq!(m.multi_source, 0);
    }
}
