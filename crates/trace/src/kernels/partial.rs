//! Partial-word communication kernels (paper §3.5).

use nosq_isa::{Extension, MemWidth};

use super::{EmitCtx, Kernel, KernelStats};

/// Wide-store/narrow-load pairs with varying shifts and widths. All are
/// single-source and therefore bypassable by SMB's shift & mask
/// instruction once the predictor has learned the shift amount.
///
/// Each pair contributes exactly one partial-word communicating load, so
/// the synthesizer can dose partial-word communication at single-load
/// granularity.
#[derive(Debug, Clone)]
pub struct WideNarrowKernel {
    /// Number of store/load pairs per call (1–4 distinct shift shapes,
    /// repeating beyond 4).
    pub pairs: usize,
}

impl Kernel for WideNarrowKernel {
    fn name(&self) -> String {
        format!("wide_narrow{}", self.pairs)
    }

    fn persistent_int(&self) -> usize {
        1
    }

    fn emit_init(&self, cx: &mut EmitCtx<'_>) {
        let base = cx.persistent[0];
        cx.asm.li(base, cx.base as i64);
    }

    fn emit_body(&self, cx: &mut EmitCtx<'_>) {
        let base = cx.persistent[0];
        let [v, a, c, ..] = cx.scratch;
        cx.asm.addi(v, v, 0x0101);
        for j in 0..self.pairs {
            let slot = (24 * j) as i32;
            match j % 4 {
                0 => {
                    // Wide store, narrow load at shift 4.
                    cx.asm.store(v, base, slot, MemWidth::B8);
                    cx.asm
                        .load(a, base, slot + 4, MemWidth::B2, Extension::Zero);
                }
                1 => {
                    // Wide store, byte load at shift 6, sign-extended.
                    cx.asm.store(v, base, slot, MemWidth::B8);
                    cx.asm
                        .load(a, base, slot + 6, MemWidth::B1, Extension::Sign);
                }
                2 => {
                    // Narrow store, same-width load (shift 0).
                    cx.asm.store(v, base, slot, MemWidth::B4);
                    cx.asm.load(a, base, slot, MemWidth::B4, Extension::Zero);
                }
                _ => {
                    // Half-word store, half-word load (shift 0).
                    cx.asm.store(v, base, slot, MemWidth::B2);
                    cx.asm.load(a, base, slot, MemWidth::B2, Extension::Sign);
                }
            }
            cx.asm.add(c, c, a);
        }
    }

    fn stats(&self) -> KernelStats {
        let p = self.pairs as f64;
        KernelStats {
            insts: 1.0 + 3.0 * p,
            loads: p,
            comm_loads: p,
            partial_comm: p,
            stores: p,
        }
    }
}

/// Two one-byte stores feeding a two-byte load — the `g721.e` pattern the
/// paper singles out (§4.2). SMB cannot combine two sources, so without
/// delay this load mis-predicts persistently; with delay it waits for the
/// youngest store to commit and reads the cache.
#[derive(Debug, Clone, Default)]
pub struct PartialStoreKernel;

impl Kernel for PartialStoreKernel {
    fn name(&self) -> String {
        "partial_store".to_owned()
    }

    fn persistent_int(&self) -> usize {
        1
    }

    fn emit_init(&self, cx: &mut EmitCtx<'_>) {
        let base = cx.persistent[0];
        cx.asm.li(base, cx.base as i64);
    }

    fn emit_body(&self, cx: &mut EmitCtx<'_>) {
        let base = cx.persistent[0];
        let [v, a, acc, ..] = cx.scratch;
        cx.asm.addi(v, v, 1);
        cx.asm.store(v, base, 0, MemWidth::B1);
        cx.asm.store(v, base, 1, MemWidth::B1);
        cx.asm.load(a, base, 0, MemWidth::B2, Extension::Zero); // multi-source
        cx.asm.add(acc, acc, a);
    }

    fn stats(&self) -> KernelStats {
        KernelStats {
            insts: 5.0,
            loads: 1.0,
            comm_loads: 1.0,
            partial_comm: 1.0,
            stores: 2.0,
        }
    }
}

/// Mixed structure-field packing: narrow stores of adjacent fields
/// followed by same-width reloads (bypassable, shift 0) and one wide
/// multi-source reload of the whole struct.
#[derive(Debug, Clone, Default)]
pub struct StructPackKernel;

impl Kernel for StructPackKernel {
    fn name(&self) -> String {
        "struct_pack".to_owned()
    }

    fn persistent_int(&self) -> usize {
        1
    }

    fn emit_init(&self, cx: &mut EmitCtx<'_>) {
        let base = cx.persistent[0];
        cx.asm.li(base, cx.base as i64);
    }

    fn emit_body(&self, cx: &mut EmitCtx<'_>) {
        let base = cx.persistent[0];
        let [v, a, b, acc, ..] = cx.scratch;
        cx.asm.addi(v, v, 3);
        cx.asm.store(v, base, 0, MemWidth::B1);
        cx.asm.store(v, base, 1, MemWidth::B1);
        cx.asm.store(v, base, 2, MemWidth::B2);
        cx.asm.store(v, base, 4, MemWidth::B4);
        cx.asm.load(a, base, 2, MemWidth::B2, Extension::Zero); // full, shift 0
        cx.asm.load(b, base, 4, MemWidth::B4, Extension::Sign); // full, shift 0
        cx.asm.add(acc, a, b);
        cx.asm.load(a, base, 0, MemWidth::B8, Extension::Zero); // multi-source
        cx.asm.add(acc, acc, a);
    }

    fn stats(&self) -> KernelStats {
        KernelStats {
            insts: 10.0,
            loads: 3.0,
            comm_loads: 3.0,
            partial_comm: 3.0,
            stores: 4.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::measure;
    use super::*;

    #[test]
    fn wide_narrow_is_all_single_source_partial() {
        let m = measure(&WideNarrowKernel { pairs: 3 }, 40, 100_000);
        assert_eq!(m.loads, 120);
        assert_eq!(m.comm_loads, 120);
        assert_eq!(m.partial_comm, 120);
        assert_eq!(m.multi_source, 0, "wide/narrow loads are single-source");
    }

    #[test]
    fn wide_narrow_pairs_scale_linearly() {
        for pairs in 1..=4 {
            let m = measure(&WideNarrowKernel { pairs }, 10, 100_000);
            assert_eq!(m.loads, 10 * pairs as u64);
            assert_eq!(m.partial_comm, 10 * pairs as u64);
        }
    }

    #[test]
    fn partial_store_is_multi_source() {
        let m = measure(&PartialStoreKernel, 40, 100_000);
        assert_eq!(m.loads, 40);
        assert_eq!(m.comm_loads, 40);
        assert_eq!(m.multi_source, 40);
    }

    #[test]
    fn struct_pack_mixes_sources() {
        let m = measure(&StructPackKernel, 30, 100_000);
        assert_eq!(m.loads, 90);
        assert_eq!(m.comm_loads, 90);
        assert_eq!(m.partial_comm, 90);
        assert_eq!(m.multi_source, 30); // only the wide reload
    }
}
