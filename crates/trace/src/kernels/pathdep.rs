//! Path-dependent communication kernels (paper §3.3).

use nosq_isa::{Cond, Extension, MemWidth, Reg};
use rand::Rng;

use super::{EmitCtx, Kernel, KernelStats};

/// A load whose bypassing distance is decided by a branch taken `noise`
/// conditional branches earlier.
///
/// One path stores the loaded slot first and a dummy second (distance 1);
/// the other stores them in the opposite order (distance 0). The two
/// paths store *different values*, so a wrong-distance bypass yields a
/// wrong value and a real squash (no value-coincidence forgiveness).
///
/// With `noise + 1` direction bits inside the predictor's path history the
/// pattern is perfectly learnable; with `noise` larger than the history
/// length the determining branch falls outside the window and the load
/// mis-predicts roughly half the time — exactly the "differentiating
/// signature longer than the predictor's history" pathology the paper's
/// delay mechanism targets.
#[derive(Debug, Clone)]
pub struct PathDepKernel {
    /// Number of noise branches between the determining branch and the load.
    pub noise: usize,
    /// Number of random 64-bit words backing the branch decisions.
    pub words: u64,
    /// Probability that the determining bit is 1. With an unlearnable
    /// `noise` this sets the mis-prediction rate of the load: ~0.5 for a
    /// fair bit ("hard"), ~`1 - bias` for a biased one ("flaky" — the
    /// loads the paper's delay mechanism suppresses at low cost).
    pub bias: f64,
}

impl PathDepKernel {
    /// A variant learnable by the default 8-bit-history predictor but
    /// not by a 4-bit one: its differentiating signature (determining
    /// branch + noise) spans six direction bits — the Figure-5 history
    /// sensitivity case.
    pub fn easy() -> PathDepKernel {
        PathDepKernel {
            noise: 5,
            words: 512,
            bias: 0.5,
        }
    }

    /// A variant whose signature exceeds the default history length:
    /// mis-predicts about half its occurrences.
    pub fn hard() -> PathDepKernel {
        PathDepKernel {
            noise: 14,
            words: 512,
            bias: 0.5,
        }
    }

    /// Unlearnable but heavily biased: mis-predicts a few percent of
    /// occurrences, so the confidence mechanism converts it to a delayed
    /// load (the dominant component of the paper's delayed-load mass).
    pub fn flaky() -> PathDepKernel {
        PathDepKernel::flaky_with_rate(0.04)
    }

    /// A flaky variant with an explicit per-occurrence distance-flip rate
    /// `r`: without delay it mis-predicts ≈ 2·r of its occurrences (each
    /// flip costs two mis-predictions — the flip and the flip back).
    pub fn flaky_with_rate(r: f64) -> PathDepKernel {
        PathDepKernel {
            noise: 14,
            words: 512,
            bias: (1.0 - r).clamp(0.5, 1.0),
        }
    }
}

impl Kernel for PathDepKernel {
    fn name(&self) -> String {
        format!("pathdep{}b{}", self.noise, (self.bias * 100.0) as u32)
    }

    fn persistent_int(&self) -> usize {
        2 // data base, word index (slots live below the data base)
    }

    fn emit_init(&self, cx: &mut EmitCtx<'_>) {
        let data = cx.persistent[0];
        let idx = cx.persistent[1];
        let words: Vec<u64> = (0..self.words)
            .map(|_| {
                let mut w: u64 = cx.rng.gen();
                // Bias the determining bit (bit 0).
                if cx.rng.gen_bool(self.bias) {
                    w |= 1;
                } else {
                    w &= !1;
                }
                // Noise bits are deterministic (always taken): they exist
                // to push the determining bit outside the predictor's
                // history window, not to add entropy — and constant bits
                // keep the load's folded history (and hence its single
                // confidence counter) stable, as in real loop bodies.
                for j in 1..=self.noise as u32 {
                    w |= 1 << j;
                }
                w
            })
            .collect();
        cx.asm.data_u64s(cx.base, &words);
        cx.asm.li(data, cx.base as i64);
        cx.asm.li(idx, 0);
    }

    fn emit_body(&self, cx: &mut EmitCtx<'_>) {
        let data = cx.persistent[0];
        let idx = cx.persistent[1];
        // The two slots live just below the data array.
        let (slot_x, slot_d) = (-16i64, -8i64);
        let [t0, w, t2, addr_a, addr_b, acc] = cx.scratch;
        let else_l = cx.asm.label();
        let join = cx.asm.label();
        let no_wrap = cx.asm.label();

        // w = random word for this iteration (read-only, never communicates).
        cx.asm.shli(t0, idx, 3);
        cx.asm.add(t0, data, t0);
        cx.asm.load(w, t0, 0, MemWidth::B8, Extension::Zero);

        // The determining branch selects the *order* of the two upcoming
        // stores by computing their target addresses; the stores
        // themselves sit right next to the load, so the communication is
        // still in flight when the load renames.
        cx.asm.andi(t2, w, 1);
        cx.asm.branch(Cond::Eq, t2, Reg::ZERO, else_l);
        cx.asm.addi(addr_a, data, slot_x); // X stored first: distance 1
        cx.asm.addi(addr_b, data, slot_d);
        cx.asm.jump(join);
        cx.asm.bind(else_l);
        cx.asm.addi(addr_a, data, slot_d);
        cx.asm.addi(addr_b, data, slot_x); // X stored second: distance 0
        cx.asm.bind(join);

        // Noise diamonds on higher bits of the same word, *between* the
        // determining branch and the load: with `noise` exceeding the
        // predictor's history length, the determining direction falls
        // outside the folded history at the load.
        for j in 1..=self.noise {
            let skip = cx.asm.label();
            cx.asm.shri(t2, w, j as i64);
            cx.asm.andi(t2, t2, 1);
            cx.asm.branch(Cond::Eq, t2, Reg::ZERO, skip);
            cx.asm.addi(acc, acc, 1);
            cx.asm.bind(skip);
        }

        // The two stores carry different values (w vs w+1), so a
        // wrong-distance bypass is a real value mismatch.
        cx.asm.store(w, addr_a, 0, MemWidth::B8);
        cx.asm.addi(t2, w, 1);
        cx.asm.store(t2, addr_b, 0, MemWidth::B8);

        // The path-dependent load, adjacent to its producing stores.
        cx.asm
            .load(t0, data, slot_x as i32, MemWidth::B8, Extension::Zero);
        cx.asm.add(acc, acc, t0);

        // Advance the word index with wrap.
        cx.asm.addi(idx, idx, 1);
        cx.asm.li(t0, self.words as i64);
        cx.asm.branch(Cond::Lt, idx, t0, no_wrap);
        cx.asm.li(idx, 0);
        cx.asm.bind(no_wrap);
    }

    fn stats(&self) -> KernelStats {
        KernelStats {
            insts: 16.0 + 3.0 * self.noise as f64,
            loads: 2.0,      // the data word + the path-dependent load
            comm_loads: 1.0, // only the path-dependent load
            partial_comm: 0.0,
            stores: 2.0,
        }
    }
}

/// A shared function whose load's bypassing distance depends on the call
/// site: site A stores the slot and calls; site B stores the slot plus a
/// dummy and calls. The call-PC bits in the path history distinguish the
/// two (paper §3.3's context-sensitive patterns).
#[derive(Debug, Clone, Default)]
pub struct CallSiteKernel;

impl Kernel for CallSiteKernel {
    fn name(&self) -> String {
        "callsite".to_owned()
    }

    fn persistent_int(&self) -> usize {
        1 // parity counter
    }

    fn emit_init(&self, cx: &mut EmitCtx<'_>) {
        let parity = cx.persistent[0];
        cx.asm.li(parity, 0);
    }

    fn emit_body(&self, cx: &mut EmitCtx<'_>) {
        let parity = cx.persistent[0];
        let [t0, val, acc, slots, _, inner_link] = cx.scratch;
        cx.asm.li(slots, cx.base as i64);

        // The callee: loads the slot. Emitted inline-skipped via jump.
        let callee = cx.asm.label();
        let after_callee = cx.asm.label();
        let site_b = cx.asm.label();
        let done = cx.asm.label();

        cx.asm.jump(after_callee);
        cx.asm.bind(callee);
        cx.asm.load(t0, slots, 0, MemWidth::B8, Extension::Zero);
        cx.asm.add(acc, acc, t0);
        cx.asm.ret_reg(inner_link);
        cx.asm.bind(after_callee);

        cx.asm.addi(parity, parity, 1);
        cx.asm.andi(t0, parity, 1);
        cx.asm.branch(Cond::Eq, t0, Reg::ZERO, site_b);
        // Site A: distance 0.
        cx.asm.addi(val, parity, 100);
        cx.asm.store(val, slots, 0, MemWidth::B8);
        cx.asm.call_linked(callee, inner_link);
        cx.asm.jump(done);
        // Site B: distance 1.
        cx.asm.bind(site_b);
        cx.asm.addi(val, parity, 200);
        cx.asm.store(val, slots, 0, MemWidth::B8);
        cx.asm.store(val, slots, 8, MemWidth::B8);
        cx.asm.call_linked(callee, inner_link);
        cx.asm.bind(done);
    }

    fn stats(&self) -> KernelStats {
        KernelStats {
            insts: 11.0,
            loads: 1.0,
            comm_loads: 1.0,
            partial_comm: 0.0,
            stores: 1.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{driver_program, measure};
    use super::*;
    use crate::tracer::Tracer;
    use nosq_isa::InstClass;

    #[test]
    fn pathdep_distances_follow_the_determining_bit() {
        let k = PathDepKernel {
            noise: 2,
            words: 64,
            bias: 0.5,
        };
        let prog = driver_program(&k, 100);
        let mut dist_counts = [0u64; 3];
        for d in Tracer::new(&prog, 200_000) {
            if d.class == InstClass::Load {
                if let Some(dep) = d.mem_dep {
                    if dep.store_distance < 2 {
                        dist_counts[dep.store_distance as usize] += 1;
                    } else {
                        dist_counts[2] += 1;
                    }
                }
            }
        }
        // Both distances occur; nothing beyond distance 1.
        assert!(dist_counts[0] > 10, "distance-0 loads: {dist_counts:?}");
        assert!(dist_counts[1] > 10, "distance-1 loads: {dist_counts:?}");
        assert_eq!(dist_counts[2], 0, "unexpected distances: {dist_counts:?}");
    }

    #[test]
    fn pathdep_loads_split_comm_noncomm() {
        let k = PathDepKernel::easy();
        let m = measure(&k, 50, 100_000);
        assert_eq!(m.loads, 100);
        assert_eq!(m.comm_loads, 50);
        assert_eq!(m.multi_source, 0);
    }

    #[test]
    fn callsite_alternates_distances() {
        let k = CallSiteKernel;
        let prog = driver_program(&k, 40);
        let mut seen = std::collections::HashSet::new();
        for d in Tracer::new(&prog, 100_000) {
            if d.class == InstClass::Load {
                if let Some(dep) = d.mem_dep {
                    seen.insert(dep.store_distance);
                }
            }
        }
        assert_eq!(seen, [0u64, 1u64].into_iter().collect());
    }
}
