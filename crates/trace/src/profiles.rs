//! The 47 benchmark profiles of paper Table 5.
//!
//! Each profile records the benchmark's measured communication signature
//! from the paper — in-window store-load communication (% of committed
//! loads, 128-instruction window), partial-word communication, bypassing
//! mis-prediction rates with and without delay, % of loads delayed — plus
//! the baseline IPC printed in Figure 2. The synthesizer
//! ([`crate::synth`]) uses the *left-hand* columns (and IPC) as
//! calibration targets; the right-hand columns are reproduction targets
//! that the simulator must *measure*, and are kept here for the Table-5
//! harness to print side by side.

/// Benchmark suite, as grouped in the paper's tables and figures.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Suite {
    /// MediaBench (18 programs).
    MediaBench,
    /// SPECint 2000 (16 programs).
    SpecInt,
    /// SPECfp 2000 (13 programs).
    SpecFp,
}

impl Suite {
    /// All suites, in the paper's table/figure order.
    pub const fn all() -> [Suite; 3] {
        [Suite::MediaBench, Suite::SpecInt, Suite::SpecFp]
    }
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::MediaBench => write!(f, "MediaBench"),
            Suite::SpecInt => write!(f, "SPECint"),
            Suite::SpecFp => write!(f, "SPECfp"),
        }
    }
}

/// One benchmark's communication profile (paper Table 5 + Figure 2 IPC).
#[derive(Copy, Clone, Debug)]
pub struct Profile {
    /// Benchmark name as printed in the paper.
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// % of committed loads with in-window communication (Table 5 "total").
    pub comm_pct: f64,
    /// % of committed loads with partial-word in-window communication.
    pub partial_pct: f64,
    /// Paper's bypassing mis-predictions per 10k loads, no delay.
    pub mispred_no_delay: f64,
    /// Paper's bypassing mis-predictions per 10k loads, with delay.
    pub mispred_delay: f64,
    /// Paper's % of committed loads delayed.
    pub delayed_pct: f64,
    /// Baseline (ideal scheduling) IPC from Figure 2.
    pub baseline_ipc: f64,
}

impl Profile {
    /// All 47 profiles in paper order.
    pub fn all() -> &'static [Profile] {
        ALL
    }

    /// Looks a profile up by its paper name.
    pub fn by_name(name: &str) -> Option<&'static Profile> {
        ALL.iter().find(|p| p.name == name)
    }

    /// The 18 benchmarks selected for Figures 3-5.
    pub fn selected() -> Vec<&'static Profile> {
        SELECTED
            .iter()
            .map(|n| Profile::by_name(n).expect("selected profile exists"))
            .collect()
    }

    /// All profiles in a suite.
    pub fn suite(suite: Suite) -> impl Iterator<Item = &'static Profile> {
        ALL.iter().filter(move |p| p.suite == suite)
    }

    /// Derived knob: how memory-latency-bound the benchmark is (0 = not at
    /// all, 1 = dominated), inferred from the baseline IPC.
    pub fn mem_intensity(&self) -> f64 {
        ((1.6 - self.baseline_ipc) / 2.2).clamp(0.0, 1.0)
    }

    /// Whether the workload should use floating-point kernels.
    pub fn is_float(&self) -> bool {
        self.suite == Suite::SpecFp
            || self.name.starts_with("mesa")
            || self.name.starts_with("epic")
    }
}

const SELECTED: &[&str] = &[
    "g721.e", "gs.d", "mesa.o", "mpeg2.d", "pegwit.e", // MediaBench
    "eon.k", "gap", "gzip", "perl.s", "vortex", "vpr.p", // SPECint
    "applu", "apsi", "sixtrack", "wupwise", // SPECfp
];

macro_rules! profile {
    ($name:literal, $suite:ident, $comm:literal, $partial:literal,
     $mnd:literal, $md:literal, $del:literal, $ipc:literal) => {
        Profile {
            name: $name,
            suite: Suite::$suite,
            comm_pct: $comm,
            partial_pct: $partial,
            mispred_no_delay: $mnd,
            mispred_delay: $md,
            delayed_pct: $del,
            baseline_ipc: $ipc,
        }
    };
}

#[rustfmt::skip]
#[allow(clippy::approx_constant)] // gsm.d's baseline IPC really is 3.14
const ALL: &[Profile] = &[
    // MediaBench (Table 5 upper block).
    profile!("adpcm.d",  MediaBench,  0.0,  0.0,  0.2,  0.2, 0.0, 2.00),
    profile!("adpcm.e",  MediaBench,  0.0,  0.0,  0.2,  0.2, 0.0, 1.47),
    profile!("epic.e",   MediaBench,  8.4,  1.9,  5.3,  1.0, 0.3, 2.99),
    profile!("epic.d",   MediaBench, 17.0,  5.0,  8.9,  5.3, 2.7, 2.23),
    profile!("g721.d",   MediaBench,  6.3,  4.7,  0.0,  0.0, 0.0, 2.48),
    profile!("g721.e",   MediaBench,  6.9,  5.8, 40.9,  0.7, 0.4, 2.33),
    profile!("gs.d",     MediaBench, 12.3,  8.0, 56.8,  4.5, 3.3, 2.57),
    profile!("gsm.d",    MediaBench,  1.4,  0.3,  2.1,  2.3, 0.2, 3.14),
    profile!("gsm.e",    MediaBench,  1.1,  0.5,  0.4,  0.1, 0.0, 3.41),
    profile!("jpeg.d",   MediaBench,  1.1,  0.2,  2.2,  1.9, 1.6, 2.55),
    profile!("jpeg.e",   MediaBench, 10.8,  0.2,  8.0,  3.3, 1.8, 2.49),
    profile!("mesa.m",   MediaBench, 42.7, 18.6, 84.5,  7.9, 5.2, 2.61),
    profile!("mesa.o",   MediaBench, 48.0, 19.0, 76.3,  7.7, 5.8, 2.86),
    profile!("mesa.t",   MediaBench, 32.3, 15.4, 51.1,  7.0, 4.5, 2.72),
    profile!("mpeg2.d",  MediaBench, 24.3,  0.4,  2.0,  0.8, 0.4, 3.41),
    profile!("mpeg2.e",  MediaBench,  4.4,  0.6,  0.7,  0.3, 0.1, 2.83),
    profile!("pegwit.d", MediaBench,  6.4,  6.3,  6.2,  2.4, 1.1, 2.03),
    profile!("pegwit.e", MediaBench,  5.6,  4.7,  7.1,  2.5, 1.2, 2.05),
    // SPECint (middle block).
    profile!("bzip2",    SpecInt,     8.8,  5.9, 24.6,  3.8, 5.3, 2.14),
    profile!("crafty",   SpecInt,     2.8,  1.9, 17.5,  5.7, 3.1, 2.01),
    profile!("eon.c",    SpecInt,    20.4,  3.2, 61.2, 10.8, 4.3, 2.13),
    profile!("eon.k",    SpecInt,    15.4,  1.7, 56.6, 13.9, 6.2, 1.89),
    profile!("eon.r",    SpecInt,    17.3,  2.5, 71.4, 14.0, 6.1, 2.01),
    profile!("gap",      SpecInt,     8.1,  0.2,  4.5,  1.3, 1.5, 1.24),
    profile!("gcc",      SpecInt,     7.7,  1.4, 17.4, 10.4, 6.3, 1.54),
    profile!("gzip",     SpecInt,    15.0,  8.7,  7.3,  2.5, 1.3, 2.04),
    profile!("mcf",      SpecInt,     0.9,  0.1, 27.7,  5.0, 2.7, 0.22),
    profile!("parser",   SpecInt,     8.2,  2.6, 22.4,  8.4, 4.2, 1.34),
    profile!("perl.d",   SpecInt,     9.9,  1.9,  4.5,  2.1, 1.3, 1.60),
    profile!("perl.s",   SpecInt,    11.5,  2.7,  4.9,  2.4, 1.5, 1.66),
    profile!("twolf",    SpecInt,     6.3,  5.0, 21.4,  4.9, 2.5, 1.50),
    profile!("vortex",   SpecInt,    17.9,  4.7, 12.1,  2.9, 1.7, 2.33),
    profile!("vpr.p",    SpecInt,     6.3,  4.5, 55.0,  7.9, 4.6, 1.78),
    profile!("vpr.r",    SpecInt,    17.0,  5.6, 34.1, 12.8, 5.2, 1.06),
    // SPECfp (lower block).
    profile!("ammp",     SpecFp,      4.1,  0.1,  4.4,  2.0, 0.8, 0.92),
    profile!("applu",    SpecFp,      4.9,  0.0,  0.1,  0.1, 0.1, 1.47),
    profile!("apsi",     SpecFp,      3.8,  0.5,  4.7,  0.3, 1.3, 1.58),
    profile!("art",      SpecFp,      1.4,  0.4,  0.1,  0.1, 0.0, 0.46),
    profile!("equake",   SpecFp,      3.2,  0.1,  0.7,  0.1, 0.1, 0.69),
    profile!("facerec",  SpecFp,      0.8,  0.6,  0.2,  0.1, 0.3, 1.81),
    profile!("galgel",   SpecFp,      0.5,  0.0,  0.5,  0.2, 0.1, 2.59),
    profile!("lucas",    SpecFp,      0.0,  0.0,  0.0,  0.0, 0.0, 2.56),
    profile!("mesa",     SpecFp,     12.1,  1.7,  2.2,  0.2, 3.0, 2.97),
    profile!("mgrid",    SpecFp,      1.2,  0.0,  0.1,  0.0, 0.0, 2.60),
    profile!("sixtrack", SpecFp,      9.4,  1.0, 59.2, 10.7, 4.2, 2.32),
    profile!("swim",     SpecFp,      2.9,  0.0,  0.3,  0.1, 0.1, 1.84),
    profile!("wupwise",  SpecFp,      5.5,  0.8,  1.8,  0.2, 0.1, 2.49),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_47_profiles_present() {
        assert_eq!(Profile::all().len(), 47);
        assert_eq!(Profile::suite(Suite::MediaBench).count(), 18);
        assert_eq!(Profile::suite(Suite::SpecInt).count(), 16);
        assert_eq!(Profile::suite(Suite::SpecFp).count(), 13);
    }

    #[test]
    fn suite_all_covers_every_profile_in_order() {
        assert_eq!(
            Suite::all(),
            [Suite::MediaBench, Suite::SpecInt, Suite::SpecFp]
        );
        let covered: usize = Suite::all()
            .into_iter()
            .map(|s| Profile::suite(s).count())
            .sum();
        assert_eq!(covered, Profile::all().len());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Profile::all().iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 47);
    }

    #[test]
    fn selected_set_matches_figures() {
        let sel = Profile::selected();
        assert_eq!(sel.len(), 15);
        assert!(sel.iter().any(|p| p.name == "sixtrack"));
        assert!(sel.iter().any(|p| p.name == "mesa.o"));
    }

    #[test]
    fn partial_never_exceeds_total() {
        for p in Profile::all() {
            assert!(
                p.partial_pct <= p.comm_pct + 1e-9,
                "{}: partial {} > total {}",
                p.name,
                p.partial_pct,
                p.comm_pct
            );
        }
    }

    #[test]
    fn mem_intensity_ordering() {
        let mcf = Profile::by_name("mcf").unwrap();
        let mesa = Profile::by_name("mesa").unwrap();
        assert!(mcf.mem_intensity() > 0.6);
        assert!(mesa.mem_intensity() < 0.1);
        assert!(mcf.mem_intensity() > mesa.mem_intensity());
    }
}
