//! The dependence oracle: an exact store→load dependence graph derived
//! from a recorded trace in one pass.
//!
//! The tracer already annotates each load with its *youngest* producing
//! store ([`MemDep`](crate::MemDep)); that is all the timing models
//! need. Auditing the pipeline needs more: the exact producer *set* per
//! byte, so a bypass from the wrong store, a mis-filtered re-execution
//! or a phantom squash can be pinned to a specific store SSN. This
//! module replays a dynamic instruction stream through the same paged
//! [`LastWriterMap`] the tracer uses (via
//! [`LastWriterMap::scan_bytes`]) and emits a [`DependenceGraph`]:
//!
//! * one [`LoadDep`] per committed load, carrying the producing store
//!   SSN of every byte read, the youngest producer, dependence
//!   distances, and the full/partial/multi-source classification;
//! * one [`StoreNode`] per committed store (SSN, PC, address, width);
//! * [store-set clusters](DependenceGraph::store_sets): static store
//!   PCs related by feeding the same loads, computed with a union-find
//!   over the producer sets (the static structure a store-set predictor
//!   would learn).
//!
//! The graph is the ground truth the audit observer (`nosq-audit`)
//! cross-checks the live pipeline against, and [Table 5
//! stats](crate::analyze::analyze_program) are now derived from it via
//! [`DependenceGraph::comm_stats`] instead of a second last-writer walk.

use nosq_isa::{InstClass, Program};

use crate::analyze::CommStats;
use crate::lastwriter::{ByteWriter, LastWriterMap};
use crate::record::{Coverage, DynInst};
use crate::tracer::{TraceBuffer, Tracer};

/// One committed store in the dynamic stream.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StoreNode {
    /// Dynamic sequence number.
    pub seq: u64,
    /// 1-based store sequence number (`store_index + 1`).
    pub ssn: u64,
    /// Static PC.
    pub pc: u64,
    /// Effective address.
    pub addr: u64,
    /// Access width in bytes.
    pub width: u8,
}

/// One committed load with its exact producer set.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LoadDep {
    /// Dynamic sequence number.
    pub seq: u64,
    /// Static PC.
    pub pc: u64,
    /// Effective address.
    pub addr: u64,
    /// Access width in bytes.
    pub width: u8,
    /// Architectural value the load must produce.
    pub value: u64,
    /// Stores renamed before this load (so `SSNrename` at the load).
    pub stores_before: u64,
    /// Producing store SSN per byte read, in address order; 0 means the
    /// byte comes from initial memory. Slots past `width` are 0.
    pub byte_ssns: [u64; 8],
    /// SSN of the youngest producing store over all bytes (0 if none).
    pub youngest_ssn: u64,
    /// Distance in dynamic stores to the youngest producer
    /// (`stores_before - youngest_ssn`); meaningful when communicating.
    pub store_distance: u64,
    /// Distance in dynamic instructions to the youngest producer;
    /// meaningful when communicating.
    pub inst_distance: u64,
    /// Whether the youngest producer covers every byte read.
    pub coverage: Coverage,
    /// Whether either side of the communication is sub-8-byte.
    pub partial_word: bool,
    /// `load.addr - youngest_store.addr` (the SMB shift amount);
    /// meaningful for [`Coverage::Full`].
    pub shift: u8,
}

impl LoadDep {
    /// Whether any read byte was produced by a traced store.
    pub fn communicates(&self) -> bool {
        self.youngest_ssn != 0
    }

    /// Whether the load communicates within a `window`-instruction
    /// window (the criterion Table 5 and the pipeline's `comm_loads`
    /// counter use).
    pub fn in_window(&self, window: u64) -> bool {
        self.communicates() && self.inst_distance < window
    }

    /// The distinct producing store SSNs, ascending (empty when the
    /// load reads only initial memory).
    pub fn producers(&self) -> Vec<u64> {
        let mut ssns: Vec<u64> = self.byte_ssns.iter().copied().filter(|&s| s != 0).collect();
        ssns.sort_unstable();
        ssns.dedup();
        ssns
    }
}

/// A cluster of static store PCs related by feeding the same loads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreSet {
    /// Member store PCs, ascending.
    pub store_pcs: Vec<u64>,
    /// Load PCs consuming from the cluster, ascending.
    pub load_pcs: Vec<u64>,
}

/// The exact store→load dependence graph of one dynamic stream. See the
/// module docs.
#[derive(Clone, Debug, Default)]
pub struct DependenceGraph {
    insts: u64,
    loads: Vec<LoadDep>,
    stores: Vec<StoreNode>,
    store_sets: Vec<StoreSet>,
}

impl DependenceGraph {
    /// Builds the graph from a recorded trace.
    pub fn from_trace(trace: &TraceBuffer) -> DependenceGraph {
        DependenceGraph::from_insts(trace.insts())
    }

    /// Builds the graph by tracing `program` live (one functional pass).
    pub fn from_program(program: &Program, max_insts: u64) -> DependenceGraph {
        let mut b = DepGraphBuilder::new();
        for d in Tracer::new(program, max_insts) {
            b.push(&d);
        }
        b.finish()
    }

    /// Builds the graph from any dynamic instruction slice.
    pub fn from_insts(insts: &[DynInst]) -> DependenceGraph {
        let mut b = DepGraphBuilder::new();
        for d in insts {
            b.push(d);
        }
        b.finish()
    }

    /// Dynamic instructions analyzed.
    pub fn insts(&self) -> u64 {
        self.insts
    }

    /// Every committed load, in program order.
    pub fn loads(&self) -> &[LoadDep] {
        &self.loads
    }

    /// Every committed store, in program order (index = SSN − 1).
    pub fn stores(&self) -> &[StoreNode] {
        &self.stores
    }

    /// The store-set clusters, ordered by smallest member PC.
    pub fn store_sets(&self) -> &[StoreSet] {
        &self.store_sets
    }

    /// Looks up a load by dynamic sequence number.
    pub fn load_by_seq(&self, seq: u64) -> Option<&LoadDep> {
        self.loads
            .binary_search_by_key(&seq, |l| l.seq)
            .ok()
            .map(|i| &self.loads[i])
    }

    /// Looks up a store by its 1-based SSN.
    pub fn store_by_ssn(&self, ssn: u64) -> Option<&StoreNode> {
        if ssn == 0 {
            return None;
        }
        self.stores.get(ssn as usize - 1)
    }

    /// Derives the Table 5 communication signature for a
    /// `window`-instruction window. Byte-identical to the pre-oracle
    /// streaming measurement (`analyze_program` regression-tests this).
    pub fn comm_stats(&self, window: u64) -> CommStats {
        let mut stats = CommStats {
            insts: self.insts,
            loads: self.loads.len() as u64,
            stores: self.stores.len() as u64,
            window,
            ..CommStats::default()
        };
        for l in &self.loads {
            if l.in_window(window) {
                stats.comm_loads += 1;
                if l.partial_word {
                    stats.partial_comm += 1;
                }
                if l.coverage == Coverage::Partial {
                    stats.multi_source += 1;
                }
            }
        }
        stats
    }
}

/// Incremental [`DependenceGraph`] construction over a dynamic
/// instruction stream (e.g. straight off a [`Tracer`]).
pub struct DepGraphBuilder {
    map: LastWriterMap,
    insts: u64,
    loads: Vec<LoadDep>,
    stores: Vec<StoreNode>,
    scratch: [Option<ByteWriter>; 8],
}

impl Default for DepGraphBuilder {
    fn default() -> DepGraphBuilder {
        DepGraphBuilder::new()
    }
}

impl DepGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> DepGraphBuilder {
        DepGraphBuilder {
            map: LastWriterMap::new(),
            insts: 0,
            loads: Vec::new(),
            stores: Vec::new(),
            scratch: [None; 8],
        }
    }

    /// Feeds the next dynamic instruction, in program order.
    pub fn push(&mut self, d: &DynInst) {
        self.insts += 1;
        match d.class {
            InstClass::Store => {
                let width = d.rec.inst.mem_width().expect("store has width").bytes();
                let float32 = matches!(d.rec.inst, nosq_isa::Inst::Store { float32: true, .. });
                self.stores.push(StoreNode {
                    seq: d.seq,
                    ssn: d.stores_before + 1,
                    pc: d.rec.pc,
                    addr: d.rec.addr,
                    width: width as u8,
                });
                self.map.record_store(
                    d.rec.addr,
                    width,
                    ByteWriter {
                        store_seq: d.seq,
                        store_index: d.stores_before,
                        store_addr: d.rec.addr,
                        store_width: width as u8,
                        store_float32: float32,
                    },
                );
            }
            InstClass::Load => {
                let width = d.rec.inst.mem_width().expect("load has width").bytes();
                self.map.scan_bytes(d.rec.addr, width, &mut self.scratch);
                let mut byte_ssns = [0u64; 8];
                let mut youngest: Option<ByteWriter> = None;
                let mut all_same = true;
                let mut any_missing = false;
                for (i, w) in self.scratch.iter().take(width as usize).enumerate() {
                    match w {
                        Some(w) => {
                            byte_ssns[i] = w.store_index + 1;
                            match youngest {
                                None => youngest = Some(*w),
                                Some(y) if w.store_seq != y.store_seq => {
                                    all_same = false;
                                    if w.store_seq > y.store_seq {
                                        youngest = Some(*w);
                                    }
                                }
                                Some(_) => {}
                            }
                        }
                        None => any_missing = true,
                    }
                }
                let (youngest_ssn, store_distance, inst_distance, shift, partial_word) =
                    match youngest {
                        Some(y) => (
                            y.store_index + 1,
                            d.stores_before - (y.store_index + 1),
                            d.seq - y.store_seq,
                            d.rec.addr.wrapping_sub(y.store_addr) as u8,
                            y.store_width < 8 || width < 8,
                        ),
                        None => (0, 0, 0, 0, false),
                    };
                let coverage = if all_same && !any_missing {
                    Coverage::Full
                } else {
                    Coverage::Partial
                };
                // The tracer's summarizing scan and the per-byte oracle
                // pass must agree on the youngest producer.
                if let Some(dep) = d.mem_dep {
                    debug_assert_eq!(dep.store_distance, store_distance);
                    debug_assert_eq!(dep.inst_distance, inst_distance);
                    debug_assert_eq!(dep.shift, shift);
                }
                self.loads.push(LoadDep {
                    seq: d.seq,
                    pc: d.rec.pc,
                    addr: d.rec.addr,
                    width: width as u8,
                    value: d.rec.load_value,
                    stores_before: d.stores_before,
                    byte_ssns,
                    youngest_ssn,
                    store_distance,
                    inst_distance,
                    coverage,
                    partial_word,
                    shift,
                });
            }
            _ => {}
        }
    }

    /// Finishes the pass: clusters store sets and returns the graph.
    pub fn finish(self) -> DependenceGraph {
        let store_sets = cluster_store_sets(&self.loads, &self.stores);
        DependenceGraph {
            insts: self.insts,
            loads: self.loads,
            stores: self.stores,
            store_sets,
        }
    }
}

/// Union-find clustering of static store PCs: two store PCs land in one
/// cluster when some load (or two dynamic instances of one static load)
/// consumes bytes from both. Deterministic: PCs are processed in sorted
/// order and clusters are emitted sorted by smallest member.
fn cluster_store_sets(loads: &[LoadDep], stores: &[StoreNode]) -> Vec<StoreSet> {
    // Distinct producing-store PCs, sorted; indices into this vector are
    // the union-find element ids.
    let mut pcs: Vec<u64> = Vec::new();
    for l in loads {
        for &ssn in &l.byte_ssns {
            if ssn != 0 {
                pcs.push(stores[ssn as usize - 1].pc);
            }
        }
    }
    pcs.sort_unstable();
    pcs.dedup();
    let pc_id = |pc: u64| pcs.binary_search(&pc).expect("producer pc indexed");

    let mut parent: Vec<usize> = (0..pcs.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    fn union(parent: &mut [usize], a: usize, b: usize) {
        let (ra, rb) = (find(parent, a), find(parent, b));
        // Smaller root wins so representatives are stable.
        if ra < rb {
            parent[rb] = ra;
        } else {
            parent[ra] = rb;
        }
    }

    // Producers of one dynamic load belong together; dynamic instances
    // of one static load link their producers through `load_anchor`.
    let mut load_anchor: Vec<(u64, usize)> = Vec::new(); // (load pc, element)
    let mut load_members: Vec<(u64, u64)> = Vec::new(); // (store pc elem root later, load pc) collected after unions
    for l in loads {
        let producers = l.producers();
        if producers.is_empty() {
            continue;
        }
        let first = pc_id(stores[producers[0] as usize - 1].pc);
        for &ssn in &producers[1..] {
            union(&mut parent, first, pc_id(stores[ssn as usize - 1].pc));
        }
        match load_anchor.binary_search_by_key(&l.pc, |&(pc, _)| pc) {
            Ok(i) => union(&mut parent, load_anchor[i].1, first),
            Err(i) => load_anchor.insert(i, (l.pc, first)),
        }
        load_members.push((pcs[first], l.pc));
    }

    // Emit clusters keyed by root, sorted by smallest member PC (which
    // is the root's PC, since smaller ids win unions and pcs is sorted).
    let mut sets: Vec<StoreSet> = Vec::new();
    let mut root_of: Vec<usize> = Vec::with_capacity(pcs.len());
    for i in 0..pcs.len() {
        root_of.push(find(&mut parent, i));
    }
    let mut roots: Vec<usize> = root_of.clone();
    roots.sort_unstable();
    roots.dedup();
    for &r in &roots {
        let store_pcs: Vec<u64> = (0..pcs.len())
            .filter(|&i| root_of[i] == r)
            .map(|i| pcs[i])
            .collect();
        let mut load_pcs: Vec<u64> = load_members
            .iter()
            .filter(|&&(anchor_pc, _)| root_of[pc_id(anchor_pc)] == r)
            .map(|&(_, load_pc)| load_pc)
            .collect();
        load_pcs.sort_unstable();
        load_pcs.dedup();
        sets.push(StoreSet {
            store_pcs,
            load_pcs,
        });
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use nosq_isa::{Assembler, Extension, MemWidth, Reg};

    fn graph(asm: Assembler, max: u64) -> DependenceGraph {
        let prog = asm.finish();
        DependenceGraph::from_program(&prog, max)
    }

    #[test]
    fn per_byte_producers_are_exact() {
        let mut asm = Assembler::new();
        let (b, v) = (Reg::int(1), Reg::int(2));
        asm.li(b, 0x1000);
        asm.li(v, 0x1122_3344_5566_7788);
        asm.store(v, b, 0, MemWidth::B8); // SSN 1
        asm.store(v, b, 2, MemWidth::B2); // SSN 2 overwrites bytes 2..4
        asm.load(v, b, 0, MemWidth::B8, Extension::Zero);
        asm.halt();
        let g = graph(asm, 100);
        assert_eq!(g.loads().len(), 1);
        let l = &g.loads()[0];
        assert_eq!(l.byte_ssns, [1, 1, 2, 2, 1, 1, 1, 1]);
        assert_eq!(l.youngest_ssn, 2);
        assert_eq!(l.producers(), vec![1, 2]);
        assert_eq!(l.coverage, Coverage::Partial);
        assert_eq!(g.store_by_ssn(2).unwrap().width, 2);
        assert_eq!(g.load_by_seq(l.seq).unwrap(), l);
    }

    #[test]
    fn uncommunicating_load_has_empty_producer_set() {
        let mut asm = Assembler::new();
        let (b, v) = (Reg::int(1), Reg::int(2));
        asm.data_u64s(0x1000, &[42]);
        asm.li(b, 0x1000);
        asm.load(v, b, 0, MemWidth::B8, Extension::Zero);
        asm.halt();
        let g = graph(asm, 100);
        let l = &g.loads()[0];
        assert!(!l.communicates());
        assert!(l.producers().is_empty());
        assert_eq!(l.value, 42);
        assert!(g.store_sets().is_empty());
    }

    #[test]
    fn store_sets_cluster_through_shared_loads() {
        // Two stores at distinct PCs feed one load (multi-source): one
        // cluster. A third, unrelated store/load pair forms another.
        let mut asm = Assembler::new();
        let (b, v) = (Reg::int(1), Reg::int(2));
        asm.li(b, 0x1000);
        asm.li(v, 0x7f);
        asm.store(v, b, 0, MemWidth::B1);
        asm.store(v, b, 1, MemWidth::B1);
        asm.load(v, b, 0, MemWidth::B2, Extension::Zero);
        asm.store(v, b, 0x40, MemWidth::B8);
        asm.load(v, b, 0x40, MemWidth::B8, Extension::Zero);
        asm.halt();
        let g = graph(asm, 100);
        assert_eq!(g.store_sets().len(), 2);
        assert_eq!(g.store_sets()[0].store_pcs.len(), 2);
        assert_eq!(g.store_sets()[0].load_pcs.len(), 1);
        assert_eq!(g.store_sets()[1].store_pcs.len(), 1);
    }

    #[test]
    fn graph_matches_tracer_annotations_on_synthetic_workload() {
        use crate::profiles::Profile;
        use crate::synth::synthesize;
        let profile = Profile::by_name("gzip").unwrap();
        let prog = synthesize(profile, 42);
        let trace = TraceBuffer::record(&prog, 20_000);
        let g = DependenceGraph::from_trace(&trace);
        assert_eq!(g.insts(), trace.len() as u64);
        let mut li = 0usize;
        for d in trace.insts() {
            if d.class != InstClass::Load {
                continue;
            }
            let l = &g.loads()[li];
            li += 1;
            assert_eq!(l.seq, d.seq);
            match d.mem_dep {
                Some(dep) => {
                    assert_eq!(l.youngest_ssn, d.dep_ssn().unwrap());
                    assert_eq!(l.store_distance, dep.store_distance);
                    assert_eq!(l.inst_distance, dep.inst_distance);
                    assert_eq!(l.coverage, dep.coverage);
                    assert_eq!(l.partial_word, d.is_partial_word_comm());
                }
                None => assert!(!l.communicates()),
            }
        }
        assert_eq!(li, g.loads().len());
        assert!(!g.store_sets().is_empty());
    }
}
