//! Streaming functional tracer with online dependence analysis.

use nosq_isa::{ArchState, InstClass, Program};

use crate::lastwriter::{ByteWriter, LastWriterMap};
use crate::record::{Coverage, DynInst, MemDep};

/// The tracer's last-writer map slot: owned by default, borrowed from a
/// reusable arena via [`Tracer::with_arena`].
enum MapSlot<'m> {
    Owned(LastWriterMap),
    Borrowed(&'m mut LastWriterMap),
}

impl MapSlot<'_> {
    fn get(&self) -> &LastWriterMap {
        match self {
            MapSlot::Owned(m) => m,
            MapSlot::Borrowed(m) => m,
        }
    }

    fn get_mut(&mut self) -> &mut LastWriterMap {
        match self {
            MapSlot::Owned(m) => m,
            MapSlot::Borrowed(m) => m,
        }
    }
}

/// Streams the correct-path dynamic instruction sequence of a program,
/// annotating each load with its ground-truth producing store.
///
/// The tracer maintains a per-byte last-writer map (the paged,
/// epoch-stamped [`LastWriterMap`]), so it reports the youngest older
/// store writing any byte a load reads, the distance to it in dynamic
/// stores and instructions, whether it covers the whole load
/// ([`Coverage`]), and the byte shift — everything the bypassing
/// predictor's oracle variant and the verification logic need.
///
/// A tracer allocates its map internally by default; callers that trace
/// many programs back to back (the lab's campaign workers, the bench
/// harnesses) pass a persistent map through [`Tracer::with_arena`] so
/// each new trace starts with an O(1) epoch reset instead of fresh
/// allocations.
///
/// ```
/// use nosq_isa::{Assembler, Reg, MemWidth, Extension};
/// use nosq_trace::Tracer;
///
/// let mut asm = Assembler::new();
/// let (b, v) = (Reg::int(1), Reg::int(2));
/// asm.li(b, 0x1000);
/// asm.li(v, 7);
/// asm.store(v, b, 0, MemWidth::B8);
/// asm.load(v, b, 0, MemWidth::B8, Extension::Zero);
/// asm.halt();
/// let prog = asm.finish();
///
/// let insts: Vec<_> = Tracer::new(&prog, 100).collect();
/// let load = insts
///     .iter()
///     .find(|d| d.class == nosq_isa::InstClass::Load)
///     .unwrap();
/// let dep = load.mem_dep.unwrap();
/// assert_eq!(dep.store_distance, 0); // most recent store
/// assert_eq!(dep.inst_distance, 1);
/// ```
pub struct Tracer<'p> {
    program: &'p Program,
    state: ArchState,
    seq: u64,
    stores: u64,
    last_writer: MapSlot<'p>,
    max_insts: u64,
    error: Option<nosq_isa::ExecError>,
}

impl<'p> Tracer<'p> {
    /// Creates a tracer that yields at most `max_insts` dynamic
    /// instructions (the halt instruction, if reached, is yielded and
    /// ends the stream).
    pub fn new(program: &'p Program, max_insts: u64) -> Tracer<'p> {
        Tracer::build(program, max_insts, MapSlot::Owned(LastWriterMap::new()))
    }

    /// Creates a tracer that borrows a reusable [`LastWriterMap`]
    /// instead of allocating one. The map is [reset](LastWriterMap::reset)
    /// (O(1)) before tracing starts, so any previous program's writers
    /// are invisible; its page buffers are recycled.
    pub fn with_arena(
        program: &'p Program,
        max_insts: u64,
        map: &'p mut LastWriterMap,
    ) -> Tracer<'p> {
        map.reset();
        Tracer::build(program, max_insts, MapSlot::Borrowed(map))
    }

    fn build(program: &'p Program, max_insts: u64, last_writer: MapSlot<'p>) -> Tracer<'p> {
        Tracer {
            program,
            state: ArchState::new(program),
            seq: 0,
            stores: 0,
            last_writer,
            max_insts,
            error: None,
        }
    }

    /// The architectural state reached so far (for end-state checks).
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// An execution error, if one stopped the stream.
    pub fn error(&self) -> Option<&nosq_isa::ExecError> {
        self.error.as_ref()
    }
}

/// A recorded correct-path trace, replayable by any number of timing
/// simulations.
///
/// The dynamic stream a [`Tracer`] produces depends only on the program
/// and the instruction budget — never on the timing configuration — so
/// an evaluation sweeping several pipeline configurations over one
/// workload can pay for functional execution and dependence analysis
/// *once* and replay the buffer for every configuration
/// (`Simulator::replay*` in `nosq-core`). Replay is bit-identical to
/// live tracing by construction.
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    insts: Vec<DynInst>,
    max_insts: u64,
}

impl TraceBuffer {
    /// Records the trace of `program`, up to `max_insts` dynamic
    /// instructions.
    pub fn record(program: &Program, max_insts: u64) -> TraceBuffer {
        let mut map = LastWriterMap::new();
        TraceBuffer::record_with_arena(program, max_insts, &mut map)
    }

    /// [`TraceBuffer::record`] reusing a persistent [`LastWriterMap`].
    pub fn record_with_arena(
        program: &Program,
        max_insts: u64,
        map: &mut LastWriterMap,
    ) -> TraceBuffer {
        // One up-front allocation (capped for huge budgets) instead of
        // doubling growth through tens of megabytes.
        let mut insts = Vec::with_capacity(max_insts.min(4_000_000) as usize);
        insts.extend(Tracer::with_arena(program, max_insts, map));
        TraceBuffer { insts, max_insts }
    }

    /// The recorded dynamic instructions.
    pub fn insts(&self) -> &[DynInst] {
        &self.insts
    }

    /// Number of recorded instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The budget the trace was recorded with.
    pub fn max_insts(&self) -> u64 {
        self.max_insts
    }

    /// Whether a replay bounded by `budget` instructions reproduces a
    /// live trace with that budget: true when the recording budget was
    /// at least `budget`, or the program halted before exhausting the
    /// recording budget (so the stream is complete).
    pub fn covers(&self, budget: u64) -> bool {
        self.max_insts >= budget || (self.insts.len() as u64) < self.max_insts
    }
}

impl Iterator for Tracer<'_> {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        if self.state.halted() || self.seq >= self.max_insts || self.error.is_some() {
            return None;
        }
        let rec = match self.state.step(self.program) {
            Ok(rec) => rec,
            Err(e) => {
                self.error = Some(e);
                return None;
            }
        };
        let class = rec.inst.class();
        let mut dyn_inst = DynInst {
            seq: self.seq,
            rec,
            class,
            stores_before: self.stores,
            mem_dep: None,
        };

        match class {
            InstClass::Load => {
                let width = rec.inst.mem_width().expect("load has width").bytes();
                let scan = self.last_writer.get().scan(rec.addr, width);
                if let Some(dep) = scan.youngest {
                    let coverage = if scan.all_same && !scan.any_missing {
                        Coverage::Full
                    } else {
                        Coverage::Partial
                    };
                    dyn_inst.mem_dep = Some(MemDep {
                        store_seq: dep.store_seq,
                        // stores (count renamed) minus 1-based dep SSN:
                        store_distance: self.stores - (dep.store_index + 1),
                        inst_distance: self.seq - dep.store_seq,
                        coverage,
                        shift: rec.addr.wrapping_sub(dep.store_addr) as u8,
                        store_width: dep.store_width,
                        store_float32: dep.store_float32,
                    });
                }
            }
            InstClass::Store => {
                let width = rec.inst.mem_width().expect("store has width").bytes();
                let float32 = matches!(rec.inst, nosq_isa::Inst::Store { float32: true, .. });
                let writer = ByteWriter {
                    store_seq: self.seq,
                    store_index: self.stores,
                    store_addr: rec.addr,
                    store_width: width as u8,
                    store_float32: float32,
                };
                self.last_writer
                    .get_mut()
                    .record_store(rec.addr, width, writer);
                self.stores += 1;
            }
            _ => {}
        }

        self.seq += 1;
        Some(dyn_inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Coverage;
    use nosq_isa::{Assembler, Extension, MemWidth, Reg};

    fn trace(asm: Assembler, max: u64) -> Vec<DynInst> {
        let prog = asm.finish();
        Tracer::new(&prog, max).collect()
    }

    #[test]
    fn store_distance_counts_intervening_stores() {
        let mut asm = Assembler::new();
        let (b, v) = (Reg::int(1), Reg::int(2));
        asm.li(b, 0x1000);
        asm.li(v, 7);
        asm.store(v, b, 0, MemWidth::B8); // SSN 1 — the dependence
        asm.store(v, b, 64, MemWidth::B8); // SSN 2
        asm.store(v, b, 128, MemWidth::B8); // SSN 3
        asm.load(v, b, 0, MemWidth::B8, Extension::Zero);
        asm.halt();
        let t = trace(asm, 100);
        let load = t.iter().find(|d| d.class == InstClass::Load).unwrap();
        let dep = load.mem_dep.unwrap();
        assert_eq!(dep.store_distance, 2); // two stores renamed since
        assert_eq!(load.dep_ssn(), Some(1));
    }

    #[test]
    fn multi_source_load_is_partial_coverage() {
        let mut asm = Assembler::new();
        let (b, v) = (Reg::int(1), Reg::int(2));
        asm.li(b, 0x1000);
        asm.li(v, 0x7f);
        asm.store(v, b, 0, MemWidth::B1);
        asm.store(v, b, 1, MemWidth::B1);
        asm.load(v, b, 0, MemWidth::B2, Extension::Zero);
        asm.halt();
        let t = trace(asm, 100);
        let load = t.iter().find(|d| d.class == InstClass::Load).unwrap();
        let dep = load.mem_dep.unwrap();
        assert_eq!(dep.coverage, Coverage::Partial);
        assert_eq!(dep.store_distance, 0); // youngest of the two
    }

    #[test]
    fn narrow_load_from_wide_store_has_shift() {
        let mut asm = Assembler::new();
        let (b, v) = (Reg::int(1), Reg::int(2));
        asm.li(b, 0x1000);
        asm.li(v, 0x1122_3344_5566_7788);
        asm.store(v, b, 0, MemWidth::B8);
        asm.load(v, b, 6, MemWidth::B2, Extension::Zero);
        asm.halt();
        let t = trace(asm, 100);
        let load = t.iter().find(|d| d.class == InstClass::Load).unwrap();
        let dep = load.mem_dep.unwrap();
        assert_eq!(dep.coverage, Coverage::Full);
        assert_eq!(dep.shift, 6);
        assert_eq!(load.rec.load_value, 0x1122);
    }

    #[test]
    fn load_from_initial_data_has_no_dep() {
        let mut asm = Assembler::new();
        let (b, v) = (Reg::int(1), Reg::int(2));
        asm.data_u64s(0x1000, &[42]);
        asm.li(b, 0x1000);
        asm.load(v, b, 0, MemWidth::B8, Extension::Zero);
        asm.halt();
        let t = trace(asm, 100);
        let load = t.iter().find(|d| d.class == InstClass::Load).unwrap();
        assert!(load.mem_dep.is_none());
        assert_eq!(load.rec.load_value, 42);
    }

    #[test]
    fn partially_initialized_load_is_partial() {
        // Store writes only the low byte; the rest comes from initial data.
        let mut asm = Assembler::new();
        let (b, v) = (Reg::int(1), Reg::int(2));
        asm.li(b, 0x1000);
        asm.li(v, 0xAA);
        asm.store(v, b, 0, MemWidth::B1);
        asm.load(v, b, 0, MemWidth::B8, Extension::Zero);
        asm.halt();
        let t = trace(asm, 100);
        let load = t.iter().find(|d| d.class == InstClass::Load).unwrap();
        assert_eq!(load.mem_dep.unwrap().coverage, Coverage::Partial);
    }

    #[test]
    fn max_insts_truncates_stream() {
        let mut asm = Assembler::new();
        let top = asm.label();
        asm.bind(top);
        asm.addi(Reg::int(1), Reg::int(1), 1);
        asm.jump(top);
        let prog = asm.finish();
        let n = Tracer::new(&prog, 10).count();
        assert_eq!(n, 10);
    }

    #[test]
    fn stores_before_counts_monotonically() {
        let mut asm = Assembler::new();
        let (b, v) = (Reg::int(1), Reg::int(2));
        asm.li(b, 0x1000);
        asm.store(v, b, 0, MemWidth::B8);
        asm.store(v, b, 8, MemWidth::B8);
        asm.halt();
        let t = trace(asm, 100);
        let stores: Vec<_> = t.iter().filter(|d| d.class == InstClass::Store).collect();
        assert_eq!(stores[0].store_ssn(), Some(1));
        assert_eq!(stores[1].store_ssn(), Some(2));
    }

    #[test]
    fn arena_tracer_matches_owned_tracer_across_programs() {
        let programs: Vec<_> = (0..3)
            .map(|i| {
                let mut asm = Assembler::new();
                let (b, v) = (Reg::int(1), Reg::int(2));
                asm.li(b, 0x1000 + i * 0x40);
                asm.li(v, 0x11 * (i + 1));
                asm.store(v, b, 0, MemWidth::B4);
                asm.store(v, b, 2, MemWidth::B2);
                asm.load(v, b, 0, MemWidth::B8, Extension::Zero);
                asm.halt();
                asm.finish()
            })
            .collect();
        let mut map = LastWriterMap::new();
        for prog in &programs {
            let owned: Vec<_> = Tracer::new(prog, 100).collect();
            let reused: Vec<_> = Tracer::with_arena(prog, 100, &mut map).collect();
            assert_eq!(owned.len(), reused.len());
            for (a, b) in owned.iter().zip(&reused) {
                assert_eq!(a.seq, b.seq);
                assert_eq!(
                    a.mem_dep.map(|d| (d.store_seq, d.coverage, d.shift)),
                    b.mem_dep.map(|d| (d.store_seq, d.coverage, d.shift)),
                );
            }
        }
    }
}
