//! Streaming functional tracer with online dependence analysis.

use std::collections::HashMap;

use nosq_isa::{ArchState, InstClass, Program};

use crate::record::{Coverage, DynInst, MemDep};

#[derive(Copy, Clone)]
struct ByteWriter {
    store_seq: u64,
    store_index: u64,
    store_addr: u64,
    store_width: u8,
    store_float32: bool,
}

/// Streams the correct-path dynamic instruction sequence of a program,
/// annotating each load with its ground-truth producing store.
///
/// The tracer maintains a per-byte last-writer map, so it reports the
/// youngest older store writing any byte a load reads, the distance to it
/// in dynamic stores and instructions, whether it covers the whole load
/// ([`Coverage`]), and the byte shift — everything the bypassing
/// predictor's oracle variant and the verification logic need.
///
/// ```
/// use nosq_isa::{Assembler, Reg, MemWidth, Extension};
/// use nosq_trace::Tracer;
///
/// let mut asm = Assembler::new();
/// let (b, v) = (Reg::int(1), Reg::int(2));
/// asm.li(b, 0x1000);
/// asm.li(v, 7);
/// asm.store(v, b, 0, MemWidth::B8);
/// asm.load(v, b, 0, MemWidth::B8, Extension::Zero);
/// asm.halt();
/// let prog = asm.finish();
///
/// let insts: Vec<_> = Tracer::new(&prog, 100).collect();
/// let load = insts
///     .iter()
///     .find(|d| d.class == nosq_isa::InstClass::Load)
///     .unwrap();
/// let dep = load.mem_dep.unwrap();
/// assert_eq!(dep.store_distance, 0); // most recent store
/// assert_eq!(dep.inst_distance, 1);
/// ```
pub struct Tracer<'p> {
    program: &'p Program,
    state: ArchState,
    seq: u64,
    stores: u64,
    last_writer: HashMap<u64, ByteWriter>,
    max_insts: u64,
    error: Option<nosq_isa::ExecError>,
}

impl<'p> Tracer<'p> {
    /// Creates a tracer that yields at most `max_insts` dynamic
    /// instructions (the halt instruction, if reached, is yielded and
    /// ends the stream).
    pub fn new(program: &'p Program, max_insts: u64) -> Tracer<'p> {
        Tracer {
            program,
            state: ArchState::new(program),
            seq: 0,
            stores: 0,
            last_writer: HashMap::new(),
            max_insts,
            error: None,
        }
    }

    /// The architectural state reached so far (for end-state checks).
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// An execution error, if one stopped the stream.
    pub fn error(&self) -> Option<&nosq_isa::ExecError> {
        self.error.as_ref()
    }
}

impl Iterator for Tracer<'_> {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        if self.state.halted() || self.seq >= self.max_insts || self.error.is_some() {
            return None;
        }
        let rec = match self.state.step(self.program) {
            Ok(rec) => rec,
            Err(e) => {
                self.error = Some(e);
                return None;
            }
        };
        let class = rec.inst.class();
        let mut dyn_inst = DynInst {
            seq: self.seq,
            rec,
            class,
            stores_before: self.stores,
            mem_dep: None,
        };

        match class {
            InstClass::Load => {
                let width = rec.inst.mem_width().expect("load has width").bytes();
                let mut youngest: Option<ByteWriter> = None;
                let mut all_same = true;
                let mut any_missing = false;
                for i in 0..width {
                    match self.last_writer.get(&rec.addr.wrapping_add(i)) {
                        Some(w) => match youngest {
                            None => youngest = Some(*w),
                            Some(y) if w.store_seq != y.store_seq => {
                                all_same = false;
                                if w.store_seq > y.store_seq {
                                    youngest = Some(*w);
                                }
                            }
                            Some(_) => {}
                        },
                        None => any_missing = true,
                    }
                }
                if let Some(dep) = youngest {
                    let coverage = if all_same && !any_missing {
                        Coverage::Full
                    } else {
                        Coverage::Partial
                    };
                    dyn_inst.mem_dep = Some(MemDep {
                        store_seq: dep.store_seq,
                        // stores (count renamed) minus 1-based dep SSN:
                        store_distance: self.stores - (dep.store_index + 1),
                        inst_distance: self.seq - dep.store_seq,
                        coverage,
                        shift: rec.addr.wrapping_sub(dep.store_addr) as u8,
                        store_width: dep.store_width,
                        store_float32: dep.store_float32,
                    });
                }
            }
            InstClass::Store => {
                let width = rec.inst.mem_width().expect("store has width").bytes();
                let float32 = matches!(rec.inst, nosq_isa::Inst::Store { float32: true, .. });
                let writer = ByteWriter {
                    store_seq: self.seq,
                    store_index: self.stores,
                    store_addr: rec.addr,
                    store_width: width as u8,
                    store_float32: float32,
                };
                for i in 0..width {
                    self.last_writer.insert(rec.addr.wrapping_add(i), writer);
                }
                self.stores += 1;
            }
            _ => {}
        }

        self.seq += 1;
        Some(dyn_inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Coverage;
    use nosq_isa::{Assembler, Extension, MemWidth, Reg};

    fn trace(asm: Assembler, max: u64) -> Vec<DynInst> {
        let prog = asm.finish();
        Tracer::new(&prog, max).collect()
    }

    #[test]
    fn store_distance_counts_intervening_stores() {
        let mut asm = Assembler::new();
        let (b, v) = (Reg::int(1), Reg::int(2));
        asm.li(b, 0x1000);
        asm.li(v, 7);
        asm.store(v, b, 0, MemWidth::B8); // SSN 1 — the dependence
        asm.store(v, b, 64, MemWidth::B8); // SSN 2
        asm.store(v, b, 128, MemWidth::B8); // SSN 3
        asm.load(v, b, 0, MemWidth::B8, Extension::Zero);
        asm.halt();
        let t = trace(asm, 100);
        let load = t.iter().find(|d| d.class == InstClass::Load).unwrap();
        let dep = load.mem_dep.unwrap();
        assert_eq!(dep.store_distance, 2); // two stores renamed since
        assert_eq!(load.dep_ssn(), Some(1));
    }

    #[test]
    fn multi_source_load_is_partial_coverage() {
        let mut asm = Assembler::new();
        let (b, v) = (Reg::int(1), Reg::int(2));
        asm.li(b, 0x1000);
        asm.li(v, 0x7f);
        asm.store(v, b, 0, MemWidth::B1);
        asm.store(v, b, 1, MemWidth::B1);
        asm.load(v, b, 0, MemWidth::B2, Extension::Zero);
        asm.halt();
        let t = trace(asm, 100);
        let load = t.iter().find(|d| d.class == InstClass::Load).unwrap();
        let dep = load.mem_dep.unwrap();
        assert_eq!(dep.coverage, Coverage::Partial);
        assert_eq!(dep.store_distance, 0); // youngest of the two
    }

    #[test]
    fn narrow_load_from_wide_store_has_shift() {
        let mut asm = Assembler::new();
        let (b, v) = (Reg::int(1), Reg::int(2));
        asm.li(b, 0x1000);
        asm.li(v, 0x1122_3344_5566_7788);
        asm.store(v, b, 0, MemWidth::B8);
        asm.load(v, b, 6, MemWidth::B2, Extension::Zero);
        asm.halt();
        let t = trace(asm, 100);
        let load = t.iter().find(|d| d.class == InstClass::Load).unwrap();
        let dep = load.mem_dep.unwrap();
        assert_eq!(dep.coverage, Coverage::Full);
        assert_eq!(dep.shift, 6);
        assert_eq!(load.rec.load_value, 0x1122);
    }

    #[test]
    fn load_from_initial_data_has_no_dep() {
        let mut asm = Assembler::new();
        let (b, v) = (Reg::int(1), Reg::int(2));
        asm.data_u64s(0x1000, &[42]);
        asm.li(b, 0x1000);
        asm.load(v, b, 0, MemWidth::B8, Extension::Zero);
        asm.halt();
        let t = trace(asm, 100);
        let load = t.iter().find(|d| d.class == InstClass::Load).unwrap();
        assert!(load.mem_dep.is_none());
        assert_eq!(load.rec.load_value, 42);
    }

    #[test]
    fn partially_initialized_load_is_partial() {
        // Store writes only the low byte; the rest comes from initial data.
        let mut asm = Assembler::new();
        let (b, v) = (Reg::int(1), Reg::int(2));
        asm.li(b, 0x1000);
        asm.li(v, 0xAA);
        asm.store(v, b, 0, MemWidth::B1);
        asm.load(v, b, 0, MemWidth::B8, Extension::Zero);
        asm.halt();
        let t = trace(asm, 100);
        let load = t.iter().find(|d| d.class == InstClass::Load).unwrap();
        assert_eq!(load.mem_dep.unwrap().coverage, Coverage::Partial);
    }

    #[test]
    fn max_insts_truncates_stream() {
        let mut asm = Assembler::new();
        let top = asm.label();
        asm.bind(top);
        asm.addi(Reg::int(1), Reg::int(1), 1);
        asm.jump(top);
        let prog = asm.finish();
        let n = Tracer::new(&prog, 10).count();
        assert_eq!(n, 10);
    }

    #[test]
    fn stores_before_counts_monotonically() {
        let mut asm = Assembler::new();
        let (b, v) = (Reg::int(1), Reg::int(2));
        asm.li(b, 0x1000);
        asm.store(v, b, 0, MemWidth::B8);
        asm.store(v, b, 8, MemWidth::B8);
        asm.halt();
        let t = trace(asm, 100);
        let stores: Vec<_> = t.iter().filter(|d| d.class == InstClass::Store).collect();
        assert_eq!(stores[0].store_ssn(), Some(1));
        assert_eq!(stores[1].store_ssn(), Some(2));
    }
}
