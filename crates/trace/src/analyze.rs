//! Communication-signature measurement (paper Table 5, left half).

use nosq_isa::Program;

use crate::depgraph::DependenceGraph;

/// Measured in-window store-load communication of a workload.
#[derive(Copy, Clone, Debug, Default)]
pub struct CommStats {
    /// Dynamic instructions examined.
    pub insts: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Loads whose producing store is within the instruction window.
    pub comm_loads: u64,
    /// In-window communicating loads where either side is sub-8-byte.
    pub partial_comm: u64,
    /// In-window communicating loads needing bytes from multiple stores.
    pub multi_source: u64,
    /// The window length used (instructions).
    pub window: u64,
}

impl CommStats {
    /// Total communication as a percentage of committed loads
    /// (Table 5 "total" column).
    pub fn comm_pct(&self) -> f64 {
        percent(self.comm_loads, self.loads)
    }

    /// Partial-word communication as a percentage of committed loads
    /// (Table 5 "partial-word" column).
    pub fn partial_pct(&self) -> f64 {
        percent(self.partial_comm, self.loads)
    }

    /// Multi-source (un-bypassable) communication as a percentage of
    /// committed loads.
    pub fn multi_source_pct(&self) -> f64 {
        percent(self.multi_source, self.loads)
    }
}

fn percent(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// Replays up to `max_insts` dynamic instructions of `program` and
/// measures its store-load communication within a `window`-instruction
/// window (the paper uses the 128-instruction ROB with no store limit).
///
/// The stats are derived from the dependence oracle's
/// [`DependenceGraph`] — the same exact producer analysis `nosq-audit`
/// cross-checks the pipeline against — so Table 5 and the auditor can
/// never drift apart.
pub fn analyze_program(program: &Program, max_insts: u64, window: u64) -> CommStats {
    DependenceGraph::from_program(program, max_insts).comm_stats(window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nosq_isa::{Assembler, Extension, InstClass, MemWidth, Reg};

    /// The pre-oracle streaming measurement, kept verbatim as the
    /// regression reference for the graph-derived implementation.
    fn naive_comm_stats(program: &Program, max_insts: u64, window: u64) -> CommStats {
        use crate::record::Coverage;
        use crate::tracer::Tracer;
        let mut stats = CommStats {
            window,
            ..CommStats::default()
        };
        for d in Tracer::new(program, max_insts) {
            stats.insts += 1;
            match d.class {
                InstClass::Load => {
                    stats.loads += 1;
                    if let Some(dep) = d.mem_dep {
                        if dep.inst_distance < window {
                            stats.comm_loads += 1;
                            if d.is_partial_word_comm() {
                                stats.partial_comm += 1;
                            }
                            if dep.coverage == Coverage::Partial {
                                stats.multi_source += 1;
                            }
                        }
                    }
                }
                InstClass::Store => stats.stores += 1,
                _ => {}
            }
        }
        stats
    }

    #[test]
    fn graph_derived_stats_match_streaming_reference() {
        use crate::profiles::Profile;
        use crate::synth::synthesize;
        for name in ["gzip", "gcc", "mesa.o", "applu", "gsm.e"] {
            let profile = Profile::by_name(name).unwrap();
            let prog = synthesize(profile, 42);
            for window in [128u64, 256] {
                let new = analyze_program(&prog, 25_000, window);
                let old = naive_comm_stats(&prog, 25_000, window);
                assert_eq!(new.insts, old.insts, "{name} w{window}");
                assert_eq!(new.loads, old.loads, "{name} w{window}");
                assert_eq!(new.stores, old.stores, "{name} w{window}");
                assert_eq!(new.comm_loads, old.comm_loads, "{name} w{window}");
                assert_eq!(new.partial_comm, old.partial_comm, "{name} w{window}");
                assert_eq!(new.multi_source, old.multi_source, "{name} w{window}");
                assert_eq!(new.window, old.window, "{name} w{window}");
            }
        }
    }

    #[test]
    fn window_gates_communication() {
        // Store, then 200 filler instructions, then the load: communicates
        // in a 512-instruction window but not a 128-instruction one.
        let mut asm = Assembler::new();
        let (b, v) = (Reg::int(1), Reg::int(2));
        asm.li(b, 0x1000);
        asm.store(v, b, 0, MemWidth::B8);
        for _ in 0..200 {
            asm.addi(v, v, 1);
        }
        asm.load(v, b, 0, MemWidth::B8, Extension::Zero);
        asm.halt();
        let prog = asm.finish();
        let near = analyze_program(&prog, 1_000, 512);
        assert_eq!(near.comm_loads, 1);
        let far = analyze_program(&prog, 1_000, 128);
        assert_eq!(far.comm_loads, 0);
        assert_eq!(far.loads, 1);
    }

    #[test]
    fn percentages_handle_zero_loads() {
        let mut asm = Assembler::new();
        asm.halt();
        let prog = asm.finish();
        let stats = analyze_program(&prog, 10, 128);
        assert_eq!(stats.comm_pct(), 0.0);
        assert_eq!(stats.partial_pct(), 0.0);
    }
}
