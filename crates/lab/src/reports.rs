//! Engine-backed regeneration of the paper's headline tables.
//!
//! The Table-5 sweep — all 47 benchmarks under NoSQ with and without
//! delay, next to the trace-measured communication columns — used to be
//! a bespoke loop in the bench crate; it is now a [`Campaign`] run by
//! the executor, shared between the `nosq table5` CLI command and the
//! `table5` bench target.

use nosq_core::ser::{JsonArray, JsonObject};
use nosq_core::SimReport;
use nosq_trace::{analyze_program, Profile};

use crate::campaign::{Campaign, Preset, SpecError};
use crate::executor::{
    parallel_map_indexed, run_campaign_on, synthesize_programs, CampaignResult, RunOptions,
};

/// One Table-5 line: trace-measured communication plus the simulated
/// NoSQ reports.
#[derive(Clone, Debug)]
pub struct Table5Row {
    /// The benchmark.
    pub profile: &'static Profile,
    /// Measured % of committed loads with in-window communication.
    pub comm_pct: f64,
    /// Measured % with partial-word communication.
    pub partial_pct: f64,
    /// NoSQ without delay.
    pub no_delay: SimReport,
    /// NoSQ with delay (the headline design).
    pub delay: SimReport,
}

/// The Table-5 campaign: NoSQ without/with delay over all 47 profiles.
/// Fallible because `max_insts` is user input (`--max-insts`,
/// `NOSQ_DYN_INSTS`): a zero budget is rejected, not a panic.
pub fn table5_campaign(max_insts: u64) -> Result<Campaign, SpecError> {
    Campaign::builder("table5")
        .preset(Preset::NosqNoDelay)
        .preset(Preset::Nosq)
        .all_profiles()
        .max_insts(max_insts)
        .build()
}

/// Runs Table 5 through the campaign engine: one grid run for the
/// simulated columns plus a parallel trace-analysis pass for the
/// communication columns (both over the same synthesized programs).
/// Returns the rows in paper order along with the raw campaign result.
pub fn table5(
    max_insts: u64,
    opts: &RunOptions,
) -> Result<(Vec<Table5Row>, CampaignResult), SpecError> {
    let campaign = table5_campaign(max_insts)?;
    let programs = synthesize_programs(&campaign, opts.threads);
    let comm = parallel_map_indexed(programs.len(), opts.threads, |i| {
        analyze_program(&programs[i], max_insts, 128)
    });
    let result = run_campaign_on(&campaign, &programs, opts);
    let nd = result
        .campaign
        .config_index("nosq-nd")
        .expect("table5 campaign has nosq-nd");
    let d = result
        .campaign
        .config_index("nosq")
        .expect("table5 campaign has nosq");
    let rows = result
        .campaign
        .profiles
        .iter()
        .enumerate()
        .map(|(p, profile)| Table5Row {
            profile,
            comm_pct: comm[p].comm_pct(),
            partial_pct: comm[p].partial_pct(),
            no_delay: *result.report(p, nd),
            delay: *result.report(p, d),
        })
        .collect();
    Ok((rows, result))
}

/// Serializes Table-5 rows in the artifact format the bench harness has
/// always written (`table5.json`): per benchmark, the measured
/// communication percentages and the two full NoSQ reports.
pub fn table5_json(rows: &[Table5Row]) -> String {
    let mut arr = JsonArray::new();
    for r in rows {
        let mut obj = JsonObject::new();
        obj.field_str("benchmark", r.profile.name)
            .field_str("suite", &r.profile.suite.to_string())
            .field_raw("comm_pct", &format!("{:.4}", r.comm_pct))
            .field_raw("partial_pct", &format!("{:.4}", r.partial_pct))
            .field_raw("nosq_no_delay", &r.no_delay.to_json())
            .field_raw("nosq_delay", &r.delay.to_json());
        arr.push_raw(&obj.finish());
    }
    arr.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_campaign_covers_the_grid() {
        let c = table5_campaign(1_000).unwrap();
        assert_eq!(c.profiles.len(), 47);
        assert_eq!(c.configs.len(), 2);
        assert_eq!(c.config_index("nosq-nd"), Some(0));
        assert_eq!(c.config_index("nosq"), Some(1));
    }

    #[test]
    fn table5_rows_line_up() {
        // Tiny budget: this is a structure test, not a numbers test.
        let (rows, result) = table5(600, &RunOptions::default()).unwrap();
        assert_eq!(rows.len(), 47);
        assert_eq!(result.reports.len(), 94);
        for (p, row) in rows.iter().enumerate() {
            assert_eq!(row.profile.name, result.campaign.profiles[p].name);
            assert!(row.no_delay.insts > 0);
            assert!(row.comm_pct >= 0.0);
        }
        let json = table5_json(&rows[..2]);
        let parsed = crate::json::parse(&json).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 2);
        assert!(parsed.as_array().unwrap()[0].get("nosq_delay").is_some());
    }
}
