//! The `nosq audit` grid: dependence-oracle auditing of profile ×
//! preset cells.
//!
//! For each selected trace profile the runner synthesizes the workload,
//! builds one [`DependenceGraph`] (the oracle pass), and then audits
//! every selected preset against that shared graph with an
//! [`nosq_audit::AuditObserver`] attached to a live session. Profiles
//! fan out across worker threads; the oracle is built once per profile
//! no matter how many presets ride on it.
//!
//! The optional fault-injection knob ([`AuditOptions::break_predictor`])
//! corrupts every Nth bypass *and* exempts it from verification
//! (`FaultPlan::break_predictor`), turning the grid into a
//! self-test: a healthy auditor must report violations under injection
//! and none without it.

use nosq_audit::{audit_config, AuditReport, DependenceGraph};
use nosq_core::ser::{JsonArray, JsonObject};
use nosq_core::{FaultPlan, SimReport};
use nosq_trace::{synthesize, Profile};

use crate::campaign::Preset;
use crate::executor::parallel_map_indexed;

/// The audit grid's default trace profiles (one per suite corner, the
/// bench harness's throughput quartet).
pub const DEFAULT_PROFILES: [&str; 4] = ["gzip", "gcc", "applu", "gsm.e"];

/// The presets the auditor exercises by default: every NoSQ variant
/// (the baselines have no bypasses to prove, but can be added).
pub const DEFAULT_PRESETS: [Preset; 3] = [Preset::NosqNoDelay, Preset::Nosq, Preset::PerfectSmb];

/// What `nosq audit` should run.
#[derive(Clone, Debug)]
pub struct AuditOptions {
    /// Trace profiles to audit.
    pub profiles: Vec<&'static Profile>,
    /// Pipeline presets to audit per profile.
    pub presets: Vec<Preset>,
    /// Dynamic-instruction budget per cell.
    pub max_insts: u64,
    /// Workload synthesis seed.
    pub seed: u64,
    /// Worker threads (0 = one per CPU).
    pub threads: usize,
    /// Corrupt every Nth bypass and exempt it from verification
    /// (fault-injection self-test).
    pub break_predictor: Option<u64>,
}

impl Default for AuditOptions {
    fn default() -> AuditOptions {
        AuditOptions {
            profiles: DEFAULT_PROFILES
                .iter()
                .map(|n| Profile::by_name(n).expect("built-in profile"))
                .collect(),
            presets: DEFAULT_PRESETS.to_vec(),
            max_insts: crate::campaign::DEFAULT_MAX_INSTS,
            seed: crate::campaign::DEFAULT_SEED,
            threads: 0,
            break_predictor: None,
        }
    }
}

/// One audited profile × preset cell.
#[derive(Clone, Debug)]
pub struct AuditCell {
    /// The workload.
    pub profile: &'static Profile,
    /// The pipeline preset.
    pub preset: Preset,
    /// The session's counters.
    pub report: SimReport,
    /// The audit verdict.
    pub audit: AuditReport,
}

/// The whole grid's outcome.
#[derive(Clone, Debug)]
pub struct AuditRunResult {
    /// All audited cells, profile-major in option order.
    pub cells: Vec<AuditCell>,
    /// Whether fault injection was active.
    pub injecting: bool,
}

impl AuditRunResult {
    /// Total rule violations across the grid.
    pub fn total_violations(&self) -> u64 {
        self.cells.iter().map(|c| c.audit.violations).sum()
    }

    /// Total loads audited across the grid.
    pub fn total_loads(&self) -> u64 {
        self.cells.iter().map(|c| c.audit.stats.loads).sum()
    }
}

/// Runs the audit grid: one oracle pass per profile, one audited
/// session per (profile, preset) cell.
pub fn run_audit(opts: &AuditOptions) -> AuditRunResult {
    let per_profile = parallel_map_indexed(opts.profiles.len(), opts.threads, |i| {
        let profile = opts.profiles[i];
        let program = synthesize(profile, opts.seed);
        let graph = DependenceGraph::from_program(&program, opts.max_insts);
        opts.presets
            .iter()
            .map(|&preset| {
                let mut cfg = preset.config(opts.max_insts);
                if let Some(period) = opts.break_predictor {
                    cfg = cfg
                        .into_builder()
                        .faults(FaultPlan {
                            break_predictor: Some(period),
                        })
                        .build();
                }
                let (report, audit) = audit_config(&program, &graph, cfg);
                AuditCell {
                    profile,
                    preset,
                    report,
                    audit,
                }
            })
            .collect::<Vec<AuditCell>>()
    });
    AuditRunResult {
        cells: per_profile.into_iter().flatten().collect(),
        injecting: opts.break_predictor.is_some(),
    }
}

/// Serializes the grid outcome as the `audit.json` artifact: run-level
/// totals plus one object per cell with its stats and diagnostics.
pub fn audit_json(result: &AuditRunResult) -> String {
    let mut cells = JsonArray::new();
    for cell in &result.cells {
        let mut o = JsonObject::new();
        o.field_str("profile", cell.profile.name)
            .field_str("preset", cell.preset.name())
            .field_u64("loads", cell.audit.stats.loads)
            .field_u64("violations", cell.audit.violations)
            .field_raw("audit", &cell.audit.to_json());
        cells.push_raw(&o.finish());
    }
    let mut root = JsonObject::new();
    root.field_u64("total_violations", result.total_violations())
        .field_u64("total_loads", result.total_loads())
        .field_raw(
            "fault_injection",
            if result.injecting { "true" } else { "false" },
        )
        .field_raw("cells", &cells.finish());
    root.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> AuditOptions {
        AuditOptions {
            profiles: vec![Profile::by_name("gzip").unwrap()],
            presets: vec![Preset::Nosq],
            max_insts: 5_000,
            threads: 1,
            ..AuditOptions::default()
        }
    }

    #[test]
    fn small_grid_is_clean_and_serializes() {
        let result = run_audit(&small());
        assert_eq!(result.cells.len(), 1);
        assert_eq!(result.total_violations(), 0);
        assert!(result.total_loads() > 0);
        let json = audit_json(&result);
        crate::json::parse(&json).expect("audit.json parses");
        assert!(json.contains("\"total_violations\":0"));
    }

    #[test]
    fn injection_produces_violations() {
        let opts = AuditOptions {
            max_insts: 30_000,
            break_predictor: Some(8),
            ..small()
        };
        let result = run_audit(&opts);
        assert!(result.injecting);
        assert!(result.total_violations() > 0);
    }

    #[test]
    fn default_options_cover_the_grid() {
        let opts = AuditOptions::default();
        assert_eq!(opts.profiles.len(), 4);
        assert_eq!(opts.presets.len(), 3);
    }
}
