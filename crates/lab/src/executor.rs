//! The campaign executor: shards the `configs × profiles` job grid
//! across worker threads without any global lock, runs each job as an
//! incremental simulation session, and reassembles results in grid
//! order so the output is byte-identical regardless of thread count.
//!
//! # Job distribution
//!
//! Workers claim jobs through a single atomic cursor (`fetch_add`) —
//! the classic lock-free MPMC work-pickup for a *fixed* job list, in
//! the spirit of the Virtual-Link / FastForward-style queue designs
//! referenced by the project roadmap: producers and consumers never
//! share a mutex, and each result travels through storage owned by
//! exactly one writer. Completed jobs land in a per-worker buffer (a
//! single-producer sequence consumed once, at join, by the
//! coordinator — an SPSC hand-off with no concurrent readers), and the
//! coordinator merges buffers by job index after the scope joins.
//! Claiming whole jobs (not cycles) keeps the cursor cold: one
//! contended cache line touched once per ~10⁵ simulated instructions.
//!
//! The protocol itself — cursor, buffers, progress counters — lives in
//! [`grid`](crate::grid), written against the `sync` facade so `nosq
//! check` can exhaustively model-check the exact code that runs here
//! on real atomics (see `nosq_lab::checks`); this module keeps the
//! campaign-specific machinery (sessions, trace caching, timing).
//!
//! # Determinism
//!
//! Each job is an independent, deterministic simulation; the merge is
//! by job index; aggregation reads the merged vector in grid order.
//! Thread count therefore changes only wall-clock time, never a byte of
//! any artifact — `tests/it_lab.rs` locks this in.

use std::time::{Duration, Instant};

use nosq_check::sync::StdSync;
use nosq_core::observer::{CycleEvent, SimObserver};
use nosq_core::{LaneSet, SimArena, SimReport, Simulator, StopCondition};
use nosq_isa::Program;
use nosq_trace::{synthesize, TraceBuffer};

use crate::campaign::Campaign;
use crate::grid::{run_grid, ProgressCounters};

/// Executor knobs; [`RunOptions::default`] is right for most callers.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Worker threads; `0` means one per available CPU (capped by the
    /// job count).
    pub threads: usize,
    /// Session chunk size in cycles: each job advances through repeated
    /// `run_until(Cycles(+chunk))` calls, the boundary at which live
    /// progress is published.
    pub chunk_cycles: u64,
    /// Print a live progress line to stderr while the grid runs.
    pub progress: bool,
    /// Fuse each profile's configuration block into one lockstep
    /// [`LaneSet`] replay: a worker claims a whole profile row, records
    /// (or reuses) its trace once, and drives every configuration over
    /// a shared trace window in one pass. Reports are bit-identical to
    /// the solo path — fusing changes wall-clock and memory locality,
    /// never results. Fused rows always buffer the recorded trace
    /// (replay is what makes the fusion possible), so very large
    /// per-job budgets cost ~150 B per instruction per worker.
    pub fused: bool,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            threads: 0,
            chunk_cycles: 8_192,
            progress: false,
            fused: false,
        }
    }
}

/// Resolves a requested thread count against the machine and job count.
pub fn effective_threads(requested: usize, jobs: usize) -> usize {
    let hw = nosq_check::sync::available_parallelism();
    let want = if requested == 0 { hw } else { requested };
    want.clamp(1, jobs.max(1))
}

/// Maps `f` over `0..len` using `threads` workers and a lock-free
/// atomic-cursor pickup; results return in index order regardless of
/// which worker computed what. The building block behind
/// [`run_campaign`] and the bench harness's `parallel_over_profiles`.
///
/// # Panics
///
/// Propagates panics from `f` (the whole map panics if any job does).
pub fn parallel_map_indexed<T, F>(len: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_ctx(len, threads, 1, || (), |(), i| f(i), None::<fn()>)
}

/// The generic engine behind [`parallel_map_indexed`] and
/// [`run_campaign_on`]: maps `f` over `0..len` with an atomic-cursor
/// pickup, giving every worker a private mutable context built by
/// `init` — the hook through which campaign workers keep a persistent
/// [`SimArena`] and trace cache across jobs. Workers claim `chunk`
/// consecutive indices per cursor bump, so related jobs (a profile's
/// configuration block in a campaign grid) land on one worker and its
/// cached state actually hits. `poll` is an optional coordinator-side
/// hook, invoked periodically while workers drain the job list (and
/// after every job on the serial path); it must not block.
fn parallel_map_ctx<C, T, I, F>(
    len: usize,
    threads: usize,
    chunk: usize,
    init: I,
    f: F,
    mut poll: Option<impl FnMut()>,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> C + Sync,
    F: Fn(&mut C, usize) -> T + Sync,
{
    let threads = effective_threads(threads, len);
    let chunk = chunk.max(1);
    if threads <= 1 || len <= 1 {
        let mut ctx = init();
        return (0..len)
            .map(|i| {
                let value = f(&mut ctx, i);
                if let Some(poll) = poll.as_mut() {
                    poll();
                }
                value
            })
            .collect();
    }
    run_grid::<StdSync, _, _, _, _>(
        len,
        threads,
        chunk,
        init,
        f,
        poll.as_mut().map(|p| p as &mut dyn FnMut()),
    )
}

/// A [`SimObserver`] that publishes committed-instruction progress into
/// the shared campaign counters, batched per session chunk so the hot
/// cycle loop never touches shared state.
struct InstProgress<'a> {
    shared: &'a ProgressCounters<StdSync>,
    published: u64,
    batch_cycles: u64,
}

impl SimObserver for InstProgress<'_> {
    fn on_cycle(&mut self, ev: &CycleEvent) {
        if ev.cycle.is_multiple_of(self.batch_cycles) && ev.insts > self.published {
            self.shared.add_insts(ev.insts - self.published);
            self.published = ev.insts;
        }
    }
}

/// Per-worker persistent simulation state: the recyclable arena and the
/// last recorded trace. The job grid is profile-major, so consecutive
/// jobs usually share a profile and the worker replays one recorded
/// trace across every configuration instead of re-running the
/// functional front end per job.
///
/// The struct is public so long-lived callers — the `nosq serve`
/// daemon's worker pool above all — can keep one context per worker
/// *across* campaigns: the trace cache is keyed by
/// `(profile name, seed, budget)`, which is stable across jobs, so a
/// repeated campaign spec reuses both the arena's buffers and the
/// recorded trace instead of paying the functional front end again.
#[derive(Default)]
pub struct WorkerContext {
    arena: SimArena,
    /// The cached trace, keyed by `(profile name, seed, budget)`.
    trace: Option<(TraceKey, TraceBuffer)>,
}

/// What makes a recorded trace reusable: same workload (profile name +
/// synthesis seed) and same dynamic-instruction budget.
type TraceKey = (&'static str, u64, u64);

impl WorkerContext {
    /// A fresh context (empty arena, no cached trace).
    pub fn new() -> WorkerContext {
        WorkerContext {
            arena: SimArena::new(),
            trace: None,
        }
    }
}

/// Wall-clock measurement of one grid job (the one deliberately
/// nondeterministic output of a campaign; kept out of the byte-stable
/// artifacts and aggregated into the separate timing artifact).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct JobTiming {
    /// Profile index in [`Campaign::profiles`].
    pub profile: usize,
    /// Configuration index in [`Campaign::configs`].
    pub config: usize,
    /// Seconds spent recording the functional trace for this job
    /// (`0.0` when the worker's cached trace was reused).
    pub trace_secs: f64,
    /// Seconds spent in the timing simulation proper.
    pub sim_secs: f64,
    /// Instructions committed.
    pub insts: u64,
    /// Cycles simulated.
    pub cycles: u64,
}

impl JobTiming {
    /// Simulated MIPS of the timing simulation (instructions per
    /// wall-clock microsecond).
    pub fn mips(&self) -> f64 {
        if self.sim_secs > 0.0 {
            self.insts as f64 / self.sim_secs / 1.0e6
        } else {
            0.0
        }
    }
}

/// Runs one grid job as an incremental session: the worker's cached
/// trace (re-recorded on profile change) replayed with arena-recycled
/// buffers, advanced through chunked `run_until(Cycles(..))` calls with
/// a progress observer attached. Chunked, replayed, arena-backed
/// execution is bit-identical to a one-shot `simulate()` (the session
/// API's core guarantee), so all of this changes wall-clock and
/// observability, never results.
/// Largest per-job budget worth buffering for replay: beyond this the
/// recorded trace's memory cost (~150 B per instruction, per worker)
/// outweighs re-running the streaming tracer per configuration.
const REPLAY_BUDGET_CAP: u64 = 4_000_000;

#[allow(clippy::too_many_arguments)]
fn run_job(
    worker: &mut WorkerContext,
    program: &Program,
    trace_key: (&'static str, u64),
    profile_idx: usize,
    config_idx: usize,
    n_configs: usize,
    cfg: nosq_core::SimConfig,
    opts: &RunOptions,
    progress: &ProgressCounters<StdSync>,
) -> (SimReport, JobTiming) {
    // Buffer the trace only when it can actually be replayed (several
    // configurations per profile, or a long-lived worker context that
    // may see the same workload again) and it stays reasonably sized;
    // otherwise trace live and streaming, with no per-job allocation
    // spike.
    let replayable = n_configs > 1 && cfg.max_insts <= REPLAY_BUDGET_CAP;
    let mut trace_secs = 0.0;
    if replayable {
        let key = (trace_key.0, trace_key.1, cfg.max_insts);
        if worker.trace.as_ref().map(|(k, _)| *k) != Some(key) {
            let started = Instant::now();
            let trace =
                TraceBuffer::record_with_arena(program, cfg.max_insts, &mut worker.arena.trace);
            trace_secs = started.elapsed().as_secs_f64();
            worker.trace = Some((key, trace));
        }
    } else {
        worker.trace = None; // release any stale buffer
    }

    let mut obs = InstProgress {
        shared: progress,
        published: 0,
        batch_cycles: opts.chunk_cycles.max(1),
    };
    let started = Instant::now();
    let mut sim = match &worker.trace {
        Some((_, trace)) => Simulator::replay_with_arena(program, cfg, trace, &mut worker.arena),
        None => Simulator::with_arena(program, cfg, &mut worker.arena),
    };
    sim.attach_observer(Box::new(&mut obs));
    while !sim.is_done() {
        let target = sim.stats().cycles + opts.chunk_cycles.max(1);
        sim.run_until(StopCondition::Cycles(target));
    }
    let report = sim.finish();
    let sim_secs = started.elapsed().as_secs_f64();
    if report.insts > obs.published {
        progress.add_insts(report.insts - obs.published);
    }
    progress.job_done();
    let timing = JobTiming {
        profile: profile_idx,
        config: config_idx,
        trace_secs,
        sim_secs,
        insts: report.insts,
        cycles: report.cycles,
    };
    (report, timing)
}

/// Runs one profile's whole configuration block as a fused lockstep
/// [`LaneSet`]: the trace is recorded (or reused from the worker's
/// cache) once at the block's largest budget, then every configuration
/// replays it in one shared pass. Lane reports are bit-identical to
/// [`run_job`]'s solo reports, so fusing never changes campaign
/// artifacts.
///
/// Timing attribution: the trace cost lands on the block's first lane
/// (as on the solo path), and the fused pass's wall-clock is split
/// evenly across lanes — lanes interleave within each lockstep round,
/// so per-lane wall-clock is not separable, but the even split keeps
/// every aggregate (sum of `insts` over sum of `sim_secs`) exact.
fn run_fused_row(
    worker: &mut WorkerContext,
    program: &Program,
    trace_key: (&'static str, u64),
    profile_idx: usize,
    configs: &[nosq_core::SimConfig],
    progress: &ProgressCounters<StdSync>,
) -> Vec<(SimReport, JobTiming)> {
    let budget = configs.iter().map(|c| c.max_insts).max().unwrap_or(0);
    let key = (trace_key.0, trace_key.1, budget);
    let mut trace_secs = 0.0;
    if worker.trace.as_ref().map(|(k, _)| *k) != Some(key) {
        let started = Instant::now();
        let trace = TraceBuffer::record_with_arena(program, budget, &mut worker.arena.trace);
        trace_secs = started.elapsed().as_secs_f64();
        worker.trace = Some((key, trace));
    }
    let (_, trace) = worker.trace.as_ref().expect("trace recorded above");
    let started = Instant::now();
    let lanes = LaneSet::fused_replay_with_arena(program, configs, trace, &mut worker.arena);
    let reports = lanes.run_with(|round_insts| progress.add_insts(round_insts));
    let share = started.elapsed().as_secs_f64() / configs.len().max(1) as f64;
    reports
        .into_iter()
        .enumerate()
        .map(|(c, report)| {
            progress.job_done();
            let timing = JobTiming {
                profile: profile_idx,
                config: c,
                trace_secs: if c == 0 { trace_secs } else { 0.0 },
                sim_secs: share,
                insts: report.insts,
                cycles: report.cycles,
            };
            (report, timing)
        })
        .collect()
}

/// The outcome of one campaign run: every job's [`SimReport`] in grid
/// order, plus the campaign it came from.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// The campaign that ran.
    pub campaign: Campaign,
    /// Profile-major reports: `reports[p * configs + c]` is profile `p`
    /// under configuration `c`.
    pub reports: Vec<SimReport>,
    /// Worker threads actually used.
    pub threads: usize,
    /// Wall-clock duration of the grid run (excluded from artifacts —
    /// it is the one nondeterministic output).
    pub elapsed: Duration,
    /// Per-job wall-time and throughput, in grid order. Like `elapsed`,
    /// timing is nondeterministic and therefore kept out of the
    /// byte-stable [`artifacts`](crate::artifacts); see
    /// [`timing_artifact`](crate::aggregate::timing_artifact).
    pub timings: Vec<JobTiming>,
}

impl CampaignResult {
    /// The report for (profile index, config index).
    pub fn report(&self, profile: usize, config: usize) -> &SimReport {
        &self.reports[profile * self.campaign.configs.len() + config]
    }

    /// Aggregate simulated MIPS across all jobs (total committed
    /// instructions over total simulation wall-time, trace recording
    /// excluded); `0.0` for an empty or timing-less result.
    pub fn aggregate_mips(&self) -> f64 {
        let insts: u64 = self.timings.iter().map(|t| t.insts).sum();
        let sim_secs: f64 = self.timings.iter().map(|t| t.sim_secs).sum();
        if sim_secs > 0.0 {
            insts as f64 / sim_secs / 1.0e6
        } else {
            0.0
        }
    }

    /// The baseline report for a profile, if the campaign named a
    /// baseline configuration.
    pub fn baseline_report(&self, profile: usize) -> Option<&SimReport> {
        self.campaign.baseline.map(|c| self.report(profile, c))
    }
}

/// Synthesizes every profile's workload (in parallel) for a campaign.
/// Exposed so callers that need the programs themselves (e.g. trace
/// analysis next to simulation) synthesize exactly once.
pub fn synthesize_programs(campaign: &Campaign, threads: usize) -> Vec<Program> {
    let profiles = &campaign.profiles;
    let seed = campaign.seed;
    parallel_map_indexed(profiles.len(), threads, |i| synthesize(profiles[i], seed))
}

/// Runs a campaign grid over pre-synthesized programs (one per profile,
/// in [`Campaign::profiles`] order).
///
/// # Panics
///
/// Panics if `programs.len() != campaign.profiles.len()`.
pub fn run_campaign_on(
    campaign: &Campaign,
    programs: &[Program],
    opts: &RunOptions,
) -> CampaignResult {
    assert_eq!(
        programs.len(),
        campaign.profiles.len(),
        "one program per profile"
    );
    if opts.fused && !campaign.configs.is_empty() {
        return run_campaign_fused(campaign, programs, opts);
    }
    let n_configs = campaign.configs.len();
    let jobs = campaign.jobs();
    let threads = effective_threads(opts.threads, jobs);
    let progress = ProgressCounters::<StdSync>::new();
    let started = Instant::now();

    let job = |worker: &mut WorkerContext, i: usize| {
        let (p, c) = (i / n_configs, i % n_configs);
        run_job(
            worker,
            &programs[p],
            (campaign.profiles[p].name, campaign.seed),
            p,
            c,
            n_configs,
            campaign.configs[c].config.clone(),
            opts,
            &progress,
        )
    };

    // The coordinator doubles as the progress reporter while the
    // workers drain the grid.
    let poll = opts
        .progress
        .then_some(|| print_progress(&campaign.name, &progress, jobs, started));
    // Claim one profile's whole configuration block per cursor bump so
    // a worker's trace cache hits for every config after the first —
    // unless that would leave workers idle (fewer profiles than
    // threads), in which case fall back to even slices.
    let chunk = if campaign.profiles.len() >= threads {
        n_configs
    } else {
        (jobs / threads).max(1)
    };
    let outcomes: Vec<(SimReport, JobTiming)> =
        parallel_map_ctx(jobs, opts.threads, chunk, WorkerContext::new, job, poll);
    if opts.progress {
        print_progress(&campaign.name, &progress, jobs, started);
        eprintln!();
    }
    let (reports, timings) = outcomes.into_iter().unzip();

    CampaignResult {
        campaign: campaign.clone(),
        reports,
        threads,
        elapsed: started.elapsed(),
        timings,
    }
}

/// The fused grid: one row per profile, each row a lockstep
/// [`LaneSet`] over the campaign's whole configuration list. Reports
/// land in the same profile-major order as the solo grid, byte for
/// byte; the unit of work-pickup is a profile row, so worker count is
/// bounded by the profile count.
fn run_campaign_fused(
    campaign: &Campaign,
    programs: &[Program],
    opts: &RunOptions,
) -> CampaignResult {
    let jobs = campaign.jobs();
    let rows = campaign.profiles.len();
    let threads = effective_threads(opts.threads, rows);
    let progress = ProgressCounters::<StdSync>::new();
    let started = Instant::now();
    let configs: Vec<nosq_core::SimConfig> =
        campaign.configs.iter().map(|c| c.config.clone()).collect();

    let row = |worker: &mut WorkerContext, p: usize| {
        run_fused_row(
            worker,
            &programs[p],
            (campaign.profiles[p].name, campaign.seed),
            p,
            &configs,
            &progress,
        )
    };
    let poll = opts
        .progress
        .then_some(|| print_progress(&campaign.name, &progress, jobs, started));
    let outcomes: Vec<Vec<(SimReport, JobTiming)>> =
        parallel_map_ctx(rows, opts.threads, 1, WorkerContext::new, row, poll);
    if opts.progress {
        print_progress(&campaign.name, &progress, jobs, started);
        eprintln!();
    }
    let (reports, timings) = outcomes.into_iter().flatten().unzip();

    CampaignResult {
        campaign: campaign.clone(),
        reports,
        threads,
        elapsed: started.elapsed(),
        timings,
    }
}

/// Synthesizes the workloads and runs the campaign grid; see
/// [`run_campaign_on`].
pub fn run_campaign(campaign: &Campaign, opts: &RunOptions) -> CampaignResult {
    let programs = synthesize_programs(campaign, opts.threads);
    run_campaign_on(campaign, &programs, opts)
}

/// Runs a campaign grid serially on the calling thread, inside a
/// caller-owned [`WorkerContext`] and publishing into caller-owned
/// [`ProgressCounters`].
///
/// This is the `nosq serve` execution path: each daemon worker owns one
/// long-lived context, so arenas and recorded traces persist *across*
/// jobs (a re-submitted campaign spec skips the functional front end
/// entirely), and the shared counters are what the daemon streams to
/// `wait`ing clients while the job runs. The reports are bit-identical
/// to [`run_campaign`] — sessions, replay, and arenas never change
/// results, only wall-clock (`tests/it_serve.rs` pins the byte-identity
/// end to end).
///
/// # Panics
///
/// Panics if `programs.len() != campaign.profiles.len()`.
pub fn run_campaign_serial(
    campaign: &Campaign,
    programs: &[Program],
    opts: &RunOptions,
    ctx: &mut WorkerContext,
    progress: &ProgressCounters<StdSync>,
) -> CampaignResult {
    assert_eq!(
        programs.len(),
        campaign.profiles.len(),
        "one program per profile"
    );
    let n_configs = campaign.configs.len();
    let started = Instant::now();
    let mut reports = Vec::with_capacity(campaign.jobs());
    let mut timings = Vec::with_capacity(campaign.jobs());
    for i in 0..campaign.jobs() {
        let (p, c) = (i / n_configs, i % n_configs);
        let (report, timing) = run_job(
            ctx,
            &programs[p],
            (campaign.profiles[p].name, campaign.seed),
            p,
            c,
            n_configs,
            campaign.configs[c].config.clone(),
            opts,
            progress,
        );
        reports.push(report);
        timings.push(timing);
    }
    CampaignResult {
        campaign: campaign.clone(),
        reports,
        threads: 1,
        elapsed: started.elapsed(),
        timings,
    }
}

/// Where to pick a campaign back up after a crash: the grid index of
/// the first unfinished job, the reports of everything before it, and
/// (when the crash hit mid-job) the interrupted job's simulator
/// checkpoint.
pub struct ResumeState {
    /// Grid index of the first job to (re)run; jobs `0..job_index` are
    /// in `completed`.
    pub job_index: usize,
    /// Reports of the already-finished jobs, in grid order.
    pub completed: Vec<nosq_core::SimReport>,
    /// Mid-job snapshot of job `job_index`, if one was taken; `None`
    /// restarts that job from scratch.
    pub checkpoint: Option<nosq_core::SimCheckpoint>,
}

/// One checkpoint emission from [`run_campaign_durable`]: everything a
/// caller needs to persist to make the campaign resumable at this
/// point.
pub struct CkptEvent<'a> {
    /// Grid index of the in-flight job (`completed.len() == job_index`).
    pub job_index: usize,
    /// Reports of the jobs finished so far, in grid order.
    pub completed: &'a [SimReport],
    /// The in-flight job's simulator snapshot; `None` at a job
    /// boundary (the next job starts from scratch on resume).
    pub state: Option<&'a nosq_core::SimCheckpoint>,
}

/// [`run_campaign_serial`] with crash-durable mid-job checkpoints: the
/// serial grid loop, but every `ckpt_every_insts` committed
/// instructions (and at every job boundary) it hands the caller a
/// [`CkptEvent`] snapshot to persist, and it can pick a grid back up
/// from a [`ResumeState`] — re-simulating only the interrupted job's
/// tail, not the finished prefix.
///
/// Reports are bit-identical to [`run_campaign`] at any checkpoint
/// cadence and any resume point: checkpoints snapshot a *replay*
/// session (sessions, replay, and arenas never change results), and
/// `tests/it_serve.rs` pins resumed-vs-uninterrupted byte identity.
/// Two costs distinguish this from the plain serial path: the trace is
/// *always* buffered for replay (snapshotting requires a replay
/// session — budgets beyond the usual replay cap pay the memory), and
/// observers are never attached (checkpointing a session with
/// caller-owned observer state is not supported), so progress is
/// published at chunk boundaries instead of per-chunk-cycle.
///
/// `ckpt_every_insts == 0` disables mid-job snapshots; the sink then
/// sees only job-boundary events. The final boundary (all jobs done)
/// is not emitted — the caller's completion record supersedes it.
///
/// # Panics
///
/// Panics if `programs.len() != campaign.profiles.len()`, or if
/// `resume` is inconsistent with the campaign grid (more completed
/// reports than jobs, or `completed.len() != job_index`).
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_durable(
    campaign: &Campaign,
    programs: &[Program],
    ctx: &mut WorkerContext,
    progress: &ProgressCounters<StdSync>,
    ckpt_every_insts: u64,
    resume: Option<ResumeState>,
    sink: &mut dyn FnMut(CkptEvent<'_>),
) -> CampaignResult {
    assert_eq!(
        programs.len(),
        campaign.profiles.len(),
        "one program per profile"
    );
    let n_configs = campaign.configs.len();
    let jobs = campaign.jobs();
    let started = Instant::now();
    let (start_job, mut reports, mut checkpoint) = match resume {
        Some(r) => {
            assert!(r.job_index <= jobs, "resume point outside the grid");
            assert_eq!(
                r.completed.len(),
                r.job_index,
                "resume reports must cover exactly the jobs before the resume point"
            );
            (r.job_index, r.completed, r.checkpoint)
        }
        None => (0, Vec::new(), None),
    };
    let mut timings = Vec::with_capacity(jobs);
    for (i, report) in reports.iter().enumerate() {
        // Pre-completed jobs surface in progress (so a `wait`ing client
        // sees the whole grid) but cost zero wall-clock in timings.
        progress.add_insts(report.insts);
        progress.job_done();
        timings.push(JobTiming {
            profile: i / n_configs,
            config: i % n_configs,
            trace_secs: 0.0,
            sim_secs: 0.0,
            insts: report.insts,
            cycles: report.cycles,
        });
    }

    for i in start_job..jobs {
        let (p, c) = (i / n_configs, i % n_configs);
        let program = &programs[p];
        let cfg = campaign.configs[c].config.clone();
        // Snapshotting requires a replay session, so the trace is
        // always buffered here (no REPLAY_BUDGET_CAP opt-out).
        let key = (campaign.profiles[p].name, campaign.seed, cfg.max_insts);
        let mut trace_secs = 0.0;
        if ctx.trace.as_ref().map(|(k, _)| *k) != Some(key) {
            let t0 = Instant::now();
            let trace =
                TraceBuffer::record_with_arena(program, cfg.max_insts, &mut ctx.arena.trace);
            trace_secs = t0.elapsed().as_secs_f64();
            ctx.trace = Some((key, trace));
        }

        let t0 = Instant::now();
        let report = {
            let (_, trace) = ctx.trace.as_ref().expect("trace recorded above");
            let mut sim = match checkpoint.take() {
                Some(ck) => Simulator::resume_with_arena(program, trace, &ck, &mut ctx.arena),
                None => Simulator::replay_with_arena(program, cfg, trace, &mut ctx.arena),
            };
            let mut published = sim.stats().insts;
            while !sim.is_done() {
                if ckpt_every_insts == 0 {
                    let target = sim.stats().cycles + 8_192;
                    sim.run_until(StopCondition::Cycles(target));
                } else {
                    let target = sim.stats().insts + ckpt_every_insts;
                    sim.run_until(StopCondition::Insts(target));
                }
                let insts = sim.stats().insts;
                if insts > published {
                    progress.add_insts(insts - published);
                    published = insts;
                }
                if ckpt_every_insts != 0 && !sim.is_done() {
                    let snap = sim.checkpoint();
                    sink(CkptEvent {
                        job_index: i,
                        completed: &reports,
                        state: Some(&snap),
                    });
                }
            }
            let report = sim.finish();
            if report.insts > published {
                progress.add_insts(report.insts - published);
            }
            report
        };
        let sim_secs = t0.elapsed().as_secs_f64();
        progress.job_done();
        timings.push(JobTiming {
            profile: p,
            config: c,
            trace_secs,
            sim_secs,
            insts: report.insts,
            cycles: report.cycles,
        });
        reports.push(report);
        if i + 1 < jobs {
            sink(CkptEvent {
                job_index: i + 1,
                completed: &reports,
                state: None,
            });
        }
    }

    CampaignResult {
        campaign: campaign.clone(),
        reports,
        threads: 1,
        elapsed: started.elapsed(),
        timings,
    }
}

fn print_progress(name: &str, progress: &ProgressCounters<StdSync>, jobs: usize, started: Instant) {
    let (done, insts) = progress.snapshot();
    let secs = started.elapsed().as_secs_f64();
    let rate = if secs > 0.0 {
        insts as f64 / secs / 1.0e6
    } else {
        0.0
    };
    eprint!("\r[{name}] jobs {done}/{jobs}  ({insts} insts, {rate:.1} Minst/s)   ");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Preset;

    #[test]
    fn parallel_map_is_ordered_at_any_thread_count() {
        for threads in [1, 2, 3, 8] {
            let out = parallel_map_indexed(17, threads, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(parallel_map_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn effective_threads_is_bounded() {
        assert_eq!(effective_threads(5, 2), 2);
        assert_eq!(effective_threads(1, 100), 1);
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(3, 0), 1);
    }

    #[test]
    fn campaign_reports_are_indexed_profile_major() {
        let campaign = Campaign::builder("t")
            .preset(Preset::Nosq)
            .preset(Preset::NosqNoDelay)
            .profiles(["gzip", "applu"])
            .max_insts(1_500)
            .build()
            .unwrap();
        let result = run_campaign(&campaign, &RunOptions::default());
        assert_eq!(result.reports.len(), 4);
        // Same profile, different configs: insts match, cycles differ
        // in general; different profiles: different workloads.
        assert_eq!(result.report(0, 0).insts, result.report(0, 1).insts);
        assert!(result.report(0, 0).cycles > 0);
        assert!(result.baseline_report(0).is_none());
    }

    #[test]
    fn fused_campaign_reports_are_byte_identical_to_solo() {
        let campaign = Campaign::builder("fused")
            .preset(Preset::Nosq)
            .preset(Preset::NosqNoDelay)
            .preset(Preset::BaselineStoresets)
            .profiles(["gzip", "applu"])
            .max_insts(1_500)
            .build()
            .unwrap();
        let solo = run_campaign(&campaign, &RunOptions::default());
        for threads in [1, 3] {
            let fused = run_campaign(
                &campaign,
                &RunOptions {
                    fused: true,
                    threads,
                    ..RunOptions::default()
                },
            );
            assert_eq!(fused.reports, solo.reports);
            assert_eq!(fused.timings.len(), solo.timings.len());
            for (i, t) in fused.timings.iter().enumerate() {
                assert_eq!((t.profile, t.config), (i / 3, i % 3));
                assert!(t.sim_secs >= 0.0);
            }
        }
    }
}
