//! The `nosq check` model registry: bounded concurrency models of the
//! workspace's lock-free structures, run under the `nosq-check`
//! engine.
//!
//! Each model is a small, fixed-size instantiation of *production
//! code* — [`run_grid`] and [`InjectionQueue`] are generic over the
//! `sync` facade, so the checker explores the exact statements the
//! executor runs, not a transliteration. The `spsc` pair is the
//! checker's own self-test: the `Release` variant must verify clean,
//! and the deliberately broken `Relaxed` variant (run under
//! `--seed-bug`) must be flagged — a check run that cannot catch a
//! seeded bug proves nothing.

use nosq_check::sync::{AtomicCell, Ordering, SlotCell, SyncFacade};
use nosq_check::{check_model, Bounds, CheckReport, ModelSync};
use nosq_core::ser::{JsonArray, JsonObject};

use crate::grid::{run_grid, ProgressCounters};
use crate::mpmc::InjectionQueue;

/// Which exploration preset to run the models under.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BoundPreset {
    /// Preemption-bounded (2 preemptions): seconds, catches almost
    /// everything; the CI smoke setting.
    Small,
    /// No preemption bound: exhaustive exploration of every model.
    Full,
}

impl BoundPreset {
    /// Parses a `--bound` argument.
    pub fn parse(s: &str) -> Option<BoundPreset> {
        match s {
            "small" => Some(BoundPreset::Small),
            "full" => Some(BoundPreset::Full),
            _ => None,
        }
    }

    /// The preset's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            BoundPreset::Small => "small",
            BoundPreset::Full => "full",
        }
    }

    fn bounds(self) -> Bounds {
        match self {
            BoundPreset::Small => Bounds::small(),
            BoundPreset::Full => Bounds::default(),
        }
    }
}

/// Options for one `nosq check` run.
#[derive(Clone, Debug)]
pub struct CheckOptions {
    /// Exploration preset.
    pub bound: BoundPreset,
    /// Run only the named model (default: every model in the suite).
    pub model: Option<String>,
    /// Run the deliberately broken models instead of the clean suite;
    /// the run *succeeds* only if they are flagged.
    pub seed_bug: bool,
}

impl Default for CheckOptions {
    fn default() -> CheckOptions {
        CheckOptions {
            bound: BoundPreset::Small,
            model: None,
            seed_bug: false,
        }
    }
}

/// The names in the selected suite, in run order.
pub fn model_names(seed_bug: bool) -> Vec<&'static str> {
    if seed_bug {
        vec!["spsc-relaxed"]
    } else {
        vec!["spsc", "executor-core", "mpmc", "mpmc-close"]
    }
}

/// SPSC publish: producer fills a slot then raises a flag with
/// `store_order`; consumer spins on an `Acquire` load, then takes the
/// slot. Clean iff `store_order` releases.
fn spsc_model(store_order: Ordering) {
    let data = <ModelSync as SyncFacade>::Slot::<u64>::new();
    let flag = <ModelSync as SyncFacade>::AtomicUsize::new(0);
    ModelSync::run_threads(
        2,
        |k| {
            if k == 0 {
                data.put(42);
                flag.store(1, store_order);
            } else {
                while flag.load(Ordering::Acquire) == 0 {
                    ModelSync::spin_hint();
                }
                assert_eq!(data.take(), Some(42));
            }
        },
        None,
    );
}

/// The executor's lock-free core at model scale: 2 workers drain a
/// 3-job grid through the atomic cursor, each job writes a result
/// mailbox slot and bumps the progress counters, and the coordinator
/// reads everything after the join edge. Exactly the
/// [`run_grid`] code production runs on `StdSync`.
fn executor_core_model() {
    const JOBS: usize = 3;
    let counters = ProgressCounters::<ModelSync>::new();
    let mailbox: Vec<<ModelSync as SyncFacade>::Slot<u64>> =
        (0..JOBS).map(|_| SlotCell::new()).collect();
    let out = run_grid::<ModelSync, _, _, _, _>(
        JOBS,
        2,
        1,
        || (),
        |(), i| {
            mailbox[i].put(i as u64 + 1);
            counters.add_insts(10);
            counters.job_done();
            i
        },
        None,
    );
    assert_eq!(out, (0..JOBS).collect::<Vec<_>>());
    assert_eq!(counters.snapshot(), (JOBS, 10 * JOBS as u64));
    for (i, slot) in mailbox.iter().enumerate() {
        assert_eq!(slot.take(), Some(i as u64 + 1));
    }
}

/// The injection queue at model scale: 2 producers push one item each
/// into a capacity-2 [`InjectionQueue`] while a consumer drains both;
/// conservation is asserted after the join.
fn mpmc_model() {
    let queue = InjectionQueue::<u64, ModelSync>::new(2);
    let sum = <ModelSync as SyncFacade>::AtomicU64::new(0);
    ModelSync::run_threads(
        3,
        |k| {
            if k < 2 {
                let mut item = k as u64 + 1;
                loop {
                    match queue.try_push(item) {
                        Ok(()) => break,
                        Err(back) => {
                            item = back.into_inner();
                            ModelSync::spin_hint();
                        }
                    }
                }
            } else {
                let mut got = 0;
                while got < 2 {
                    match queue.try_pop() {
                        Some(v) => {
                            sum.fetch_add(v, Ordering::Relaxed);
                            got += 1;
                        }
                        None => ModelSync::spin_hint(),
                    }
                }
            }
        },
        None,
    );
    assert_eq!(sum.load(Ordering::Relaxed), 3);
}

/// The daemon's drain protocol at model scale: 2 producers each push
/// one item into a capacity-2 [`InjectionQueue`]; whichever finishes
/// last closes the queue (the countdown's `AcqRel` RMW orders every
/// push before the close). The consumer drains until
/// [`is_drained`](InjectionQueue::is_drained) — so the model proves the
/// new close/drain transitions: no item pushed before the close is
/// stranded, closure is observed exactly once, and a post-join push
/// fails `Closed` with the queue still empty.
fn mpmc_close_model() {
    const PRODUCERS: usize = 2;
    let queue = InjectionQueue::<u64, ModelSync>::new(2);
    let done = <ModelSync as SyncFacade>::AtomicUsize::new(0);
    let sum = <ModelSync as SyncFacade>::AtomicU64::new(0);
    ModelSync::run_threads(
        PRODUCERS + 1,
        |k| {
            if k < PRODUCERS {
                let mut item = k as u64 + 1;
                loop {
                    match queue.try_push(item) {
                        Ok(()) => break,
                        Err(back) => {
                            // The queue can be full mid-drain, never
                            // closed: close happens only after every
                            // producer's push, including this one's.
                            assert!(!back.is_closed());
                            item = back.into_inner();
                            ModelSync::spin_hint();
                        }
                    }
                }
                // AcqRel: the last producer's close must happen-after
                // *every* push — the release half publishes this push,
                // the acquire half orders the close after the pushes
                // the other producers counted in.
                if done.fetch_add(1, Ordering::AcqRel) == PRODUCERS - 1 {
                    queue.close();
                }
            } else {
                loop {
                    match queue.try_pop() {
                        Some(v) => {
                            sum.fetch_add(v, Ordering::Relaxed);
                        }
                        None if queue.is_drained() => break,
                        None => ModelSync::spin_hint(),
                    }
                }
            }
        },
        None,
    );
    assert_eq!(sum.load(Ordering::Relaxed), 3, "an item was stranded");
    assert!(queue.is_drained());
    assert!(queue.try_push(9).unwrap_err().is_closed());
    assert_eq!(queue.len(), 0);
}

fn run_one(name: &str, bounds: &Bounds) -> CheckReport {
    match name {
        "spsc" => check_model(name, bounds, || spsc_model(Ordering::Release)),
        "spsc-relaxed" => check_model(name, bounds, || spsc_model(Ordering::Relaxed)),
        "executor-core" => check_model(name, bounds, executor_core_model),
        "mpmc" => check_model(name, bounds, mpmc_model),
        "mpmc-close" => check_model(name, bounds, mpmc_close_model),
        _ => unreachable!("unknown model {name}"),
    }
}

/// Runs the selected model suite; `Err` names the unknown model if
/// `opts.model` is not in the suite.
pub fn run_checks(opts: &CheckOptions) -> Result<Vec<CheckReport>, String> {
    let suite = model_names(opts.seed_bug);
    let selected: Vec<&str> = match &opts.model {
        Some(name) => {
            if !suite.contains(&name.as_str()) {
                return Err(format!(
                    "unknown model '{name}' (suite: {})",
                    suite.join(", ")
                ));
            }
            vec![name.as_str()]
        }
        None => suite,
    };
    let bounds = opts.bound.bounds();
    Ok(selected.iter().map(|m| run_one(m, &bounds)).collect())
}

/// Serializes a check run as the `check.json` artifact.
pub fn check_json(opts: &CheckOptions, reports: &[CheckReport]) -> String {
    let mut models = JsonArray::new();
    for r in reports {
        models.push_raw(&r.to_json());
    }
    let total: u64 = reports.iter().map(|r| r.violations).sum();
    let complete = reports.iter().all(|r| r.complete);
    let mut obj = JsonObject::new();
    obj.field_str("bound", opts.bound.name())
        .field_raw("seed_bug", if opts.seed_bug { "true" } else { "false" })
        .field_u64("total_violations", total)
        .field_raw("complete", if complete { "true" } else { "false" })
        .field_raw("models", &models.finish());
    obj.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse() {
        assert_eq!(BoundPreset::parse("small"), Some(BoundPreset::Small));
        assert_eq!(BoundPreset::parse("full"), Some(BoundPreset::Full));
        assert_eq!(BoundPreset::parse("tiny"), None);
        assert_eq!(BoundPreset::Full.name(), "full");
    }

    #[test]
    fn unknown_models_are_rejected() {
        let opts = CheckOptions {
            model: Some("nope".into()),
            ..CheckOptions::default()
        };
        let err = run_checks(&opts).unwrap_err();
        assert!(err.contains("nope"), "{err}");
        assert!(err.contains("executor-core"), "{err}");
    }

    #[test]
    fn check_json_shape() {
        let opts = CheckOptions {
            model: Some("spsc".into()),
            ..CheckOptions::default()
        };
        let reports = run_checks(&opts).unwrap();
        let json = check_json(&opts, &reports);
        assert!(json.contains("\"bound\":\"small\""), "{json}");
        assert!(json.contains("\"total_violations\":0"), "{json}");
        assert!(json.contains("\"model\":\"spsc\""), "{json}");
    }
}
