//! Aggregation of campaign results into comparative artifacts.
//!
//! A [`CampaignResult`] flattens into a deterministic set of
//! machine-readable files built on the shared [`nosq_core::ser`]
//! writers:
//!
//! * `<name>.matrix.csv` — one row per (benchmark, configuration) with
//!   every [`SimReport`] counter column,
//! * `<name>.matrix.json` — the same matrix with nested reports,
//! * `<name>.summary.json` — per-configuration IPC geomeans (overall
//!   and per suite) plus, when the campaign names a baseline,
//!   relative-execution-time geomeans against it,
//! * `<name>.speedup.csv` — per-benchmark relative execution time per
//!   configuration (baseline campaigns only).
//!
//! Artifact bytes depend only on the campaign definition and the
//! simulation results, never on thread count or timing.

use std::io;
use std::path::{Path, PathBuf};

use nosq_core::ser::{csv_row, json_f64, JsonArray, JsonObject};
use nosq_core::{geometric_mean, SimReport};
use nosq_trace::Suite;

use crate::executor::CampaignResult;

/// One named artifact file (contents already serialized).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Artifact {
    /// File name (campaign-prefixed, extension included).
    pub file_name: String,
    /// Full file contents.
    pub contents: String,
}

/// Builds every artifact for a campaign result, in a stable order.
pub fn artifacts(result: &CampaignResult) -> Vec<Artifact> {
    let mut out = vec![
        Artifact {
            file_name: format!("{}.matrix.csv", result.campaign.name),
            contents: matrix_csv(result),
        },
        Artifact {
            file_name: format!("{}.matrix.json", result.campaign.name),
            contents: matrix_json(result),
        },
        Artifact {
            file_name: format!("{}.summary.json", result.campaign.name),
            contents: summary_json(result),
        },
    ];
    if result.campaign.baseline.is_some() {
        out.push(Artifact {
            file_name: format!("{}.speedup.csv", result.campaign.name),
            contents: speedup_csv(result),
        });
    }
    out
}

/// Writes artifacts into `dir` (created if missing); returns the paths.
pub fn write_artifacts(dir: &Path, artifacts: &[Artifact]) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    artifacts
        .iter()
        .map(|a| {
            let path = dir.join(&a.file_name);
            std::fs::write(&path, &a.contents)?;
            Ok(path)
        })
        .collect()
}

fn matrix_csv(result: &CampaignResult) -> String {
    let c = &result.campaign;
    let mut out = String::new();
    out.push_str(&format!(
        "benchmark,suite,config,{}\n",
        SimReport::csv_header()
    ));
    for (p, profile) in c.profiles.iter().enumerate() {
        for (ci, config) in c.configs.iter().enumerate() {
            let head = csv_row(&[
                profile.name.to_owned(),
                profile.suite.to_string(),
                config.name.clone(),
            ]);
            out.push_str(&format!("{head},{}\n", result.report(p, ci).to_csv_row()));
        }
    }
    out
}

fn matrix_json(result: &CampaignResult) -> String {
    let c = &result.campaign;
    let mut arr = JsonArray::new();
    for (p, profile) in c.profiles.iter().enumerate() {
        for (ci, config) in c.configs.iter().enumerate() {
            let mut obj = JsonObject::new();
            obj.field_str("benchmark", profile.name)
                .field_str("suite", &profile.suite.to_string())
                .field_str("config", &config.name)
                .field_raw("report", &result.report(p, ci).to_json());
            arr.push_raw(&obj.finish());
        }
    }
    arr.finish()
}

/// Geometric mean of `value` over all profiles, and per suite (suites
/// with no profiles in the campaign are omitted).
fn geomeans(result: &CampaignResult, value: impl Fn(usize) -> f64) -> (f64, Vec<(Suite, f64)>) {
    let profiles = &result.campaign.profiles;
    let all: Vec<f64> = (0..profiles.len()).map(&value).collect();
    let by_suite = Suite::all()
        .into_iter()
        .filter_map(|suite| {
            let vals: Vec<f64> = profiles
                .iter()
                .enumerate()
                .filter(|(_, p)| p.suite == suite)
                .map(|(i, _)| value(i))
                .collect();
            if vals.is_empty() {
                None
            } else {
                Some((suite, geometric_mean(&vals)))
            }
        })
        .collect();
    (geometric_mean(&all), by_suite)
}

fn geomean_entry(name: &str, overall: f64, by_suite: &[(Suite, f64)], key: &str) -> String {
    let mut obj = JsonObject::new();
    obj.field_str("config", name).field_f64(key, overall);
    let mut suites = JsonObject::new();
    for (suite, value) in by_suite {
        suites.field_f64(&suite.to_string(), *value);
    }
    obj.field_raw("suites", &suites.finish());
    obj.finish()
}

fn summary_json(result: &CampaignResult) -> String {
    let c = &result.campaign;
    let mut obj = JsonObject::new();
    obj.field_str("campaign", &c.name)
        .field_u64("configs", c.configs.len() as u64)
        .field_u64("profiles", c.profiles.len() as u64)
        .field_u64("jobs", c.jobs() as u64)
        .field_u64("seed", c.seed);

    let mut ipc = JsonArray::new();
    for (ci, config) in c.configs.iter().enumerate() {
        let (overall, by_suite) = geomeans(result, |p| result.report(p, ci).ipc());
        ipc.push_raw(&geomean_entry(
            &config.name,
            overall,
            &by_suite,
            "geomean_ipc",
        ));
    }
    obj.field_raw("ipc", &ipc.finish());

    if let Some(base) = c.baseline {
        obj.field_str("baseline", &c.configs[base].name);
        let mut rel = JsonArray::new();
        for (ci, config) in c.configs.iter().enumerate() {
            let (overall, by_suite) = geomeans(result, |p| {
                result.report(p, ci).relative_time(result.report(p, base))
            });
            rel.push_raw(&geomean_entry(
                &config.name,
                overall,
                &by_suite,
                "geomean_rel_time",
            ));
        }
        obj.field_raw("rel_time", &rel.finish());
    }
    obj.finish()
}

/// Builds the `<name>.timing.json` artifact: per-job wall-time and
/// simulated MIPS plus campaign-level aggregates.
///
/// Timing is the one *deliberately nondeterministic* campaign output —
/// it varies with the machine, thread count, and scheduling — so it is
/// **not** part of [`artifacts`] (whose bytes must be identical at any
/// thread count); write it alongside them when you want the
/// performance record of a run.
pub fn timing_artifact(result: &CampaignResult) -> Artifact {
    let c = &result.campaign;
    let mut obj = JsonObject::new();
    obj.field_str("campaign", &c.name)
        .field_u64("threads", result.threads as u64)
        .field_raw("elapsed_secs", &json_f64(result.elapsed.as_secs_f64()));

    let mut arr = JsonArray::new();
    for t in &result.timings {
        let mut o = JsonObject::new();
        o.field_str("benchmark", c.profiles[t.profile].name)
            .field_str("config", &c.configs[t.config].name)
            .field_u64("insts", t.insts)
            .field_u64("cycles", t.cycles)
            .field_raw("trace_secs", &json_f64(t.trace_secs))
            .field_raw("sim_secs", &json_f64(t.sim_secs))
            .field_raw("mips", &json_f64(t.mips()));
        arr.push_raw(&o.finish());
    }
    obj.field_raw("jobs", &arr.finish());

    let insts: u64 = result.timings.iter().map(|t| t.insts).sum();
    let sim_secs: f64 = result.timings.iter().map(|t| t.sim_secs).sum();
    let trace_secs: f64 = result.timings.iter().map(|t| t.trace_secs).sum();
    obj.field_u64("total_insts", insts)
        .field_raw("total_sim_secs", &json_f64(sim_secs))
        .field_raw("total_trace_secs", &json_f64(trace_secs))
        .field_raw("aggregate_mips", &json_f64(result.aggregate_mips()));
    Artifact {
        file_name: format!("{}.timing.json", c.name),
        contents: obj.finish(),
    }
}

fn speedup_csv(result: &CampaignResult) -> String {
    let c = &result.campaign;
    let base = c.baseline.expect("speedup table requires a baseline");
    let mut header = vec!["benchmark".to_owned(), "suite".to_owned()];
    header.extend(c.configs.iter().map(|cfg| cfg.name.clone()));
    let mut out = csv_row(&header);
    out.push('\n');
    for (p, profile) in c.profiles.iter().enumerate() {
        let mut cells = vec![profile.name.to_owned(), profile.suite.to_string()];
        for ci in 0..c.configs.len() {
            let rel = result.report(p, ci).relative_time(result.report(p, base));
            cells.push(json_f64(rel)); // `{:.6}`, `null` for NaN
        }
        out.push_str(&csv_row(&cells));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, Preset};
    use crate::executor::{run_campaign, RunOptions};
    use crate::json;

    fn small_result() -> CampaignResult {
        let campaign = Campaign::builder("unit")
            .preset(Preset::Nosq)
            .preset(Preset::BaselineStoresets)
            .profiles(["gzip", "applu"])
            .max_insts(1_200)
            .baseline("baseline-storesets")
            .build()
            .unwrap();
        run_campaign(&campaign, &RunOptions::default())
    }

    #[test]
    fn artifacts_are_complete_and_parse() {
        let result = small_result();
        let arts = artifacts(&result);
        let names: Vec<_> = arts.iter().map(|a| a.file_name.as_str()).collect();
        assert_eq!(
            names,
            [
                "unit.matrix.csv",
                "unit.matrix.json",
                "unit.summary.json",
                "unit.speedup.csv"
            ]
        );
        // JSON artifacts parse with the in-crate parser.
        let matrix = json::parse(&arts[1].contents).unwrap();
        assert_eq!(matrix.as_array().unwrap().len(), 4);
        let summary = json::parse(&arts[2].contents).unwrap();
        assert_eq!(summary.get("jobs").unwrap().as_u64(), Some(4));
        assert_eq!(
            summary.get("baseline").unwrap().as_str(),
            Some("baseline-storesets")
        );
        assert_eq!(summary.get("ipc").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            summary.get("rel_time").unwrap().as_array().unwrap().len(),
            2
        );
        // CSV row counts: header + jobs (matrix), header + profiles
        // (speedup).
        assert_eq!(arts[0].contents.lines().count(), 1 + 4);
        assert_eq!(arts[3].contents.lines().count(), 1 + 2);
        // The baseline column is exactly 1.0 against itself.
        for line in arts[3].contents.lines().skip(1) {
            assert!(line.ends_with(",1.000000"), "{line}");
        }
    }

    #[test]
    fn summary_suite_geomeans_cover_present_suites_only() {
        let result = small_result();
        let arts = artifacts(&result);
        let summary = json::parse(&arts[2].contents).unwrap();
        let suites = summary.get("ipc").unwrap().as_array().unwrap()[0]
            .get("suites")
            .unwrap()
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.clone())
            .collect::<Vec<_>>();
        // gzip is SPECint, applu is SPECfp; no MediaBench profile ran.
        assert_eq!(suites, ["SPECint", "SPECfp"]);
    }

    #[test]
    fn write_artifacts_persists_files() {
        let result = small_result();
        let arts = artifacts(&result);
        let dir = std::env::temp_dir().join(format!("nosq-lab-test-{}", std::process::id()));
        let paths = write_artifacts(&dir, &arts).unwrap();
        assert_eq!(paths.len(), arts.len());
        for (path, art) in paths.iter().zip(&arts) {
            assert_eq!(&std::fs::read_to_string(path).unwrap(), &art.contents);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
