//! Declarative experiment campaigns: a named grid of simulator
//! configurations × a workload selection.
//!
//! A [`Campaign`] is the unit the executor runs: every configuration in
//! [`Campaign::configs`] is simulated over every profile in
//! [`Campaign::profiles`]. Campaigns are built programmatically through
//! [`Campaign::builder`] or parsed from a spec file with
//! [`Campaign::from_spec`] (see [`crate::spec`] for the format). The
//! grid dimensions mirror the paper's evaluation: pipeline preset
//! (Table 5 / Figure 2), window size (§4.4), bypassing-predictor
//! capacity and path-history length (Figure 5).

use nosq_core::{ConfigError, PredictorConfig, SimConfig};
use nosq_trace::{Profile, Suite};

/// Workload seed shared by every campaign unless overridden; matches
/// the bench harness's historical seed, so engine-backed runs reproduce
/// the pre-engine numbers exactly.
pub const DEFAULT_SEED: u64 = 42;

/// Default dynamic-instruction budget per job (the bench harness
/// default).
pub const DEFAULT_MAX_INSTS: u64 = 150_000;

/// A campaign construction / spec-parsing failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    /// Human-readable description (with position info when parsing).
    pub msg: String,
}

impl SpecError {
    pub(crate) fn new(msg: impl Into<String>) -> SpecError {
        SpecError { msg: msg.into() }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for SpecError {}

impl From<ConfigError> for SpecError {
    fn from(e: ConfigError) -> SpecError {
        SpecError::new(format!("invalid configuration: {e}"))
    }
}

/// The five pipeline configurations of the paper's evaluation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Preset {
    /// Associative store queue + oracle load scheduling (the
    /// relative-time denominator).
    BaselinePerfect,
    /// Associative store queue + StoreSets scheduling.
    BaselineStoresets,
    /// NoSQ without the confidence-based delay mechanism.
    NosqNoDelay,
    /// NoSQ with delay — the headline design.
    Nosq,
    /// NoSQ with a perfect bypassing predictor.
    PerfectSmb,
}

impl Preset {
    /// All presets, in Figure 2's bar order (ideal baseline first).
    pub const fn all() -> [Preset; 5] {
        [
            Preset::BaselinePerfect,
            Preset::BaselineStoresets,
            Preset::NosqNoDelay,
            Preset::Nosq,
            Preset::PerfectSmb,
        ]
    }

    /// The preset's canonical spec-file name.
    pub fn name(&self) -> &'static str {
        match self {
            Preset::BaselinePerfect => "baseline-perfect",
            Preset::BaselineStoresets => "baseline-storesets",
            Preset::NosqNoDelay => "nosq-nd",
            Preset::Nosq => "nosq",
            Preset::PerfectSmb => "perfect-smb",
        }
    }

    /// Parses a preset name; accepts the canonical names plus the
    /// aliases the bench harnesses historically printed (`assoc-sq`,
    /// `nosq-d`, `ideal`, …).
    pub fn from_name(name: &str) -> Option<Preset> {
        match name {
            "baseline-perfect" | "ideal" | "perfect-scheduling" => Some(Preset::BaselinePerfect),
            "baseline-storesets" | "assoc-sq" | "storesets" => Some(Preset::BaselineStoresets),
            "nosq-nd" | "nosq-no-delay" => Some(Preset::NosqNoDelay),
            "nosq" | "nosq-d" => Some(Preset::Nosq),
            "perfect-smb" | "perfect" => Some(Preset::PerfectSmb),
            _ => None,
        }
    }

    /// Instantiates the preset at an instruction budget.
    pub fn config(&self, max_insts: u64) -> SimConfig {
        match self {
            Preset::BaselinePerfect => SimConfig::baseline_perfect(max_insts),
            Preset::BaselineStoresets => SimConfig::baseline_storesets(max_insts),
            Preset::NosqNoDelay => SimConfig::nosq_no_delay(max_insts),
            Preset::Nosq => SimConfig::nosq(max_insts),
            Preset::PerfectSmb => SimConfig::perfect_smb(max_insts),
        }
    }
}

/// Which benchmarks a campaign runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Workload {
    /// All 47 Table-5 profiles.
    All,
    /// The paper's Figure 3-5 benchmark selection.
    Selected,
    /// Every profile in one suite.
    Suite(Suite),
    /// An explicit list of profile names.
    Profiles(Vec<String>),
}

impl Workload {
    /// Resolves the selection to concrete profiles, in deterministic
    /// (paper-table) order.
    pub fn resolve(&self) -> Result<Vec<&'static Profile>, SpecError> {
        match self {
            Workload::All => Ok(Profile::all().iter().collect()),
            Workload::Selected => Ok(Profile::selected()),
            Workload::Suite(suite) => Ok(Profile::suite(*suite).collect()),
            Workload::Profiles(names) => names
                .iter()
                .map(|n| {
                    Profile::by_name(n)
                        .ok_or_else(|| SpecError::new(format!("unknown profile `{n}`")))
                })
                .collect(),
        }
    }
}

/// Parses a suite name (case-insensitive; `mediabench` / `specint` /
/// `specfp`).
pub fn suite_from_name(name: &str) -> Option<Suite> {
    match name.to_ascii_lowercase().as_str() {
        "mediabench" | "media" => Some(Suite::MediaBench),
        "specint" | "spec-int" | "int" => Some(Suite::SpecInt),
        "specfp" | "spec-fp" | "fp" => Some(Suite::SpecFp),
        _ => None,
    }
}

/// One named point of the configuration grid.
#[derive(Clone, Debug)]
pub struct NamedConfig {
    /// Unique name within the campaign (column label in artifacts).
    pub name: String,
    /// The fully-resolved simulator configuration.
    pub config: SimConfig,
}

/// A fully-resolved campaign: `configs × profiles` jobs.
#[derive(Clone, Debug)]
pub struct Campaign {
    /// Campaign name (artifact file prefix).
    pub name: String,
    /// Configuration grid, in deterministic order.
    pub configs: Vec<NamedConfig>,
    /// Benchmark profiles, in deterministic order.
    pub profiles: Vec<&'static Profile>,
    /// Index into [`Self::configs`] of the reference configuration for
    /// speedup tables, if one was named.
    pub baseline: Option<usize>,
    /// Workload-synthesis seed.
    pub seed: u64,
}

impl Campaign {
    /// Starts a [`CampaignBuilder`].
    pub fn builder(name: impl Into<String>) -> CampaignBuilder {
        CampaignBuilder {
            name: name.into(),
            presets: Vec::new(),
            explicit: Vec::new(),
            workload: None,
            max_insts: DEFAULT_MAX_INSTS,
            windows: Vec::new(),
            capacities: Vec::new(),
            histories: Vec::new(),
            baseline: None,
            seed: DEFAULT_SEED,
        }
    }

    /// Total number of (config, profile) jobs in the grid.
    pub fn jobs(&self) -> usize {
        self.configs.len() * self.profiles.len()
    }

    /// Looks up a configuration column by name.
    pub fn config_index(&self, name: &str) -> Option<usize> {
        self.configs.iter().position(|c| c.name == name)
    }
}

/// Fluent construction of a [`Campaign`].
///
/// The configuration grid is the cross-product of the added
/// [presets](Self::preset) with any [window](Self::window),
/// [predictor-capacity](Self::capacity), and
/// [history-bits](Self::history_bits) sweep values, plus any
/// [explicit configurations](Self::config). Grid names are derived
/// deterministically: the preset name, then `@w<window>` / `@c<cap>` /
/// `@h<bits>` suffixes for each swept dimension.
#[derive(Clone, Debug)]
pub struct CampaignBuilder {
    name: String,
    presets: Vec<Preset>,
    explicit: Vec<(String, SimConfig)>,
    workload: Option<Workload>,
    max_insts: u64,
    windows: Vec<u32>,
    capacities: Vec<usize>,
    histories: Vec<u32>,
    baseline: Option<String>,
    seed: u64,
}

impl CampaignBuilder {
    /// Renames the campaign.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Adds a preset to the grid (duplicates are rejected at build).
    pub fn preset(mut self, preset: Preset) -> Self {
        self.presets.push(preset);
        self
    }

    /// Adds an explicit named configuration outside the preset grid
    /// (its `max_insts` is overridden by the campaign budget).
    pub fn config(mut self, name: impl Into<String>, config: SimConfig) -> Self {
        self.explicit.push((name.into(), config));
        self
    }

    /// Sets the workload selection.
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Selects all 47 profiles.
    pub fn all_profiles(self) -> Self {
        self.workload(Workload::All)
    }

    /// Selects the paper's Figure 3-5 benchmark subset.
    pub fn selected_profiles(self) -> Self {
        self.workload(Workload::Selected)
    }

    /// Selects one suite.
    pub fn suite(self, suite: Suite) -> Self {
        self.workload(Workload::Suite(suite))
    }

    /// Selects explicit profiles by name.
    pub fn profiles<I, S>(self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names = names.into_iter().map(Into::into).collect();
        self.workload(Workload::Profiles(names))
    }

    /// Sets the per-job dynamic-instruction budget.
    pub fn max_insts(mut self, max_insts: u64) -> Self {
        self.max_insts = max_insts;
        self
    }

    /// Sets the workload-synthesis seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds a window size (128 or 256) to the sweep.
    pub fn window(mut self, window: u32) -> Self {
        self.windows.push(window);
        self
    }

    /// Adds a total bypassing-predictor capacity (entries across both
    /// tables; 0 means unbounded) to the sweep.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacities.push(capacity);
        self
    }

    /// Adds a path-history length (bits) to the sweep.
    pub fn history_bits(mut self, bits: u32) -> Self {
        self.histories.push(bits);
        self
    }

    /// Names the reference configuration for speedup artifacts.
    pub fn baseline(mut self, name: impl Into<String>) -> Self {
        self.baseline = Some(name.into());
        self
    }

    /// Expands the grid, resolves the workload, and validates every
    /// configuration through [`SimConfig::validate`].
    pub fn build(self) -> Result<Campaign, SpecError> {
        if self.name.is_empty() {
            return Err(SpecError::new("campaign name must not be empty"));
        }
        if !self
            .name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        {
            return Err(SpecError::new(format!(
                "campaign name `{}` must be alphanumeric plus `-`/`_`/`.` \
                 (it becomes an artifact file prefix)",
                self.name
            )));
        }
        if self.presets.is_empty() && self.explicit.is_empty() {
            return Err(SpecError::new("campaign has no configurations"));
        }
        let windows: &[u32] = if self.windows.is_empty() {
            &[128]
        } else {
            &self.windows
        };
        let window_swept =
            self.windows.len() > 1 || self.windows.first().is_some_and(|w| *w != 128);

        let mut configs: Vec<NamedConfig> = Vec::new();
        // Both insertion paths below hand `push` a `try_build()`-checked
        // config, so validation lives in exactly one place.
        let push = |name: String, config: SimConfig, configs: &mut Vec<NamedConfig>| {
            if configs.iter().any(|c| c.name == name) {
                return Err(SpecError::new(format!(
                    "duplicate configuration name `{name}`"
                )));
            }
            configs.push(NamedConfig { name, config });
            Ok(())
        };
        for preset in &self.presets {
            for &window in windows {
                let caps: Vec<Option<usize>> = if self.capacities.is_empty() {
                    vec![None]
                } else {
                    self.capacities.iter().map(|&c| Some(c)).collect()
                };
                for cap in &caps {
                    let hists: Vec<Option<u32>> = if self.histories.is_empty() {
                        vec![None]
                    } else {
                        self.histories.iter().map(|&h| Some(h)).collect()
                    };
                    for hist in &hists {
                        let mut name = preset.name().to_owned();
                        if window_swept {
                            name.push_str(&format!("@w{window}"));
                        }
                        let mut builder = preset.config(self.max_insts).into_builder();
                        builder = match window {
                            128 => builder.window128(),
                            256 => builder.window256(),
                            other => {
                                return Err(SpecError::new(format!(
                                    "unsupported window size {other} (the paper models 128 and 256)"
                                )))
                            }
                        };
                        let mut predictor = PredictorConfig::paper_default();
                        if let Some(cap) = *cap {
                            name.push_str(&format!("@c{cap}"));
                            predictor = if cap == 0 {
                                PredictorConfig::unbounded()
                            } else {
                                PredictorConfig::with_capacity(cap)
                            };
                        }
                        if let Some(bits) = *hist {
                            name.push_str(&format!("@h{bits}"));
                            predictor.history_bits = bits;
                        }
                        if cap.is_some() || hist.is_some() {
                            builder = builder.predictor(predictor);
                        }
                        let config = builder.try_build()?;
                        push(name, config, &mut configs)?;
                    }
                }
            }
        }
        for (name, config) in self.explicit {
            let config = config
                .into_builder()
                .max_insts(self.max_insts)
                .try_build()?;
            push(name, config, &mut configs)?;
        }

        let workload = self
            .workload
            .ok_or_else(|| SpecError::new("campaign has no workload selection"))?;
        let profiles = workload.resolve()?;
        if profiles.is_empty() {
            return Err(SpecError::new("workload selection resolved to no profiles"));
        }

        let baseline = match &self.baseline {
            None => None,
            Some(name) => Some(
                configs
                    .iter()
                    .position(|c| &c.name == name)
                    // A preset alias (`assoc-sq`, `ideal`, …) names the
                    // canonical grid column.
                    .or_else(|| {
                        let canonical = Preset::from_name(name)?.name();
                        configs.iter().position(|c| c.name == canonical)
                    })
                    .ok_or_else(|| {
                        SpecError::new(format!(
                            "baseline `{name}` does not name a configuration (have: {})",
                            configs
                                .iter()
                                .map(|c| c.name.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ))
                    })?,
            ),
        };

        Ok(Campaign {
            name: self.name,
            configs,
            profiles,
            baseline,
            seed: self.seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_names_roundtrip() {
        for preset in Preset::all() {
            assert_eq!(Preset::from_name(preset.name()), Some(preset));
        }
        assert_eq!(
            Preset::from_name("assoc-sq"),
            Some(Preset::BaselineStoresets)
        );
        assert_eq!(Preset::from_name("bogus"), None);
    }

    #[test]
    fn simple_grid_builds() {
        let c = Campaign::builder("t")
            .preset(Preset::Nosq)
            .preset(Preset::BaselineStoresets)
            .profiles(["gzip", "applu"])
            .max_insts(1_000)
            .baseline("baseline-storesets")
            .build()
            .unwrap();
        assert_eq!(c.jobs(), 4);
        assert_eq!(c.configs[0].name, "nosq");
        assert_eq!(c.baseline, Some(1));
        assert_eq!(c.configs[0].config.max_insts, 1_000);
    }

    #[test]
    fn sweeps_expand_with_deterministic_names() {
        let c = Campaign::builder("s")
            .preset(Preset::Nosq)
            .window(128)
            .window(256)
            .capacity(512)
            .capacity(0)
            .profiles(["gzip"])
            .max_insts(100)
            .build()
            .unwrap();
        let names: Vec<_> = c.configs.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "nosq@w128@c512",
                "nosq@w128@c0",
                "nosq@w256@c512",
                "nosq@w256@c0"
            ]
        );
        assert_eq!(c.configs[2].config.machine.rob_size, 256);
        assert!(c.configs[1].config.predictor.unbounded);
        assert_eq!(c.configs[0].config.predictor.entries_per_table, 256);
    }

    #[test]
    fn history_sweep_sets_bits() {
        let c = Campaign::builder("h")
            .preset(Preset::NosqNoDelay)
            .history_bits(4)
            .history_bits(12)
            .profiles(["gzip"])
            .max_insts(100)
            .build()
            .unwrap();
        assert_eq!(c.configs[0].name, "nosq-nd@h4");
        assert_eq!(c.configs[0].config.predictor.history_bits, 4);
        assert_eq!(c.configs[1].config.predictor.history_bits, 12);
    }

    #[test]
    fn build_rejects_degenerate_campaigns() {
        let no_configs = Campaign::builder("x").profiles(["gzip"]).build();
        assert!(no_configs.is_err());
        let no_workload = Campaign::builder("x").preset(Preset::Nosq).build();
        assert!(no_workload.is_err());
        let bad_profile = Campaign::builder("x")
            .preset(Preset::Nosq)
            .profiles(["not-a-benchmark"])
            .build();
        assert!(bad_profile.unwrap_err().msg.contains("not-a-benchmark"));
        let bad_baseline = Campaign::builder("x")
            .preset(Preset::Nosq)
            .profiles(["gzip"])
            .baseline("missing")
            .build();
        assert!(bad_baseline.unwrap_err().msg.contains("missing"));
        let dup = Campaign::builder("x")
            .preset(Preset::Nosq)
            .preset(Preset::Nosq)
            .profiles(["gzip"])
            .build();
        assert!(dup.unwrap_err().msg.contains("duplicate"));
        let bad_name = Campaign::builder("a/b")
            .preset(Preset::Nosq)
            .profiles(["gzip"])
            .build();
        assert!(bad_name.is_err());
        let zero_budget = Campaign::builder("x")
            .preset(Preset::Nosq)
            .profiles(["gzip"])
            .max_insts(0)
            .build();
        assert!(zero_budget.unwrap_err().msg.contains("max_insts"));
    }

    #[test]
    fn workload_selections_resolve() {
        assert_eq!(Workload::All.resolve().unwrap().len(), 47);
        assert_eq!(Workload::Selected.resolve().unwrap().len(), 15);
        assert!(Workload::Suite(Suite::SpecFp).resolve().unwrap().len() >= 10);
        assert_eq!(suite_from_name("SPECint"), Some(Suite::SpecInt));
        assert_eq!(suite_from_name("nope"), None);
    }
}
