//! A minimal hand-rolled JSON parser.
//!
//! The build environment has no crates.io access (no serde), so campaign
//! spec files and artifact validation parse JSON through this module: a
//! straightforward recursive-descent parser over the full JSON grammar
//! (objects, arrays, strings with escapes, numbers, literals), with
//! line/column error reporting and a nesting-depth cap.
//!
//! Object keys keep their document order — campaign specs and artifact
//! checks care about content, not key identity semantics, and preserving
//! order keeps round-trip reasoning simple.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string, with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if this is a
    /// number with an exact integral value. Rejects magnitudes at or
    /// above 2⁵³, where `f64` can no longer represent every integer —
    /// better to refuse a huge seed than silently run a corrupted one.
    pub fn as_u64(&self) -> Option<u64> {
        const EXACT: f64 = (1u64 << 53) as f64;
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n < EXACT {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// A parse failure, with 1-based line/column position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// 1-based line of the offending byte.
    pub line: usize,
    /// 1-based column of the offending byte.
    pub col: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON error at line {}, column {}: {}",
            self.line, self.col, self.msg
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (one value plus trailing whitespace).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.error("trailing characters after the document"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn error(&self, msg: impl Into<String>) -> JsonError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        JsonError {
            line,
            col,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{text}`")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uDC00`-range low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.error("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.error("lone low surrogate"));
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid code point"))?);
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // the encoding is already valid).
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    out.push_str(std::str::from_utf8(&rest[..len]).expect("valid UTF-8"));
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let rest = self.bytes.get(self.pos..self.pos + 4);
        let hex = rest
            .and_then(|r| std::str::from_utf8(r).ok())
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    /// Consumes a run of ASCII digits, returning how many (strict JSON
    /// requires at least one in every digit position).
    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        // JSON requires 1+ integer digits and forbids leading zeros
        // ("01"); a bare "0" is fine.
        let mut ok = match self.digits() {
            0 => false,
            1 => true,
            _ => self.bytes[int_start] != b'0',
        };
        if self.peek() == Some(b'.') {
            self.pos += 1;
            ok &= self.digits() > 0;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            ok &= self.digits() > 0;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .ok()
            .filter(|n| ok && n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, {"b": "x"}, null], "c": {"d": false}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x")
        );
        assert_eq!(v.get("c").unwrap().get("d").unwrap(), &Json::Bool(false));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""é""#).unwrap(), Json::Str("é".into()));
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(parse(r#""\ud83d""#).is_err(), "lone surrogate must fail");
    }

    #[test]
    fn reports_positions() {
        let err = parse("{\n  \"a\": nope\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("null"), "{err}");
        assert!(parse("[1, 2,]").is_err(), "trailing comma must fail");
        assert!(parse("[1] x").is_err(), "trailing garbage must fail");
    }

    #[test]
    fn integral_accessor_is_strict() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
        // Beyond f64's exact-integer range: refuse, don't corrupt.
        assert_eq!(
            parse("9007199254740991").unwrap().as_u64(),
            Some((1 << 53) - 1)
        );
        assert_eq!(parse("9007199254740993").unwrap().as_u64(), None);
        assert_eq!(parse("18446744073709551616").unwrap().as_u64(), None);
    }

    #[test]
    fn numbers_follow_strict_json_grammar() {
        assert_eq!(parse("0.5").unwrap(), Json::Num(0.5));
        assert_eq!(parse("1e-3").unwrap(), Json::Num(0.001));
        for bad in ["-.5", "1.", ".5", "1.e5", "1e", "01", "-"] {
            assert!(parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn roundtrips_ser_module_output() {
        use nosq_core::ser::JsonObject;
        let mut o = JsonObject::new();
        o.field_str("name", "quote \" slash \\ tab \t");
        o.field_f64("v", 0.25);
        let v = parse(&o.finish()).unwrap();
        assert_eq!(
            v.get("name").unwrap().as_str(),
            Some("quote \" slash \\ tab \t")
        );
        assert_eq!(v.get("v").unwrap().as_f64(), Some(0.25));
    }
}
