//! The executor's lock-free core, generic over the `sync` facade.
//!
//! This module is the distilled concurrent protocol of the campaign
//! executor — an atomic job cursor, per-worker result buffers handed
//! off at join, and monotonic progress counters — written against
//! [`SyncFacade`] so the *same* code runs two ways:
//!
//! * instantiated at [`StdSync`](nosq_check::sync::StdSync) it is the
//!   production engine behind `parallel_map` (real atomics, scoped
//!   threads, zero abstraction overhead);
//! * instantiated at [`ModelSync`](nosq_check::ModelSync) it is the
//!   `executor-core` model that `nosq check` explores exhaustively,
//!   proving every claim is unique and every result hand-off is
//!   ordered by a happens-before edge.
//!
//! Every atomic access here states, next to its `Ordering`, the
//! invariant that makes that ordering sufficient — the audit the
//! checker then actually verifies.

use std::ops::Range;

use nosq_check::sync::{AtomicCell, Ordering, SyncFacade};

/// The lock-free work-pickup cursor: workers claim `chunk` consecutive
/// job indices per bump until the grid is drained.
pub struct JobCursor<S: SyncFacade> {
    next: S::AtomicUsize,
    len: usize,
    chunk: usize,
}

impl<S: SyncFacade> JobCursor<S> {
    /// A cursor over `0..len` claiming `chunk` (at least 1) indices at
    /// a time.
    pub fn new(len: usize, chunk: usize) -> JobCursor<S> {
        JobCursor {
            next: S::AtomicUsize::new(0),
            len,
            chunk: chunk.max(1),
        }
    }

    /// Claims the next block of job indices; `None` once the grid is
    /// drained (each worker overshoots the cursor at most once, so the
    /// counter stays far from overflow).
    pub fn claim(&self) -> Option<Range<usize>> {
        // Relaxed: claim uniqueness needs only the fetch_add's RMW
        // atomicity. No data is published through the cursor — results
        // travel through buffers ordered by the thread-join edge.
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.len {
            return None;
        }
        Some(start..(start + self.chunk).min(self.len))
    }
}

/// Live progress counters shared between workers and the coordinator.
pub struct ProgressCounters<S: SyncFacade> {
    jobs_done: S::AtomicUsize,
    insts: S::AtomicU64,
}

impl<S: SyncFacade> ProgressCounters<S> {
    /// Zeroed counters.
    pub fn new() -> ProgressCounters<S> {
        ProgressCounters {
            jobs_done: S::AtomicUsize::new(0),
            insts: S::AtomicU64::new(0),
        }
    }

    /// Records one finished job.
    pub fn job_done(&self) {
        // Relaxed: a monotonic gauge read only for display; nothing is
        // synchronized through it, and the final value is observed
        // after the join edge anyway.
        self.jobs_done.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds committed instructions to the running total.
    pub fn add_insts(&self, n: u64) {
        // Relaxed: same monotonic-gauge argument as `job_done`.
        self.insts.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot of `(jobs done, instructions committed)`.
    pub fn snapshot(&self) -> (usize, u64) {
        // Relaxed: the snapshot is allowed to lag — the progress line
        // is advisory, and exact totals come from the job reports.
        (
            self.jobs_done.load(Ordering::Relaxed),
            self.insts.load(Ordering::Relaxed),
        )
    }
}

impl<S: SyncFacade> Default for ProgressCounters<S> {
    fn default() -> Self {
        ProgressCounters::new()
    }
}

/// Merges per-worker `(index, value)` buffers into index order.
///
/// # Panics
///
/// Panics if any index in `0..len` was produced zero or several times
/// (the cursor's claim-uniqueness invariant guarantees exactly once).
pub fn merge_indexed<T>(len: usize, buffers: Vec<Vec<(usize, T)>>) -> Vec<T> {
    let mut slots: Vec<Option<T>> = (0..len).map(|_| None).collect();
    for buffer in buffers {
        for (i, value) in buffer {
            assert!(slots[i].is_none(), "job {i} produced twice");
            slots[i] = Some(value);
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.unwrap_or_else(|| panic!("job {i} never produced")))
        .collect()
}

/// Maps `f` over `0..len` with `threads` workers, a [`JobCursor`]
/// pickup, and per-worker private contexts built by `init`; results
/// come back in index order regardless of which worker computed what.
///
/// This is the whole concurrent protocol of the executor in one
/// function — and being generic over `S`, it is *the* code `nosq
/// check` model-checks (see `nosq_lab::checks`), not a transliteration
/// of it.
pub fn run_grid<S, C, T, I, F>(
    len: usize,
    threads: usize,
    chunk: usize,
    init: I,
    f: F,
    poll: Option<&mut dyn FnMut()>,
) -> Vec<T>
where
    S: SyncFacade,
    T: Send,
    I: Fn() -> C + Sync,
    F: Fn(&mut C, usize) -> T + Sync,
{
    let cursor = JobCursor::<S>::new(len, chunk);
    let buffers = S::run_threads(
        threads,
        |_worker| {
            let mut ctx = init();
            let mut local = Vec::new();
            while let Some(range) = cursor.claim() {
                for i in range {
                    local.push((i, f(&mut ctx, i)));
                }
            }
            // The buffer is returned through the join edge: the
            // spawn/join pair is the only synchronization the results
            // need (and the model checker proves it suffices).
            local
        },
        poll,
    );
    merge_indexed(len, buffers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nosq_check::sync::StdSync;

    #[test]
    fn cursor_claims_cover_exactly_once() {
        let cursor = JobCursor::<StdSync>::new(10, 3);
        let mut seen = [0u32; 10];
        while let Some(range) = cursor.claim() {
            for i in range {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&n| n == 1));
        let empty = JobCursor::<StdSync>::new(0, 4);
        assert!(empty.claim().is_none());
    }

    #[test]
    fn grid_is_ordered_at_any_thread_count() {
        for threads in [1, 2, 3, 8] {
            let counters = ProgressCounters::<StdSync>::new();
            let out = run_grid::<StdSync, _, _, _, _>(
                17,
                threads,
                2,
                || (),
                |(), i| {
                    counters.job_done();
                    counters.add_insts(10);
                    i * i
                },
                None,
            );
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
            assert_eq!(counters.snapshot(), (17, 170));
        }
    }

    #[test]
    #[should_panic(expected = "never produced")]
    fn merge_rejects_missing_results() {
        merge_indexed(2, vec![vec![(0, 1)]]);
    }
}
