//! A bounded lock-free MPMC injection queue, generic over the `sync`
//! facade.
//!
//! This is the work-injection structure for the planned `nosq serve`
//! campaign service (ROADMAP): external submitters push job batches
//! while executor workers drain them, so the fixed-list [`JobCursor`]
//! (which requires the whole grid up front) no longer fits. The design
//! is the classic bounded array queue with per-cell sequence numbers
//! in the spirit of the Virtual-Link / FastForward lineage the
//! executor docs reference (best known from D. Vyukov's formulation):
//! cursors only *reserve* cells; each cell's own sequence number is
//! what publishes its payload, so producers never contend with
//! consumers on a shared index and every payload moves through storage
//! with exactly one writer at a time.
//!
//! Like [`grid`](crate::grid), the module is written against
//! [`SyncFacade`] — the `mpmc` model in [`checks`](crate::checks) runs
//! this exact code under `nosq check`, which proves the orderings
//! stated inline are sufficient (and that nothing here needs anything
//! stronger).
//!
//! [`JobCursor`]: crate::grid::JobCursor

use nosq_check::sync::{AtomicCell, Ordering, SlotCell, SyncFacade};

/// One queue cell: the payload slot plus the sequence number that
/// publishes it.
struct Cell<T: Send, S: SyncFacade> {
    /// Cell states cycle `index` (empty, lap `l`) → `index + 1` (full)
    /// → `index + capacity` (empty, lap `l + 1`).
    seq: S::AtomicUsize,
    value: S::Slot<T>,
}

/// A bounded MPMC queue: any thread may push, any thread may pop, no
/// locks anywhere (the [`SlotCell`] accesses are plain writes whose
/// exclusivity the sequence protocol guarantees — and `nosq check`
/// verifies).
pub struct InjectionQueue<T: Send, S: SyncFacade> {
    mask: usize,
    cells: Vec<Cell<T, S>>,
    enqueue_pos: S::AtomicUsize,
    dequeue_pos: S::AtomicUsize,
}

impl<T: Send, S: SyncFacade> InjectionQueue<T, S> {
    /// A queue holding at most `capacity` items (rounded up to a power
    /// of two, minimum 2).
    pub fn new(capacity: usize) -> InjectionQueue<T, S> {
        let capacity = capacity.max(2).next_power_of_two();
        let cells = (0..capacity)
            .map(|i| Cell {
                seq: S::AtomicUsize::new(i),
                value: S::Slot::new(),
            })
            .collect();
        InjectionQueue {
            mask: capacity - 1,
            cells,
            enqueue_pos: S::AtomicUsize::new(0),
            dequeue_pos: S::AtomicUsize::new(0),
        }
    }

    /// The queue's capacity.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Pushes `value`, or hands it back if the queue is full.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        // Relaxed: the cursor only stakes a tentative claim; whether
        // the claimed cell is actually usable is decided by its seq.
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let cell = &self.cells[pos & self.mask];
            // Acquire: pairs with the Release seq store in `try_pop`
            // (or the constructor) so the slot is observed empty — the
            // seq, not the cursor, is what publishes cell state.
            let seq = cell.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                // Relaxed on both edges: winning the CAS grants
                // exclusive ownership of the cell purely through RMW
                // atomicity; the payload is published by the seq
                // store below, never by the cursor.
                match self.enqueue_pos.compare_exchange(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let displaced = cell.value.put(value);
                        debug_assert!(displaced.is_none(), "cell occupied on push");
                        // Release: publishes the payload write above
                        // to the Acquire seq load in `try_pop`.
                        cell.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(_) => {
                        // Lost the cell to another producer; rescan.
                        S::spin_hint();
                        pos = self.enqueue_pos.load(Ordering::Relaxed);
                    }
                }
            } else if dif < 0 {
                // The cell is a full lap behind: queue full.
                return Err(value);
            } else {
                // A racing producer advanced the cursor under us.
                S::spin_hint();
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Pops the oldest item, or `None` if the queue is empty.
    pub fn try_pop(&self) -> Option<T> {
        // Relaxed: same tentative-claim argument as in `try_push`.
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let cell = &self.cells[pos & self.mask];
            // Acquire: pairs with the Release store in `try_push` so
            // the payload written before seq became `pos + 1` is
            // visible before we take it.
            let seq = cell.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos.wrapping_add(1) as isize;
            if dif == 0 {
                // Relaxed: see `try_push` — ownership comes from RMW
                // atomicity, publication from the seq stores.
                match self.dequeue_pos.compare_exchange(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let value = cell.value.take();
                        debug_assert!(value.is_some(), "cell empty on pop");
                        // Release: publishes the slot's emptiness to
                        // the producer that will reuse this cell a
                        // lap later.
                        cell.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return value;
                    }
                    Err(_) => {
                        S::spin_hint();
                        pos = self.dequeue_pos.load(Ordering::Relaxed);
                    }
                }
            } else if dif < 0 {
                // The cell has not been filled this lap: queue empty.
                return None;
            } else {
                S::spin_hint();
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nosq_check::sync::StdSync;

    #[test]
    fn fifo_within_capacity() {
        let q = InjectionQueue::<u32, StdSync>::new(3);
        assert_eq!(q.capacity(), 4);
        assert_eq!(q.try_pop(), None);
        for i in 0..4 {
            assert!(q.try_push(i).is_ok());
        }
        assert_eq!(q.try_push(99), Err(99));
        for i in 0..4 {
            assert_eq!(q.try_pop(), Some(i));
        }
        assert_eq!(q.try_pop(), None);
        // Reuse across laps.
        assert!(q.try_push(7).is_ok());
        assert_eq!(q.try_pop(), Some(7));
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = InjectionQueue::<u64, StdSync>::new(8);
        let producers = 3u64;
        let per_producer = 200u64;
        let total: u64 = (0..producers * per_producer).sum();
        // Fully-qualified calls: for StdSync the facade atomic *is* the
        // std atomic, whose inherent methods (std Ordering) would
        // otherwise shadow the facade trait's.
        let sum = <<StdSync as SyncFacade>::AtomicU64 as AtomicCell<u64>>::new(0);
        let popped = <<StdSync as SyncFacade>::AtomicU64 as AtomicCell<u64>>::new(0);
        StdSync::run_threads(
            6,
            |k| {
                if k < 3 {
                    // Producer: push its arithmetic slice, retrying on full.
                    for j in 0..per_producer {
                        let mut item = k as u64 * per_producer + j;
                        loop {
                            match q.try_push(item) {
                                Ok(()) => break,
                                Err(back) => {
                                    item = back;
                                    StdSync::spin_hint();
                                }
                            }
                        }
                    }
                } else {
                    // Consumer: drain until the global count is met.
                    loop {
                        if let Some(v) = q.try_pop() {
                            AtomicCell::fetch_add(&sum, v, Ordering::Relaxed);
                            AtomicCell::fetch_add(&popped, 1, Ordering::Relaxed);
                        } else if AtomicCell::load(&popped, Ordering::Relaxed)
                            >= producers * per_producer
                        {
                            break;
                        } else {
                            StdSync::spin_hint();
                        }
                    }
                }
            },
            None,
        );
        assert_eq!(AtomicCell::load(&sum, Ordering::Relaxed), total);
    }
}
