//! A bounded lock-free MPMC injection queue, generic over the `sync`
//! facade.
//!
//! This is the work-injection structure for the planned `nosq serve`
//! campaign service (ROADMAP): external submitters push job batches
//! while executor workers drain them, so the fixed-list [`JobCursor`]
//! (which requires the whole grid up front) no longer fits. The design
//! is the classic bounded array queue with per-cell sequence numbers
//! in the spirit of the Virtual-Link / FastForward lineage the
//! executor docs reference (best known from D. Vyukov's formulation):
//! cursors only *reserve* cells; each cell's own sequence number is
//! what publishes its payload, so producers never contend with
//! consumers on a shared index and every payload moves through storage
//! with exactly one writer at a time.
//!
//! Like [`grid`](crate::grid), the module is written against
//! [`SyncFacade`] — the `mpmc` model in [`checks`](crate::checks) runs
//! this exact code under `nosq check`, which proves the orderings
//! stated inline are sufficient (and that nothing here needs anything
//! stronger).
//!
//! [`JobCursor`]: crate::grid::JobCursor

use nosq_check::sync::{AtomicCell, Ordering, SlotCell, SyncFacade};

/// Why a [`InjectionQueue::try_push`] handed its value back.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// Every cell is occupied; retry after a consumer drains.
    Full(T),
    /// The queue was [closed](InjectionQueue::close); no retry will
    /// ever succeed.
    Closed(T),
}

impl<T> PushError<T> {
    /// Recovers the rejected value.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(value) | PushError::Closed(value) => value,
        }
    }

    /// Whether this rejection is permanent (the queue is closed).
    pub fn is_closed(&self) -> bool {
        matches!(self, PushError::Closed(_))
    }
}

/// One queue cell: the payload slot plus the sequence number that
/// publishes it.
struct Cell<T: Send, S: SyncFacade> {
    /// Cell states cycle `index` (empty, lap `l`) → `index + 1` (full)
    /// → `index + capacity` (empty, lap `l + 1`).
    seq: S::AtomicUsize,
    value: S::Slot<T>,
}

/// A bounded MPMC queue: any thread may push, any thread may pop, no
/// locks anywhere (the [`SlotCell`] accesses are plain writes whose
/// exclusivity the sequence protocol guarantees — and `nosq check`
/// verifies).
///
/// # Close / drain protocol
///
/// [`close`](Self::close) is the producer-side cutoff the `nosq serve`
/// daemon uses to drain its worker pool: after it, every `try_push`
/// fails with [`PushError::Closed`], while `try_pop` keeps returning
/// items already in flight. Consumers terminate on
/// [`is_drained`](Self::is_drained) — closed *and* empty. The cutoff
/// is advisory for pushes that race with `close` (a producer that
/// already passed the closed check may still land its item), so a
/// caller that needs a hard cutoff must order its last push before
/// `close` itself — exactly what the daemon does by deciding
/// submission-vs-drain under one lock, and what the `mpmc-close`
/// model in [`checks`](crate::checks) verifies: every item pushed
/// before the close (in happens-before order) is drained, never
/// stranded.
pub struct InjectionQueue<T: Send, S: SyncFacade> {
    mask: usize,
    cells: Vec<Cell<T, S>>,
    enqueue_pos: S::AtomicUsize,
    dequeue_pos: S::AtomicUsize,
    /// 0 open, 1 closed; never reset.
    closed: S::AtomicUsize,
}

impl<T: Send, S: SyncFacade> InjectionQueue<T, S> {
    /// A queue holding at most `capacity` items (rounded up to a power
    /// of two, minimum 2).
    pub fn new(capacity: usize) -> InjectionQueue<T, S> {
        let capacity = capacity.max(2).next_power_of_two();
        let cells = (0..capacity)
            .map(|i| Cell {
                seq: S::AtomicUsize::new(i),
                value: S::Slot::new(),
            })
            .collect();
        InjectionQueue {
            mask: capacity - 1,
            cells,
            enqueue_pos: S::AtomicUsize::new(0),
            dequeue_pos: S::AtomicUsize::new(0),
            closed: S::AtomicUsize::new(0),
        }
    }

    /// The queue's capacity.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Closes the queue: subsequent pushes fail with
    /// [`PushError::Closed`]; items already enqueued remain poppable
    /// (see the type-level close/drain protocol docs). Idempotent.
    pub fn close(&self) {
        // Release: a consumer that observes `closed` (Acquire in
        // `is_closed`) also observes everything the closer did first —
        // in the daemon's drain protocol, every accepted submission.
        self.closed.store(1, Ordering::Release);
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        // Acquire: pairs with the Release store in `close` (see there).
        self.closed.load(Ordering::Acquire) == 1
    }

    /// Occupancy estimate: items enqueued and not yet dequeued. Exact
    /// when the queue is quiescent; during concurrent pushes/pops it
    /// may transiently count a claimed-but-unpublished cell, which only
    /// ever *over*-reports — it never reads 0 while an item is still
    /// retrievable.
    pub fn len(&self) -> usize {
        // Relaxed on both: a monotonic-cursor difference used as a
        // gauge; nothing is synchronized through it. Reading enqueue
        // *after* dequeue keeps the difference non-negative modulo
        // wrap for any interleaving of the two loads.
        let deq = self.dequeue_pos.load(Ordering::Relaxed);
        let enq = self.enqueue_pos.load(Ordering::Relaxed);
        enq.wrapping_sub(deq).min(self.capacity())
    }

    /// Whether the occupancy estimate reads empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The consumer termination condition: closed *and* empty. Because
    /// `len` never under-reports (see [`len`](Self::len)) and `close`
    /// happens-after the final push in any sound drain protocol, a
    /// consumer that observes `is_drained` can stop — no item pushed
    /// before the close can still be in flight.
    pub fn is_drained(&self) -> bool {
        self.is_closed() && self.is_empty()
    }

    /// Pushes `value`, or hands it back if the queue is full or closed.
    pub fn try_push(&self, value: T) -> Result<(), PushError<T>> {
        if self.is_closed() {
            return Err(PushError::Closed(value));
        }
        // Relaxed: the cursor only stakes a tentative claim; whether
        // the claimed cell is actually usable is decided by its seq.
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let cell = &self.cells[pos & self.mask];
            // Acquire: pairs with the Release seq store in `try_pop`
            // (or the constructor) so the slot is observed empty — the
            // seq, not the cursor, is what publishes cell state.
            let seq = cell.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                // Relaxed on both edges: winning the CAS grants
                // exclusive ownership of the cell purely through RMW
                // atomicity; the payload is published by the seq
                // store below, never by the cursor.
                match self.enqueue_pos.compare_exchange(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let displaced = cell.value.put(value);
                        debug_assert!(displaced.is_none(), "cell occupied on push");
                        // Release: publishes the payload write above
                        // to the Acquire seq load in `try_pop`.
                        cell.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(_) => {
                        // Lost the cell to another producer; rescan.
                        S::spin_hint();
                        pos = self.enqueue_pos.load(Ordering::Relaxed);
                    }
                }
            } else if dif < 0 {
                // The cell is a full lap behind: queue full.
                return Err(PushError::Full(value));
            } else {
                // A racing producer advanced the cursor under us.
                S::spin_hint();
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Pops the oldest item, or `None` if the queue is empty.
    pub fn try_pop(&self) -> Option<T> {
        // Relaxed: same tentative-claim argument as in `try_push`.
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let cell = &self.cells[pos & self.mask];
            // Acquire: pairs with the Release store in `try_push` so
            // the payload written before seq became `pos + 1` is
            // visible before we take it.
            let seq = cell.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos.wrapping_add(1) as isize;
            if dif == 0 {
                // Relaxed: see `try_push` — ownership comes from RMW
                // atomicity, publication from the seq stores.
                match self.dequeue_pos.compare_exchange(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let value = cell.value.take();
                        debug_assert!(value.is_some(), "cell empty on pop");
                        // Release: publishes the slot's emptiness to
                        // the producer that will reuse this cell a
                        // lap later.
                        cell.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return value;
                    }
                    Err(_) => {
                        S::spin_hint();
                        pos = self.dequeue_pos.load(Ordering::Relaxed);
                    }
                }
            } else if dif < 0 {
                // The cell has not been filled this lap: queue empty.
                return None;
            } else {
                S::spin_hint();
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nosq_check::sync::StdSync;

    #[test]
    fn fifo_within_capacity() {
        let q = InjectionQueue::<u32, StdSync>::new(3);
        assert_eq!(q.capacity(), 4);
        assert_eq!(q.try_pop(), None);
        assert!(q.is_empty());
        for i in 0..4 {
            assert!(q.try_push(i).is_ok());
            assert_eq!(q.len(), i as usize + 1);
        }
        assert_eq!(q.try_push(99), Err(PushError::Full(99)));
        for i in 0..4 {
            assert_eq!(q.try_pop(), Some(i));
        }
        assert_eq!(q.try_pop(), None);
        assert!(q.is_empty());
        // Reuse across laps.
        assert!(q.try_push(7).is_ok());
        assert_eq!(q.try_pop(), Some(7));
    }

    #[test]
    fn close_rejects_pushes_but_drains_items() {
        let q = InjectionQueue::<u32, StdSync>::new(4);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert!(!q.is_closed());
        assert!(!q.is_drained());
        q.close();
        q.close(); // idempotent
        assert!(q.is_closed());
        let err = q.try_push(3).unwrap_err();
        assert!(err.is_closed());
        assert_eq!(err.into_inner(), 3);
        // Items in flight at close are still drained, FIFO.
        assert!(!q.is_drained());
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), None);
        assert!(q.is_drained());
        assert_eq!(q.try_push(4), Err(PushError::Closed(4)));
    }

    #[test]
    fn full_rejection_is_retryable_not_closed() {
        let q = InjectionQueue::<u8, StdSync>::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        let err = q.try_push(3).unwrap_err();
        assert!(!err.is_closed());
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_pop(), Some(1));
        assert!(q.try_push(err.into_inner()).is_ok());
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = InjectionQueue::<u64, StdSync>::new(8);
        let producers = 3u64;
        let per_producer = 200u64;
        let total: u64 = (0..producers * per_producer).sum();
        // Fully-qualified calls: for StdSync the facade atomic *is* the
        // std atomic, whose inherent methods (std Ordering) would
        // otherwise shadow the facade trait's.
        let sum = <<StdSync as SyncFacade>::AtomicU64 as AtomicCell<u64>>::new(0);
        let popped = <<StdSync as SyncFacade>::AtomicU64 as AtomicCell<u64>>::new(0);
        StdSync::run_threads(
            6,
            |k| {
                if k < 3 {
                    // Producer: push its arithmetic slice, retrying on full.
                    for j in 0..per_producer {
                        let mut item = k as u64 * per_producer + j;
                        loop {
                            match q.try_push(item) {
                                Ok(()) => break,
                                Err(back) => {
                                    assert!(!back.is_closed());
                                    item = back.into_inner();
                                    StdSync::spin_hint();
                                }
                            }
                        }
                    }
                } else {
                    // Consumer: drain until the global count is met.
                    loop {
                        if let Some(v) = q.try_pop() {
                            AtomicCell::fetch_add(&sum, v, Ordering::Relaxed);
                            AtomicCell::fetch_add(&popped, 1, Ordering::Relaxed);
                        } else if AtomicCell::load(&popped, Ordering::Relaxed)
                            >= producers * per_producer
                        {
                            break;
                        } else {
                            StdSync::spin_hint();
                        }
                    }
                }
            },
            None,
        );
        assert_eq!(AtomicCell::load(&sum, Ordering::Relaxed), total);
    }
}
