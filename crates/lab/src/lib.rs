//! # nosq-lab
//!
//! The experiment-campaign engine for the NoSQ reproduction: declare a
//! grid of simulator configurations × benchmark profiles, run it across
//! worker threads, and collect comparative artifacts — without writing
//! a bespoke sweep loop per figure.
//!
//! * [`campaign`] — the declarative [`Campaign`] model: presets,
//!   window/predictor sweep dimensions, workload selection, fluent
//!   [`Campaign::builder`];
//! * [`spec`] — the text/JSON spec-file format behind
//!   [`Campaign::from_spec`] (what `nosq run <spec>` parses);
//! * [`json`] — the minimal hand-rolled JSON parser (no serde in this
//!   environment);
//! * [`executor`] — the lock-free multi-threaded grid runner:
//!   atomic-cursor job pickup, per-worker result buffers, incremental
//!   sessions with a progress [`SimObserver`](nosq_core::SimObserver),
//!   and byte-deterministic output at any thread count;
//! * [`grid`] — the executor's concurrent protocol itself (cursor,
//!   buffers, counters), generic over the `nosq_check` sync facade so
//!   the identical code is model-checked by `nosq check`;
//! * [`mpmc`] — the bounded lock-free injection queue (sequence-number
//!   array queue) feeding the `nosq-serve` worker pool, same facade;
//! * [`checks`] — the `nosq check` model suite: bounded models of
//!   [`grid`] and [`mpmc`] plus the seeded-bug self-test;
//! * [`aggregate`] — per-profile matrices, suite geomeans, and
//!   speedup-vs-baseline tables as JSON/CSV [`Artifact`]s;
//! * [`reports`] — engine-backed regeneration of paper tables shared by
//!   the CLI and the bench harnesses;
//! * [`audit`] — the dependence-oracle audit grid (`nosq audit`):
//!   per-profile oracle pass, per-preset [`nosq_audit::AuditObserver`]
//!   sessions, optional fault injection;
//! * [`lint`] — the determinism source lint (`nosq lint`) with its
//!   `lint.allow` allowlist.
//!
//! The `nosq` binary (in the `nosq-serve` crate, one layer up) drives
//! all of it from the command line: `nosq run <spec>`, `nosq table5`,
//! `nosq smoke`, `nosq audit`, `nosq check`, `nosq lint`, `nosq list`,
//! plus the service-layer commands (`nosq serve` and friends).
//!
//! ## Quick start
//!
//! ```
//! use nosq_lab::{artifacts, run_campaign, Campaign, Preset, RunOptions};
//!
//! let campaign = Campaign::builder("demo")
//!     .preset(Preset::Nosq)
//!     .preset(Preset::BaselineStoresets)
//!     .profiles(["gzip", "gsm.e"])
//!     .max_insts(2_000)
//!     .baseline("baseline-storesets")
//!     .build()
//!     .unwrap();
//! let result = run_campaign(&campaign, &RunOptions::default());
//! let files = artifacts(&result);
//! assert_eq!(files.len(), 4); // matrix csv/json, summary, speedup
//! ```
//!
//! The same campaign as a spec file (see [`spec`] for the format):
//!
//! ```text
//! name      = demo
//! configs   = nosq, baseline-storesets
//! profiles  = gzip, gsm.e
//! max_insts = 2000
//! baseline  = baseline-storesets
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod audit;
pub mod campaign;
pub mod checks;
pub mod executor;
pub mod grid;
pub mod json;
pub mod lint;
pub mod mpmc;
pub mod reports;
pub mod spec;

pub use aggregate::{artifacts, timing_artifact, write_artifacts, Artifact};
pub use audit::{audit_json, run_audit, AuditCell, AuditOptions, AuditRunResult};
pub use campaign::{
    suite_from_name, Campaign, CampaignBuilder, NamedConfig, Preset, SpecError, Workload,
    DEFAULT_MAX_INSTS, DEFAULT_SEED,
};
pub use checks::{check_json, model_names, run_checks, BoundPreset, CheckOptions};
pub use executor::{
    effective_threads, parallel_map_indexed, run_campaign, run_campaign_durable, run_campaign_on,
    run_campaign_serial, synthesize_programs, CampaignResult, CkptEvent, JobTiming, ResumeState,
    RunOptions, WorkerContext,
};
pub use grid::{run_grid, JobCursor, ProgressCounters};
pub use lint::{lint_tree, Allowlist, LintFinding, LintResult};
pub use mpmc::{InjectionQueue, PushError};
