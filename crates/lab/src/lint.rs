//! The `nosq lint` determinism lint: a source scan for constructs that
//! break the workspace's byte-identical-artifacts contract.
//!
//! Every simulator artifact must be reproducible bit-for-bit across
//! machines, thread counts, and re-runs, so three families of std
//! constructs are forbidden in `crates/` outside an explicit allowlist:
//!
//! * `HashMap` / `HashSet` — iteration order is randomized per process,
//!   so any result that iterates one is silently nondeterministic
//!   (deterministic *keyed lookups* are fine, but must be allowlisted
//!   with a justification);
//! * `SystemTime` / `Instant` — wall-clock reads belong only in the
//!   explicitly nondeterministic timing artifacts;
//! * `std::env` — environment reads are hidden inputs; only the
//!   documented knobs (`NOSQ_ARTIFACT_DIR`, `NOSQ_DYN_INSTS`,
//!   `NOSQ_DEBUG_MISPREDICTS`) and CLI argument parsing are exempt;
//! * `std::sync::atomic` / `std::thread` — concurrency primitives used
//!   directly bypass the `nosq_check::sync` facade, so `nosq check`
//!   cannot model-check them; only the facade module and the checker's
//!   own scheduler may touch the real things.
//!
//! One extra family is scoped to `crates/serve/` alone: raw file-write
//! and fsync constructs (`OpenOptions`, `fs::write`, `sync_data`, …).
//! The service layer's crash-safety argument holds only if every byte
//! it persists flows through the `DurableIo` facade in `durable.rs` —
//! where the deterministic fault injector can tear, fail, or crash it —
//! so a write that bypasses the facade is untested-by-construction and
//! the lint refuses it.
//!
//! The allowlist lives at the repository root (`lint.allow`): one
//! `path pattern` pair per line, `#` comments. An entry permits a
//! pattern in exactly one file; stale entries (nothing left to permit)
//! are reported so the list cannot rot, and the report distinguishes a
//! pattern that disappeared from an entry whose *file* disappeared —
//! after a refactor splits or moves a file, its allowances must follow
//! the code to the new path. The scan strips `//` comments before
//! matching, so prose mentioning a pattern does not trip it.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// The forbidden construct names. Built with `concat!` so this file's
/// own source never contains a matching token.
pub fn patterns() -> &'static [&'static str] {
    &[
        concat!("Hash", "Map"),
        concat!("Hash", "Set"),
        concat!("System", "Time"),
        concat!("Inst", "ant"),
        concat!("std::", "env"),
        concat!("std::sync", "::atomic"),
        concat!("std::", "thread"),
        concat!("std::", "net"),
    ]
}

/// Raw file-write / fsync constructs forbidden under `crates/serve/`
/// only: the service layer must route all persistence through the
/// `DurableIo` facade so the fault-injection suite exercises every
/// write path. Built with `concat!` for the same self-exemption reason
/// as [`patterns`].
pub fn serve_durable_patterns() -> &'static [&'static str] {
    &[
        concat!("Open", "Options"),
        concat!("File::", "create"),
        concat!("fs::", "write"),
        concat!("sync_", "data"),
        concat!("sync_", "all"),
        concat!("set_", "len"),
    ]
}

/// The directory prefix the durable-I/O pattern family applies to.
const SERVE_SCOPE: &str = "crates/serve/";

/// One forbidden-construct occurrence outside the allowlist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintFinding {
    /// Repo-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The pattern that matched.
    pub pattern: &'static str,
    /// The offending source line, trimmed.
    pub text: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: `{}` is not allowlisted: {}",
            self.file, self.line, self.pattern, self.text
        )
    }
}

/// A parsed `lint.allow` file.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// `(file, pattern)` pairs, in file order.
    entries: Vec<(String, String)>,
}

impl Allowlist {
    /// Parses allowlist text: one `path pattern` pair per line,
    /// `#`-to-end-of-line comments, blank lines ignored.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some(path), Some(pattern), None) => {
                    entries.push((path.replace('\\', "/"), pattern.to_owned()));
                }
                _ => {
                    return Err(format!(
                        "lint.allow:{}: expected `path pattern`, got `{line}`",
                        idx + 1
                    ));
                }
            }
        }
        Ok(Allowlist { entries })
    }

    /// Loads the allowlist from `path`; a missing file is an empty list.
    pub fn load(path: &Path) -> Result<Allowlist, String> {
        match fs::read_to_string(path) {
            Ok(text) => Allowlist::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Allowlist::default()),
            Err(e) => Err(format!("reading {}: {e}", path.display())),
        }
    }

    /// Whether this list carries an entry for `pattern` in `file`.
    pub fn permits(&self, file: &str, pattern: &str) -> bool {
        self.entries.iter().any(|(f, p)| f == file && p == pattern)
    }

    /// Entries that permitted nothing in a finished scan — stale lines
    /// that need editing. `scanned` is the set of repo-relative files
    /// the scan actually visited, so each stale entry can say whether
    /// its file is merely clean now or gone entirely (moved, split, or
    /// deleted in a refactor).
    pub fn stale(&self, used: &[(String, String)], scanned: &[String]) -> Vec<StaleAllow> {
        self.entries
            .iter()
            .filter(|(f, p)| !used.iter().any(|(uf, up)| uf == f && up == p))
            .map(|(f, p)| StaleAllow {
                entry: format!("{f} {p}"),
                file_scanned: scanned.iter().any(|s| s == f),
            })
            .collect()
    }
}

/// A stale `lint.allow` entry plus why it is stale. The two causes call
/// for different fixes, so the report tells them apart.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaleAllow {
    /// The `path pattern` entry text.
    pub entry: String,
    /// Whether the scan visited the entry's file at all. `false` means
    /// the file was moved, split, or deleted — the allowance must
    /// follow the code to its new path, not just be dropped.
    pub file_scanned: bool,
}

impl fmt::Display for StaleAllow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.file_scanned {
            write!(
                f,
                "`{}`: pattern no longer occurs; delete the line",
                self.entry
            )
        } else {
            write!(
                f,
                "`{}`: file no longer exists; move the allowance to wherever the code went",
                self.entry
            )
        }
    }
}

/// The outcome of a lint scan.
#[derive(Clone, Debug, Default)]
pub struct LintResult {
    /// Violations (pattern hits outside the allowlist).
    pub findings: Vec<LintFinding>,
    /// Allowlist entries that permitted nothing (stale).
    pub stale_allows: Vec<StaleAllow>,
    /// Rust files scanned.
    pub files_scanned: usize,
}

impl LintResult {
    /// Whether the tree is clean (stale allowlist entries are warnings,
    /// not failures).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Scans every `.rs` file under `root/crates` against `allow`.
pub fn lint_tree(root: &Path, allow: &Allowlist) -> Result<LintResult, String> {
    let crates = root.join("crates");
    let mut files = Vec::new();
    collect_rs_files(&crates, &mut files)
        .map_err(|e| format!("walking {}: {e}", crates.display()))?;
    files.sort();

    let mut result = LintResult::default();
    let mut used: Vec<(String, String)> = Vec::new();
    let mut scanned: Vec<String> = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        scanned.push(rel.clone());
        let text =
            fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        result.files_scanned += 1;
        let mut active: Vec<&'static str> = patterns().to_vec();
        if rel.starts_with(SERVE_SCOPE) {
            active.extend_from_slice(serve_durable_patterns());
        }
        for (line_idx, raw) in text.lines().enumerate() {
            // Strip line comments so prose does not match; `//` inside
            // a string literal conservatively truncates the line, which
            // can only under-match.
            let code = raw.split("//").next().unwrap_or("");
            for &pattern in &active {
                if !code.contains(pattern) {
                    continue;
                }
                if allow.permits(&rel, pattern) {
                    let key = (rel.clone(), pattern.to_owned());
                    if !used.contains(&key) {
                        used.push(key);
                    }
                } else {
                    result.findings.push(LintFinding {
                        file: rel.clone(),
                        line: line_idx + 1,
                        pattern,
                        text: raw.trim().to_owned(),
                    });
                }
            }
        }
    }
    result.stale_allows = allow.stale(&used, &scanned);
    Ok(result)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            // Build output is the only tree worth skipping under
            // `crates/`; everything else (src, benches, bin, tests)
            // is in scope.
            if name != "target" {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(dir: &Path, rel: &str, text: &str) {
        let path = dir.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, text).unwrap();
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nosq-lint-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn flags_forbidden_constructs_and_honors_allowlist() {
        let root = scratch("basic");
        let map = concat!("Hash", "Map");
        write(
            &root,
            "crates/x/src/lib.rs",
            &format!("use std::collections::{map};\n// a {map} in prose is fine\n"),
        );
        let clean = lint_tree(&root, &Allowlist::default()).unwrap();
        assert_eq!(clean.findings.len(), 1);
        assert_eq!(clean.findings[0].pattern, map);
        assert_eq!(clean.findings[0].line, 1);
        assert_eq!(clean.findings[0].file, "crates/x/src/lib.rs");

        let allow = Allowlist::parse(&format!("crates/x/src/lib.rs {map} # keyed only\n")).unwrap();
        let allowed = lint_tree(&root, &allow).unwrap();
        assert!(allowed.is_clean());
        assert!(allowed.stale_allows.is_empty());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn stale_allowlist_entries_are_reported() {
        let root = scratch("stale");
        write(&root, "crates/x/src/lib.rs", "pub fn f() {}\n");
        let pat = concat!("Inst", "ant");
        // One entry whose file exists but is clean, one whose file was
        // refactored away — the report must tell them apart.
        let allow = Allowlist::parse(&format!(
            "crates/x/src/lib.rs {pat}\ncrates/x/src/old_split.rs {pat}\n"
        ))
        .unwrap();
        let result = lint_tree(&root, &allow).unwrap();
        assert!(result.is_clean());
        assert_eq!(result.stale_allows.len(), 2);
        let clean_file = &result.stale_allows[0];
        assert!(clean_file.file_scanned);
        assert!(clean_file.to_string().contains("delete the line"));
        let gone_file = &result.stale_allows[1];
        assert!(!gone_file.file_scanned);
        assert!(gone_file.to_string().contains("no longer exists"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn direct_concurrency_primitives_are_flagged() {
        let root = scratch("conc");
        let atomics = concat!("std::sync", "::atomic");
        let threads = concat!("std::", "thread");
        write(
            &root,
            "crates/x/src/lib.rs",
            &format!("use {atomics}::AtomicUsize;\nfn go() {{ {threads}::yield_now(); }}\n"),
        );
        let result = lint_tree(&root, &Allowlist::default()).unwrap();
        let hit: Vec<&str> = result.findings.iter().map(|f| f.pattern).collect();
        assert_eq!(hit, vec![atomics, threads]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn sockets_are_flagged_outside_the_service_layer() {
        let root = scratch("net");
        let net = concat!("std::", "net");
        write(
            &root,
            "crates/x/src/lib.rs",
            &format!("use {net}::TcpStream;\n"),
        );
        let result = lint_tree(&root, &Allowlist::default()).unwrap();
        assert_eq!(result.findings.len(), 1);
        assert_eq!(result.findings[0].pattern, net);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn raw_file_io_is_flagged_only_inside_the_service_layer() {
        let root = scratch("durable");
        let oo = concat!("Open", "Options");
        let sync = concat!("sync_", "data");
        // The same construct: forbidden under crates/serve/, out of
        // scope everywhere else (other crates have their own story —
        // the lab's artifact writer is not part of the serve crash
        // argument).
        write(
            &root,
            "crates/serve/src/bad.rs",
            &format!("use std::fs::{oo};\nfn f(x: &std::fs::File) {{ x.{sync}(); }}\n"),
        );
        write(
            &root,
            "crates/lab/src/fine.rs",
            &format!("use std::fs::{oo};\n"),
        );
        let result = lint_tree(&root, &Allowlist::default()).unwrap();
        let hits: Vec<(&str, &str)> = result
            .findings
            .iter()
            .map(|f| (f.file.as_str(), f.pattern))
            .collect();
        assert_eq!(
            hits,
            vec![
                ("crates/serve/src/bad.rs", oo),
                ("crates/serve/src/bad.rs", sync)
            ]
        );

        let allow = Allowlist::parse(&format!(
            "crates/serve/src/bad.rs {oo}\ncrates/serve/src/bad.rs {sync}\n"
        ))
        .unwrap();
        let allowed = lint_tree(&root, &allow).unwrap();
        assert!(allowed.is_clean());
        assert!(allowed.stale_allows.is_empty());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn serve_allowances_are_live() {
        // The service layer's socket/thread/clock allowances must stay
        // attached to code that actually uses them — if a refactor
        // moves the daemon's I/O, the entries must follow it (the
        // workspace-clean test would then fail on staleness, and this
        // test documents which entries are load-bearing).
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        let allow = Allowlist::load(&root.join("lint.allow")).unwrap();
        let net = concat!("std::", "net");
        for (file, pattern) in [
            ("crates/serve/src/server.rs", net),
            ("crates/serve/src/client.rs", net),
            ("crates/serve/src/server.rs", concat!("std::", "thread")),
            (
                "crates/serve/src/signal.rs",
                concat!("std::sync", "::atomic"),
            ),
            // The DurableIo facade is the one sanctioned home of raw
            // file opens and fsyncs in the service layer.
            ("crates/serve/src/durable.rs", concat!("Open", "Options")),
            ("crates/serve/src/durable.rs", concat!("sync_", "data")),
        ] {
            assert!(
                allow.permits(file, pattern),
                "lint.allow lost the `{file} {pattern}` entry"
            );
        }
        let result = lint_tree(root, &allow).unwrap();
        let stale_serve: Vec<_> = result
            .stale_allows
            .iter()
            .filter(|s| s.to_string().contains("crates/serve"))
            .collect();
        assert!(
            stale_serve.is_empty(),
            "serve allowlist entries no longer match any code: {stale_serve:?}"
        );
    }

    #[test]
    fn malformed_allowlist_is_rejected() {
        assert!(Allowlist::parse("just-a-path\n").is_err());
        assert!(Allowlist::parse("a b c\n").is_err());
        assert!(Allowlist::parse("# only a comment\n\n")
            .unwrap()
            .entries
            .is_empty());
    }

    #[test]
    fn the_workspace_itself_is_clean() {
        // CARGO_MANIFEST_DIR = crates/lab; the workspace root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        let allow = Allowlist::load(&root.join("lint.allow")).unwrap();
        let result = lint_tree(root, &allow).unwrap();
        assert!(
            result.is_clean(),
            "determinism lint violations:\n{}",
            result
                .findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(
            result.stale_allows.is_empty(),
            "stale lint.allow entries: {:?}",
            result.stale_allows
        );
        assert!(result.files_scanned > 20);
    }
}
