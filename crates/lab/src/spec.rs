//! The campaign spec-file format: plain-text `key = value` lines or a
//! JSON object, hand-parsed (no serde in this environment).
//!
//! A spec names a campaign, picks configurations, and selects a
//! workload. Both syntaxes carry the same keys; a document whose first
//! non-whitespace character is `{` is parsed as JSON, anything else as
//! the line format.
//!
//! # Line format
//!
//! ```text
//! # Figure-5-style sensitivity sweep on the selected benchmarks.
//! name      = sensitivity
//! configs   = nosq, nosq-nd            # preset names (see below)
//! workload  = selected                 # or: all | suite = specint
//! max_insts = 50000                    # per-job budget (default 150000)
//! windows   = 128, 256                 # optional window sweep
//! capacities = 512, 2048, 0            # optional predictor sweep (0 = unbounded)
//! histories = 4, 8, 12                 # optional path-history sweep
//! baseline  = nosq@w128@c2048@h8       # optional speedup reference; swept
//!                                      # dimensions suffix the grid names
//! seed      = 42                       # optional workload seed
//! ```
//!
//! Explicit benchmarks replace `workload`: `profiles = gzip, gsm.e`.
//!
//! # JSON format
//!
//! ```json
//! {
//!   "name": "sensitivity",
//!   "configs": ["nosq", "nosq-nd"],
//!   "workload": "selected",
//!   "max_insts": 50000,
//!   "windows": [128, 256],
//!   "capacities": [512, 2048, 0],
//!   "histories": [4, 8, 12],
//!   "baseline": "nosq@w128@c2048@h8",
//!   "seed": 42
//! }
//! ```
//!
//! # Configuration names
//!
//! `configs` entries are preset names: `baseline-perfect` (alias
//! `ideal`), `baseline-storesets` (alias `assoc-sq`), `nosq-nd`,
//! `nosq`, `perfect-smb`. Sweep dimensions multiply the presets into a
//! grid; grid points are named `preset@w<window>@c<cap>@h<bits>` with
//! suffixes only for swept dimensions.

use crate::campaign::{suite_from_name, Campaign, CampaignBuilder, Preset, SpecError, Workload};
use crate::json::{self, Json};

impl Campaign {
    /// Parses a campaign spec (line format or JSON, auto-detected) and
    /// builds it — every configuration is validated, profile names
    /// resolved, and the baseline cross-checked.
    pub fn from_spec(text: &str) -> Result<Campaign, SpecError> {
        if text.trim_start().starts_with('{') {
            from_json(text)
        } else {
            from_lines(text)
        }
    }
}

/// Splits a comma-separated list, trimming each item and dropping
/// empties (so trailing commas are harmless).
fn split_list(value: &str) -> Vec<String> {
    value
        .split(',')
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .collect()
}

fn parse_u64(key: &str, value: &str) -> Result<u64, SpecError> {
    value.replace('_', "").parse().map_err(|_| {
        SpecError::new(format!(
            "`{key}` expects an unsigned integer, got `{value}`"
        ))
    })
}

/// Narrows a parsed value to `u32` — window sizes and history bits must
/// reject out-of-range input rather than silently truncate it.
fn narrow_u32(key: &str, n: u64) -> Result<u32, SpecError> {
    u32::try_from(n).map_err(|_| SpecError::new(format!("`{key}` value `{n}` is out of range")))
}

fn apply_configs(mut b: CampaignBuilder, names: &[String]) -> Result<CampaignBuilder, SpecError> {
    for name in names {
        let preset = Preset::from_name(name).ok_or_else(|| {
            SpecError::new(format!(
                "unknown preset `{name}` (expected one of: {})",
                Preset::all().map(|p| p.name()).join(", ")
            ))
        })?;
        b = b.preset(preset);
    }
    Ok(b)
}

fn apply_workload_word(b: CampaignBuilder, word: &str) -> Result<CampaignBuilder, SpecError> {
    match word {
        "all" => Ok(b.all_profiles()),
        "selected" => Ok(b.selected_profiles()),
        other => match suite_from_name(other) {
            Some(suite) => Ok(b.suite(suite)),
            None => Err(SpecError::new(format!(
                "`workload` must be `all`, `selected`, or a suite name; got `{other}`"
            ))),
        },
    }
}

fn from_lines(text: &str) -> Result<Campaign, SpecError> {
    let mut b = Campaign::builder("unnamed");
    let mut named = false;
    let mut selected = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = match raw.find('#') {
            Some(at) => &raw[..at],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let at = |msg: String| SpecError::new(format!("line {}: {msg}", idx + 1));
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| at(format!("expected `key = value`, got `{line}`")))?;
        let (key, value) = (key.trim(), value.trim());
        if value.is_empty() {
            return Err(at(format!("`{key}` has no value")));
        }
        let wrap = |r: Result<CampaignBuilder, SpecError>| r.map_err(|e| at(e.msg));
        b = match key {
            "name" => {
                named = true;
                b.name(value)
            }
            "configs" => wrap(apply_configs(b, &split_list(value)))?,
            "profiles" => {
                selected = true;
                b.profiles(split_list(value))
            }
            "workload" => {
                selected = true;
                wrap(apply_workload_word(b, value))?
            }
            "suite" => {
                selected = true;
                let suite =
                    suite_from_name(value).ok_or_else(|| at(format!("unknown suite `{value}`")))?;
                b.suite(suite)
            }
            "max_insts" => {
                let n = parse_u64(key, value).map_err(|e| at(e.msg))?;
                b.max_insts(n)
            }
            "seed" => {
                let n = parse_u64(key, value).map_err(|e| at(e.msg))?;
                b.seed(n)
            }
            "baseline" => b.baseline(value),
            "windows" | "window" => {
                let mut nb = b;
                for w in split_list(value) {
                    let w = parse_u64(key, &w).and_then(|n| narrow_u32(key, n));
                    nb = nb.window(w.map_err(|e| at(e.msg))?);
                }
                nb
            }
            "capacities" | "capacity" => {
                let mut nb = b;
                for c in split_list(value) {
                    let c = parse_u64(key, &c).map_err(|e| at(e.msg))?;
                    nb = nb.capacity(c as usize);
                }
                nb
            }
            "histories" | "history_bits" => {
                let mut nb = b;
                for h in split_list(value) {
                    let h = parse_u64(key, &h).and_then(|n| narrow_u32(key, n));
                    nb = nb.history_bits(h.map_err(|e| at(e.msg))?);
                }
                nb
            }
            other => return Err(at(format!("unknown key `{other}`"))),
        };
    }
    if !named {
        return Err(SpecError::new("spec is missing `name`"));
    }
    if !selected {
        return Err(SpecError::new(
            "spec is missing a workload selection (`profiles`, `workload`, or `suite`)",
        ));
    }
    b.build()
}

fn str_list(key: &str, value: &Json) -> Result<Vec<String>, SpecError> {
    let items = value
        .as_array()
        .ok_or_else(|| SpecError::new(format!("`{key}` must be an array of strings")))?;
    items
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_owned)
                .ok_or_else(|| SpecError::new(format!("`{key}` must contain only strings")))
        })
        .collect()
}

fn u64_list(key: &str, value: &Json) -> Result<Vec<u64>, SpecError> {
    let items = value
        .as_array()
        .ok_or_else(|| SpecError::new(format!("`{key}` must be an array of integers")))?;
    items
        .iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| SpecError::new(format!("`{key}` must contain only integers")))
        })
        .collect()
}

fn json_u64(key: &str, value: &Json) -> Result<u64, SpecError> {
    value
        .as_u64()
        .ok_or_else(|| SpecError::new(format!("`{key}` must be an unsigned integer")))
}

fn from_json(text: &str) -> Result<Campaign, SpecError> {
    let doc = json::parse(text).map_err(|e| SpecError::new(e.to_string()))?;
    let fields = doc
        .as_object()
        .ok_or_else(|| SpecError::new("spec must be a JSON object"))?;
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| SpecError::new("spec is missing a string `name`"))?;
    let mut b = Campaign::builder(name);
    let mut selected = false;
    for (key, value) in fields {
        b = match key.as_str() {
            "name" => b,
            "configs" => apply_configs(b, &str_list(key, value)?)?,
            "profiles" => {
                selected = true;
                b.workload(Workload::Profiles(str_list(key, value)?))
            }
            "workload" => {
                selected = true;
                let word = value
                    .as_str()
                    .ok_or_else(|| SpecError::new("`workload` must be a string"))?;
                apply_workload_word(b, word)?
            }
            "suite" => {
                selected = true;
                let word = value
                    .as_str()
                    .ok_or_else(|| SpecError::new("`suite` must be a string"))?;
                let suite = suite_from_name(word)
                    .ok_or_else(|| SpecError::new(format!("unknown suite `{word}`")))?;
                b.suite(suite)
            }
            "max_insts" => b.max_insts(json_u64(key, value)?),
            "seed" => b.seed(json_u64(key, value)?),
            "baseline" => {
                let word = value
                    .as_str()
                    .ok_or_else(|| SpecError::new("`baseline` must be a string"))?;
                b.baseline(word)
            }
            "windows" => {
                let mut nb = b;
                for w in u64_list(key, value)? {
                    nb = nb.window(narrow_u32(key, w)?);
                }
                nb
            }
            "capacities" => {
                let mut nb = b;
                for c in u64_list(key, value)? {
                    nb = nb.capacity(c as usize);
                }
                nb
            }
            "histories" => {
                let mut nb = b;
                for h in u64_list(key, value)? {
                    nb = nb.history_bits(narrow_u32(key, h)?);
                }
                nb
            }
            other => return Err(SpecError::new(format!("unknown key `{other}`"))),
        };
    }
    if !selected {
        return Err(SpecError::new(
            "spec is missing a workload selection (`profiles`, `workload`, or `suite`)",
        ));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE_SPEC: &str = "
# comment-only line
name = demo
configs = nosq, assoc-sq   # trailing comment
profiles = gzip, gsm.e, applu
max_insts = 9_000
baseline = assoc-sq
";

    #[test]
    fn line_format_parses() {
        let c = Campaign::from_spec(LINE_SPEC).unwrap();
        assert_eq!(c.name, "demo");
        assert_eq!(c.configs.len(), 2);
        assert_eq!(c.configs[1].name, "baseline-storesets");
        assert_eq!(c.profiles.len(), 3);
        assert_eq!(c.baseline, Some(1));
        assert_eq!(c.configs[0].config.max_insts, 9_000);
    }

    #[test]
    fn json_format_parses() {
        let c = Campaign::from_spec(
            r#"{
                "name": "demo",
                "configs": ["nosq", "nosq-nd"],
                "workload": "selected",
                "max_insts": 5000,
                "histories": [4, 8],
                "baseline": "nosq@h4"
            }"#,
        )
        .unwrap();
        assert_eq!(c.configs.len(), 4);
        assert_eq!(c.configs[0].name, "nosq@h4");
        assert_eq!(c.baseline, Some(0));
        assert!(!c.profiles.is_empty());
    }

    #[test]
    fn the_two_formats_agree() {
        let a = Campaign::from_spec(LINE_SPEC).unwrap();
        let b = Campaign::from_spec(
            r#"{"name":"demo","configs":["nosq","assoc-sq"],
                "profiles":["gzip","gsm.e","applu"],
                "max_insts":9000,"baseline":"assoc-sq"}"#,
        )
        .unwrap();
        assert_eq!(a.name, b.name);
        assert_eq!(
            a.configs.iter().map(|c| &c.name).collect::<Vec<_>>(),
            b.configs.iter().map(|c| &c.name).collect::<Vec<_>>()
        );
        assert_eq!(a.profiles.len(), b.profiles.len());
        assert_eq!(a.baseline, b.baseline);
    }

    #[test]
    fn line_errors_carry_line_numbers() {
        let err =
            Campaign::from_spec("name = x\nconfigs = warp-drive\nprofiles = gzip").unwrap_err();
        assert!(err.msg.contains("line 2"), "{err}");
        assert!(err.msg.contains("warp-drive"), "{err}");
        let err = Campaign::from_spec("name = x\nbudget = 5\n").unwrap_err();
        assert!(err.msg.contains("unknown key"), "{err}");
    }

    #[test]
    fn json_errors_are_descriptive() {
        let err = Campaign::from_spec("{\"name\": \"x\", \"configs\": [1]}").unwrap_err();
        assert!(err.msg.contains("configs"), "{err}");
        let err = Campaign::from_spec("{\"name\": \"x\",}").unwrap_err();
        assert!(err.msg.contains("JSON"), "{err}");
        let err = Campaign::from_spec("{\"configs\": [\"nosq\"]}").unwrap_err();
        assert!(err.msg.contains("name"), "{err}");
    }

    #[test]
    fn missing_sections_are_rejected() {
        assert!(Campaign::from_spec("configs = nosq\nprofiles = gzip")
            .unwrap_err()
            .msg
            .contains("name"));
        assert!(Campaign::from_spec("name = x\nconfigs = nosq")
            .unwrap_err()
            .msg
            .contains("workload"));
    }

    #[test]
    fn module_doc_examples_build() {
        // The module docs (and the README) show these specs verbatim;
        // keep them honest — sweeps suffix the grid names, so the
        // baseline must be a full grid name.
        let line = "
name      = sensitivity
configs   = nosq, nosq-nd
workload  = selected
max_insts = 50000
windows   = 128, 256
capacities = 512, 2048, 0
histories = 4, 8, 12
baseline  = nosq@w128@c2048@h8
seed      = 42
";
        let a = Campaign::from_spec(line).unwrap();
        let b = Campaign::from_spec(
            r#"{
  "name": "sensitivity",
  "configs": ["nosq", "nosq-nd"],
  "workload": "selected",
  "max_insts": 50000,
  "windows": [128, 256],
  "capacities": [512, 2048, 0],
  "histories": [4, 8, 12],
  "baseline": "nosq@w128@c2048@h8",
  "seed": 42
}"#,
        )
        .unwrap();
        assert_eq!(a.configs.len(), 2 * 2 * 3 * 3);
        assert_eq!(a.baseline, b.baseline);
        assert!(a.baseline.is_some());
    }

    #[test]
    fn out_of_range_sweep_values_are_rejected_not_truncated() {
        // 2^32 + 128 would truncate to a valid window of 128.
        let spec = format!(
            "name = x\nconfigs = nosq\nprofiles = gzip\nwindows = {}",
            (1u64 << 32) + 128
        );
        let err = Campaign::from_spec(&spec).unwrap_err();
        assert!(err.msg.contains("out of range"), "{err}");
        let err = Campaign::from_spec(&format!(
            "{{\"name\":\"x\",\"configs\":[\"nosq\"],\"profiles\":[\"gzip\"],\
             \"histories\":[{}]}}",
            (1u64 << 32) + 8
        ))
        .unwrap_err();
        assert!(err.msg.contains("out of range"), "{err}");
    }

    #[test]
    fn suite_key_selects_a_suite() {
        let c = Campaign::from_spec("name = s\nconfigs = nosq\nsuite = specfp\nmax_insts = 100")
            .unwrap();
        assert!(c
            .profiles
            .iter()
            .all(|p| p.suite == nosq_trace::Suite::SpecFp));
    }
}
