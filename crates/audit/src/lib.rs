//! # nosq-audit
//!
//! A dependence-oracle auditor for the NoSQ pipeline: proves every
//! speculative bypass right, or says exactly which one is wrong.
//!
//! The NoSQ design (MICRO-39 2006) commits loads whose values were
//! *predicted* — bypassed from a store picked by a path-sensitive
//! distance predictor and verified only by an SVW-filtered in-order
//! re-execution. Every counter the simulator reports is therefore the
//! product of speculation plus verification, and a bug in either half
//! silently shifts results instead of crashing. This crate closes that
//! loop with two pieces:
//!
//! 1. **The oracle pass** — [`DependenceGraph`] (re-exported from
//!    `nosq-trace`) statically analyzes a committed instruction stream
//!    in one pass and records, for every load, the exact per-byte set
//!    of producing stores, the dependence distance, partial/multi-source
//!    classification, and static [`StoreSet`] clusters.
//! 2. **The audit observer** — [`AuditObserver`] implements
//!    [`SimObserver`] and cross-checks the live
//!    pipeline against the oracle at commit: a committed, un-squashed
//!    load must carry the oracle's architectural value; a squash must
//!    correspond to a real value mismatch; and the run's aggregate
//!    verification counters must be consistent with the graph.
//!
//! Violations become structured [`AuditDiagnostic`]s (rule id, sequence
//! number, PC, expected vs. actual producer) collected into an
//! [`AuditReport`] — never panics — so the auditor can run over full
//! campaign grids and fault-injection experiments alike.
//!
//! The rules are value-based on purpose: NoSQ's own verification is
//! value-based, so a bypass from the *wrong* store that happens to carry
//! the *right* value commits correctly by design. The auditor counts
//! those as [`AuditStats::coincidental_bypasses`] instead of flagging
//! them, which keeps the false-positive rate at zero by construction.
//!
//! ## Quick start
//!
//! ```
//! use nosq_audit::{audit_config, DependenceGraph};
//! use nosq_core::SimConfig;
//! use nosq_trace::{synthesize, Profile};
//!
//! let program = synthesize(Profile::by_name("gzip").unwrap(), 42);
//! let graph = DependenceGraph::from_program(&program, 20_000);
//! let (report, audit) = audit_config(&program, &graph, SimConfig::nosq(20_000));
//! assert!(audit.is_clean(), "{}", audit.to_json());
//! assert_eq!(audit.stats.loads, report.memory.loads);
//! ```
//!
//! Fault injection (`FaultPlan::break_predictor`) corrupts bypass
//! targets *and* suppresses their verification, which is exactly the
//! class of bug the auditor exists to catch:
//!
//! ```
//! use nosq_audit::{audit_config, AuditRule, DependenceGraph};
//! use nosq_core::{FaultPlan, LsuModel, SimConfig};
//! use nosq_trace::{synthesize, Profile};
//!
//! let program = synthesize(Profile::by_name("gzip").unwrap(), 42);
//! let graph = DependenceGraph::from_program(&program, 30_000);
//! let cfg = SimConfig::builder()
//!     .lsu(LsuModel::Nosq { delay: true })
//!     .max_insts(30_000)
//!     .faults(FaultPlan {
//!         break_predictor: Some(8),
//!     })
//!     .build();
//! let (_report, audit) = audit_config(&program, &graph, cfg);
//! assert!(!audit.is_clean());
//! assert!(audit
//!     .diagnostics
//!     .iter()
//!     .any(|d| d.rule == AuditRule::SvwFilterUnsound));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nosq_core::ser::{JsonArray, JsonObject};
use nosq_core::{
    CommittedLoadKind, LoadCommitEvent, SimConfig, SimObserver, SimReport, Simulator, StopCondition,
};
use nosq_isa::Program;
use nosq_trace::record::Coverage;

pub use nosq_trace::{DepGraphBuilder, DependenceGraph, LoadDep, StoreNode, StoreSet};

/// Default cap on retained [`AuditDiagnostic`]s per report; violations
/// beyond the cap are still counted in [`AuditReport::violations`].
pub const DEFAULT_MAX_DIAGNOSTICS: usize = 64;

/// The audit rule a diagnostic violates.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AuditRule {
    /// A committed, un-squashed load's value differs from the oracle's
    /// architectural value (the catch-all integrity rule).
    ValueIntegrity,
    /// A *bypassed* load with a wrong value committed without
    /// re-execution: the SVW filter vouched for a bypass it cannot have
    /// proven correct.
    SvwFilterUnsound,
    /// A normal/delayed load that the oracle says communicates
    /// in-window committed a wrong value without re-execution: the
    /// pipeline missed a store-load communication entirely.
    MissedCommunication,
    /// A re-executed load squashed even though its value matched the
    /// oracle — re-execution reads committed memory, so a mismatch
    /// there with a correct value is impossible legitimately.
    SquashConsistency,
    /// The pipeline's commit stream diverged from the oracle's load
    /// order (wrong seq/PC/address/rename view at a commit event).
    StreamDesync,
    /// An end-of-run aggregate counter is inconsistent with the
    /// observed commit stream or the dependence graph.
    AggregateMismatch,
}

impl AuditRule {
    /// Stable machine-readable rule identifier.
    pub fn id(self) -> &'static str {
        match self {
            AuditRule::ValueIntegrity => "value-integrity",
            AuditRule::SvwFilterUnsound => "svw-filter-unsound",
            AuditRule::MissedCommunication => "missed-communication",
            AuditRule::SquashConsistency => "squash-consistency",
            AuditRule::StreamDesync => "stream-desync",
            AuditRule::AggregateMismatch => "aggregate-mismatch",
        }
    }
}

impl std::fmt::Display for AuditRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// One audit violation: which rule, where, and what the oracle expected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditDiagnostic {
    /// The violated rule.
    pub rule: AuditRule,
    /// Dynamic sequence number of the offending load (0 for end-of-run
    /// aggregate checks).
    pub seq: u64,
    /// Static PC of the offending load (0 for aggregate checks).
    pub pc: u64,
    /// The oracle's producing store SSN (`None` when the oracle says the
    /// load reads initial/committed memory, or for aggregate checks).
    pub expected_ssn: Option<u64>,
    /// The SSN the pipeline bypassed from (`None` for un-bypassed loads
    /// and aggregate checks).
    pub actual_ssn: Option<u64>,
    /// Human-readable specifics (values, counters, distances).
    pub detail: String,
}

impl std::fmt::Display for AuditDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] seq={} pc={:#x}", self.rule, self.seq, self.pc)?;
        match (self.expected_ssn, self.actual_ssn) {
            (Some(e), Some(a)) => write!(f, " expected-ssn={e} actual-ssn={a}")?,
            (Some(e), None) => write!(f, " expected-ssn={e}")?,
            (None, Some(a)) => write!(f, " actual-ssn={a}")?,
            (None, None) => {}
        }
        write!(f, ": {}", self.detail)
    }
}

impl AuditDiagnostic {
    fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_str("rule", self.rule.id())
            .field_u64("seq", self.seq)
            .field_u64("pc", self.pc);
        match self.expected_ssn {
            Some(e) => o.field_u64("expected_ssn", e),
            None => o.field_raw("expected_ssn", "null"),
        };
        match self.actual_ssn {
            Some(a) => o.field_u64("actual_ssn", a),
            None => o.field_raw("actual_ssn", "null"),
        };
        o.field_str("detail", &self.detail);
        o.finish()
    }
}

/// Commit-stream tallies the auditor keeps alongside its rule checks.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AuditStats {
    /// Committed loads observed.
    pub loads: u64,
    /// Loads that committed in bypassed mode.
    pub bypassed: u64,
    /// Loads that committed in delayed mode.
    pub delayed: u64,
    /// Un-squashed bypasses that named exactly the oracle's
    /// full-coverage producer.
    pub exact_bypasses: u64,
    /// Un-squashed bypasses from a store *other* than the oracle
    /// producer that still carried the architecturally right value —
    /// legitimate under value-based verification, so a statistic rather
    /// than a diagnostic.
    pub coincidental_bypasses: u64,
    /// Squashes of loads whose committed value was already right (the
    /// §3.5 shift-mismatch phantom squash) — legitimate, conservative
    /// hardware behavior.
    pub phantom_squashes: u64,
    /// Verification squashes observed (any cause).
    pub mispredicts: u64,
    /// Loads whose re-execution the SVW filter elided.
    pub filtered: u64,
    /// Loads re-executed in the back-end.
    pub reexecs: u64,
    /// Loads whose bypass was corrupted by fault injection.
    pub injected: u64,
}

impl AuditStats {
    fn to_json(self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("loads", self.loads)
            .field_u64("bypassed", self.bypassed)
            .field_u64("delayed", self.delayed)
            .field_u64("exact_bypasses", self.exact_bypasses)
            .field_u64("coincidental_bypasses", self.coincidental_bypasses)
            .field_u64("phantom_squashes", self.phantom_squashes)
            .field_u64("mispredicts", self.mispredicts)
            .field_u64("filtered", self.filtered)
            .field_u64("reexecs", self.reexecs)
            .field_u64("injected", self.injected);
        o.finish()
    }
}

/// Everything the auditor concluded about one run.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// Commit-stream tallies.
    pub stats: AuditStats,
    /// Total rule violations (including any past the diagnostics cap).
    pub violations: u64,
    /// Retained diagnostics, in detection order.
    pub diagnostics: Vec<AuditDiagnostic>,
    /// Whether `violations` exceeded the diagnostics cap.
    pub truncated: bool,
}

impl AuditReport {
    /// Whether the run passed every audit rule.
    pub fn is_clean(&self) -> bool {
        self.violations == 0
    }

    /// Serializes the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut diags = JsonArray::new();
        for d in &self.diagnostics {
            diags.push_raw(&d.to_json());
        }
        let mut o = JsonObject::new();
        o.field_u64("violations", self.violations)
            .field_raw("truncated", if self.truncated { "true" } else { "false" })
            .field_raw("stats", &self.stats.to_json())
            .field_raw("diagnostics", &diags.finish());
        o.finish()
    }
}

/// A [`SimObserver`] that cross-checks every committed load against the
/// dependence oracle, then reconciles the run's aggregate counters in
/// [`AuditObserver::finalize`].
///
/// The observer walks the oracle's committed-load list with a cursor —
/// loads commit in program order on the correct path, so the `k`-th
/// commit event must be the `k`-th oracle load; any divergence is itself
/// a [`AuditRule::StreamDesync`] diagnostic.
#[derive(Debug)]
pub struct AuditObserver<'g> {
    graph: &'g DependenceGraph,
    /// The pipeline's in-window communication criterion (ROB size).
    window: u64,
    cursor: usize,
    stats: AuditStats,
    violations: u64,
    max_diagnostics: usize,
    diagnostics: Vec<AuditDiagnostic>,
}

impl<'g> AuditObserver<'g> {
    /// Creates an auditor over `graph` for a pipeline whose in-window
    /// communication criterion is `window` instructions (the configured
    /// ROB size).
    pub fn new(graph: &'g DependenceGraph, window: u64) -> AuditObserver<'g> {
        AuditObserver {
            graph,
            window,
            cursor: 0,
            stats: AuditStats::default(),
            violations: 0,
            max_diagnostics: DEFAULT_MAX_DIAGNOSTICS,
            diagnostics: Vec::new(),
        }
    }

    /// Overrides the retained-diagnostics cap (the violation *count* is
    /// always exact).
    pub fn max_diagnostics(mut self, cap: usize) -> AuditObserver<'g> {
        self.max_diagnostics = cap;
        self
    }

    /// Tallies so far (useful mid-session).
    pub fn stats(&self) -> &AuditStats {
        &self.stats
    }

    fn flag(
        &mut self,
        rule: AuditRule,
        seq: u64,
        pc: u64,
        expected_ssn: Option<u64>,
        actual_ssn: Option<u64>,
        detail: String,
    ) {
        self.violations += 1;
        if self.diagnostics.len() < self.max_diagnostics {
            self.diagnostics.push(AuditDiagnostic {
                rule,
                seq,
                pc,
                expected_ssn,
                actual_ssn,
                detail,
            });
        }
    }

    /// Fetches the oracle record for a commit event, flagging a
    /// [`AuditRule::StreamDesync`] and resynchronizing when the streams
    /// disagree.
    fn oracle_record(&mut self, ev: &LoadCommitEvent) -> Option<LoadDep> {
        let expected = self.graph.loads().get(self.cursor).copied();
        match expected {
            Some(dep) if dep.seq == ev.seq => {
                self.cursor += 1;
                let consistent = dep.pc == ev.pc
                    && dep.addr == ev.addr
                    && dep.stores_before == ev.stores_before
                    && dep.value == ev.arch_value;
                if !consistent {
                    self.flag(
                        AuditRule::StreamDesync,
                        ev.seq,
                        ev.pc,
                        None,
                        None,
                        format!(
                            "commit event disagrees with oracle load: \
                             pc {:#x}/{:#x} addr {:#x}/{:#x} stores_before {}/{} \
                             arch value {:#x}/{:#x} (event/oracle)",
                            ev.pc,
                            dep.pc,
                            ev.addr,
                            dep.addr,
                            ev.stores_before,
                            dep.stores_before,
                            ev.arch_value,
                            dep.value
                        ),
                    );
                    return None;
                }
                Some(dep)
            }
            _ => {
                let expected_seq = expected.map(|d| d.seq);
                self.flag(
                    AuditRule::StreamDesync,
                    ev.seq,
                    ev.pc,
                    None,
                    None,
                    format!(
                        "commit stream out of step with oracle: event seq {} where the \
                         oracle expects {:?}",
                        ev.seq, expected_seq
                    ),
                );
                // Resynchronize on the event's seq so one desync does
                // not cascade into a diagnostic per remaining load.
                let found = self.graph.load_by_seq(ev.seq).copied();
                if let Some(dep) = found {
                    self.cursor = self.graph.loads().partition_point(|l| l.seq <= dep.seq);
                }
                found
            }
        }
    }

    /// Consumes the auditor at end of run, reconciling the session's
    /// [`SimReport`] aggregates against the observed commit stream and
    /// the dependence graph.
    pub fn finalize(mut self, report: &SimReport) -> AuditReport {
        let mut aggregate = |name: &str, observed: u64, reported: u64| {
            if observed != reported {
                self.violations += 1;
                if self.diagnostics.len() < self.max_diagnostics {
                    self.diagnostics.push(AuditDiagnostic {
                        rule: AuditRule::AggregateMismatch,
                        seq: 0,
                        pc: 0,
                        expected_ssn: None,
                        actual_ssn: None,
                        detail: format!(
                            "{name}: audit observed {observed}, report says {reported}"
                        ),
                    });
                }
            }
        };
        aggregate("committed loads", self.stats.loads, report.memory.loads);
        aggregate(
            "committed stores",
            self.graph.stores().len() as u64,
            report.memory.stores,
        );
        aggregate(
            "verification squashes",
            self.stats.mispredicts,
            report.verification.bypass_mispredicts + report.verification.ordering_squashes,
        );
        aggregate(
            "filtered re-executions",
            self.stats.filtered,
            report.verification.reexec_filtered,
        );
        aggregate(
            "back-end dcache reads",
            self.stats.reexecs,
            report.verification.backend_dcache_reads,
        );
        let comm = self.graph.comm_stats(self.window);
        aggregate(
            "in-window communicating loads",
            comm.comm_loads,
            report.memory.comm_loads,
        );
        aggregate(
            "partial-word communicating loads",
            comm.partial_comm,
            report.memory.partial_comm_loads,
        );
        let truncated = self.violations > self.diagnostics.len() as u64;
        AuditReport {
            stats: self.stats,
            violations: self.violations,
            diagnostics: self.diagnostics,
            truncated,
        }
    }
}

impl SimObserver for AuditObserver<'_> {
    fn on_load_commit(&mut self, ev: &LoadCommitEvent) {
        self.stats.loads += 1;
        match ev.kind {
            CommittedLoadKind::Bypassed { .. } => self.stats.bypassed += 1,
            CommittedLoadKind::Delayed => self.stats.delayed += 1,
            CommittedLoadKind::Normal => {}
        }
        if ev.reexec {
            self.stats.reexecs += 1;
        } else {
            self.stats.filtered += 1;
        }
        if ev.mispredict {
            self.stats.mispredicts += 1;
        }
        if ev.injected {
            self.stats.injected += 1;
        }

        let Some(dep) = self.oracle_record(ev) else {
            return;
        };
        let bypassed = matches!(ev.kind, CommittedLoadKind::Bypassed { .. });
        let oracle_producer = (dep.youngest_ssn != 0).then_some(dep.youngest_ssn);

        // Rule 1 — value integrity: an un-squashed committed load must
        // carry the oracle's architectural value.
        if !ev.mispredict && ev.value != dep.value {
            let rule = if ev.reexec {
                // Re-execution reads committed memory; a wrong value
                // here means the replay datapath itself is broken.
                AuditRule::ValueIntegrity
            } else if bypassed {
                AuditRule::SvwFilterUnsound
            } else if dep.in_window(self.window) {
                AuditRule::MissedCommunication
            } else {
                AuditRule::ValueIntegrity
            };
            self.flag(
                rule,
                ev.seq,
                ev.pc,
                oracle_producer,
                ev.predicted_ssn,
                format!(
                    "committed value {:#x}, oracle says {:#x} (distance {}, coverage {:?}{})",
                    ev.value,
                    dep.value,
                    dep.store_distance,
                    dep.coverage,
                    if ev.injected { ", fault-injected" } else { "" }
                ),
            );
        }

        // Rule 2 — squash consistency: a re-executed load only squashes
        // on a real value mismatch (re-execution is exact). Filtered
        // squashes with a right value are the §3.5 shift-mismatch
        // phantom squash: conservative but legitimate.
        if ev.mispredict && ev.value == dep.value {
            if ev.reexec {
                self.flag(
                    AuditRule::SquashConsistency,
                    ev.seq,
                    ev.pc,
                    oracle_producer,
                    ev.predicted_ssn,
                    format!(
                        "re-executed load squashed with the correct value {:#x}",
                        ev.value
                    ),
                );
            } else {
                self.stats.phantom_squashes += 1;
            }
        }

        // Rule 3 — producer attribution for surviving bypasses. A
        // bypass from the wrong store with the right value is legal
        // under value-based verification: a statistic, not a violation.
        if bypassed && !ev.mispredict {
            let exact = match ev.predicted_ssn {
                // A real bypass is exact when it names the oracle's
                // youngest producer and that store covers every byte;
                // the perfect-SMB oracle additionally gets idealized
                // multi-source support, so naming the youngest producer
                // suffices there.
                Some(p) => p == dep.youngest_ssn && (dep.coverage == Coverage::Full || ev.oracle),
                None => ev.oracle,
            };
            if exact {
                self.stats.exact_bypasses += 1;
            } else {
                self.stats.coincidental_bypasses += 1;
            }
        }
    }
}

/// Runs `cfg` over `program` with an [`AuditObserver`] attached and
/// returns both the session's [`SimReport`] and the audit verdict.
///
/// `graph` must be the oracle for the same committed stream the
/// configuration will execute (same program, same instruction budget) —
/// [`DependenceGraph::from_program`] with `cfg`'s `max_insts` — and is
/// borrowed rather than rebuilt so one oracle pass can audit a whole
/// grid of configurations.
pub fn audit_config(
    program: &Program,
    graph: &DependenceGraph,
    cfg: SimConfig,
) -> (SimReport, AuditReport) {
    let window = cfg.machine.rob_size as u64;
    let mut obs = AuditObserver::new(graph, window);
    let mut sim = Simulator::new(program, cfg);
    sim.attach_observer(Box::new(&mut obs));
    sim.run_until(StopCondition::Done);
    let report = sim.finish();
    let audit = obs.finalize(&report);
    (report, audit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nosq_core::{FaultPlan, LsuModel};
    use nosq_trace::{synthesize, Profile};

    fn program() -> Program {
        synthesize(Profile::by_name("gzip").unwrap(), 42)
    }

    #[test]
    fn clean_run_has_no_diagnostics() {
        let p = program();
        let graph = DependenceGraph::from_program(&p, 20_000);
        for cfg in [
            SimConfig::nosq(20_000),
            SimConfig::nosq_no_delay(20_000),
            SimConfig::perfect_smb(20_000),
            SimConfig::baseline_storesets(20_000),
        ] {
            let (report, audit) = audit_config(&p, &graph, cfg);
            assert!(
                audit.is_clean(),
                "expected clean audit, got {}",
                audit.to_json()
            );
            assert_eq!(audit.stats.loads, report.memory.loads);
        }
    }

    #[test]
    fn fault_injection_is_caught() {
        let p = program();
        let graph = DependenceGraph::from_program(&p, 30_000);
        let cfg = SimConfig::builder()
            .lsu(LsuModel::Nosq { delay: true })
            .max_insts(30_000)
            .faults(FaultPlan {
                break_predictor: Some(8),
            })
            .build();
        let (_report, audit) = audit_config(&p, &graph, cfg);
        assert!(!audit.is_clean(), "injected faults must surface");
        assert!(audit
            .diagnostics
            .iter()
            .all(|d| d.rule == AuditRule::SvwFilterUnsound));
        assert!(audit.stats.injected > 0);
    }

    #[test]
    fn desync_is_reported_and_resynchronized() {
        let p = program();
        let graph = DependenceGraph::from_program(&p, 5_000);
        let mut obs = AuditObserver::new(&graph, 128);
        let dep = graph.loads()[3];
        // Replay oracle loads 3.. as commit events: the first is a
        // desync (cursor expects load 0), then the cursor resyncs and
        // the rest stream cleanly.
        for dep in &graph.loads()[3..] {
            let ev = LoadCommitEvent {
                cycle: 1,
                seq: dep.seq,
                pc: dep.pc,
                addr: dep.addr,
                kind: CommittedLoadKind::Normal,
                predicted_ssn: None,
                value: dep.value,
                arch_value: dep.value,
                reexec: true,
                mispredict: false,
                oracle: false,
                stores_before: dep.stores_before,
                injected: false,
            };
            obs.on_load_commit(&ev);
        }
        assert_eq!(obs.violations, 1);
        assert_eq!(obs.diagnostics[0].rule, AuditRule::StreamDesync);
        assert_eq!(obs.diagnostics[0].seq, dep.seq);
    }

    #[test]
    fn diagnostics_cap_truncates_but_counts() {
        let p = program();
        let graph = DependenceGraph::from_program(&p, 5_000);
        let mut obs = AuditObserver::new(&graph, 128).max_diagnostics(2);
        for dep in graph.loads() {
            let ev = LoadCommitEvent {
                cycle: 1,
                seq: dep.seq,
                pc: dep.pc,
                addr: dep.addr,
                kind: CommittedLoadKind::Normal,
                predicted_ssn: None,
                value: dep.value ^ 0xdead, // every value wrong
                arch_value: dep.value,
                reexec: true,
                mispredict: false,
                oracle: false,
                stores_before: dep.stores_before,
                injected: false,
            };
            obs.on_load_commit(&ev);
        }
        let loads = graph.loads().len() as u64;
        let report = SimReport::default();
        let audit = obs.finalize(&report);
        assert!(audit.violations >= loads);
        assert_eq!(audit.diagnostics.len(), 2);
        assert!(audit.truncated);
        assert!(!audit.is_clean());
    }

    #[test]
    fn report_json_shape() {
        let audit = AuditReport {
            stats: AuditStats::default(),
            violations: 1,
            diagnostics: vec![AuditDiagnostic {
                rule: AuditRule::ValueIntegrity,
                seq: 7,
                pc: 0x400,
                expected_ssn: Some(3),
                actual_ssn: None,
                detail: "demo".into(),
            }],
            truncated: false,
        };
        let json = audit.to_json();
        assert!(json.contains("\"violations\":1"));
        assert!(json.contains("\"rule\":\"value-integrity\""));
        assert!(json.contains("\"actual_ssn\":null"));
        let display = audit.diagnostics[0].to_string();
        assert!(display.contains("[value-integrity]"));
        assert!(display.contains("expected-ssn=3"));
    }
}
