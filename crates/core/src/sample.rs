//! Checkpointed sampling: estimate a full run's performance from
//! periodic measured windows.
//!
//! Cycle-level simulation costs ~100× the functional tracer; sampling
//! buys that factor back for long workloads by running the detailed
//! pipeline only over short, evenly spaced *windows* of the dynamic
//! stream and **fast-forwarding** between them at functional speed.
//! The fast-forward is *functional warm-up via the tracer path*: a
//! single pass over the recorded trace that applies each committed
//! store's effect to an architectural memory image **and** trains the
//! long-history microarchitectural state — branch predictor, BTB,
//! RAS, caches/TLB, the T-SSBF, and above all the bypassing
//! predictor — from the same per-instruction records the pipeline
//! would see, without simulating any timing. Positioning a window at
//! trace offset *k* therefore costs a few table updates per skipped
//! instruction rather than a simulated cycle, and the window opens
//! with the slow-learning state (bypass confidence takes ~100k
//! instructions to train) already in steady state. Without that
//! warming, a window placed after the predictors' training phase
//! measures the *untrained* machine and the estimate lands 30–50%
//! low.
//!
//! Each window then replays a [`DETAIL_WARMUP`]-instruction detailed
//! warming prefix followed by the measured `interval`, all with the
//! full timing model; statistics count only the measured part. The
//! memory image makes loads of pre-window stores exact, and the SSN
//! counters are seeded with the absolute store count at the window
//! start so bypass distances, squash rollbacks, and wrap boundaries
//! all use the same arithmetic as a full run. State the warmer does
//! not model (ROB/queue occupancy, store-set tables, in-flight
//! timing) settles during the detailed prefix; what remains is the
//! estimator's bias. The SVW filters fail *conservative* on any
//! not-warmed entry (forced re-execution), so windows remain
//! value-verified end to end — sampling trades accuracy of the
//! *estimate*, never correctness of the model.
//!
//! ```
//! use nosq_core::sample::{sampled_replay, SamplePlan};
//! use nosq_core::{SimConfig, Simulator};
//! use nosq_trace::{synthesize, Profile, TraceBuffer};
//!
//! let program = synthesize(Profile::by_name("gzip").unwrap(), 42);
//! let trace = TraceBuffer::record(&program, 20_000);
//! let cfg = SimConfig::nosq(20_000);
//!
//! let plan = SamplePlan::parse("2000:1000:4").unwrap();
//! let est = sampled_replay(&program, cfg.clone(), &trace, &plan);
//! let full = Simulator::replay(&program, cfg, &trace).run();
//!
//! assert_eq!(est.windows, 4);
//! let err = (est.ipc() - full.ipc()).abs() / full.ipc();
//! assert!(err.is_finite());
//! ```

use nosq_isa::{Inst, InstClass, Memory, Program};
use nosq_trace::{Coverage, DynInst, TraceBuffer};
use nosq_uarch::branch::{Btb, HybridPredictor, ReturnAddressStack};
use nosq_uarch::{MemoryHierarchy, Ssn, Tlb, Tssbf};

use crate::arena::SimArena;
use crate::config::SimConfig;
use crate::pipeline::{Simulator, StopCondition};
use crate::predictor::{BypassingPredictor, PathHistory};

/// Detailed warming prefix simulated (but not measured) at the head of
/// every window: the window replays `DETAIL_WARMUP + interval`
/// instructions through the full timing model, and statistics count
/// only the final `interval`. This is the SMARTS recipe — the prefix
/// washes out pipeline fill and the hottest cache/predictor state, the
/// dominant cold-start transients; what it cannot wash out (deep L2
/// sets, large predictor tables) is the estimator's residual bias.
pub const DETAIL_WARMUP: u64 = 2_000;

/// A periodic sampling schedule over a recorded trace: skip `warmup`
/// instructions functionally, then measure `count` windows of
/// `interval` instructions spread evenly over the remainder.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SamplePlan {
    /// Instructions to fast-forward before the first window.
    pub warmup: u64,
    /// Instructions per measured window (≥ 1).
    pub interval: u64,
    /// Number of measured windows (≥ 1).
    pub count: u64,
}

impl SamplePlan {
    /// Parses the CLI syntax `WARMUP:INTERVAL:COUNT` (three decimal
    /// integers; `interval` and `count` must be ≥ 1).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the shape or a field is
    /// invalid — callers surface it as a usage error.
    pub fn parse(s: &str) -> Result<SamplePlan, String> {
        let mut it = s.split(':');
        let (Some(w), Some(i), Some(c), None) = (it.next(), it.next(), it.next(), it.next()) else {
            return Err(format!("expected WARMUP:INTERVAL:COUNT, got '{s}'"));
        };
        let field = |name: &str, v: &str| {
            v.parse::<u64>()
                .map_err(|_| format!("{name} '{v}' is not a non-negative integer"))
        };
        let plan = SamplePlan {
            warmup: field("warmup", w)?,
            interval: field("interval", i)?,
            count: field("count", c)?,
        };
        if plan.interval == 0 {
            return Err("interval must be at least 1".to_string());
        }
        if plan.count == 0 {
            return Err("count must be at least 1".to_string());
        }
        Ok(plan)
    }
}

impl std::str::FromStr for SamplePlan {
    type Err = String;

    fn from_str(s: &str) -> Result<SamplePlan, String> {
        SamplePlan::parse(s)
    }
}

/// What a sampled run measured, and the estimate it supports.
///
/// `measured_*` sum over the windows that actually ran (a window is
/// skipped only when the warm-up or an earlier window already consumed
/// the whole trace, so `windows` can be below the plan's `count`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SampledReport {
    /// Windows that ran.
    pub windows: u64,
    /// Instructions committed inside measured windows.
    pub measured_insts: u64,
    /// Cycles spent inside measured windows.
    pub measured_cycles: u64,
    /// Instructions in the full run being estimated (trace length
    /// clamped to the configuration's budget).
    pub total_insts: u64,
}

impl SampledReport {
    /// The sampled IPC estimate (NaN if no window ran).
    pub fn ipc(&self) -> f64 {
        if self.measured_cycles == 0 {
            f64::NAN
        } else {
            self.measured_insts as f64 / self.measured_cycles as f64
        }
    }

    /// Estimated cycles for the full run: `total_insts` at the sampled
    /// IPC (NaN if no window ran).
    pub fn est_cycles(&self) -> f64 {
        self.total_insts as f64 / self.ipc()
    }
}

/// Runs `plan` over a recorded trace with session-owned buffers and
/// returns the sampled estimate. See the [module docs](self) for the
/// estimator's construction and bias.
///
/// # Panics
///
/// Panics if the window replay violates a pipeline invariant (debug
/// builds assert, among others, that seeded SSNs track the trace's
/// absolute store counts).
pub fn sampled_replay(
    program: &Program,
    cfg: SimConfig,
    trace: &TraceBuffer,
    plan: &SamplePlan,
) -> SampledReport {
    let mut arena = SimArena::new();
    sampled_replay_with_arena(program, cfg, trace, plan, &mut arena)
}

/// [`sampled_replay`] with arena-recycled buffers — every window reuses
/// the arena's core allocation, so a sampled sweep allocates like a
/// single session.
pub fn sampled_replay_with_arena(
    program: &Program,
    cfg: SimConfig,
    trace: &TraceBuffer,
    plan: &SamplePlan,
    arena: &mut SimArena,
) -> SampledReport {
    let insts = trace.insts();
    let total = (insts.len() as u64).min(cfg.max_insts);
    let span = total.saturating_sub(plan.warmup);
    // Each window's full extent includes its detailed-warming prefix.
    let extent = DETAIL_WARMUP + plan.interval;
    // Spread the windows evenly over the post-warm-up span, but never
    // closer than one window extent apart: windows must not overlap,
    // so the functional cursor only ever moves forward.
    let period = (span / plan.count).max(extent);
    let mut mem = program.initial_memory();
    let mut warm = WarmState::new(&cfg);
    let mut cursor = 0u64;
    let mut report = SampledReport {
        total_insts: total,
        ..SampledReport::default()
    };
    for w in 0..plan.count {
        let start = plan.warmup.saturating_add(w.saturating_mul(period));
        if start >= total {
            break;
        }
        let len = extent.min(total - start);
        // A truncated tail window keeps at least one measured
        // instruction; the warming prefix shrinks before the
        // measurement does.
        let detail = DETAIL_WARMUP.min(len - 1);
        warm.fast_forward(&mut mem, &insts[cursor as usize..start as usize]);
        cursor = start;
        let mut sim = Simulator::replay_window(
            program,
            cfg.clone(),
            trace,
            start as usize,
            len as usize,
            mem.clone(),
            &warm,
            Some(&mut arena.core),
        );
        sim.run_until(StopCondition::Insts(detail));
        let (warm_insts, warm_cycles) = (sim.stats().insts, sim.stats().cycles);
        sim.run_until(StopCondition::Done);
        let window = sim.finish();
        debug_assert_eq!(window.insts, len, "window committed its whole extent");
        report.windows += 1;
        report.measured_insts += window.insts - warm_insts;
        report.measured_cycles += window.cycles - warm_cycles;
    }
    report
}

/// Long-history microarchitectural state carried across the functional
/// fast-forward and injected into each window at its head (see
/// [`Simulator::replay_window`]).
///
/// The warmer mirrors the pipeline's *committed-path* updates — the
/// same table writes the fetch and commit stages perform, driven from
/// the trace's per-instruction records instead of simulated execution.
/// It deliberately models only state whose training horizon exceeds a
/// window's detailed prefix: predictors, caches, and the T-SSBF.
/// Occupancy-like state (ROB, queues, in-flight stores) refills within
/// a few hundred cycles and is left to [`DETAIL_WARMUP`].
pub(crate) struct WarmState {
    pub(crate) hierarchy: MemoryHierarchy,
    pub(crate) bpred: HybridPredictor,
    pub(crate) btb: Btb,
    pub(crate) ras: ReturnAddressStack,
    pub(crate) path: PathHistory,
    pub(crate) predictor: BypassingPredictor,
    pub(crate) tssbf: Tssbf,
}

impl WarmState {
    /// Cold state sized exactly as [`Simulator`]'s own construction
    /// sizes it, so injection swaps equals for equals.
    fn new(cfg: &SimConfig) -> WarmState {
        let m = &cfg.machine;
        WarmState {
            hierarchy: MemoryHierarchy::new(
                m.l1d,
                m.l2,
                Tlb::new(m.dtlb_entries, m.dtlb_ways),
                m.mem_latency,
                m.tlb_miss_penalty,
            ),
            bpred: HybridPredictor::new(m.bpred),
            btb: Btb::new(m.btb_entries, m.btb_ways),
            ras: ReturnAddressStack::new(m.ras_depth),
            path: PathHistory::new(),
            predictor: BypassingPredictor::new(cfg.predictor),
            tssbf: Tssbf::new(128, 4),
        }
    }

    /// The functional fast-forward: applies each committed store's
    /// memory effect exactly as the pipeline's commit stage would, and
    /// trains every warmed structure from the trace records.
    fn fast_forward(&mut self, mem: &mut Memory, insts: &[DynInst]) {
        for d in insts {
            self.observe(d, mem);
        }
    }

    fn observe(&mut self, d: &DynInst, mem: &mut Memory) {
        let pc = d.rec.pc;
        match d.class {
            InstClass::Load => {
                // Predict/train *before* any history update, matching
                // the dispatch-time path snapshot a real load sees.
                self.train_load(d);
                self.hierarchy.load_latency(d.rec.addr);
            }
            InstClass::Store => {
                let width = d.rec.inst.mem_width().expect("store width").bytes();
                mem.write(d.rec.addr, width, d.rec.store_mem_bits);
                self.hierarchy.store_commit(d.rec.addr);
                // Committed stores are 1-based in SSN space: the store
                // after `stores_before` older ones is `stores_before+1`.
                self.tssbf
                    .record_store(d.rec.addr, width as u8, Ssn(d.stores_before + 1));
            }
            _ => {}
        }
        match d.rec.inst {
            Inst::Branch { .. } => {
                self.bpred.update(pc, d.rec.taken);
                self.path.push_branch(d.rec.taken);
                if d.rec.taken {
                    self.btb.update(pc, d.rec.next_pc);
                }
            }
            Inst::Call { .. } => {
                self.ras.push(pc + nosq_isa::INST_BYTES);
                self.path.push_call(pc);
                self.btb.update(pc, d.rec.next_pc);
            }
            Inst::Ret { .. } => {
                self.ras.pop();
            }
            Inst::Jump { .. } => {
                self.btb.update(pc, d.rec.next_pc);
            }
            _ => {}
        }
    }

    /// Trains the bypassing predictor the way commit-time verification
    /// would. The trace's dependence oracle stands in for the SVW: a
    /// full-coverage producer within the 6-bit distance field is the
    /// "actual" a mispredicted load would learn; a load whose producer
    /// is out of range (or absent) verifies clean through the cache.
    fn train_load(&mut self, d: &DynInst) {
        let pred = self.predictor.predict(d.rec.pc, &self.path);
        let truth = d.mem_dep.and_then(|dep| {
            (dep.store_distance <= 63).then(|| {
                let shift = if dep.coverage == Coverage::Full {
                    dep.shift
                } else {
                    0
                };
                (dep.store_distance as u16, shift)
            })
        });
        match (pred, truth) {
            (Some(p), Some(t)) if (p.dist, p.shift) == t => {
                self.predictor.train_correct(d.rec.pc, &self.path);
            }
            (pred, Some(t)) => {
                let had_path = pred.map(|p| p.path_sensitive).unwrap_or(false);
                self.predictor
                    .train_mispredict(d.rec.pc, &self.path, had_path, Some(t));
            }
            (Some(_), None) => {
                // Predicted store is long committed: the pipeline falls
                // back to a normal cache access and verifies clean.
                self.predictor.train_correct(d.rec.pc, &self.path);
            }
            (None, None) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_canonical_shape() {
        assert_eq!(
            SamplePlan::parse("1000:500:10"),
            Ok(SamplePlan {
                warmup: 1000,
                interval: 500,
                count: 10
            })
        );
        assert_eq!(
            "0:1:1".parse(),
            Ok(SamplePlan {
                warmup: 0,
                interval: 1,
                count: 1
            })
        );
    }

    #[test]
    fn parse_rejects_malformed_plans() {
        for bad in [
            "", "5", "1:2", "1:2:3:4", "a:2:3", "1:-2:3", "1:0:3", "1:2:0",
        ] {
            assert!(SamplePlan::parse(bad).is_err(), "accepted '{bad}'");
        }
    }
}
