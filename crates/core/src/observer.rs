//! Observer hooks: pluggable instrumentation for simulation sessions.
//!
//! A [`SimObserver`] receives fine-grained pipeline events as the
//! simulation advances — one callback per cycle, committed instruction,
//! squash, SMB bypass, and back-end re-execution. Every hook has an
//! empty default body, so an observer implements only the events it
//! cares about, and telemetry (interval IPC series, squash histograms,
//! predictor warm-up curves) lives *outside* the pipeline instead of as
//! ever-more counters inside it.
//!
//! Observers are installed on a [`crate::Simulator`] with
//! [`crate::Simulator::attach_observer`]. To read an observer's state
//! back after the run, attach a `&mut` borrow (the blanket
//! `impl SimObserver for &mut O` below) and inspect the observer once
//! the session has been consumed by [`crate::Simulator::finish`]:
//!
//! ```
//! use nosq_core::observer::IntervalIpc;
//! use nosq_core::{SimConfig, Simulator, StopCondition};
//! use nosq_trace::{synthesize, Profile};
//!
//! let program = synthesize(Profile::by_name("gzip").unwrap(), 42);
//! let mut ipc = IntervalIpc::new(1_000);
//! let mut sim = Simulator::new(&program, SimConfig::nosq(10_000));
//! sim.attach_observer(Box::new(&mut ipc));
//! sim.run_until(StopCondition::Done);
//! let report = sim.finish();
//! // One sample per full 1k-cycle interval from the attachment point.
//! assert_eq!(ipc.samples().len() as u64, (report.cycles - 1) / 1_000);
//! ```

use nosq_isa::InstClass;

/// End-of-cycle event: fired once per simulated cycle.
#[derive(Copy, Clone, Debug)]
pub struct CycleEvent {
    /// The cycle that just completed (1-based).
    pub cycle: u64,
    /// Instructions committed so far, cumulatively.
    pub insts: u64,
}

/// One instruction retired from the ROB head.
#[derive(Copy, Clone, Debug)]
pub struct CommitEvent {
    /// Commit cycle.
    pub cycle: u64,
    /// The instruction's PC.
    pub pc: u64,
    /// The instruction's class.
    pub class: InstClass,
}

/// Why a verification squash happened.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SquashCause {
    /// A bypassing (or delayed/normal NoSQ) load got the wrong value
    /// (NoSQ variants).
    BypassMispredict,
    /// A load executed before an older conflicting store (baseline
    /// memory-ordering violation).
    OrderingViolation,
}

/// Everything younger than a mis-verified load was squashed.
#[derive(Copy, Clone, Debug)]
pub struct SquashEvent {
    /// Squash cycle.
    pub cycle: u64,
    /// What triggered the squash.
    pub cause: SquashCause,
    /// PC of the load whose verification failed.
    pub load_pc: u64,
    /// Number of in-flight instructions squashed and queued for refetch.
    pub squashed: u64,
}

/// A load was classified as bypassing at dispatch (NoSQ variants).
#[derive(Copy, Clone, Debug)]
pub struct BypassEvent {
    /// Dispatch cycle.
    pub cycle: u64,
    /// The load's PC.
    pub pc: u64,
    /// Whether the bypass goes through the injected shift & mask
    /// instruction (partial-word communication, paper §3.5).
    pub partial: bool,
    /// Predicted store distance in stores, when a predictor produced
    /// one (`None` under the perfect-SMB oracle).
    pub distance: Option<u16>,
}

/// How a committed load obtained its value.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CommittedLoadKind {
    /// Executed through the data cache as usual.
    Normal,
    /// Held at the scheduler until its predicted producer committed,
    /// then read the cache (NoSQ "Delay", paper §3.3).
    Delayed,
    /// Took its value from an in-flight store via speculative memory
    /// bypassing.
    Bypassed {
        /// Whether the bypass went through the injected shift & mask
        /// instruction (partial-word communication, paper §3.5).
        partial: bool,
    },
}

/// Commit-time verification outcome of one load — the per-load record
/// the dependence-oracle auditor (`nosq-audit`) cross-checks against
/// the trace's exact store→load graph.
///
/// Fired once per committed load, after verification resolved (and, on
/// a mismatch, before the squash event for the same load).
#[derive(Copy, Clone, Debug)]
pub struct LoadCommitEvent {
    /// Commit cycle.
    pub cycle: u64,
    /// The load's dynamic sequence number in the correct-path stream.
    pub seq: u64,
    /// The load's PC.
    pub pc: u64,
    /// The load's effective address.
    pub addr: u64,
    /// How the load obtained its value.
    pub kind: CommittedLoadKind,
    /// SSN of the store the load bypassed from, for a bypassed load
    /// with a predictor-produced distance (`None` under the perfect-SMB
    /// oracle or for non-bypassed loads).
    pub predicted_ssn: Option<u64>,
    /// The value the load's execution produced (before any squash
    /// correction).
    pub value: u64,
    /// The architecturally correct value from the trace record.
    pub arch_value: u64,
    /// Whether verification re-executed the load (SVW filter miss).
    pub reexec: bool,
    /// Whether verification failed and squashed younger instructions.
    pub mispredict: bool,
    /// Whether the run uses idealized (oracle) verification, which
    /// filters every re-execution.
    pub oracle: bool,
    /// Stores renamed before this load in the dynamic stream (the
    /// load's `SSNrename` view).
    pub stores_before: u64,
    /// Whether fault injection deliberately corrupted this load's
    /// bypass and exempted it from verification
    /// (`FaultPlan::break_predictor`).
    pub injected: bool,
}

/// A committed load re-executed in the back-end (SVW filter miss).
#[derive(Copy, Clone, Debug)]
pub struct ReexecEvent {
    /// Commit cycle.
    pub cycle: u64,
    /// The load's PC.
    pub pc: u64,
    /// The load's effective address.
    pub addr: u64,
    /// Whether re-execution found a value mismatch (squash follows).
    pub mismatch: bool,
}

/// Pluggable pipeline instrumentation.
///
/// Every hook has an empty default body; implement only what you need.
/// Hooks run synchronously inside the simulated cycle, in observer
/// attachment order, and must not assume anything about the pipeline's
/// internal state beyond what the event carries.
pub trait SimObserver {
    /// Called at the end of every simulated cycle.
    fn on_cycle(&mut self, ev: &CycleEvent) {
        let _ = ev;
    }

    /// Called for every committed instruction.
    fn on_commit(&mut self, ev: &CommitEvent) {
        let _ = ev;
    }

    /// Called when load verification squashes the in-flight window.
    fn on_squash(&mut self, ev: &SquashEvent) {
        let _ = ev;
    }

    /// Called when a load is classified as bypassing at dispatch.
    fn on_bypass(&mut self, ev: &BypassEvent) {
        let _ = ev;
    }

    /// Called when a committed load re-executes in the back-end.
    fn on_reexec(&mut self, ev: &ReexecEvent) {
        let _ = ev;
    }

    /// Called for every committed load once its verification resolved.
    fn on_load_commit(&mut self, ev: &LoadCommitEvent) {
        let _ = ev;
    }
}

/// Forwarding impl so a session can borrow an observer (`Box::new(&mut
/// obs)`) and hand it back for inspection after
/// [`crate::Simulator::finish`].
impl<O: SimObserver + ?Sized> SimObserver for &mut O {
    fn on_cycle(&mut self, ev: &CycleEvent) {
        (**self).on_cycle(ev);
    }
    fn on_commit(&mut self, ev: &CommitEvent) {
        (**self).on_commit(ev);
    }
    fn on_squash(&mut self, ev: &SquashEvent) {
        (**self).on_squash(ev);
    }
    fn on_bypass(&mut self, ev: &BypassEvent) {
        (**self).on_bypass(ev);
    }
    fn on_reexec(&mut self, ev: &ReexecEvent) {
        (**self).on_reexec(ev);
    }
    fn on_load_commit(&mut self, ev: &LoadCommitEvent) {
        (**self).on_load_commit(ev);
    }
}

/// Built-in observer: an interval IPC series.
///
/// Samples committed-instruction throughput every `interval` cycles —
/// the time-resolved view behind predictor warm-up curves (paper §4.2's
/// steady-state assumption made visible).
///
/// Intervals are measured from the first cycle the observer sees, so
/// attaching mid-session yields correct per-interval rates from the
/// attachment point onward (the attachment cycle's own commits are
/// excluded — at most one machine-width of instructions).
#[derive(Clone, Debug)]
pub struct IntervalIpc {
    interval: u64,
    /// Next cycle at which to close an interval; `None` until the first
    /// observed cycle anchors the series.
    next_sample: Option<u64>,
    last_insts: u64,
    samples: Vec<f64>,
}

impl IntervalIpc {
    /// Creates a series sampling every `interval` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: u64) -> IntervalIpc {
        assert!(interval > 0, "sampling interval must be positive");
        IntervalIpc {
            interval,
            next_sample: None,
            last_insts: 0,
            samples: Vec::new(),
        }
    }

    /// The sampling interval in cycles.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// One IPC value per completed interval, in time order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl SimObserver for IntervalIpc {
    fn on_cycle(&mut self, ev: &CycleEvent) {
        let Some(next) = self.next_sample else {
            // First observed cycle anchors the series; its commits are
            // already included in `ev.insts` and excluded from the
            // first interval.
            self.last_insts = ev.insts;
            self.next_sample = Some(ev.cycle + self.interval);
            return;
        };
        if ev.cycle >= next {
            let delta = ev.insts - self.last_insts;
            self.last_insts = ev.insts;
            self.next_sample = Some(next + self.interval);
            self.samples.push(delta as f64 / self.interval as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_ipc_samples_deltas() {
        let mut obs = IntervalIpc::new(10);
        for cycle in 1..=25u64 {
            obs.on_cycle(&CycleEvent {
                cycle,
                insts: cycle * 2, // steady 2 IPC
            });
        }
        assert_eq!(obs.samples(), &[2.0, 2.0]);
        assert_eq!(obs.interval(), 10);
    }

    #[test]
    fn interval_ipc_attached_mid_session_is_not_inflated() {
        // Attach after 10k instructions have already committed: the
        // first sample must reflect the per-interval rate, not the
        // whole session's backlog.
        let mut obs = IntervalIpc::new(10);
        for cycle in 5_000..=5_025u64 {
            obs.on_cycle(&CycleEvent {
                cycle,
                insts: 10_000 + (cycle - 5_000) * 2, // steady 2 IPC
            });
        }
        assert_eq!(obs.samples(), &[2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn interval_ipc_rejects_zero_interval() {
        let _ = IntervalIpc::new(0);
    }

    #[test]
    fn default_hooks_are_no_ops() {
        struct Silent;
        impl SimObserver for Silent {}
        let mut s = Silent;
        s.on_cycle(&CycleEvent { cycle: 1, insts: 0 });
        s.on_squash(&SquashEvent {
            cycle: 1,
            cause: SquashCause::BypassMispredict,
            load_pc: 0,
            squashed: 0,
        });
    }

    #[test]
    fn mut_ref_forwarding_reaches_the_observer() {
        let mut obs = IntervalIpc::new(1);
        {
            let mut boxed: Box<dyn SimObserver> = Box::new(&mut obs);
            boxed.on_cycle(&CycleEvent { cycle: 1, insts: 0 }); // anchors
            boxed.on_cycle(&CycleEvent { cycle: 2, insts: 3 });
        }
        assert_eq!(obs.samples(), &[3.0]);
    }
}
