//! # nosq-core
//!
//! A from-scratch reproduction of **NoSQ: Store-Load Communication
//! without a Store Queue** (Tingting Sha, Milo M. K. Martin, Amir Roth;
//! MICRO-39, 2006).
//!
//! NoSQ is a microarchitecture that performs *all* in-flight store-load
//! communication through speculative memory bypassing (SMB): a
//! decode-stage predictor classifies each load as bypassing or
//! non-bypassing; bypassing loads skip the out-of-order engine entirely
//! (their consumers are renamed onto the predicted store's data
//! register), stores never execute out of order, and every load is
//! verified by in-order re-execution filtered by an SMB-aware store
//! vulnerability window.
//!
//! This crate supplies:
//!
//! * [`predictor`] — the hybrid path-sensitive, distance-based bypassing
//!   predictor (paper §3.3),
//! * [`srq`] — the store register queue (§3.2),
//! * [`bypass`] — partial-word shift & mask value transforms (§3.5),
//! * [`pipeline`] — a cycle-level simulator modelling the baseline
//!   associative-store-queue design, NoSQ (± delay), and perfect SMB
//!   (§4's configurations),
//! * [`config`] / [`report`] — run configuration and result metrics.
//!
//! ## Quick start
//!
//! ```
//! use nosq_core::{simulate, SimConfig};
//! use nosq_trace::{synthesize, Profile};
//!
//! let profile = Profile::by_name("gzip").unwrap();
//! let program = synthesize(profile, 42);
//! let nosq = simulate(&program, SimConfig::nosq(50_000));
//! let base = simulate(&program, SimConfig::baseline_storesets(50_000));
//! println!(
//!     "gzip-like: NoSQ {:.2} IPC vs baseline {:.2} IPC",
//!     nosq.ipc(),
//!     base.ipc()
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bypass;
pub mod config;
pub mod pipeline;
pub mod predictor;
pub mod report;
pub mod srq;

pub use config::{LsuModel, Scheduling, SimConfig};
pub use pipeline::{simulate, Simulator};
pub use predictor::{BypassingPredictor, PathHistory, Prediction, PredictorConfig};
pub use report::{geometric_mean, SimResult};
pub use srq::{StoreInfo, StoreRegisterQueue};
