//! # nosq-core
//!
//! A from-scratch reproduction of **NoSQ: Store-Load Communication
//! without a Store Queue** (Tingting Sha, Milo M. K. Martin, Amir Roth;
//! MICRO-39, 2006).
//!
//! NoSQ is a microarchitecture that performs *all* in-flight store-load
//! communication through speculative memory bypassing (SMB): a
//! decode-stage predictor classifies each load as bypassing or
//! non-bypassing; bypassing loads skip the out-of-order engine entirely
//! (their consumers are renamed onto the predicted store's data
//! register), stores never execute out of order, and every load is
//! verified by in-order re-execution filtered by an SMB-aware store
//! vulnerability window.
//!
//! This crate supplies:
//!
//! * [`predictor`] — the hybrid path-sensitive, distance-based bypassing
//!   predictor (paper §3.3),
//! * [`srq`] — the store register queue (§3.2),
//! * [`bypass`] — partial-word shift & mask value transforms (§3.5),
//! * [`pipeline`] — a cycle-level simulator modelling the baseline
//!   associative-store-queue design, NoSQ (± delay), and perfect SMB
//!   (§4's configurations), exposed as an incremental *session* API,
//! * [`observer`] — pluggable instrumentation hooks for sessions,
//! * [`config`] / [`report`] — fluent run configuration (with validated
//!   [`SimConfigBuilder::try_build`]) and structured result metrics with
//!   JSON/CSV serialization,
//! * [`ser`] — the tiny hand-rolled JSON/CSV writers shared by every
//!   artifact emitter in the workspace (this crate's [`SimReport`], the
//!   `nosq-bench` harnesses, and the `nosq-lab` campaign engine).
//!
//! ## One-shot quick start
//!
//! The classic entry point runs a configuration to completion:
//!
//! ```
//! use nosq_core::{simulate, SimConfig};
//! use nosq_trace::{synthesize, Profile};
//!
//! let profile = Profile::by_name("gzip").unwrap();
//! let program = synthesize(profile, 42);
//! let nosq = simulate(&program, SimConfig::nosq(50_000));
//! let base = simulate(&program, SimConfig::baseline_storesets(50_000));
//! println!(
//!     "gzip-like: NoSQ {:.2} IPC vs baseline {:.2} IPC",
//!     nosq.ipc(),
//!     base.ipc()
//! );
//! ```
//!
//! ## Sessions: incremental execution and observers
//!
//! [`Simulator`] is a *session*: build a configuration with the fluent
//! [`SimConfig::builder`], attach [`SimObserver`]s for time-resolved
//! telemetry, advance with [`Simulator::step`] /
//! [`Simulator::run_until`] (a [`StopCondition`]: cycles, committed
//! instructions, or a custom predicate), read live
//! [`Simulator::stats`], and close with [`Simulator::finish`]. Stepped
//! and one-shot execution produce bit-identical [`SimReport`]s.
//!
//! ```
//! use nosq_core::observer::IntervalIpc;
//! use nosq_core::{LsuModel, SimConfig, Simulator, StopCondition};
//! use nosq_trace::{synthesize, Profile};
//!
//! let program = synthesize(Profile::by_name("gzip").unwrap(), 42);
//! let cfg = SimConfig::builder()
//!     .lsu(LsuModel::Nosq { delay: true })
//!     .max_insts(20_000)
//!     .build();
//!
//! let mut warmup = IntervalIpc::new(1_000); // predictor warm-up curve
//! let mut sim = Simulator::new(&program, cfg);
//! sim.attach_observer(Box::new(&mut warmup));
//!
//! sim.run_until(StopCondition::Insts(5_000)); // inspect mid-flight
//! let early_ipc = sim.stats().ipc();
//! sim.run_until(StopCondition::Done);
//! let report = sim.finish();
//!
//! assert!(report.ipc() >= 0.0 && early_ipc >= 0.0);
//! println!("{}", report.to_json()); // machine-readable artifact
//! # let _ = warmup.samples();
//! ```
//!
//! ## Migrating from `simulate()` + `SimResult`
//!
//! `simulate()` is still here and still the right call for
//! run-to-completion experiments — it now returns [`SimReport`], which
//! reorganizes the old flat `SimResult` counters into typed groups:
//! top-level `cycles`/`insts` are unchanged, while e.g. `r.loads`
//! became `r.memory.loads`, `r.bypass_mispredicts` became
//! `r.verification.bypass_mispredicts`, and `r.iq_dispatch_stalls`
//! became `r.stalls.iq_dispatch_stalls`. Derived metrics
//! ([`SimReport::ipc`], [`SimReport::relative_time`], …) kept their
//! names; `relative_time` now returns NaN (instead of a silent `0.0`)
//! when the reference run has zero cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod bypass;
pub mod config;
pub mod observer;
pub mod pipeline;
pub mod predictor;
pub mod report;
pub mod sample;
pub mod ser;
pub mod srq;

pub use arena::SimArena;
pub use config::{ConfigError, FaultPlan, LsuModel, Scheduling, SimConfig, SimConfigBuilder};
pub use observer::{
    BypassEvent, CommitEvent, CommittedLoadKind, CycleEvent, LoadCommitEvent, ReexecEvent,
    SimObserver, SquashCause, SquashEvent,
};
pub use pipeline::{simulate, CkptError, LaneSet, SimCheckpoint, Simulator, StopCondition};
pub use predictor::{BypassingPredictor, PathHistory, Prediction, PredictorConfig};
#[allow(deprecated)]
pub use report::SimResult;
pub use report::{
    geometric_mean, FrontendMetrics, MemoryMetrics, SimReport, StallMetrics, VerificationMetrics,
};
pub use sample::{sampled_replay, sampled_replay_with_arena, SamplePlan, SampledReport};
pub use srq::{StoreInfo, StoreRegisterQueue};
