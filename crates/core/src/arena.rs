//! Reusable simulation memory: [`SimArena`] and the flat ring buffer
//! behind the pipeline's queues.
//!
//! A [`Simulator`](crate::Simulator) session owns several flat buffers
//! whose capacity depends only on the machine configuration and the
//! program's footprint: the ROB ring, the fetch buffer, the backend-exit
//! queue, the squash-replay scratch, the issue-candidate list, the
//! in-flight [`DynInst`] pool, the store-register-queue ring, and the
//! tracer's paged last-writer map. Constructing a session from scratch
//! allocates all of them; a campaign running thousands of jobs pays that
//! cost — and the attendant page faults — per job.
//!
//! [`SimArena`] breaks that cycle: it owns every one of those buffers
//! between sessions. [`Simulator::with_arena`](crate::Simulator::with_arena)
//! borrows the arena for the session's lifetime, *takes* the buffers at
//! construction (an O(1) pointer move plus an O(1) epoch reset for the
//! last-writer map), and returns them at
//! [`finish`](crate::Simulator::finish). Results are bit-identical with
//! and without an arena — reuse changes where the memory comes from,
//! never what the pipeline computes (`tests/it_determinism.rs` and the
//! lab suite enforce this).
//!
//! ```
//! use nosq_core::{SimArena, SimConfig, Simulator};
//! use nosq_trace::{synthesize, Profile};
//!
//! let program = synthesize(Profile::by_name("gzip").unwrap(), 42);
//! let mut arena = SimArena::new();
//! let fresh = Simulator::new(&program, SimConfig::nosq(2_000)).run();
//! for _ in 0..2 {
//!     let recycled = Simulator::with_arena(&program, SimConfig::nosq(2_000), &mut arena).run();
//!     assert_eq!(fresh, recycled); // reuse is invisible in the report
//! }
//! ```

use nosq_trace::{DynInst, LastWriterMap};

use crate::pipeline::{Entry, Fetched, ReadyCand, Waiter, WheelEntry};
use crate::srq::StoreInfo;

/// Persistent, reusable buffers for [`Simulator`](crate::Simulator)
/// sessions; see the [module docs](self).
#[derive(Default)]
pub struct SimArena {
    /// The tracer's paged last-writer map. Public so embedders can also
    /// drive a bare [`Tracer`](nosq_trace::Tracer) off the same arena
    /// via [`Tracer::with_arena`](nosq_trace::Tracer::with_arena).
    pub trace: LastWriterMap,
    pub(crate) core: CoreBuffers,
    /// Per-lane buffer partitions for fused replay
    /// ([`LaneSet`](crate::LaneSet)): lane `i` of a fused run takes
    /// `lanes[i]`, so N lockstep simulators recycle N disjoint buffer
    /// sets from one arena. Grown on demand; solo sessions never touch
    /// it.
    pub(crate) lanes: Vec<CoreBuffers>,
}

impl SimArena {
    /// Creates an empty arena; buffers grow to steady-state capacity
    /// during the first session and are recycled afterwards.
    pub fn new() -> SimArena {
        SimArena::default()
    }
}

/// The pipeline-side buffer set (everything except the tracer map),
/// taken wholesale by a session and returned at `finish`.
#[derive(Default)]
pub(crate) struct CoreBuffers {
    /// In-flight dynamic-instruction slab.
    pub(crate) insts: InstPool,
    /// The reorder buffer ring.
    pub(crate) rob: Ring<Entry>,
    /// Fetched-but-not-dispatched instructions.
    pub(crate) fetch: Ring<Fetched>,
    /// Backend-exit (commit-pipeline drain) deadlines.
    pub(crate) exits: Ring<u64>,
    /// Squash-replay queue of instruction-pool indices.
    pub(crate) pending: Ring<u32>,
    /// Squash / observer scratch entries.
    pub(crate) scratch: Vec<Entry>,
    /// Issue-eligible candidate list (the scheduler's scanned tier).
    pub(crate) iq_ready: Vec<ReadyCand>,
    /// Future-ready candidate wheel (the scheduler's timed tier).
    pub(crate) wheel: std::collections::BinaryHeap<WheelEntry>,
    /// Waiter arena (the scheduler's parked tier) + its free list and
    /// per-node list heads.
    pub(crate) waiters: Vec<Waiter>,
    pub(crate) waiter_free: Vec<u32>,
    pub(crate) node_waiters: Vec<u32>,
    /// Store-register-queue ring storage.
    pub(crate) srq: Vec<Option<StoreInfo>>,
}

impl CoreBuffers {
    /// Clears every buffer's *contents* while keeping its capacity —
    /// the per-session reset.
    pub(crate) fn clear(&mut self) {
        self.insts.clear();
        self.rob.clear();
        self.fetch.clear();
        self.exits.clear();
        self.pending.clear();
        self.scratch.clear();
        self.iq_ready.clear();
        self.wheel.clear();
        self.waiters.clear();
        self.waiter_free.clear();
        self.node_waiters.clear();
        // `srq` is re-initialized by `StoreRegisterQueue::with_storage`.
    }
}

/// Index-addressed slab of in-flight [`DynInst`]s with a free list.
///
/// The pipeline stores each dynamic instruction exactly once, here, and
/// passes 4-byte indices through the fetch buffer, ROB and replay
/// queues instead of ~150-byte `DynInst` copies.
#[derive(Clone, Default)]
pub(crate) struct InstPool {
    slots: Vec<DynInst>,
    free: Vec<u32>,
    /// Debug-build liveness tracking: `live[i]` iff slot `i` is
    /// allocated. Turns double-release and use-after-release into
    /// immediate assertion failures under `cargo test`; absent from
    /// release builds entirely.
    #[cfg(debug_assertions)]
    live: Vec<bool>,
}

impl InstPool {
    /// Stores `d`, returning its slot index.
    pub(crate) fn alloc(&mut self, d: DynInst) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = d;
                #[cfg(debug_assertions)]
                {
                    debug_assert!(!self.live[i as usize], "free list held a live slot");
                    self.live[i as usize] = true;
                }
                i
            }
            None => {
                self.slots.push(d);
                #[cfg(debug_assertions)]
                self.live.push(true);
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Releases a slot for reuse. The caller must not touch `idx`
    /// afterwards.
    pub(crate) fn release(&mut self, idx: u32) {
        debug_assert!((idx as usize) < self.slots.len());
        #[cfg(debug_assertions)]
        {
            debug_assert!(self.live[idx as usize], "double release of pool slot {idx}");
            self.live[idx as usize] = false;
        }
        self.free.push(idx);
    }

    /// Drops all slots, keeping capacity.
    pub(crate) fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        #[cfg(debug_assertions)]
        self.live.clear();
    }
}

impl std::ops::Index<u32> for InstPool {
    type Output = DynInst;

    #[inline]
    fn index(&self, idx: u32) -> &DynInst {
        #[cfg(debug_assertions)]
        debug_assert!(self.live[idx as usize], "read of released pool slot {idx}");
        &self.slots[idx as usize]
    }
}

/// A power-of-two ring buffer with *absolute* positions.
///
/// `head` counts every element ever popped from the front, so an
/// element keeps one stable `u64` position for its whole residency no
/// matter how the ring moves — that is what lets the issue stage keep a
/// compact candidate list of ROB positions instead of rescanning every
/// (large) ROB entry each cycle. The ring grows by doubling when full
/// (positions are preserved), and [`clear`](Ring::clear) keeps the
/// allocation for the next session.
#[derive(Clone)]
pub(crate) struct Ring<T> {
    buf: Vec<Option<T>>,
    head: u64,
    len: usize,
}

impl<T> Default for Ring<T> {
    fn default() -> Ring<T> {
        Ring {
            buf: Vec::new(),
            head: 0,
            len: 0,
        }
    }
}

impl<T> Ring<T> {
    #[inline]
    fn mask(&self) -> usize {
        debug_assert!(
            self.buf.len().is_power_of_two(),
            "ring capacity {} is not a power of two",
            self.buf.len()
        );
        self.buf.len() - 1
    }

    #[inline]
    fn slot_of(&self, pos: u64) -> usize {
        // Power-of-two masking is stable under u64 wrap-around.
        debug_assert!(
            pos.wrapping_sub(self.head) <= self.len as u64,
            "position {pos} outside ring residency [head {}, +{}]",
            self.head,
            self.len
        );
        (pos as usize) & self.mask()
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The absolute position the next `push_back` will occupy.
    #[inline]
    pub(crate) fn next_pos(&self) -> u64 {
        self.head.wrapping_add(self.len as u64)
    }

    /// Drops contents, keeps capacity, rewinds positions.
    pub(crate) fn clear(&mut self) {
        for i in 0..self.len {
            let slot = self.slot_of(self.head.wrapping_add(i as u64));
            self.buf[slot] = None;
        }
        self.head = 0;
        self.len = 0;
    }

    /// Grows the buffer so at least `cap` elements fit without a
    /// mid-run reallocation.
    pub(crate) fn reserve(&mut self, cap: usize) {
        let target = cap.next_power_of_two().max(8);
        while self.buf.len() < target {
            self.grow();
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.buf.len() * 2).max(8);
        let mut new_buf: Vec<Option<T>> = Vec::with_capacity(new_cap);
        new_buf.resize_with(new_cap, || None);
        for i in 0..self.len {
            let pos = self.head.wrapping_add(i as u64);
            let old_slot = (pos as usize) & (self.buf.len() - 1);
            new_buf[(pos as usize) & (new_cap - 1)] = self.buf[old_slot].take();
        }
        self.buf = new_buf;
    }

    pub(crate) fn push_back(&mut self, value: T) {
        if self.buf.is_empty() || self.len == self.buf.len() {
            self.grow();
        }
        let slot = self.slot_of(self.next_pos());
        debug_assert!(self.buf[slot].is_none());
        self.buf[slot] = Some(value);
        self.len += 1;
    }

    pub(crate) fn push_front(&mut self, value: T) {
        if self.buf.is_empty() || self.len == self.buf.len() {
            self.grow();
        }
        self.head = self.head.wrapping_sub(1);
        let slot = self.slot_of(self.head);
        debug_assert!(self.buf[slot].is_none());
        self.buf[slot] = Some(value);
        self.len += 1;
    }

    pub(crate) fn pop_front(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let slot = self.slot_of(self.head);
        let value = self.buf[slot].take();
        debug_assert!(value.is_some());
        self.head = self.head.wrapping_add(1);
        self.len -= 1;
        value
    }

    pub(crate) fn pop_back(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        let slot = self.slot_of(self.head.wrapping_add(self.len as u64));
        let value = self.buf[slot].take();
        debug_assert!(value.is_some());
        value
    }

    pub(crate) fn front(&self) -> Option<&T> {
        if self.len == 0 {
            return None;
        }
        self.buf[self.slot_of(self.head)].as_ref()
    }

    /// The element at absolute position `pos`, if resident.
    #[inline]
    pub(crate) fn get_abs(&self, pos: u64) -> Option<&T> {
        if pos.wrapping_sub(self.head) >= self.len as u64 {
            return None;
        }
        self.buf[self.slot_of(pos)].as_ref()
    }

    /// Mutable access by absolute position.
    #[inline]
    pub(crate) fn get_abs_mut(&mut self, pos: u64) -> Option<&mut T> {
        if pos.wrapping_sub(self.head) >= self.len as u64 {
            return None;
        }
        let slot = self.slot_of(pos);
        self.buf[slot].as_mut()
    }
}

// Encoded as `head` + the resident elements front-to-back; decode
// rebuilds the smallest power-of-two buffer and re-places each element
// at its absolute position, so positions — which the issue stage's
// candidate lists reference — survive the roundtrip exactly.
impl<T: nosq_wire::Wire> nosq_wire::Wire for Ring<T> {
    fn enc(&self, e: &mut nosq_wire::Enc) {
        e.put_u64(self.head);
        e.put_u64(self.len as u64);
        for i in 0..self.len {
            self.buf[self.slot_of(self.head.wrapping_add(i as u64))]
                .as_ref()
                .expect("resident ring slot")
                .enc(e);
        }
    }

    fn dec(d: &mut nosq_wire::Dec) -> Result<Self, nosq_wire::WireError> {
        let head = d.take_u64()?;
        let len = usize::try_from(d.take_u64()?)
            .map_err(|_| nosq_wire::WireError::Invalid("ring len"))?;
        if len > d.remaining() {
            // Every element consumes at least one byte.
            return Err(nosq_wire::WireError::Invalid("ring len"));
        }
        let cap = len.next_power_of_two().max(8);
        let mut buf: Vec<Option<T>> = Vec::with_capacity(cap);
        buf.resize_with(cap, || None);
        for i in 0..len {
            let slot = (head.wrapping_add(i as u64) as usize) & (cap - 1);
            buf[slot] = Some(T::dec(d)?);
        }
        Ok(Ring { buf, head, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_fifo_roundtrip() {
        let mut r: Ring<u32> = Ring::default();
        assert!(r.is_empty());
        for i in 0..20 {
            r.push_back(i);
        }
        assert_eq!(r.len(), 20);
        for i in 0..20 {
            assert_eq!(r.front(), Some(&i));
            assert_eq!(r.pop_front(), Some(i));
        }
        assert_eq!(r.pop_front(), None);
    }

    #[test]
    fn ring_grows_preserving_order_and_positions() {
        let mut r: Ring<u64> = Ring::default();
        let mut positions = Vec::new();
        for i in 0..100u64 {
            positions.push(r.next_pos());
            r.push_back(i);
            if i % 3 == 0 {
                r.pop_front();
            }
        }
        // Every still-resident element is reachable at its recorded
        // absolute position.
        for (i, &pos) in positions.iter().enumerate() {
            let got = r.get_abs(pos);
            if got.is_some() {
                assert_eq!(got, Some(&(i as u64)));
            }
        }
    }

    #[test]
    fn ring_push_front_reverses() {
        let mut r: Ring<u32> = Ring::default();
        r.push_back(10);
        r.push_front(9);
        r.push_front(8);
        assert_eq!(r.pop_front(), Some(8));
        assert_eq!(r.pop_front(), Some(9));
        assert_eq!(r.pop_front(), Some(10));
    }

    #[test]
    fn ring_pop_back_is_lifo() {
        let mut r: Ring<u32> = Ring::default();
        for i in 0..5 {
            r.push_back(i);
        }
        assert_eq!(r.pop_back(), Some(4));
        assert_eq!(r.pop_back(), Some(3));
        assert_eq!(r.pop_front(), Some(0));
    }

    #[test]
    fn ring_clear_keeps_capacity() {
        let mut r: Ring<u32> = Ring::default();
        for i in 0..50 {
            r.push_back(i);
        }
        let cap = r.buf.len();
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.buf.len(), cap);
        assert_eq!(r.next_pos(), 0);
        r.push_back(7);
        assert_eq!(r.pop_front(), Some(7));
    }

    #[test]
    fn ring_reserve_prevents_growth() {
        let mut r: Ring<u32> = Ring::default();
        r.reserve(100);
        let cap = r.buf.len();
        assert!(cap >= 100);
        for i in 0..100 {
            r.push_back(i);
        }
        assert_eq!(r.buf.len(), cap);
    }

    #[test]
    fn pool_recycles_slots() {
        let mut pool = InstPool::default();
        let program = {
            let mut asm = nosq_isa::Assembler::new();
            asm.halt();
            asm.finish()
        };
        let d = nosq_trace::Tracer::new(&program, 1).next().unwrap();
        let a = pool.alloc(d);
        let b = pool.alloc(d);
        assert_ne!(a, b);
        pool.release(a);
        let c = pool.alloc(d);
        assert_eq!(c, a, "freed slot is recycled");
        assert_eq!(pool[b].seq, d.seq);
    }
}
