//! Simulation results and derived metrics.

/// Counters collected by one simulation run.
///
/// All fields are exact integer counters, so `Eq` compares two runs
/// bit-for-bit — the determinism regression suite relies on this.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SimResult {
    /// Total cycles.
    pub cycles: u64,
    /// Committed (retired) instructions.
    pub insts: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Loads that bypassed through SMB (NoSQ variants).
    pub bypassed_loads: u64,
    /// Loads delayed by the confidence mechanism.
    pub delayed_loads: u64,
    /// Loads whose bypass needed the injected shift & mask instruction.
    pub shift_mask_uops: u64,
    /// Squashes caused by bypassing mis-predictions (NoSQ; paper's
    /// "mis-predictions").
    pub bypass_mispredicts: u64,
    /// Squashes caused by memory-ordering violations (baseline).
    pub ordering_squashes: u64,
    /// Branch direction / target mis-predictions.
    pub branch_mispredicts: u64,
    /// Data-cache reads issued by the out-of-order core.
    pub ooo_dcache_reads: u64,
    /// Data-cache reads issued by back-end re-execution.
    pub backend_dcache_reads: u64,
    /// Loads that passed the SVW filter (skipped re-execution).
    pub reexec_filtered: u64,
    /// Loads forwarded from the store queue (baseline only).
    pub sq_forwards: u64,
    /// Dispatch stalls due to a full store queue (baseline only).
    pub sq_dispatch_stalls: u64,
    /// Dispatch stalls due to a full issue queue.
    pub iq_dispatch_stalls: u64,
    /// Dispatch stalls due to physical-register exhaustion.
    pub reg_dispatch_stalls: u64,
    /// SSN wrap-around drains performed.
    pub ssn_wrap_drains: u64,
    /// Committed loads that had in-window communication (ground truth).
    pub comm_loads: u64,
    /// ... of which partial-word.
    pub partial_comm_loads: u64,
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }

    /// Bypassing mis-predictions per 10,000 committed loads (Table 5's
    /// right-hand metric).
    pub fn mispredicts_per_10k_loads(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            10_000.0 * self.bypass_mispredicts as f64 / self.loads as f64
        }
    }

    /// Percentage of committed loads delayed (Table 5, parenthesized).
    pub fn delayed_pct(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            100.0 * self.delayed_loads as f64 / self.loads as f64
        }
    }

    /// Percentage of committed loads that bypassed.
    pub fn bypassed_pct(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            100.0 * self.bypassed_loads as f64 / self.loads as f64
        }
    }

    /// Total data-cache reads (Figure 4's metric).
    pub fn dcache_reads(&self) -> u64 {
        self.ooo_dcache_reads + self.backend_dcache_reads
    }

    /// Fraction of loads that re-executed (paper: ~0.7% with the
    /// T-SSBF).
    pub fn reexec_rate(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.backend_dcache_reads as f64 / self.loads as f64
        }
    }

    /// Execution time relative to a reference run of the same workload.
    pub fn relative_time(&self, reference: &SimResult) -> f64 {
        if reference.cycles == 0 {
            0.0
        } else {
            self.cycles as f64 / reference.cycles as f64
        }
    }
}

/// Geometric mean of a slice of positive values (used for the per-suite
/// means in Figures 2-3).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let r = SimResult {
            cycles: 1000,
            insts: 2000,
            loads: 500,
            bypass_mispredicts: 5,
            delayed_loads: 10,
            ooo_dcache_reads: 450,
            backend_dcache_reads: 5,
            ..SimResult::default()
        };
        assert!((r.ipc() - 2.0).abs() < 1e-12);
        assert!((r.mispredicts_per_10k_loads() - 100.0).abs() < 1e-9);
        assert!((r.delayed_pct() - 2.0).abs() < 1e-9);
        assert_eq!(r.dcache_reads(), 455);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let r = SimResult::default();
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.mispredicts_per_10k_loads(), 0.0);
        assert_eq!(r.reexec_rate(), 0.0);
    }

    #[test]
    fn geomean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
        let g = geometric_mean(&[0.9, 1.1]);
        assert!(g > 0.99 && g < 1.0, "{g}");
    }

    #[test]
    fn relative_time() {
        let fast = SimResult {
            cycles: 900,
            ..SimResult::default()
        };
        let slow = SimResult {
            cycles: 1000,
            ..SimResult::default()
        };
        assert!((slow.relative_time(&fast) - 1.111).abs() < 1e-3);
        assert!((fast.relative_time(&slow) - 0.9).abs() < 1e-12);
    }
}
