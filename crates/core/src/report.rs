//! Structured simulation reports: typed metric groups, derived metrics,
//! and machine-readable serialization.
//!
//! A finished (or in-flight) session summarizes into a [`SimReport`]:
//! exact integer counters organized into four groups — [`FrontendMetrics`],
//! [`MemoryMetrics`], [`VerificationMetrics`], [`StallMetrics`] — plus the
//! top-level `cycles`/`insts` pair. All counters are exact, so `Eq`
//! compares two runs bit-for-bit (the determinism regression suite relies
//! on this). [`SimReport::to_json`] and [`SimReport::to_csv_row`] emit
//! machine-readable artifacts through the shared [`crate::ser`] writers,
//! without any external serialization crate.

use crate::ser::{csv_row, JsonObject};

/// Front-end (fetch / branch prediction) counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FrontendMetrics {
    /// Branch direction / target mis-predictions.
    pub branch_mispredicts: u64,
}

/// Memory-system counters: loads, stores, and how loads obtained their
/// values (bypass, delay, forwarding, cache).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MemoryMetrics {
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Loads that bypassed through SMB (NoSQ variants). Counted at
    /// dispatch, so squashed-and-refetched loads count once per dispatch.
    pub bypassed_loads: u64,
    /// Loads delayed by the confidence mechanism.
    pub delayed_loads: u64,
    /// Loads whose bypass needed the injected shift & mask instruction.
    pub shift_mask_uops: u64,
    /// Loads forwarded from the store queue (baseline only).
    pub sq_forwards: u64,
    /// Data-cache reads issued by the out-of-order core.
    pub ooo_dcache_reads: u64,
    /// Committed loads that had in-window communication (ground truth).
    pub comm_loads: u64,
    /// ... of which partial-word.
    pub partial_comm_loads: u64,
}

/// Load-verification (SVW / T-SSBF) counters and squash causes.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct VerificationMetrics {
    /// Squashes caused by bypassing mis-predictions (NoSQ; the paper's
    /// "mis-predictions").
    pub bypass_mispredicts: u64,
    /// Squashes caused by memory-ordering violations (baseline).
    pub ordering_squashes: u64,
    /// Data-cache reads issued by back-end re-execution.
    pub backend_dcache_reads: u64,
    /// Loads that passed the SVW filter (skipped re-execution).
    pub reexec_filtered: u64,
    /// SSN wrap-around drains performed.
    pub ssn_wrap_drains: u64,
}

/// Dispatch-stall counters (structural hazards at rename).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StallMetrics {
    /// Dispatch stalls due to a full store queue (baseline only).
    pub sq_dispatch_stalls: u64,
    /// Dispatch stalls due to a full issue queue.
    pub iq_dispatch_stalls: u64,
    /// Dispatch stalls due to physical-register exhaustion.
    pub reg_dispatch_stalls: u64,
}

/// The structured result of one simulation session.
///
/// Produced by [`crate::Simulator::finish`] (or the one-shot
/// [`crate::simulate`] wrapper) and also readable mid-session through
/// [`crate::Simulator::stats`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SimReport {
    /// Total cycles executed so far.
    pub cycles: u64,
    /// Committed (retired) instructions.
    pub insts: u64,
    /// Front-end counters.
    pub frontend: FrontendMetrics,
    /// Memory-system counters.
    pub memory: MemoryMetrics,
    /// Verification counters.
    pub verification: VerificationMetrics,
    /// Dispatch-stall counters.
    pub stalls: StallMetrics,
}

/// Pre-0.2 name for [`SimReport`].
///
/// The flat 20-field `SimResult` was reorganized into [`SimReport`]'s
/// typed metric groups; see the crate-level migration note.
#[deprecated(note = "renamed to SimReport; counters moved into typed groups")]
pub type SimResult = SimReport;

/// Stable flat view of every counter, shared by the JSON and CSV
/// encoders: `(group, name, accessor)`. The empty group holds the
/// top-level counters.
type CounterField = (&'static str, &'static str, fn(&SimReport) -> u64);

const COUNTER_FIELDS: &[CounterField] = &[
    ("", "cycles", |r| r.cycles),
    ("", "insts", |r| r.insts),
    ("frontend", "branch_mispredicts", |r| {
        r.frontend.branch_mispredicts
    }),
    ("memory", "loads", |r| r.memory.loads),
    ("memory", "stores", |r| r.memory.stores),
    ("memory", "bypassed_loads", |r| r.memory.bypassed_loads),
    ("memory", "delayed_loads", |r| r.memory.delayed_loads),
    ("memory", "shift_mask_uops", |r| r.memory.shift_mask_uops),
    ("memory", "sq_forwards", |r| r.memory.sq_forwards),
    ("memory", "ooo_dcache_reads", |r| r.memory.ooo_dcache_reads),
    ("memory", "comm_loads", |r| r.memory.comm_loads),
    ("memory", "partial_comm_loads", |r| {
        r.memory.partial_comm_loads
    }),
    ("verification", "bypass_mispredicts", |r| {
        r.verification.bypass_mispredicts
    }),
    ("verification", "ordering_squashes", |r| {
        r.verification.ordering_squashes
    }),
    ("verification", "backend_dcache_reads", |r| {
        r.verification.backend_dcache_reads
    }),
    ("verification", "reexec_filtered", |r| {
        r.verification.reexec_filtered
    }),
    ("verification", "ssn_wrap_drains", |r| {
        r.verification.ssn_wrap_drains
    }),
    ("stalls", "sq_dispatch_stalls", |r| {
        r.stalls.sq_dispatch_stalls
    }),
    ("stalls", "iq_dispatch_stalls", |r| {
        r.stalls.iq_dispatch_stalls
    }),
    ("stalls", "reg_dispatch_stalls", |r| {
        r.stalls.reg_dispatch_stalls
    }),
];

impl SimReport {
    // ----------------------------------------------------------------
    // Derived metrics.
    // ----------------------------------------------------------------

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }

    /// Bypassing mis-predictions per 10,000 committed loads (Table 5's
    /// right-hand metric).
    pub fn mispredicts_per_10k_loads(&self) -> f64 {
        if self.memory.loads == 0 {
            0.0
        } else {
            10_000.0 * self.verification.bypass_mispredicts as f64 / self.memory.loads as f64
        }
    }

    /// Percentage of committed loads delayed (Table 5, parenthesized).
    pub fn delayed_pct(&self) -> f64 {
        if self.memory.loads == 0 {
            0.0
        } else {
            100.0 * self.memory.delayed_loads as f64 / self.memory.loads as f64
        }
    }

    /// Percentage of committed loads that bypassed.
    pub fn bypassed_pct(&self) -> f64 {
        if self.memory.loads == 0 {
            0.0
        } else {
            100.0 * self.memory.bypassed_loads as f64 / self.memory.loads as f64
        }
    }

    /// Total data-cache reads (Figure 4's metric).
    pub fn dcache_reads(&self) -> u64 {
        self.memory.ooo_dcache_reads + self.verification.backend_dcache_reads
    }

    /// Fraction of loads that re-executed (paper: ~0.7% with the
    /// T-SSBF).
    pub fn reexec_rate(&self) -> f64 {
        if self.memory.loads == 0 {
            0.0
        } else {
            self.verification.backend_dcache_reads as f64 / self.memory.loads as f64
        }
    }

    /// Execution time relative to a reference run of the same workload.
    ///
    /// Returns [`f64::NAN`] when the reference run retired no cycles —
    /// a zero-cycle reference carries no timing information, and the old
    /// `0.0` return silently read as "infinitely fast". Callers that
    /// require a meaningful reference should assert on `!is_nan()`
    /// (the bench harness's `rel_time` helper does).
    pub fn relative_time(&self, reference: &SimReport) -> f64 {
        if reference.cycles == 0 {
            f64::NAN
        } else {
            self.cycles as f64 / reference.cycles as f64
        }
    }

    // ----------------------------------------------------------------
    // Serialization (hand-rolled: the build environment has no
    // crates.io access, so no serde).
    // ----------------------------------------------------------------

    /// Flat `(group, name, value)` view of every counter, in the stable
    /// order shared by the JSON and CSV encoders. Top-level counters
    /// (`cycles`, `insts`) report an empty group.
    pub fn counters(&self) -> Vec<(&'static str, &'static str, u64)> {
        COUNTER_FIELDS
            .iter()
            .map(|&(group, name, get)| (group, name, get(self)))
            .collect()
    }

    /// Encodes the report as a self-contained JSON object: the counter
    /// groups nested as sub-objects plus a `derived` object with the
    /// [floating-point metrics](Self::ipc). Built on the shared
    /// [`crate::ser`] writers, so the output is always valid JSON.
    pub fn to_json(&self) -> String {
        let counters = self.counters();
        let mut obj = JsonObject::new();
        // Top-level (empty-group) counters first, then each group as a
        // nested object in order of first appearance — independent of
        // how `counters()` interleaves them.
        for &(group, name, value) in &counters {
            if group.is_empty() {
                obj.field_u64(name, value);
            }
        }
        let mut groups: Vec<&str> = Vec::new();
        for &(group, _, _) in &counters {
            if !group.is_empty() && !groups.contains(&group) {
                groups.push(group);
            }
        }
        for group in groups {
            let mut nested = JsonObject::new();
            for &(g, name, value) in &counters {
                if g == group {
                    nested.field_u64(name, value);
                }
            }
            obj.field_raw(group, &nested.finish());
        }
        let mut derived = JsonObject::new();
        derived
            .field_f64("ipc", self.ipc())
            .field_f64("bypassed_pct", self.bypassed_pct())
            .field_f64("delayed_pct", self.delayed_pct())
            .field_f64(
                "mispredicts_per_10k_loads",
                self.mispredicts_per_10k_loads(),
            )
            .field_f64("reexec_rate", self.reexec_rate())
            .field_u64("dcache_reads", self.dcache_reads());
        obj.field_raw("derived", &derived.finish());
        obj.finish()
    }

    /// The CSV header matching [`Self::to_csv_row`]: dotted
    /// `group.name` column names in the stable counter order.
    pub fn csv_header() -> String {
        let cells: Vec<String> = COUNTER_FIELDS
            .iter()
            .map(|&(group, name, _)| {
                if group.is_empty() {
                    name.to_owned()
                } else {
                    format!("{group}.{name}")
                }
            })
            .collect();
        csv_row(&cells)
    }

    /// Encodes the counters as one CSV row in [`Self::csv_header`]'s
    /// column order.
    pub fn to_csv_row(&self) -> String {
        let cells: Vec<String> = COUNTER_FIELDS
            .iter()
            .map(|&(_, _, get)| get(self).to_string())
            .collect();
        csv_row(&cells)
    }
}

nosq_wire::wire_struct!(FrontendMetrics { branch_mispredicts });
nosq_wire::wire_struct!(MemoryMetrics {
    loads,
    stores,
    bypassed_loads,
    delayed_loads,
    shift_mask_uops,
    sq_forwards,
    ooo_dcache_reads,
    comm_loads,
    partial_comm_loads
});
nosq_wire::wire_struct!(VerificationMetrics {
    bypass_mispredicts,
    ordering_squashes,
    backend_dcache_reads,
    reexec_filtered,
    ssn_wrap_drains
});
nosq_wire::wire_struct!(StallMetrics {
    sq_dispatch_stalls,
    iq_dispatch_stalls,
    reg_dispatch_stalls
});
nosq_wire::wire_struct!(SimReport {
    cycles,
    insts,
    frontend,
    memory,
    verification,
    stalls
});

/// Geometric mean of a slice of positive values (used for the per-suite
/// means in Figures 2-3).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimReport {
        SimReport {
            cycles: 1000,
            insts: 2000,
            memory: MemoryMetrics {
                loads: 500,
                delayed_loads: 10,
                ooo_dcache_reads: 450,
                ..MemoryMetrics::default()
            },
            verification: VerificationMetrics {
                bypass_mispredicts: 5,
                backend_dcache_reads: 5,
                ..VerificationMetrics::default()
            },
            ..SimReport::default()
        }
    }

    #[test]
    fn derived_metrics() {
        let r = sample();
        assert!((r.ipc() - 2.0).abs() < 1e-12);
        assert!((r.mispredicts_per_10k_loads() - 100.0).abs() < 1e-9);
        assert!((r.delayed_pct() - 2.0).abs() < 1e-9);
        assert_eq!(r.dcache_reads(), 455);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let r = SimReport::default();
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.mispredicts_per_10k_loads(), 0.0);
        assert_eq!(r.reexec_rate(), 0.0);
    }

    #[test]
    fn geomean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
        let g = geometric_mean(&[0.9, 1.1]);
        assert!(g > 0.99 && g < 1.0, "{g}");
    }

    #[test]
    fn relative_time() {
        let fast = SimReport {
            cycles: 900,
            ..SimReport::default()
        };
        let slow = SimReport {
            cycles: 1000,
            ..SimReport::default()
        };
        assert!((slow.relative_time(&fast) - 1.111).abs() < 1e-3);
        assert!((fast.relative_time(&slow) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn relative_time_against_empty_reference_is_nan() {
        let r = sample();
        let empty = SimReport::default();
        assert!(r.relative_time(&empty).is_nan());
    }

    #[test]
    fn counters_cover_every_field_once() {
        let c = sample().counters();
        assert_eq!(c.len(), 20, "counter field list out of sync");
        let mut names: Vec<String> = c.iter().map(|(g, n, _)| format!("{g}.{n}")).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 20, "duplicate counter name");
        // Spot-check group placement.
        assert!(c.contains(&("", "cycles", 1000)));
        assert!(c.contains(&("memory", "loads", 500)));
        assert!(c.contains(&("verification", "bypass_mispredicts", 5)));
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let r = sample();
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        // Balanced braces / quotes (a cheap structural check with no
        // JSON parser available offline).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('"').count() % 2, 0, "{json}");
        // No malformed separators (a cheap proxy for real parsing).
        for bad in ["{,", ",,", ",}", "{}", "::"] {
            assert!(!json.contains(bad), "malformed `{bad}` in {json}");
        }
        for (group, name, value) in r.counters() {
            assert!(
                json.contains(&format!("\"{name}\":{value}")),
                "{group}.{name} missing"
            );
        }
        assert!(json.contains("\"derived\":{"));
        assert!(json.contains("\"ipc\":2.000000"));
        // No NaN/inf can leak into the output.
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let header = SimReport::csv_header();
        let row = sample().to_csv_row();
        assert_eq!(
            header.split(',').count(),
            row.split(',').count(),
            "{header} vs {row}"
        );
        assert!(header.starts_with("cycles,insts,frontend.branch_mispredicts"));
        assert!(row.starts_with("1000,2000,0"));
    }
}
