//! Partial-word bypass value computation (paper §3.5).
//!
//! A partial-word store-load pair implicitly performs mask, shift,
//! sign/zero-extend, and (for `sts`/`lds`) float-precision conversions on
//! the value passed from DEF to USE. NoSQ mimics these with a speculative
//! shift & mask instruction injected in place of the bypassed load: the
//! store's size and type come non-speculatively from the SRQ; only the
//! shift amount is predicted.

use nosq_isa::exec::{load_extend, store_memory_bits};
use nosq_isa::{Extension, MemWidth};

/// Computes the value a bypassed load receives from the predicted store's
/// data register.
///
/// * `store_data` — the store's data-register value (the short-circuited
///   physical register's contents),
/// * `store_width`/`store_float32` — the store's actual size and type
///   (recorded in the SRQ, known non-speculatively),
/// * `shift` — the *predicted* shift in bytes (load address − store
///   address),
/// * `load_width`/`load_ext` — the load's own size and extension
///   (known from its opcode).
///
/// If the prediction is wrong (wrong store, wrong shift, or a multi-source
/// load), the result is simply a wrong value — exactly what commit-stage
/// value verification is for.
pub fn bypass_value(
    store_data: u64,
    store_width: MemWidth,
    store_float32: bool,
    shift: u8,
    load_width: MemWidth,
    load_ext: Extension,
) -> u64 {
    // The bytes the store would put in memory...
    let mem_bits = store_memory_bits(store_data, store_width, store_float32);
    // ...shifted down to the load's position and masked to its width...
    let shifted = if shift >= 8 {
        0
    } else {
        mem_bits >> (8 * shift as u32)
    };
    let masked = match load_width {
        MemWidth::B8 => shifted,
        w => shifted & ((1u64 << (8 * w.bytes())) - 1),
    };
    // ...then widened exactly as the load would widen memory bytes.
    load_extend(masked, load_width, load_ext)
}

/// Whether a bypass needs the injected shift & mask instruction (anything
/// other than a full-word, shift-0, non-float pair is "difficult": it
/// transforms the value in flight).
pub fn needs_shift_mask(
    store_width: MemWidth,
    store_float32: bool,
    shift: u8,
    load_width: MemWidth,
    load_ext: Extension,
) -> bool {
    store_width != MemWidth::B8
        || store_float32
        || shift != 0
        || load_width != MemWidth::B8
        || load_ext == Extension::Float32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_word_identity() {
        let v = 0x1122_3344_5566_7788;
        assert_eq!(
            bypass_value(v, MemWidth::B8, false, 0, MemWidth::B8, Extension::Zero),
            v
        );
        assert!(!needs_shift_mask(
            MemWidth::B8,
            false,
            0,
            MemWidth::B8,
            Extension::Zero
        ));
    }

    #[test]
    fn narrow_load_of_wide_store_matches_memory_path() {
        let v = 0x1122_3344_5566_7788u64;
        // Load 2 bytes at +4: memory would hold 5566_7788,3344,1122... LE:
        // bytes at offsets 4..5 are 0x3344.
        let got = bypass_value(v, MemWidth::B8, false, 4, MemWidth::B2, Extension::Zero);
        assert_eq!(got, 0x3344);
        assert!(needs_shift_mask(
            MemWidth::B8,
            false,
            4,
            MemWidth::B2,
            Extension::Zero
        ));
    }

    #[test]
    fn sign_extension_applied() {
        let v = 0x0000_0000_0000_80FFu64;
        let got = bypass_value(v, MemWidth::B2, false, 1, MemWidth::B1, Extension::Sign);
        // Byte at offset 1 of the 2-byte store is 0x80 → sign-extends.
        assert_eq!(got, 0xFFFF_FFFF_FFFF_FF80);
    }

    #[test]
    fn float32_conversion_matches_memory_roundtrip() {
        let f = 1.0f64 + 1e-12; // loses precision through f32
        let got = bypass_value(
            f.to_bits(),
            MemWidth::B4,
            true,
            0,
            MemWidth::B4,
            Extension::Float32,
        );
        assert_eq!(f64::from_bits(got), f64::from(f as f32));
        assert!(needs_shift_mask(
            MemWidth::B4,
            true,
            0,
            MemWidth::B4,
            Extension::Float32
        ));
    }

    #[test]
    fn wrong_shift_gives_wrong_value() {
        let v = 0x1122_3344_5566_7788u64;
        let right = bypass_value(v, MemWidth::B8, false, 4, MemWidth::B2, Extension::Zero);
        let wrong = bypass_value(v, MemWidth::B8, false, 2, MemWidth::B2, Extension::Zero);
        assert_ne!(right, wrong);
    }

    #[test]
    fn oversized_shift_yields_zero_bits() {
        assert_eq!(
            bypass_value(
                u64::MAX,
                MemWidth::B8,
                false,
                8,
                MemWidth::B8,
                Extension::Zero
            ),
            0
        );
    }

    #[test]
    fn narrow_store_masks_high_bytes() {
        // A 1-byte store of 0xFFFF puts only 0xFF in memory; a 2-byte load
        // at shift 0 sees 0x00FF (upper byte from elsewhere → zero here).
        let got = bypass_value(
            0xFFFF,
            MemWidth::B1,
            false,
            0,
            MemWidth::B2,
            Extension::Zero,
        );
        assert_eq!(got, 0xFF);
    }
}
