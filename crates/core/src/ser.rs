//! Tiny hand-rolled serialization helpers shared by every artifact
//! emitter in the workspace.
//!
//! The build environment has no crates.io access, so there is no serde;
//! instead [`SimReport`](crate::SimReport), the bench harnesses, and the
//! `nosq-lab` campaign engine all emit JSON/CSV through the writers in
//! this module. Centralizing the escaping and row-building rules here
//! keeps every artifact byte-deterministic and structurally valid — the
//! escaping corner cases live in exactly one place.
//!
//! ```
//! use nosq_core::ser::{csv_row, JsonObject};
//!
//! let mut obj = JsonObject::new();
//! obj.field_str("benchmark", "gcc \"expr\"");
//! obj.field_u64("cycles", 1024);
//! obj.field_f64("ipc", 1.5);
//! assert_eq!(
//!     obj.finish(),
//!     r#"{"benchmark":"gcc \"expr\"","cycles":1024,"ipc":1.500000}"#
//! );
//! assert_eq!(csv_row(&["a,b".into(), "1".into()]), "\"a,b\",1");
//! ```

/// Escapes a string for inclusion in a JSON string literal (without the
/// surrounding quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float for JSON with six fractional digits. Non-finite
/// values (which JSON cannot represent) become `null`, never `NaN`/`inf`
/// garbage in the output.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_owned()
    }
}

/// Incremental JSON object writer: append fields, then
/// [`finish`](JsonObject::finish). Comma placement is handled
/// internally, so the output never contains `{,` / `,}` separators.
#[derive(Clone, Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    fn key(&mut self, name: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push('"');
        self.buf.push_str(&json_escape(name));
        self.buf.push_str("\":");
    }

    /// Appends an unsigned-integer field.
    pub fn field_u64(&mut self, name: &str, value: u64) -> &mut Self {
        self.key(name);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Appends a float field via [`json_f64`].
    pub fn field_f64(&mut self, name: &str, value: f64) -> &mut Self {
        self.key(name);
        self.buf.push_str(&json_f64(value));
        self
    }

    /// Appends an escaped string field.
    pub fn field_str(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name);
        self.buf.push('"');
        self.buf.push_str(&json_escape(value));
        self.buf.push('"');
        self
    }

    /// Appends a boolean field.
    pub fn field_bool(&mut self, name: &str, value: bool) -> &mut Self {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Appends a pre-serialized JSON value verbatim (a nested object,
    /// array, or literal).
    pub fn field_raw(&mut self, name: &str, raw: &str) -> &mut Self {
        self.key(name);
        self.buf.push_str(raw);
        self
    }

    /// Closes the object and returns the serialized text.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Incremental JSON array writer, the sibling of [`JsonObject`].
#[derive(Clone, Debug, Default)]
pub struct JsonArray {
    buf: String,
    any: bool,
}

impl JsonArray {
    /// Starts an empty array.
    pub fn new() -> JsonArray {
        JsonArray::default()
    }

    fn sep(&mut self) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
    }

    /// Appends a pre-serialized JSON value verbatim.
    pub fn push_raw(&mut self, raw: &str) -> &mut Self {
        self.sep();
        self.buf.push_str(raw);
        self
    }

    /// Appends an escaped string element.
    pub fn push_str(&mut self, value: &str) -> &mut Self {
        self.sep();
        self.buf.push('"');
        self.buf.push_str(&json_escape(value));
        self.buf.push('"');
        self
    }

    /// Closes the array and returns the serialized text.
    pub fn finish(self) -> String {
        format!("[{}]", self.buf)
    }
}

/// Quotes a CSV cell when (and only when) it needs quoting — embedded
/// commas, double quotes, or newlines — doubling interior quotes per
/// RFC 4180.
pub fn csv_field(cell: &str) -> String {
    if cell.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_owned()
    }
}

/// Joins cells into one CSV row (no trailing newline), quoting each
/// through [`csv_field`].
pub fn csv_row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| csv_field(c))
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain.name"), "plain.name");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_f64_never_emits_nonfinite() {
        assert_eq!(json_f64(1.25), "1.250000");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn object_writer_places_commas() {
        let mut o = JsonObject::new();
        assert_eq!(o.clone().finish(), "{}");
        o.field_u64("a", 1).field_str("b", "x").field_f64("c", 0.5);
        o.field_raw("d", "[1,2]");
        assert_eq!(
            o.finish(),
            "{\"a\":1,\"b\":\"x\",\"c\":0.500000,\"d\":[1,2]}"
        );
    }

    #[test]
    fn array_writer_places_commas() {
        let mut a = JsonArray::new();
        assert_eq!(a.clone().finish(), "[]");
        a.push_raw("1").push_str("two").push_raw("{}");
        assert_eq!(a.finish(), "[1,\"two\",{}]");
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(
            csv_row(&["x".into(), "1,2".into(), "3".into()]),
            "x,\"1,2\",3"
        );
    }
}
