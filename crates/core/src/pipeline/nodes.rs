//! Value nodes: physical registers with reference counting.
//!
//! SMB lets a DEF and a bypassed load *share* one physical register
//! (paper §3.4 footnote: "the physical registers must be explicitly
//! reference counted to properly determine when it is safe to reallocate
//! a register"). A node is held once per architectural-register mapping;
//! it is freed when its last mapping is overwritten by a retired writer
//! (or rolled back by a squash).

use nosq_isa::Reg;

/// Identifier of a value node (physical register). `u32` keeps the
/// node fields the ROB entries and issue candidates carry compact.
pub type NodeId = u32;

#[derive(Copy, Clone, Debug)]
struct Node {
    /// Cycle from which dependents may issue (producer issue time plus
    /// execution latency); `u64::MAX` until the producer is scheduled.
    ready_for_issue: u64,
    refs: u32,
}

/// The register state: node slab, free list, and the speculative RAT.
#[derive(Clone, Debug)]
pub struct RegState {
    nodes: Vec<Node>,
    free: Vec<NodeId>,
    rat: [Option<NodeId>; Reg::COUNT],
    allocated: usize,
    limit: usize,
}

impl RegState {
    /// Creates the state with an in-flight allocation limit of
    /// `phys_regs - Reg::COUNT` nodes (the architectural state consumes
    /// one register per architectural register).
    pub fn new(phys_regs: usize) -> RegState {
        let limit = phys_regs.saturating_sub(Reg::COUNT).max(1);
        RegState {
            nodes: Vec::new(),
            free: Vec::new(),
            rat: [None; Reg::COUNT],
            allocated: 0,
            limit,
        }
    }

    /// Whether a new node can be allocated (dispatch gate).
    pub fn can_alloc(&self) -> bool {
        self.allocated < self.limit
    }

    /// Live node count (diagnostics / invariant checks).
    #[allow(dead_code)] // exercised by tests and debug assertions
    pub fn allocated(&self) -> usize {
        self.allocated
    }

    /// Allocates a fresh node with one reference (its RAT mapping hold).
    ///
    /// # Panics
    ///
    /// Panics if the allocation limit is exceeded; guard with
    /// [`RegState::can_alloc`].
    pub fn alloc(&mut self) -> NodeId {
        assert!(self.can_alloc(), "physical register overflow");
        self.allocated += 1;
        let node = Node {
            ready_for_issue: u64::MAX,
            refs: 1,
        };
        match self.free.pop() {
            Some(id) => {
                self.nodes[id as usize] = node;
                id
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as NodeId
            }
        }
    }

    /// Adds a reference (a second RAT mapping — SMB register sharing).
    pub fn add_ref(&mut self, id: NodeId) {
        self.nodes[id as usize].refs += 1;
    }

    /// Releases one reference, freeing the node at zero.
    ///
    /// # Panics
    ///
    /// Panics on a double release.
    pub fn release(&mut self, id: NodeId) {
        let n = &mut self.nodes[id as usize];
        assert!(n.refs > 0, "double release of node {id}");
        n.refs -= 1;
        if n.refs == 0 {
            self.allocated -= 1;
            self.free.push(id);
        }
    }

    /// Cycle from which consumers of `node` may issue (`None` = the
    /// architectural register file, always ready).
    pub fn ready(&self, node: Option<NodeId>) -> u64 {
        match node {
            Some(id) => self.nodes[id as usize].ready_for_issue,
            None => 0,
        }
    }

    /// Sets a node's readiness when its producer is scheduled.
    pub fn set_ready(&mut self, id: NodeId, cycle: u64) {
        self.nodes[id as usize].ready_for_issue = cycle;
    }

    /// Current RAT mapping of `reg` (`None` = architectural value).
    pub fn mapping(&self, reg: Reg) -> Option<NodeId> {
        if reg.is_zero() {
            None
        } else {
            self.rat[reg.index()]
        }
    }

    /// Points `reg` at `node`, returning the previous mapping (which the
    /// caller must record for retire-time release / squash rollback).
    pub fn remap(&mut self, reg: Reg, node: Option<NodeId>) -> Option<NodeId> {
        std::mem::replace(&mut self.rat[reg.index()], node)
    }
}

nosq_wire::wire_struct!(Node {
    ready_for_issue,
    refs
});
nosq_wire::wire_struct!(RegState {
    nodes,
    free,
    rat,
    allocated,
    limit
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_cycle() {
        let mut r = RegState::new(Reg::COUNT + 2);
        assert!(r.can_alloc());
        let a = r.alloc();
        let b = r.alloc();
        assert!(!r.can_alloc());
        r.release(a);
        assert!(r.can_alloc());
        let c = r.alloc();
        assert_eq!(c, a, "freed slot is recycled");
        r.release(b);
        r.release(c);
        assert_eq!(r.allocated(), 0);
    }

    #[test]
    fn shared_node_survives_first_release() {
        let mut r = RegState::new(Reg::COUNT + 4);
        let n = r.alloc();
        r.add_ref(n); // bypassed load shares the DEF's register
        r.release(n);
        assert_eq!(r.allocated(), 1, "still held by the second mapping");
        r.release(n);
        assert_eq!(r.allocated(), 0);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut r = RegState::new(Reg::COUNT + 4);
        let n = r.alloc();
        r.release(n);
        r.release(n);
    }

    #[test]
    fn readiness_defaults() {
        let mut r = RegState::new(Reg::COUNT + 4);
        assert_eq!(r.ready(None), 0, "architectural values are ready");
        let n = r.alloc();
        assert_eq!(r.ready(Some(n)), u64::MAX);
        r.set_ready(n, 17);
        assert_eq!(r.ready(Some(n)), 17);
        r.release(n);
    }

    #[test]
    fn remap_returns_previous() {
        let mut r = RegState::new(Reg::COUNT + 4);
        let reg = Reg::int(3);
        let a = r.alloc();
        assert_eq!(r.remap(reg, Some(a)), None);
        let b = r.alloc();
        assert_eq!(r.remap(reg, Some(b)), Some(a));
        assert_eq!(r.mapping(reg), Some(b));
    }

    #[test]
    fn zero_register_never_maps() {
        let r = RegState::new(Reg::COUNT + 4);
        assert_eq!(r.mapping(Reg::ZERO), None);
    }
}
