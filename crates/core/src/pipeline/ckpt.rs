//! Durable on-disk encoding of [`SimCheckpoint`].
//!
//! A checkpoint serializes to a versioned, checksummed
//! [`envelope`](nosq_wire::envelope) whose payload is the deterministic
//! wire encoding of every field except the [`SimConfig`]. The
//! configuration is not stored: it is *identified* — the envelope's
//! fingerprint is an FNV-1a hash of the config's `Debug` rendering, and
//! [`SimCheckpoint::from_bytes`] requires the caller to supply the same
//! configuration the checkpoint was taken under. Opening a checkpoint
//! against a different configuration fails cleanly instead of resuming
//! a subtly different machine.
//!
//! Decoding validates everything: magic, version, exact length,
//! whole-buffer checksum, config fingerprint, then every field's own
//! range checks (register indices, instruction classes, saturating
//! counters, ring lengths). Any truncation or bit-flip yields a
//! [`CkptError`], never a panic and never a silently wrong state —
//! `tests/it_ckptio.rs` proves this exhaustively for every byte
//! boundary and a corruption sweep.

use super::*;

use nosq_wire::envelope::{self, EnvelopeError};
use nosq_wire::{Dec, Enc, Wire, WireError};

impl Wire for LoadMode {
    fn enc(&self, e: &mut Enc) {
        match self {
            LoadMode::Normal => e.put_u8(0),
            LoadMode::Delayed => e.put_u8(1),
            LoadMode::Bypassed { partial } => {
                e.put_u8(2);
                partial.enc(e);
            }
        }
    }

    fn dec(d: &mut Dec) -> Result<Self, WireError> {
        match d.take_u8()? {
            0 => Ok(LoadMode::Normal),
            1 => Ok(LoadMode::Delayed),
            2 => Ok(LoadMode::Bypassed {
                partial: bool::dec(d)?,
            }),
            _ => Err(WireError::Invalid("load mode")),
        }
    }
}

nosq_wire::wire_struct!(LoadState {
    mode,
    wait_exec,
    wait_commit,
    ssn_nvul,
    ssn_byp,
    exec_value,
    pred,
    oracle,
    injected
});
nosq_wire::wire_struct!(Entry {
    uid,
    inst,
    class,
    path_snap,
    bpred_snap,
    ras_snap,
    map_reg,
    map_node,
    prev_node,
    srcs,
    issued,
    complete_cycle,
    mispredicted_branch,
    ssn,
    load,
    holds_lq,
    holds_sq,
    store_data_ref
});
nosq_wire::wire_struct!(ReadyCand { pos, class });
nosq_wire::wire_struct!(WheelEntry { ready, pos, class });
nosq_wire::wire_struct!(Waiter {
    pos,
    class,
    srcs,
    next
});
nosq_wire::wire_struct!(Fetched {
    inst,
    uid,
    fetch_cycle,
    path_snap,
    bpred_snap,
    ras_snap,
    mispredicted_branch
});

/// Why a serialized checkpoint could not be opened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The container itself is damaged or mismatched (truncation,
    /// corruption, wrong version, wrong configuration).
    Envelope(EnvelopeError),
    /// The payload passed the checksum but a field failed its own
    /// validation — possible only across an encoding change, since the
    /// checksum already rules out transmission damage.
    Payload(WireError),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Envelope(e) => write!(f, "checkpoint envelope: {e}"),
            CkptError::Payload(e) => write!(f, "checkpoint payload: {e}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<EnvelopeError> for CkptError {
    fn from(e: EnvelopeError) -> CkptError {
        CkptError::Envelope(e)
    }
}

impl From<WireError> for CkptError {
    fn from(e: WireError) -> CkptError {
        CkptError::Payload(e)
    }
}

impl SimCheckpoint {
    /// The fingerprint identifying a [`SimConfig`] on disk. Derived from
    /// the config's `Debug` rendering, so *any* configuration difference
    /// — field value, field added in a later release — changes it.
    pub fn config_fingerprint(cfg: &SimConfig) -> u64 {
        nosq_wire::fnv1a(format!("{cfg:?}").as_bytes())
    }

    /// Serializes the checkpoint into a self-validating envelope.
    ///
    /// The bytes are canonical: two checkpoints of identical simulator
    /// state encode identically, so byte equality of `to_bytes` output
    /// is state equality.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Enc::new();
        self.clock.enc(&mut e);
        self.next_uid.enc(&mut e);
        self.stream_next.enc(&mut e);
        self.stream_limit.enc(&mut e);
        self.stream_done.enc(&mut e);
        self.pending.enc(&mut e);
        self.fetch_buffer.enc(&mut e);
        self.rob.enc(&mut e);
        self.backend_exits.enc(&mut e);
        self.iq_ready.enc(&mut e);
        self.wheel.enc(&mut e);
        self.waiters.enc(&mut e);
        self.waiter_free.enc(&mut e);
        self.node_waiters.enc(&mut e);
        self.iq_count.enc(&mut e);
        self.lq_used.enc(&mut e);
        self.sq_used.enc(&mut e);
        self.regs.enc(&mut e);
        self.timing_mem.enc(&mut e);
        self.hierarchy.enc(&mut e);
        self.bpred.enc(&mut e);
        self.btb.enc(&mut e);
        self.ras.enc(&mut e);
        self.path.enc(&mut e);
        self.fetch_stall_until.enc(&mut e);
        self.fetch_stalled_on.enc(&mut e);
        self.halt_fetched.enc(&mut e);
        self.ssn.enc(&mut e);
        self.srq.enc(&mut e);
        self.tssbf.enc(&mut e);
        self.predictor.enc(&mut e);
        self.storesets.enc(&mut e);
        self.draining_for_wrap.enc(&mut e);
        self.fault_bypass_seen.enc(&mut e);
        self.stats.enc(&mut e);
        self.done.enc(&mut e);
        envelope::seal(
            SimCheckpoint::config_fingerprint(&self.cfg),
            &e.into_bytes(),
        )
    }

    /// Deserializes a checkpoint sealed by [`SimCheckpoint::to_bytes`].
    ///
    /// `cfg` must be the configuration the checkpoint was taken under
    /// (enforced via [`SimCheckpoint::config_fingerprint`]). Rejects any
    /// truncated, corrupted, version-mismatched, or config-mismatched
    /// input with a [`CkptError`]; a successful decode reconstructs the
    /// snapshot bit-identically.
    pub fn from_bytes(bytes: &[u8], cfg: &SimConfig) -> Result<SimCheckpoint, CkptError> {
        let payload = envelope::open(bytes, SimCheckpoint::config_fingerprint(cfg))?;
        let mut d = Dec::new(payload);
        let ckpt = SimCheckpoint {
            cfg: cfg.clone(),
            clock: Wire::dec(&mut d)?,
            next_uid: Wire::dec(&mut d)?,
            stream_next: Wire::dec(&mut d)?,
            stream_limit: Wire::dec(&mut d)?,
            stream_done: Wire::dec(&mut d)?,
            pending: Wire::dec(&mut d)?,
            fetch_buffer: Wire::dec(&mut d)?,
            rob: Wire::dec(&mut d)?,
            backend_exits: Wire::dec(&mut d)?,
            iq_ready: Wire::dec(&mut d)?,
            wheel: Wire::dec(&mut d)?,
            waiters: Wire::dec(&mut d)?,
            waiter_free: Wire::dec(&mut d)?,
            node_waiters: Wire::dec(&mut d)?,
            iq_count: Wire::dec(&mut d)?,
            lq_used: Wire::dec(&mut d)?,
            sq_used: Wire::dec(&mut d)?,
            regs: Wire::dec(&mut d)?,
            timing_mem: Wire::dec(&mut d)?,
            hierarchy: Wire::dec(&mut d)?,
            bpred: Wire::dec(&mut d)?,
            btb: Wire::dec(&mut d)?,
            ras: Wire::dec(&mut d)?,
            path: Wire::dec(&mut d)?,
            fetch_stall_until: Wire::dec(&mut d)?,
            fetch_stalled_on: Wire::dec(&mut d)?,
            halt_fetched: Wire::dec(&mut d)?,
            ssn: Wire::dec(&mut d)?,
            srq: Wire::dec(&mut d)?,
            tssbf: Wire::dec(&mut d)?,
            predictor: Wire::dec(&mut d)?,
            storesets: Wire::dec(&mut d)?,
            draining_for_wrap: Wire::dec(&mut d)?,
            fault_bypass_seen: Wire::dec(&mut d)?,
            stats: Wire::dec(&mut d)?,
            done: Wire::dec(&mut d)?,
        };
        d.finish()?;
        Ok(ckpt)
    }
}
