//! Pipeline unit tests: each exercises one mechanism end to end on a
//! small hand-built program.

use nosq_isa::{Assembler, Cond, Extension, MemWidth, Reg};

use crate::config::{LsuModel, Scheduling, SimConfig};
use crate::pipeline::simulate;
use crate::report::SimReport;

fn all_configs(max: u64) -> Vec<(&'static str, SimConfig)> {
    vec![
        ("baseline-perfect", SimConfig::baseline_perfect(max)),
        ("baseline-storesets", SimConfig::baseline_storesets(max)),
        ("nosq-nodelay", SimConfig::nosq_no_delay(max)),
        ("nosq-delay", SimConfig::nosq(max)),
        ("perfect-smb", SimConfig::perfect_smb(max)),
    ]
}

/// A spill/reload loop: steady full-word store-load communication.
fn spill_loop(iters: i64) -> nosq_isa::Program {
    let mut asm = Assembler::new();
    let (base, v, t, i) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    asm.li(base, 0x1000);
    asm.li(i, iters);
    let top = asm.label();
    asm.bind(top);
    asm.addi(v, v, 3);
    asm.store(v, base, 0, MemWidth::B8);
    asm.store(v, base, 8, MemWidth::B8);
    asm.load(t, base, 0, MemWidth::B8, Extension::Zero);
    asm.add(v, v, t);
    asm.addi(i, i, -1);
    asm.branch(Cond::Gt, i, Reg::ZERO, top);
    asm.halt();
    asm.finish()
}

/// A loop whose loads never communicate.
fn stream_loop(iters: i64) -> nosq_isa::Program {
    let mut asm = Assembler::new();
    let (base, t, acc, i) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    asm.data_u64s(0x2000, &[5; 64]);
    asm.li(base, 0x2000);
    asm.li(i, iters);
    let top = asm.label();
    asm.bind(top);
    asm.load(t, base, 0, MemWidth::B8, Extension::Zero);
    asm.add(acc, acc, t);
    asm.addi(i, i, -1);
    asm.branch(Cond::Gt, i, Reg::ZERO, top);
    asm.halt();
    asm.finish()
}

fn run_all(prog: &nosq_isa::Program, max: u64) -> Vec<(&'static str, SimReport)> {
    all_configs(max)
        .into_iter()
        .map(|(name, cfg)| (name, simulate(prog, cfg)))
        .collect()
}

#[test]
fn all_configs_commit_the_same_instructions() {
    let prog = spill_loop(200);
    let results = run_all(&prog, 100_000);
    let insts = results[0].1.insts;
    assert!(insts > 1000, "{insts}");
    for (name, r) in &results {
        assert_eq!(r.insts, insts, "{name} committed a different count");
        assert_eq!(r.memory.loads, 200, "{name} load count");
        assert_eq!(r.memory.stores, 400, "{name} store count");
        assert!(r.cycles > 0 && r.ipc() > 0.1, "{name}: {} cycles", r.cycles);
    }
}

#[test]
fn nosq_bypasses_communicating_loads() {
    let prog = spill_loop(500);
    let r = simulate(&prog, SimConfig::nosq(100_000));
    // Every loop load communicates at distance 1; after the first
    // mispredict trains the predictor, the rest bypass.
    assert!(
        r.memory.bypassed_loads > 450,
        "bypassed {} of {} loads",
        r.memory.bypassed_loads,
        r.memory.loads
    );
    assert!(
        r.verification.bypass_mispredicts <= 3,
        "mispredicts {}",
        r.verification.bypass_mispredicts
    );
}

#[test]
fn bypassed_loads_skip_the_data_cache() {
    let prog = spill_loop(500);
    let nosq = simulate(&prog, SimConfig::nosq(100_000));
    let base = simulate(&prog, SimConfig::baseline_storesets(100_000));
    assert!(
        nosq.dcache_reads() < base.dcache_reads(),
        "nosq reads {} vs baseline {}",
        nosq.dcache_reads(),
        base.dcache_reads()
    );
    // The SVW filter lets verified bypasses skip re-execution too.
    assert!(
        nosq.reexec_rate() < 0.10,
        "re-execution rate {}",
        nosq.reexec_rate()
    );
}

#[test]
fn non_communicating_loads_do_not_bypass() {
    let prog = stream_loop(300);
    let r = simulate(&prog, SimConfig::nosq(100_000));
    assert_eq!(r.memory.bypassed_loads, 0);
    assert_eq!(r.verification.bypass_mispredicts, 0);
    assert_eq!(r.memory.comm_loads, 0);
}

#[test]
fn perfect_smb_never_mispredicts() {
    let prog = spill_loop(400);
    let r = simulate(&prog, SimConfig::perfect_smb(100_000));
    assert_eq!(r.verification.bypass_mispredicts, 0);
    assert!(
        r.memory.bypassed_loads >= 395,
        "bypassed {}",
        r.memory.bypassed_loads
    );
}

#[test]
fn baseline_perfect_never_squashes() {
    let prog = spill_loop(400);
    let r = simulate(
        &prog,
        SimConfig {
            lsu: LsuModel::BaselineSq {
                scheduling: Scheduling::Perfect,
            },
            ..SimConfig::baseline_perfect(100_000)
        },
    );
    assert_eq!(r.verification.ordering_squashes, 0);
}

#[test]
fn partial_word_bypass_uses_shift_mask() {
    // Wide store / narrow load at shift 4, repeatedly. The stored value
    // must change in its upper half so a stale read is a real mismatch.
    let mut asm = Assembler::new();
    let (base, c, v, t, i) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
    );
    asm.li(base, 0x1000);
    asm.li(i, 400);
    let top = asm.label();
    asm.bind(top);
    asm.addi(c, c, 1);
    asm.shli(v, c, 32);
    asm.add(v, v, c);
    asm.store(v, base, 0, MemWidth::B8);
    asm.load(t, base, 4, MemWidth::B2, Extension::Zero);
    asm.add(c, c, t);
    asm.addi(i, i, -1);
    asm.branch(Cond::Gt, i, Reg::ZERO, top);
    asm.halt();
    let prog = asm.finish();
    let r = simulate(&prog, SimConfig::nosq(100_000));
    assert!(
        r.memory.bypassed_loads > 300,
        "bypassed {}",
        r.memory.bypassed_loads
    );
    assert!(
        r.memory.shift_mask_uops > 300,
        "uops {}",
        r.memory.shift_mask_uops
    );
    assert!(
        r.verification.bypass_mispredicts < 10,
        "mispredicts {}",
        r.verification.bypass_mispredicts
    );
}

#[test]
fn multi_source_loads_mispredict_without_delay_but_not_with() {
    // Two one-byte stores feeding a two-byte load (the g721.e pattern).
    let mut asm = Assembler::new();
    let (base, v, t, i) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    asm.li(base, 0x1000);
    asm.li(i, 600);
    let top = asm.label();
    asm.bind(top);
    asm.addi(v, v, 1);
    asm.store(v, base, 0, MemWidth::B1);
    asm.store(v, base, 1, MemWidth::B1);
    asm.load(t, base, 0, MemWidth::B2, Extension::Zero);
    asm.add(v, v, t);
    asm.addi(i, i, -1);
    asm.branch(Cond::Gt, i, Reg::ZERO, top);
    asm.halt();
    let prog = asm.finish();

    let no_delay = simulate(&prog, SimConfig::nosq_no_delay(200_000));
    let with_delay = simulate(&prog, SimConfig::nosq(200_000));
    assert!(
        no_delay.verification.bypass_mispredicts > 50,
        "no-delay mispredicts {}",
        no_delay.verification.bypass_mispredicts
    );
    assert!(
        with_delay.verification.bypass_mispredicts < no_delay.verification.bypass_mispredicts / 4,
        "delay {} vs no-delay {}",
        with_delay.verification.bypass_mispredicts,
        no_delay.verification.bypass_mispredicts
    );
    assert!(with_delay.memory.delayed_loads > 0);
    // Delay costs time but the program still completes correctly.
    assert_eq!(no_delay.insts, with_delay.insts);
}

#[test]
fn storesets_learns_to_avoid_ordering_squashes() {
    // A load that depends on a store whose address is ready late: the
    // first iterations squash, then StoreSets forces the load to wait.
    let mut asm = Assembler::new();
    let (base, slow, v, t, i) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
    );
    asm.li(base, 0x1000);
    asm.li(i, 300);
    let top = asm.label();
    asm.bind(top);
    // A long dependence chain producing the store's address.
    asm.mov(slow, base);
    for _ in 0..6 {
        asm.alui(nosq_isa::AluKind::Mul, slow, slow, 1);
    }
    asm.addi(v, v, 7);
    asm.store(v, slow, 0, MemWidth::B8); // address arrives late
    asm.load(t, base, 0, MemWidth::B8, Extension::Zero); // same address!
    asm.add(v, v, t);
    asm.addi(i, i, -1);
    asm.branch(Cond::Gt, i, Reg::ZERO, top);
    asm.halt();
    let prog = asm.finish();

    let r = simulate(&prog, SimConfig::baseline_storesets(200_000));
    assert!(
        r.verification.ordering_squashes > 0,
        "expected initial violations"
    );
    assert!(
        r.verification.ordering_squashes < 30,
        "storesets failed to learn: {} squashes",
        r.verification.ordering_squashes
    );
    let ideal = simulate(&prog, SimConfig::baseline_perfect(200_000));
    assert_eq!(ideal.verification.ordering_squashes, 0);
}

#[test]
fn float32_sts_lds_bypass_roundtrips() {
    let mut asm = Assembler::new();
    let (base, i) = (Reg::int(1), Reg::int(2));
    let (f, t) = (Reg::float(0), Reg::float(1));
    asm.li(base, 0x1000);
    asm.li(f, 1.25f64.to_bits() as i64);
    asm.li(i, 300);
    let top = asm.label();
    asm.bind(top);
    asm.sts(f, base, 0);
    asm.lds(t, base, 0);
    asm.fadd(f, t, t);
    asm.fmul(f, f, t);
    asm.addi(i, i, -1);
    asm.branch(Cond::Gt, i, Reg::ZERO, top);
    asm.halt();
    let prog = asm.finish();
    let r = simulate(&prog, SimConfig::nosq(100_000));
    assert!(
        r.memory.bypassed_loads > 200,
        "bypassed {}",
        r.memory.bypassed_loads
    );
    assert!(r.memory.shift_mask_uops > 200, "float bypass needs the uop");
    assert!(
        r.verification.bypass_mispredicts < 10,
        "mispredicts {}",
        r.verification.bypass_mispredicts
    );
}

#[test]
fn smb_latency_wins_on_communication_heavy_code() {
    let prog = spill_loop(2000);
    let nosq = simulate(&prog, SimConfig::nosq(100_000));
    let base = simulate(&prog, SimConfig::baseline_storesets(100_000));
    // NoSQ should not be slower than the baseline here (bypassing breaks
    // the store-load latency chain).
    assert!(
        nosq.cycles as f64 <= base.cycles as f64 * 1.05,
        "nosq {} vs baseline {}",
        nosq.cycles,
        base.cycles
    );
}

#[test]
fn ssn_wraparound_drains_cleanly() {
    let prog = spill_loop(300);
    let mut cfg = SimConfig::nosq(100_000);
    cfg.machine.ssn_bits = 7; // wrap every 128 stores; 600 stores → 4 wraps
    let r = simulate(&prog, cfg);
    assert!(
        r.verification.ssn_wrap_drains >= 3,
        "drains {}",
        r.verification.ssn_wrap_drains
    );
    assert_eq!(r.memory.stores, 600);
    // Equivalent run without wraps must commit identically.
    let r2 = simulate(&prog, SimConfig::nosq(100_000));
    assert_eq!(r.insts, r2.insts);
    assert!(r.cycles >= r2.cycles, "wrap drains cannot speed things up");
}

#[test]
fn branch_mispredicts_are_charged() {
    // Data-dependent unpredictable-ish branches.
    let mut asm = Assembler::new();
    let (x, t, i) = (Reg::int(1), Reg::int(2), Reg::int(3));
    asm.li(x, 0x9E3779B97F4A7C15u64 as i64);
    asm.li(i, 400);
    let top = asm.label();
    let skip = asm.label();
    asm.bind(top);
    // xorshift-ish scramble; branch on low bit.
    asm.shri(t, x, 13);
    asm.xor(x, x, t);
    asm.shli(t, x, 7);
    asm.xor(x, x, t);
    asm.andi(t, x, 1);
    asm.branch(Cond::Eq, t, Reg::ZERO, skip);
    asm.addi(t, t, 1);
    asm.bind(skip);
    asm.addi(i, i, -1);
    asm.branch(Cond::Gt, i, Reg::ZERO, top);
    asm.halt();
    let prog = asm.finish();
    let r = simulate(&prog, SimConfig::baseline_perfect(100_000));
    assert!(
        r.frontend.branch_mispredicts > 50,
        "mispredicts {}",
        r.frontend.branch_mispredicts
    );
    // Compare against the same loop without the data-dependent branch
    // by checking IPC sanity only.
    assert!(r.ipc() > 0.3 && r.ipc() < 4.0, "ipc {}", r.ipc());
}

#[test]
fn window_256_is_not_slower() {
    let prog = spill_loop(1500);
    let small = simulate(&prog, SimConfig::nosq(100_000));
    let big = simulate(&prog, SimConfig::nosq(100_000).with_window256());
    assert!(
        big.cycles <= small.cycles + small.cycles / 20,
        "256-window {} vs 128-window {}",
        big.cycles,
        small.cycles
    );
}

#[test]
fn load_heavy_code_bounded_by_cache_port() {
    // 1 load per cycle max: a pure load loop cannot exceed ~2 IPC
    // (load + add per iteration beyond the port limit).
    let prog = stream_loop(2000);
    let r = simulate(&prog, SimConfig::baseline_perfect(100_000));
    assert!(r.ipc() <= 4.0, "ipc {}", r.ipc());
    assert!(r.ipc() > 0.5, "ipc {}", r.ipc());
}
