//! Fused lockstep replay: one recorded trace pass driving N
//! configurations at once.
//!
//! A campaign evaluating several configurations over one workload
//! replays the same [`TraceBuffer`] once per configuration; each solo
//! replay streams the whole ~150-byte-per-instruction trace through the
//! cache again. [`LaneSet`] fuses those runs: N per-lane simulators
//! advance in lockstep strides over a *shared* trace window, so a trace
//! segment pulled into cache by lane 0 is still resident when lanes
//! 1..N decode it, and replayed instructions are never copied at all
//! (each lane's in-flight indices address the trace directly). Lanes
//! also run in batch mode, which lets the scheduler jump over provably
//! idle cycle spans instead of stepping through them.
//!
//! Byte-identity is the contract: a lane's [`SimReport`] equals the
//! solo [`Simulator::replay`] report for the same configuration, bit
//! for bit. Lockstep advancement is just chunked execution (already
//! pinned equal to one-shot execution by the determinism suite), and
//! idle-span jumps skip exactly the cycles a stepped run would execute
//! as no-ops — `tests/it_determinism.rs` extends the golden-counter
//! suite over the fused path.

use nosq_isa::Program;
use nosq_trace::TraceBuffer;

use crate::arena::{CoreBuffers, SimArena};
use crate::config::SimConfig;
use crate::report::SimReport;

use super::{Simulator, StopCondition};

/// Committed instructions each lane advances per lockstep round. Large
/// enough that per-round overhead vanishes, small enough that the
/// active trace window (~150 B/instruction times the stride) stays
/// cache-resident across all lanes of a round.
const LOCKSTEP_STRIDE: u64 = 8_192;

/// N lockstep simulator lanes replaying one recorded trace — the fused
/// way to run a configuration sweep over a workload. Lanes advance in
/// shared lockstep strides so the trace segment one lane pulls into
/// cache is still resident when the others decode it, and every lane's
/// report is byte-identical to its solo [`Simulator::replay`] run.
///
/// ```
/// use nosq_core::{LaneSet, SimConfig, Simulator};
/// use nosq_trace::{synthesize, Profile, TraceBuffer};
///
/// let program = synthesize(Profile::by_name("gzip").unwrap(), 42);
/// let trace = TraceBuffer::record(&program, 2_000);
/// let configs = [SimConfig::nosq(2_000), SimConfig::baseline_storesets(2_000)];
/// let fused = LaneSet::fused_replay(&program, &configs, &trace).run();
/// let solo = Simulator::replay(&program, configs[0].clone(), &trace).run();
/// assert_eq!(fused[0], solo); // lane reports are byte-identical to solo
/// ```
pub struct LaneSet<'p> {
    lanes: Vec<Simulator<'p>>,
    /// Per-lane `(insts, ssn_commit)` floor from the previous round;
    /// debug builds assert both are monotone every round.
    watermarks: Vec<(u64, u64)>,
}

impl<'p> LaneSet<'p> {
    /// Builds one lane per configuration over a shared recorded trace,
    /// with lane-owned buffers.
    ///
    /// # Panics
    ///
    /// Panics if the trace does not [cover](TraceBuffer::covers) some
    /// configuration's `max_insts`.
    pub fn fused_replay(
        program: &'p Program,
        configs: &[SimConfig],
        trace: &'p TraceBuffer,
    ) -> LaneSet<'p> {
        let lanes = configs
            .iter()
            .map(|cfg| {
                let mut sim = Simulator::replay(program, cfg.clone(), trace);
                sim.batch = true;
                sim
            })
            .collect();
        LaneSet::wrap(lanes)
    }

    /// [`LaneSet::fused_replay`] with arena-recycled buffers: lane `i`
    /// takes the arena's `i`-th lane partition (grown on demand) and
    /// returns it when the run finishes.
    ///
    /// # Panics
    ///
    /// Panics if the trace does not [cover](TraceBuffer::covers) some
    /// configuration's `max_insts`.
    pub fn fused_replay_with_arena(
        program: &'p Program,
        configs: &[SimConfig],
        trace: &'p TraceBuffer,
        arena: &'p mut SimArena,
    ) -> LaneSet<'p> {
        if arena.lanes.len() < configs.len() {
            arena.lanes.resize_with(configs.len(), CoreBuffers::default);
        }
        debug_assert!(
            {
                let mut ptrs: Vec<*const CoreBuffers> = arena
                    .lanes
                    .iter()
                    .map(|c| c as *const CoreBuffers)
                    .collect();
                ptrs.sort();
                ptrs.dedup();
                ptrs.len() == arena.lanes.len()
            },
            "arena lane partitions must not overlap"
        );
        let lanes = configs
            .iter()
            .zip(arena.lanes.iter_mut())
            .map(|(cfg, core)| {
                let stream = Simulator::replay_source(cfg, trace);
                let mut sim = Simulator::build(program, cfg.clone(), stream, Some(core));
                sim.batch = true;
                sim
            })
            .collect();
        LaneSet::wrap(lanes)
    }

    fn wrap(lanes: Vec<Simulator<'p>>) -> LaneSet<'p> {
        let watermarks = vec![(0, 0); lanes.len()];
        LaneSet { lanes, watermarks }
    }

    /// Number of lanes (= configurations).
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Whether every lane has completed its program.
    pub fn is_done(&self) -> bool {
        self.lanes.iter().all(|sim| sim.done)
    }

    /// Live statistics for one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lane_count()`.
    pub fn stats(&self, lane: usize) -> &SimReport {
        assert!(
            lane < self.lanes.len(),
            "lane index {lane} out of bounds ({} lanes)",
            self.lanes.len()
        );
        self.lanes[lane].stats()
    }

    /// Advances every unfinished lane by one lockstep stride. Returns
    /// the instructions committed across all lanes this round (`0`
    /// only when every lane is done).
    pub fn step_round(&mut self) -> u64 {
        // The target is a shared absolute committed-instruction floor,
        // so lanes stay within one stride of each other and the round's
        // trace window is shared cache traffic.
        let floor = self
            .lanes
            .iter()
            .filter(|sim| !sim.done)
            .map(|sim| sim.stats.insts)
            .min()
            .unwrap_or(0);
        let target = floor + LOCKSTEP_STRIDE;
        let mut delta = 0;
        for (lane, sim) in self.lanes.iter_mut().enumerate() {
            if sim.done {
                continue;
            }
            let before = sim.stats.insts;
            sim.run_until(StopCondition::Insts(target));
            delta += sim.stats.insts - before;
            let mark = &mut self.watermarks[lane];
            debug_assert!(
                sim.stats.insts >= mark.0 && sim.ssn.commit().0 >= mark.1,
                "lane {lane} progress must be monotone"
            );
            *mark = (sim.stats.insts, sim.ssn.commit().0);
        }
        delta
    }

    /// Runs every lane to completion; returns the per-lane reports in
    /// configuration order, each byte-identical to the corresponding
    /// solo [`Simulator::replay`] run.
    pub fn run(self) -> Vec<SimReport> {
        self.run_with(|_| {})
    }

    /// [`LaneSet::run`] with a per-round progress hook, called with the
    /// instructions committed across all lanes that round.
    pub fn run_with(mut self, mut progress: impl FnMut(u64)) -> Vec<SimReport> {
        while !self.is_done() {
            let delta = self.step_round();
            progress(delta);
        }
        self.lanes.into_iter().map(Simulator::finish).collect()
    }
}
