//! The cycle-level timing pipeline.
//!
//! One simulator models all five configurations the paper evaluates:
//! the idealized and StoreSets baselines (associative store queue, paper
//! Tables 1-2), NoSQ with and without delay (Tables 3-4), and perfect
//! SMB. The model is *functional-first*: the [`Tracer`] supplies the
//! correct-path dynamic stream, and the pipeline replays it with explicit
//! ROB/IQ/LSQ occupancy, per-class issue slots, a commit-ordered memory
//! image (so premature loads observe genuinely stale values), value-based
//! verification with SVW filtering, and squash/refetch recovery.
//!
//! Within a cycle, stages run back to front (commit → issue → dispatch →
//! fetch) so resources freed by commit are visible to issue in the same
//! cycle but newly fetched instructions cannot dispatch early.

pub(crate) mod nodes;

#[cfg(test)]
mod tests;

use std::collections::VecDeque;

use nosq_isa::exec::load_extend;
use nosq_isa::{Inst, InstClass, MemWidth, Memory, Program, Reg};
use nosq_trace::{Coverage, DynInst, Tracer};
use nosq_uarch::branch::{Btb, HybridPredictor, ReturnAddressStack};
use nosq_uarch::{MemoryHierarchy, Ssn, SsnCounters, StoreSets, Tlb, Tssbf, TssbfLookup};

use crate::bypass::{bypass_value, needs_shift_mask};
use crate::config::{LsuModel, Scheduling, SimConfig};
use crate::observer::{
    BypassEvent, CommitEvent, CycleEvent, ReexecEvent, SimObserver, SquashCause, SquashEvent,
};
use crate::predictor::{BypassingPredictor, PathHistory, Prediction};
use crate::report::SimReport;
use crate::srq::{StoreInfo, StoreRegisterQueue};

use nodes::{NodeId, RegState};

/// How a load obtains its value.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum LoadMode {
    /// Out-of-order cache access.
    Normal,
    /// Confidence-delayed: waits for the predicted store's commit, then
    /// reads the cache (paper §3.3).
    Delayed,
    /// SMB bypass; `partial` bypasses go through the injected shift&mask
    /// instruction (paper §3.5).
    Bypassed {
        /// Whether the shift & mask instruction was injected.
        partial: bool,
    },
}

#[derive(Copy, Clone, Debug)]
struct LoadState {
    mode: LoadMode,
    /// Baseline: wait until this store's address generation completes.
    wait_exec: Option<Ssn>,
    /// Wait until this store's committed value is cache-visible.
    wait_commit: Option<Ssn>,
    /// Youngest store the load is not vulnerable to.
    ssn_nvul: Ssn,
    /// Predicted bypassing store (NoSQ).
    ssn_byp: Option<Ssn>,
    /// The value obtained at execute / bypass.
    exec_value: u64,
    /// Decode-stage prediction, for training.
    pred: Option<Prediction>,
    /// Oracle loads skip verification entirely.
    oracle: bool,
}

#[derive(Clone, Debug)]
struct Entry {
    uid: u64,
    d: DynInst,
    path_snap: u64,
    bpred_snap: u64,
    ras_snap: (usize, usize),
    // Rename results.
    map_reg: Option<Reg>,
    map_node: Option<NodeId>,
    prev_node: Option<NodeId>,
    srcs: [Option<NodeId>; 2],
    // Scheduling.
    in_iq: bool,
    issued: bool,
    complete_cycle: u64,
    mispredicted_branch: bool,
    // Memory.
    ssn: Ssn,
    load: Option<LoadState>,
    holds_lq: bool,
    holds_sq: bool,
    /// The store holds a reference on its data node until commit
    /// (NoSQ) or execute (baseline data capture).
    store_data_ref: Option<NodeId>,
}

struct Fetched {
    d: DynInst,
    uid: u64,
    fetch_cycle: u64,
    path_snap: u64,
    bpred_snap: u64,
    ras_snap: (usize, usize),
    mispredicted_branch: bool,
}

/// When an incremental [`Simulator::run_until`] call should return.
///
/// Cycle and instruction targets are *absolute* session totals, not
/// deltas: a condition that is already satisfied returns immediately
/// without advancing the pipeline. The simulation also stops (for any
/// condition) once it finishes the program.
pub enum StopCondition<'a> {
    /// Run until the program completes.
    Done,
    /// Run until the session has executed at least this many cycles.
    Cycles(u64),
    /// Run until at least this many instructions have committed.
    Insts(u64),
    /// Run until the predicate over the live statistics returns `true`.
    /// Checked once per cycle, before stepping.
    Predicate(Box<dyn FnMut(&SimReport) -> bool + 'a>),
}

impl<'a> StopCondition<'a> {
    /// Builds a [`StopCondition::Predicate`] without the `Box` noise.
    pub fn predicate(f: impl FnMut(&SimReport) -> bool + 'a) -> StopCondition<'a> {
        StopCondition::Predicate(Box::new(f))
    }
}

impl std::fmt::Debug for StopCondition<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopCondition::Done => write!(f, "Done"),
            StopCondition::Cycles(n) => write!(f, "Cycles({n})"),
            StopCondition::Insts(n) => write!(f, "Insts({n})"),
            StopCondition::Predicate(_) => write!(f, "Predicate(..)"),
        }
    }
}

/// The simulator for one (program, configuration) pair.
///
/// A `Simulator` is a *session*: construct it with [`Simulator::new`],
/// optionally [attach observers](Simulator::attach_observer), advance it
/// incrementally with [`step`](Simulator::step) /
/// [`run_until`](Simulator::run_until) while reading
/// [`stats`](Simulator::stats) snapshots, and close it with
/// [`finish`](Simulator::finish) for the final [`SimReport`]. The
/// one-shot [`run`](Simulator::run) / [`simulate`] wrappers do exactly
/// that in a single call, and interleaved stepping reproduces the
/// one-shot counters bit for bit.
pub struct Simulator<'p> {
    cfg: SimConfig,
    clock: u64,
    cycle_cap: u64,
    next_uid: u64,
    // Instruction supply.
    stream: Tracer<'p>,
    stream_done: bool,
    pending: VecDeque<DynInst>,
    fetch_buffer: VecDeque<Fetched>,
    // Window.
    rob: VecDeque<Entry>,
    backend_exits: VecDeque<u64>,
    iq_used: usize,
    lq_used: usize,
    sq_used: usize,
    // Register state.
    regs: RegState,
    // Memory.
    timing_mem: Memory,
    hierarchy: MemoryHierarchy,
    // Front end.
    bpred: HybridPredictor,
    btb: Btb,
    ras: ReturnAddressStack,
    path: PathHistory,
    fetch_stall_until: u64,
    fetch_stalled_on: Option<u64>,
    halt_fetched: bool,
    // NoSQ / SVW machinery.
    ssn: SsnCounters,
    srq: StoreRegisterQueue,
    tssbf: Tssbf,
    predictor: BypassingPredictor,
    storesets: StoreSets,
    draining_for_wrap: bool,
    // Results / instrumentation.
    stats: SimReport,
    observers: Vec<Box<dyn SimObserver + 'p>>,
    done: bool,
    mispredict_pcs: std::collections::HashMap<u64, u64>,
}

impl<'p> Simulator<'p> {
    /// Builds a simulator over `program`.
    pub fn new(program: &'p Program, cfg: SimConfig) -> Simulator<'p> {
        let m = &cfg.machine;
        Simulator {
            clock: 0,
            cycle_cap: 1_000_000 + cfg.max_insts.saturating_mul(300),
            next_uid: 0,
            stream: Tracer::new(program, cfg.max_insts),
            stream_done: false,
            pending: VecDeque::new(),
            fetch_buffer: VecDeque::new(),
            rob: VecDeque::new(),
            backend_exits: VecDeque::new(),
            iq_used: 0,
            lq_used: 0,
            sq_used: 0,
            regs: RegState::new(m.phys_regs),
            timing_mem: program.initial_memory(),
            hierarchy: MemoryHierarchy::new(
                m.l1d,
                m.l2,
                Tlb::new(m.dtlb_entries, m.dtlb_ways),
                m.mem_latency,
                m.tlb_miss_penalty,
            ),
            bpred: HybridPredictor::new(m.bpred),
            btb: Btb::new(m.btb_entries, m.btb_ways),
            ras: ReturnAddressStack::new(m.ras_depth),
            path: PathHistory::new(),
            fetch_stall_until: 0,
            fetch_stalled_on: None,
            halt_fetched: false,
            ssn: SsnCounters::new(m.ssn_bits),
            srq: StoreRegisterQueue::new(8192),
            tssbf: Tssbf::new(128, 4),
            predictor: BypassingPredictor::new(cfg.predictor),
            storesets: StoreSets::new(4096),
            draining_for_wrap: false,
            stats: SimReport::default(),
            observers: Vec::new(),
            cfg,
            done: false,
            mispredict_pcs: std::collections::HashMap::new(),
        }
    }

    /// Installs an observer on this session. Hooks fire in attachment
    /// order; attach a `Box::new(&mut obs)` borrow to read the
    /// observer's state back after [`finish`](Simulator::finish).
    ///
    /// Observers receive events only for cycles executed *after*
    /// attachment, so install them before the first
    /// [`step`](Simulator::step).
    pub fn attach_observer(&mut self, obs: Box<dyn SimObserver + 'p>) {
        self.observers.push(obs);
    }

    /// Whether the program has run to completion.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Live statistics for the session so far. `cycles` tracks the
    /// current clock, so derived metrics (e.g. [`SimReport::ipc`]) are
    /// meaningful mid-run.
    pub fn stats(&self) -> &SimReport {
        &self.stats
    }

    /// Advances the pipeline by exactly one cycle. Returns `true` while
    /// the program is still running; once it reports `false` (program
    /// complete), further calls are no-ops.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline deadlocks (an internal invariant
    /// violation), bounded by a generous cycle cap.
    pub fn step(&mut self) -> bool {
        if self.done {
            return false;
        }
        self.clock += 1;
        assert!(
            self.clock < self.cycle_cap,
            "pipeline deadlock at cycle {} (retired {} insts)",
            self.clock,
            self.stats.insts
        );
        self.drain_backend_exits();
        self.commit_stage();
        self.issue_stage();
        self.dispatch_stage();
        self.fetch_stage();
        self.wrap_stage();
        self.check_done();
        self.stats.cycles = self.clock;
        if !self.observers.is_empty() {
            let ev = CycleEvent {
                cycle: self.clock,
                insts: self.stats.insts,
            };
            self.emit(|o| o.on_cycle(&ev));
        }
        !self.done
    }

    /// Steps until `stop` is satisfied or the program completes,
    /// whichever comes first. Returns `true` if the program completed.
    pub fn run_until(&mut self, mut stop: StopCondition) -> bool {
        loop {
            let met = match &mut stop {
                StopCondition::Done => false, // only completion stops it
                StopCondition::Cycles(n) => self.clock >= *n,
                StopCondition::Insts(n) => self.stats.insts >= *n,
                StopCondition::Predicate(f) => f(&self.stats),
            };
            if met || self.done {
                return self.done;
            }
            self.step();
        }
    }

    /// Closes the session and returns the report for everything
    /// executed so far (the full program after a
    /// [`run_until(Done)`](Simulator::run_until), or a prefix if
    /// stopped early).
    pub fn finish(self) -> SimReport {
        if !self.mispredict_pcs.is_empty() {
            let mut v: Vec<_> = self.mispredict_pcs.iter().collect();
            v.sort_by_key(|(_, c)| std::cmp::Reverse(**c));
            for (pc, c) in v.iter().take(10) {
                eprintln!("  mispredict pc={pc:#x} count={c}");
            }
        }
        self.stats
    }

    /// Runs to completion and returns the collected statistics —
    /// [`run_until(Done)`](Simulator::run_until) plus
    /// [`finish`](Simulator::finish) in one call.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline deadlocks (an internal invariant
    /// violation), bounded by a generous cycle cap.
    pub fn run(mut self) -> SimReport {
        self.run_until(StopCondition::Done);
        self.finish()
    }

    /// Fans an event out to every attached observer.
    fn emit(&mut self, f: impl Fn(&mut dyn SimObserver)) {
        for obs in self.observers.iter_mut() {
            f(obs.as_mut());
        }
    }

    fn check_done(&mut self) {
        if (self.stream_done || self.halt_fetched)
            && self.pending.is_empty()
            && self.fetch_buffer.is_empty()
            && self.rob.is_empty()
            && self.backend_exits.is_empty()
        {
            self.done = true;
        }
    }

    fn backend_depth(&self) -> u64 {
        self.cfg.lsu.backend_depth()
    }

    fn drain_backend_exits(&mut self) {
        while self.backend_exits.front().is_some_and(|&t| t <= self.clock) {
            self.backend_exits.pop_front();
        }
    }

    fn rob_occupancy(&self) -> usize {
        self.rob.len() + self.backend_exits.len()
    }

    // ----------------------------------------------------------------
    // Commit / back-end.
    // ----------------------------------------------------------------

    fn store_committed_visible(&self, ssn: Ssn) -> bool {
        if ssn > self.ssn.commit() {
            return false;
        }
        match self.srq.get(ssn) {
            Some(info) => info.commit_visible <= self.clock,
            None => true, // long committed, ring slot recycled
        }
    }

    fn commit_stage(&mut self) {
        let mut dcache_port = 1u32;
        let mut committed = 0usize;
        while committed < self.cfg.machine.width {
            let Some(head) = self.rob.front() else { break };
            if head.complete_cycle > self.clock {
                break;
            }
            let class = head.d.class;
            // Port reservation before any effect.
            let needs_port_now = match class {
                InstClass::Store => true,
                InstClass::Load => self.load_needs_reexec(head),
                _ => false,
            };
            if needs_port_now && dcache_port == 0 {
                break;
            }

            let entry = self.rob.pop_front().expect("head exists");
            self.backend_exits
                .push_back(self.clock + self.backend_depth());
            committed += 1;

            let mut squash = false;
            match class {
                InstClass::Store => {
                    dcache_port -= 1;
                    self.commit_store(&entry);
                }
                InstClass::Load => {
                    if needs_port_now {
                        dcache_port -= 1;
                    }
                    squash = self.verify_load(&entry, needs_port_now);
                }
                _ => {}
            }

            self.retire_bookkeeping(&entry);
            if !self.observers.is_empty() {
                let ev = CommitEvent {
                    cycle: self.clock,
                    pc: entry.d.rec.pc,
                    class,
                };
                self.emit(|o| o.on_commit(&ev));
            }
            if squash {
                let squashed = (self.rob.len() + self.fetch_buffer.len()) as u64;
                self.squash_younger_than_head();
                if !self.observers.is_empty() {
                    let ev = SquashEvent {
                        cycle: self.clock,
                        cause: if self.cfg.lsu.is_nosq() {
                            SquashCause::BypassMispredict
                        } else {
                            SquashCause::OrderingViolation
                        },
                        load_pc: entry.d.rec.pc,
                        squashed,
                    };
                    self.emit(|o| o.on_squash(&ev));
                }
                break;
            }
        }
    }

    /// Store effects at its data-cache stage: write the commit-ordered
    /// memory image, update the T-SSBF and SSN counters (paper Table 4).
    fn commit_store(&mut self, entry: &Entry) {
        let d = &entry.d;
        let width = d.rec.inst.mem_width().expect("store width");
        self.timing_mem
            .write(d.rec.addr, width.bytes(), d.rec.store_mem_bits);
        self.tssbf
            .record_store(d.rec.addr, width.bytes() as u8, entry.ssn);
        self.hierarchy.store_commit(d.rec.addr);
        self.ssn.commit_store();
        let visible = self.clock + self.backend_depth() - 2;
        if let Some(info) = self.srq.get_mut(entry.ssn) {
            info.commit_visible = visible;
        }
        self.stats.memory.stores += 1;
        if entry.holds_sq {
            self.sq_used -= 1;
        }
        // NoSQ stores release their data-register pin here (the commit
        // pipeline has now read the register file).
        if self.cfg.lsu.is_nosq() {
            if let Some(node) = entry.store_data_ref {
                self.regs.release(node);
            }
        }
    }

    /// SVW filter decision for the load at the ROB head (paper §3.4: the
    /// equality test for bypassed loads, the inequality test otherwise).
    fn load_needs_reexec(&self, entry: &Entry) -> bool {
        let Some(ls) = &entry.load else { return false };
        if ls.oracle {
            return false;
        }
        let width = entry.d.rec.inst.mem_width().expect("load width").bytes() as u8;
        match ls.mode {
            LoadMode::Bypassed { .. } => {
                self.tssbf
                    .must_reexecute_equality(entry.d.rec.addr, width, ls.ssn_nvul)
            }
            _ => self
                .tssbf
                .must_reexecute_inequality(entry.d.rec.addr, width, ls.ssn_nvul),
        }
    }

    /// Verifies a load at commit. Returns `true` if younger instructions
    /// must be squashed.
    fn verify_load(&mut self, entry: &Entry, reexec: bool) -> bool {
        let ls = entry.load.as_ref().expect("load state");
        let d = &entry.d;
        let width = d.rec.inst.mem_width().expect("load width");
        self.stats.memory.loads += 1;
        if let Some(dep) = d.mem_dep {
            if dep.inst_distance < self.cfg.machine.rob_size as u64 {
                self.stats.memory.comm_loads += 1;
                if d.is_partial_word_comm() {
                    self.stats.memory.partial_comm_loads += 1;
                }
            }
        }
        if entry.holds_lq {
            self.lq_used -= 1;
        }
        if ls.oracle {
            self.stats.verification.reexec_filtered += 1;
            return false;
        }

        let mut mispredict = false;
        if reexec {
            self.stats.verification.backend_dcache_reads += 1;
            // All older stores have committed: this read is correct.
            let raw = self.timing_mem.read(d.rec.addr, width.bytes());
            let ext = match d.rec.inst {
                Inst::Load { ext, .. } => ext,
                _ => unreachable!("load entry holds a load"),
            };
            let ndata = load_extend(raw, width, ext);
            debug_assert_eq!(ndata, d.rec.load_value, "re-execution must be correct");
            self.hierarchy.load_latency(d.rec.addr); // cache state effects
            if ndata != ls.exec_value {
                mispredict = true;
            }
            if !self.observers.is_empty() {
                let ev = ReexecEvent {
                    cycle: self.clock,
                    pc: d.rec.pc,
                    addr: d.rec.addr,
                    mismatch: mispredict,
                };
                self.emit(|o| o.on_reexec(&ev));
            }
        } else {
            self.stats.verification.reexec_filtered += 1;
            // The filter said the value is provably correct — except for a
            // predicted shift, which is verified without replay (§3.5).
            if let LoadMode::Bypassed { .. } = ls.mode {
                if let TssbfLookup::Hit(e) = self.tssbf.lookup(d.rec.addr, width.bytes() as u8) {
                    let actual_shift = d.rec.addr.wrapping_sub(e.store_addr()) as u8;
                    let predicted_shift = ls.pred.map(|p| p.shift).unwrap_or(0);
                    if actual_shift != predicted_shift {
                        mispredict = true;
                    } else {
                        debug_assert_eq!(
                            ls.exec_value, d.rec.load_value,
                            "filtered bypass with correct shift must be correct"
                        );
                    }
                }
            }
        }

        // Train the machinery.
        match self.cfg.lsu {
            LsuModel::BaselineSq { .. } => {
                if mispredict {
                    self.stats.verification.ordering_squashes += 1;
                    if let Some(dep_ssn) = d.dep_ssn() {
                        if let Some(info) = self.srq.get(Ssn(dep_ssn)) {
                            self.storesets.train_violation(d.rec.pc, info.pc);
                        }
                    }
                }
            }
            LsuModel::Nosq { .. } => self.train_bypass_predictor(entry, ls, mispredict),
            LsuModel::NosqOracle => {}
        }
        mispredict
    }

    fn train_bypass_predictor(&mut self, entry: &Entry, ls: &LoadState, mispredict: bool) {
        let d = &entry.d;
        let mut history = PathHistory::new();
        history.restore(entry.path_snap);
        if mispredict {
            self.stats.verification.bypass_mispredicts += 1;
            if std::env::var_os("NOSQ_DEBUG_MISPREDICTS").is_some() {
                *self.mispredict_pcs.entry(d.rec.pc).or_insert(0) += 1;
            }
            let width = d.rec.inst.mem_width().expect("load width").bytes() as u8;
            // Compute the actual distance/shift from the T-SSBF (§3.1:
            // distbyp = SSNcommit − T-SSBF[addr]; at the load's commit
            // SSNcommit equals its rename-time SSNrename).
            let actual = match self.tssbf.lookup(d.rec.addr, width) {
                TssbfLookup::Hit(e) => {
                    let dist = d.stores_before.saturating_sub(e.ssn.0);
                    if dist <= 63 {
                        let shift = if e.covers(d.rec.addr, width) {
                            d.rec.addr.wrapping_sub(e.store_addr()) as u8
                        } else {
                            0
                        };
                        Some((dist as u16, shift))
                    } else {
                        None // beyond the 6-bit distance field
                    }
                }
                _ => None,
            };
            let had_path = ls.pred.map(|p| p.path_sensitive).unwrap_or(false);
            self.predictor
                .train_mispredict(d.rec.pc, &history, had_path, actual);
        } else if ls.pred.is_some() {
            self.predictor.train_correct(d.rec.pc, &history);
        }
    }

    /// Frees rename-side resources for a retiring entry.
    fn retire_bookkeeping(&mut self, entry: &Entry) {
        self.stats.insts += 1;
        if entry.map_reg.is_some() {
            if let Some(prev) = entry.prev_node {
                self.regs.release(prev);
            }
        }
    }

    // ----------------------------------------------------------------
    // Squash.
    // ----------------------------------------------------------------

    /// Squashes everything younger than the (already popped) ROB head:
    /// the whole ROB, the fetch buffer, and re-queues their dynamic
    /// instructions for refetch.
    fn squash_younger_than_head(&mut self) {
        // Reverse walk for rename rollback.
        let entries: Vec<Entry> = self.rob.drain(..).collect();
        for e in entries.iter().rev() {
            if let Some(reg) = e.map_reg {
                self.regs.remap(reg, e.prev_node);
                if let Some(node) = e.map_node {
                    self.regs.release(node);
                }
            }
            if e.in_iq && !e.issued {
                self.iq_used -= 1;
            }
            if e.holds_lq {
                self.lq_used -= 1;
            }
            if e.holds_sq {
                self.sq_used -= 1;
            }
            if e.d.class == InstClass::Store {
                if let Some(node) = e.store_data_ref {
                    // Baseline releases at execute; if unexecuted (or
                    // NoSQ, which releases at commit), release now.
                    if self.cfg.lsu.is_nosq() || !e.issued {
                        self.regs.release(node);
                    }
                }
                self.srq.invalidate(e.ssn);
                self.storesets.store_resolved(e.d.rec.pc, e.ssn);
            }
        }
        // Roll the rename SSN back to the squash point.
        if let Some(first) = entries.first() {
            self.ssn.rollback_rename(Ssn(first.d.stores_before));
        } else if let Some(fb) = self.fetch_buffer.front() {
            self.ssn.rollback_rename(Ssn(fb.d.stores_before));
        }
        // Restore front-end speculative state to the oldest squashed
        // instruction's snapshots.
        let front_snap = entries
            .first()
            .map(|e| (e.path_snap, e.bpred_snap, e.ras_snap))
            .or_else(|| {
                self.fetch_buffer
                    .front()
                    .map(|f| (f.path_snap, f.bpred_snap, f.ras_snap))
            });
        if let Some((path, bh, ras)) = front_snap {
            self.path.restore(path);
            self.bpred.set_history(bh);
            self.ras.restore(ras);
        }
        // Re-queue dynamic instructions in program order.
        let mut replay: Vec<DynInst> = entries.into_iter().map(|e| e.d).collect();
        replay.extend(self.fetch_buffer.drain(..).map(|f| f.d));
        for d in replay.into_iter().rev() {
            self.pending.push_front(d);
        }
        self.fetch_stalled_on = None;
        // A squashed halt returns to `pending` and must be refetched.
        self.halt_fetched = false;
        // Mis-speculation is detected at the end of the back-end pipe;
        // refetch begins after the redirect.
        self.fetch_stall_until = self.clock + self.backend_depth() - 1;
    }

    // ----------------------------------------------------------------
    // Issue.
    // ----------------------------------------------------------------

    fn issue_stage(&mut self) {
        let m = &self.cfg.machine;
        let mut total = m.width;
        let mut simple = m.simple_int_slots;
        let mut complex = m.complex_slots;
        let mut branch = m.branch_slots;
        let mut load = m.load_slots;
        let mut store = m.store_slots;

        for i in 0..self.rob.len() {
            if total == 0 {
                break;
            }
            let e = &self.rob[i];
            if !e.in_iq || e.issued {
                continue;
            }
            // Issue class: partial bypasses occupy a simple-int slot for
            // the injected shift & mask instruction.
            let class = match (&e.d.class, &e.load) {
                (
                    InstClass::Load,
                    Some(LoadState {
                        mode: LoadMode::Bypassed { .. },
                        ..
                    }),
                ) => InstClass::SimpleInt,
                (c, _) => *c,
            };
            let slot = match class {
                InstClass::SimpleInt | InstClass::Halt => &mut simple,
                InstClass::Complex => &mut complex,
                InstClass::Branch => &mut branch,
                InstClass::Load => &mut load,
                InstClass::Store => &mut store,
            };
            if *slot == 0 {
                continue;
            }
            // Operand readiness.
            let ready = e
                .srcs
                .iter()
                .flatten()
                .map(|&n| self.regs.ready(Some(n)))
                .max()
                .unwrap_or(0);
            if ready > self.clock {
                continue;
            }
            // Memory scheduling constraints.
            if class == InstClass::Load && !self.load_may_issue(i) {
                continue;
            }
            *slot -= 1;
            total -= 1;
            self.do_issue(i);
        }
    }

    /// Load-specific scheduling gates; may rewrite the load's wait state.
    fn load_may_issue(&mut self, idx: usize) -> bool {
        let e = &self.rob[idx];
        let ls = e.load.as_ref().expect("load state");
        if let Some(ssn) = ls.wait_commit {
            if !self.store_committed_visible(ssn) {
                return false;
            }
        }
        if let Some(ssn) = ls.wait_exec {
            if ssn > self.ssn.commit() {
                match self.srq.get(ssn) {
                    Some(info) if info.exec_cycle > self.clock => {
                        // The perfect-scheduling oracle waits only when
                        // issuing now would actually produce a wrong value:
                        // if the stale memory image already matches the
                        // architectural value, speculating is squash-free
                        // under value-based verification.
                        let oracle = matches!(
                            self.cfg.lsu,
                            LsuModel::BaselineSq {
                                scheduling: Scheduling::Perfect
                            }
                        );
                        if oracle {
                            let d = &self.rob[idx].d;
                            if let Inst::Load { width, ext, .. } = d.rec.inst {
                                let stale = load_extend(
                                    self.timing_mem.read(d.rec.addr, width.bytes()),
                                    width,
                                    ext,
                                );
                                if stale == d.rec.load_value {
                                    return true;
                                }
                            }
                        }
                        return false;
                    }
                    _ => {}
                }
            }
        }
        // Baseline forwarding: if the true producing store has executed,
        // the load will forward — but only once the store's data is
        // ready; a partial-coverage match cannot forward at all and
        // converts to a wait-for-commit (replay).
        if !self.cfg.lsu.is_nosq() {
            if let Some(dep_ssn) = e.d.dep_ssn().map(Ssn) {
                if dep_ssn > self.ssn.commit() && ls.wait_commit.is_none() {
                    if let Some(info) = self.srq.get(dep_ssn) {
                        if info.exec_cycle <= self.clock {
                            let coverage = e.d.mem_dep.expect("dep exists").coverage;
                            if coverage == Coverage::Partial {
                                let ls = self.rob[idx].load.as_mut().expect("load");
                                ls.wait_commit = Some(dep_ssn);
                                return false;
                            }
                            if self.regs.ready(info.dtag_node) > self.clock {
                                return false; // forward data not ready yet
                            }
                        }
                    }
                } else if dep_ssn > self.ssn.commit() && ls.wait_commit.is_some() {
                    // Already converted to wait-for-commit above.
                }
            }
        }
        true
    }

    fn do_issue(&mut self, idx: usize) {
        let rr = self.cfg.machine.regread_depth;
        let e = &self.rob[idx];
        let class = e.d.class;
        let alu = match e.d.rec.inst {
            Inst::Alu { kind, .. } => Some(kind),
            _ => None,
        };
        let uid = e.uid;
        let was_mispredicted = e.mispredicted_branch;

        let (exec_total, extra) = match (&class, &e.load) {
            (InstClass::Load, Some(ls)) => match ls.mode {
                LoadMode::Bypassed { .. } => (1, 0), // shift & mask uop
                _ => {
                    let lat = self.hierarchy.load_latency(e.d.rec.addr);
                    self.stats.memory.ooo_dcache_reads += 1;
                    (1 + lat, 0)
                }
            },
            _ => (self.cfg.machine.exec_latency(class, alu), 0u64),
        };
        let complete = self.clock + rr + exec_total + extra;

        let e = &mut self.rob[idx];
        e.issued = true;
        e.in_iq = false;
        self.iq_used -= 1;
        e.complete_cycle = complete;
        if let Some(node) = e.map_node {
            self.regs.set_ready(node, self.clock + exec_total);
        }

        match class {
            InstClass::Branch if was_mispredicted && self.fetch_stalled_on == Some(uid) => {
                self.fetch_stalled_on = None;
                self.fetch_stall_until = complete;
            }
            InstClass::Branch => {}
            InstClass::Store => {
                // Baseline store execution: address generation + data
                // capture; the captured register pin is released.
                let ssn = self.rob[idx].ssn;
                let pc = self.rob[idx].d.rec.pc;
                if let Some(info) = self.srq.get_mut(ssn) {
                    info.exec_cycle = complete;
                }
                self.storesets.store_resolved(pc, ssn);
                if let Some(node) = self.rob[idx].store_data_ref.take() {
                    self.regs.release(node);
                }
            }
            InstClass::Load => self.execute_load(idx),
            _ => {}
        }
    }

    /// Computes a non-bypassed load's value from the commit-ordered
    /// memory image (stale if an in-flight store should have fed it), or
    /// forwards from the producing store in the baseline.
    fn execute_load(&mut self, idx: usize) {
        let e = &self.rob[idx];
        let d = e.d;
        let (width, ext) = match d.rec.inst {
            Inst::Load { width, ext, .. } => (width, ext),
            _ => unreachable!("load entry"),
        };
        let mode = e.load.as_ref().expect("load state").mode;
        if let LoadMode::Bypassed { .. } = mode {
            return; // value was computed at rename
        }

        let mut exec_value =
            load_extend(self.timing_mem.read(d.rec.addr, width.bytes()), width, ext);
        let mut ssn_nvul = self.ssn.commit();
        if !self.cfg.lsu.is_nosq() {
            if let Some(dep_ssn) = d.dep_ssn().map(Ssn) {
                if dep_ssn > self.ssn.commit() {
                    if let Some(info) = self.srq.get(dep_ssn) {
                        let full = d.mem_dep.expect("dep").coverage == Coverage::Full;
                        if info.exec_cycle <= self.clock
                            && full
                            && self.regs.ready(info.dtag_node) <= self.clock
                        {
                            // Store-queue forwarding: correct by
                            // construction (address-checked).
                            exec_value = d.rec.load_value;
                            ssn_nvul = dep_ssn;
                            self.stats.memory.sq_forwards += 1;
                        }
                        // Otherwise: the load speculated past an
                        // unexecuted store; exec_value is stale and SVW
                        // re-execution will catch a real mismatch.
                    }
                }
            }
        }
        let ls = self.rob[idx].load.as_mut().expect("load state");
        ls.exec_value = exec_value;
        ls.ssn_nvul = ssn_nvul;
    }

    // ----------------------------------------------------------------
    // Dispatch (decode/rename).
    // ----------------------------------------------------------------

    fn dispatch_stage(&mut self) {
        if self.draining_for_wrap {
            return;
        }
        for _ in 0..self.cfg.machine.width {
            let Some(f) = self.fetch_buffer.front() else {
                break;
            };
            if f.fetch_cycle + self.cfg.machine.front_depth > self.clock {
                break;
            }
            if !self.dispatch_one() {
                break;
            }
        }
    }

    /// Renames and dispatches the oldest fetched instruction; returns
    /// `false` (leaving it in place) on a structural stall.
    fn dispatch_one(&mut self) -> bool {
        let m = self.cfg.machine.clone();
        if self.rob_occupancy() >= m.rob_size {
            return false;
        }
        let f = self.fetch_buffer.front().expect("caller checked");
        let d = f.d;
        let class = d.class;
        let is_nosq = self.cfg.lsu.is_nosq();

        // --- Resource checks (no mutation yet) ---
        let needs_dest = d.rec.inst.dest().is_some();
        let mut needs_iq =
            !matches!(class, InstClass::Halt) && !matches!(d.rec.inst, Inst::Jump { .. });
        let mut needs_lq = false;
        let mut needs_sq = false;
        let mut load_plan: Option<(LoadMode, Option<Prediction>, Option<Ssn>)> = None;

        match class {
            InstClass::Store => {
                if is_nosq {
                    needs_iq = false;
                } else {
                    needs_sq = true;
                    if self.sq_used >= m.sq_size {
                        self.stats.stalls.sq_dispatch_stalls += 1;
                        return false;
                    }
                }
            }
            InstClass::Load => {
                if !is_nosq {
                    needs_lq = true;
                    if self.lq_used >= m.lq_size {
                        return false;
                    }
                } else {
                    // NoSQ decode-stage bypassing prediction.
                    let (mode, pred, ssn_byp) = self.plan_nosq_load(&d, f.path_snap);
                    if matches!(mode, LoadMode::Bypassed { partial: false }) {
                        needs_iq = false;
                    }
                    load_plan = Some((mode, pred, ssn_byp));
                }
            }
            _ => {}
        }

        if needs_iq && self.iq_used >= m.iq_size {
            self.stats.stalls.iq_dispatch_stalls += 1;
            return false;
        }
        let pure_bypass = matches!(
            load_plan,
            Some((LoadMode::Bypassed { partial: false }, _, _))
        );
        if needs_dest && !pure_bypass && !self.regs.can_alloc() {
            self.stats.stalls.reg_dispatch_stalls += 1;
            return false;
        }

        // --- Commit the dispatch ---
        let f = self.fetch_buffer.pop_front().expect("still present");
        let srcs = self.rename_sources(&d, &load_plan);
        let mut entry = Entry {
            uid: f.uid,
            d,
            path_snap: f.path_snap,
            bpred_snap: f.bpred_snap,
            ras_snap: f.ras_snap,
            map_reg: None,
            map_node: None,
            prev_node: None,
            srcs,
            in_iq: needs_iq,
            issued: false,
            complete_cycle: if needs_iq { u64::MAX } else { self.clock },
            mispredicted_branch: f.mispredicted_branch,
            ssn: Ssn::NONE,
            load: None,
            holds_lq: needs_lq,
            holds_sq: needs_sq,
            store_data_ref: None,
        };
        if needs_iq {
            self.iq_used += 1;
        }
        if needs_lq {
            self.lq_used += 1;
        }
        if needs_sq {
            self.sq_used += 1;
        }

        match class {
            InstClass::Store => self.dispatch_store(&mut entry),
            InstClass::Load => self.dispatch_load(&mut entry, load_plan.take()),
            _ => {
                if let Some(rd) = d.rec.inst.dest() {
                    let node = self.regs.alloc();
                    entry.prev_node = self.regs.remap(rd, Some(node));
                    entry.map_reg = Some(rd);
                    entry.map_node = Some(node);
                }
            }
        }
        self.rob.push_back(entry);
        true
    }

    fn rename_sources(
        &self,
        d: &DynInst,
        load_plan: &Option<(LoadMode, Option<Prediction>, Option<Ssn>)>,
    ) -> [Option<NodeId>; 2] {
        // A pure bypassed load has no out-of-order sources; a partial
        // bypass consumes only the store's data node (set later).
        if let Some((LoadMode::Bypassed { .. }, _, _)) = load_plan {
            return [None, None];
        }
        let mut srcs = [None, None];
        for (i, reg) in d.rec.inst.sources().into_iter().enumerate() {
            if let Some(r) = reg {
                srcs[i] = self.regs.mapping(r);
            }
        }
        srcs
    }

    fn dispatch_store(&mut self, entry: &mut Entry) {
        let d = &entry.d;
        let (data_reg, width, float32) = match d.rec.inst {
            Inst::Store {
                data,
                width,
                float32,
                ..
            } => (data, width, float32),
            _ => unreachable!("store entry"),
        };
        let ssn = self.ssn.next_rename();
        debug_assert_eq!(ssn.0, d.stores_before + 1, "ssn tracks the trace");
        entry.ssn = ssn;
        let dtag_node = self.regs.mapping(data_reg);
        if let Some(node) = dtag_node {
            self.regs.add_ref(node); // pinned until capture (baseline) or commit (NoSQ)
            entry.store_data_ref = Some(node);
        }
        self.srq.insert(StoreInfo {
            ssn,
            pc: d.rec.pc,
            addr: d.rec.addr,
            width: width.bytes() as u8,
            float32,
            data_value: d.rec.store_data,
            dtag_node,
            exec_cycle: u64::MAX,
            commit_visible: u64::MAX,
        });
        if !self.cfg.lsu.is_nosq() {
            self.storesets.rename_store(d.rec.pc, ssn);
        }
        // NoSQ: the store is complete at rename (Table 3: "nothing!").
        if self.cfg.lsu.is_nosq() {
            entry.complete_cycle = self.clock;
        }
    }

    /// Decode-stage classification of a NoSQ load (paper Table 3).
    fn plan_nosq_load(
        &mut self,
        d: &DynInst,
        path_snap: u64,
    ) -> (LoadMode, Option<Prediction>, Option<Ssn>) {
        if self.cfg.lsu == LsuModel::NosqOracle {
            // Perfect SMB: bypass exactly the loads with an in-flight
            // producing store, with idealized partial-word support.
            if let Some(dep_ssn) = d.dep_ssn().map(Ssn) {
                if dep_ssn > self.ssn.commit() {
                    return (LoadMode::Bypassed { partial: false }, None, Some(dep_ssn));
                }
            }
            return (LoadMode::Normal, None, None);
        }
        let delay_enabled = matches!(self.cfg.lsu, LsuModel::Nosq { delay: true });
        let mut history = PathHistory::new();
        history.restore(path_snap);
        let pred = self.predictor.predict(d.rec.pc, &history);
        let Some(p) = pred else {
            return (LoadMode::Normal, None, None);
        };
        let ssn_byp = Ssn(self.ssn.rename().0.saturating_sub(p.dist as u64));
        if ssn_byp <= self.ssn.commit() || ssn_byp == Ssn::NONE {
            // Predicted store already committed: non-bypassing.
            return (LoadMode::Normal, pred, None);
        }
        if delay_enabled && !p.confident {
            return (LoadMode::Delayed, pred, Some(ssn_byp));
        }
        let Some(info) = self.srq.get(ssn_byp) else {
            return (LoadMode::Normal, pred, None);
        };
        let (lw, lext) = match d.rec.inst {
            Inst::Load { width, ext, .. } => (width, ext),
            _ => unreachable!("load"),
        };
        let sw = match info.width {
            1 => MemWidth::B1,
            2 => MemWidth::B2,
            4 => MemWidth::B4,
            _ => MemWidth::B8,
        };
        let partial = needs_shift_mask(sw, info.float32, p.shift, lw, lext);
        (LoadMode::Bypassed { partial }, pred, Some(ssn_byp))
    }

    fn dispatch_load(
        &mut self,
        entry: &mut Entry,
        plan: Option<(LoadMode, Option<Prediction>, Option<Ssn>)>,
    ) {
        let d = entry.d;
        let rd = d.rec.inst.dest();
        let mut ls = LoadState {
            mode: LoadMode::Normal,
            wait_exec: None,
            wait_commit: None,
            ssn_nvul: Ssn::NONE,
            ssn_byp: None,
            exec_value: 0,
            pred: None,
            oracle: false,
        };

        match self.cfg.lsu {
            LsuModel::BaselineSq { scheduling } => {
                match scheduling {
                    Scheduling::Perfect => {
                        if let Some(dep_ssn) = d.dep_ssn().map(Ssn) {
                            if dep_ssn > self.ssn.commit() {
                                let coverage = d.mem_dep.expect("dep").coverage;
                                if coverage == Coverage::Full {
                                    ls.wait_exec = Some(dep_ssn);
                                } else {
                                    ls.wait_commit = Some(dep_ssn);
                                }
                            }
                        }
                    }
                    Scheduling::StoreSets => {
                        if let Some(ssn) = self.storesets.lookup_load(d.rec.pc) {
                            if ssn > self.ssn.commit() {
                                ls.wait_exec = Some(ssn);
                            }
                        }
                    }
                }
                let node = self.regs.alloc();
                entry.prev_node = self.regs.remap(rd.expect("load dest"), Some(node));
                entry.map_reg = rd;
                entry.map_node = Some(node);
            }
            LsuModel::Nosq { .. } | LsuModel::NosqOracle => {
                let (mode, pred, ssn_byp) = plan.expect("nosq load plan");
                ls.mode = mode;
                ls.pred = pred;
                ls.ssn_byp = ssn_byp;
                ls.oracle = self.cfg.lsu == LsuModel::NosqOracle;
                match mode {
                    LoadMode::Bypassed { partial } => {
                        self.stats.memory.bypassed_loads += 1;
                        if !self.observers.is_empty() {
                            let ev = BypassEvent {
                                cycle: self.clock,
                                pc: d.rec.pc,
                                partial,
                                distance: ls.pred.map(|p| p.dist),
                            };
                            self.emit(|o| o.on_bypass(&ev));
                        }
                        let info = self.srq.get(ssn_byp.expect("bypass ssn")).copied();
                        let info = info.expect("bypassing store in flight");
                        ls.ssn_nvul = info.ssn;
                        ls.exec_value = if ls.oracle {
                            d.rec.load_value
                        } else {
                            let (lw, lext) = match d.rec.inst {
                                Inst::Load { width, ext, .. } => (width, ext),
                                _ => unreachable!("load"),
                            };
                            let sw = match info.width {
                                1 => MemWidth::B1,
                                2 => MemWidth::B2,
                                4 => MemWidth::B4,
                                _ => MemWidth::B8,
                            };
                            bypass_value(
                                info.data_value,
                                sw,
                                info.float32,
                                ls.pred.map(|p| p.shift).unwrap_or(0),
                                lw,
                                lext,
                            )
                        };
                        if partial && !ls.oracle {
                            // Injected shift & mask: new register, consumes
                            // the store's data node, 1-cycle ALU.
                            self.stats.memory.shift_mask_uops += 1;
                            let node = self.regs.alloc();
                            entry.prev_node = self.regs.remap(rd.expect("load dest"), Some(node));
                            entry.map_reg = rd;
                            entry.map_node = Some(node);
                            entry.srcs = [info.dtag_node, None];
                        } else {
                            // Pure short-circuit: share the DEF's register.
                            if let Some(node) = info.dtag_node {
                                self.regs.add_ref(node);
                            }
                            entry.prev_node =
                                self.regs.remap(rd.expect("load dest"), info.dtag_node);
                            entry.map_reg = rd;
                            entry.map_node = info.dtag_node;
                            entry.complete_cycle = self.clock;
                        }
                    }
                    LoadMode::Delayed => {
                        self.stats.memory.delayed_loads += 1;
                        ls.wait_commit = ssn_byp;
                        let node = self.regs.alloc();
                        entry.prev_node = self.regs.remap(rd.expect("load dest"), Some(node));
                        entry.map_reg = rd;
                        entry.map_node = Some(node);
                    }
                    LoadMode::Normal => {
                        let node = self.regs.alloc();
                        entry.prev_node = self.regs.remap(rd.expect("load dest"), Some(node));
                        entry.map_reg = rd;
                        entry.map_node = Some(node);
                    }
                }
            }
        }
        entry.load = Some(ls);
    }

    // ----------------------------------------------------------------
    // Fetch.
    // ----------------------------------------------------------------

    fn fetch_stage(&mut self) {
        if self.halt_fetched
            || self.fetch_stalled_on.is_some()
            || self.clock < self.fetch_stall_until
        {
            return;
        }
        let mut budget = self.cfg.machine.width;
        let mut branches = 0;
        while budget > 0 {
            let d = match self.pending.pop_front() {
                Some(d) => d,
                None => match self.stream.next() {
                    Some(d) => d,
                    None => {
                        self.stream_done = true;
                        break;
                    }
                },
            };
            budget -= 1;
            let uid = self.next_uid;
            self.next_uid += 1;
            let path_snap = self.path.snapshot();
            let bpred_snap = self.bpred.history();
            let ras_snap = self.ras.checkpoint();
            let mut mispredicted = false;

            match d.rec.inst {
                Inst::Branch { .. } => {
                    let pred_dir = self.bpred.predict(d.rec.pc);
                    self.bpred.update(d.rec.pc, d.rec.taken);
                    self.path.push_branch(d.rec.taken);
                    if d.rec.taken {
                        self.btb.update(d.rec.pc, d.rec.next_pc);
                    }
                    mispredicted = pred_dir != d.rec.taken;
                }
                Inst::Call { .. } => {
                    self.ras.push(d.rec.pc + nosq_isa::INST_BYTES);
                    self.path.push_call(d.rec.pc);
                    self.btb.update(d.rec.pc, d.rec.next_pc);
                }
                Inst::Ret { .. } => {
                    let predicted = self.ras.pop();
                    mispredicted = predicted != Some(d.rec.next_pc);
                }
                Inst::Jump { .. } => {
                    self.btb.update(d.rec.pc, d.rec.next_pc);
                }
                Inst::Halt => {
                    self.halt_fetched = true;
                }
                _ => {}
            }

            if mispredicted {
                self.stats.frontend.branch_mispredicts += 1;
                self.fetch_stalled_on = Some(uid);
            }
            let is_control = d.rec.inst.is_control();
            self.fetch_buffer.push_back(Fetched {
                d,
                uid,
                fetch_cycle: self.clock,
                path_snap,
                bpred_snap,
                ras_snap,
                mispredicted_branch: mispredicted,
            });
            if mispredicted || self.halt_fetched {
                break;
            }
            if is_control {
                branches += 1;
                if branches == 2 {
                    break; // two predicted control transfers per cycle max
                }
            }
        }
    }

    // ----------------------------------------------------------------
    // SSN wrap-around drain.
    // ----------------------------------------------------------------

    fn wrap_stage(&mut self) {
        if !self.draining_for_wrap {
            if self.ssn.wrap_pending() {
                self.draining_for_wrap = true;
            }
            return;
        }
        if self.rob.is_empty() && self.backend_exits.is_empty() {
            self.tssbf.clear();
            self.srq.clear();
            self.storesets.clear();
            self.ssn.acknowledge_wrap();
            self.draining_for_wrap = false;
            self.stats.verification.ssn_wrap_drains += 1;
        }
    }
}

/// Runs one simulation over `program` with `cfg` to completion and
/// returns the report — the classic one-shot entry point, now a thin
/// wrapper over the session API ([`Simulator::run`]).
///
/// For incremental execution, live statistics, or observer hooks, use
/// [`Simulator`] directly.
///
/// ```
/// use nosq_isa::{Assembler, Reg, MemWidth, Extension};
/// use nosq_core::{simulate, SimConfig};
///
/// let mut asm = Assembler::new();
/// let (b, v) = (Reg::int(1), Reg::int(2));
/// asm.li(b, 0x1000);
/// asm.li(v, 7);
/// asm.store(v, b, 0, MemWidth::B8);
/// asm.load(v, b, 0, MemWidth::B8, Extension::Zero);
/// asm.halt();
/// let prog = asm.finish();
///
/// let report = simulate(&prog, SimConfig::nosq(100));
/// assert_eq!(report.memory.loads, 1);
/// assert_eq!(report.memory.stores, 1);
/// ```
pub fn simulate(program: &Program, cfg: SimConfig) -> SimReport {
    Simulator::new(program, cfg).run()
}
