//! The cycle-level timing pipeline.
//!
//! One simulator models all five configurations the paper evaluates:
//! the idealized and StoreSets baselines (associative store queue, paper
//! Tables 1-2), NoSQ with and without delay (Tables 3-4), and perfect
//! SMB. The model is *functional-first*: the [`Tracer`] supplies the
//! correct-path dynamic stream, and the pipeline replays it with explicit
//! ROB/IQ/LSQ occupancy, per-class issue slots, a commit-ordered memory
//! image (so premature loads observe genuinely stale values), value-based
//! verification with SVW filtering, and squash/refetch recovery.
//!
//! Within a cycle, stages run back to front (commit → issue → dispatch →
//! fetch) so resources freed by commit are visible to issue in the same
//! cycle but newly fetched instructions cannot dispatch early.
//!
//! # Datapath layout
//!
//! The hot-path state is flat and index-addressed: each in-flight
//! [`DynInst`] is stored exactly once in a slab
//! ([`InstPool`](crate::arena)) and travels through the fetch buffer,
//! ROB, and squash-replay queue as a 4-byte index; the ROB and its
//! sibling queues are power-of-two rings with stable absolute positions
//! ([`Ring`](crate::arena)); and the issue stage walks a compact
//! candidate list of ROB positions instead of rescanning every ROB
//! entry each cycle. All of it is recyclable across sessions through
//! [`SimArena`] / [`Simulator::with_arena`] — reuse never changes a
//! report byte, only where the memory comes from.

mod ckpt;
mod lanes;
pub(crate) mod nodes;

#[cfg(test)]
mod tests;

pub use ckpt::CkptError;
pub use lanes::LaneSet;

use nosq_isa::exec::load_extend;
use nosq_isa::{Inst, InstClass, MemWidth, Memory, Program, Reg};
use nosq_trace::{Coverage, DynInst, TraceBuffer, Tracer};
use nosq_uarch::branch::{Btb, HybridPredictor, ReturnAddressStack};
use nosq_uarch::{MemoryHierarchy, Ssn, SsnCounters, StoreSets, Tlb, Tssbf, TssbfLookup};

use crate::arena::{CoreBuffers, InstPool, Ring, SimArena};
use crate::bypass::{bypass_value, needs_shift_mask};
use crate::config::{LsuModel, Scheduling, SimConfig};
use crate::observer::{
    BypassEvent, CommitEvent, CommittedLoadKind, CycleEvent, LoadCommitEvent, ReexecEvent,
    SimObserver, SquashCause, SquashEvent,
};
use crate::predictor::{BypassingPredictor, PathHistory, Prediction};
use crate::report::SimReport;
use crate::srq::{StoreInfo, StoreRegisterQueue};

use nodes::{NodeId, RegState};

/// How a load obtains its value.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum LoadMode {
    /// Out-of-order cache access.
    Normal,
    /// Confidence-delayed: waits for the predicted store's commit, then
    /// reads the cache (paper §3.3).
    Delayed,
    /// SMB bypass; `partial` bypasses go through the injected shift&mask
    /// instruction (paper §3.5).
    Bypassed {
        /// Whether the shift & mask instruction was injected.
        partial: bool,
    },
}

#[derive(Copy, Clone, Debug)]
struct LoadState {
    mode: LoadMode,
    /// Baseline: wait until this store's address generation completes.
    wait_exec: Option<Ssn>,
    /// Wait until this store's committed value is cache-visible.
    wait_commit: Option<Ssn>,
    /// Youngest store the load is not vulnerable to.
    ssn_nvul: Ssn,
    /// Predicted bypassing store (NoSQ).
    ssn_byp: Option<Ssn>,
    /// The value obtained at execute / bypass.
    exec_value: u64,
    /// Decode-stage prediction, for training.
    pred: Option<Prediction>,
    /// Oracle loads skip verification entirely.
    oracle: bool,
    /// Fault injection corrupted this load's bypass target and exempted
    /// it from verification ([`crate::FaultPlan::break_predictor`]).
    injected: bool,
}

/// Decode-stage classification of a NoSQ load (result of
/// [`Simulator::plan_nosq_load`]).
#[derive(Copy, Clone, Debug)]
struct LoadPlan {
    mode: LoadMode,
    pred: Option<Prediction>,
    ssn_byp: Option<Ssn>,
    /// Fault injection corrupted this plan.
    injected: bool,
}

impl LoadPlan {
    fn normal(pred: Option<Prediction>) -> LoadPlan {
        LoadPlan {
            mode: LoadMode::Normal,
            pred,
            ssn_byp: None,
            injected: false,
        }
    }
}

/// One ROB entry. The dynamic instruction itself lives in the
/// [`InstPool`] slab; the entry carries its 4-byte index (plus a cached
/// class, the one field the per-cycle loops touch constantly).
#[derive(Clone, Debug)]
pub(crate) struct Entry {
    uid: u64,
    /// Index of this entry's [`DynInst`] in the instruction pool.
    inst: u32,
    /// Cached `DynInst::class`.
    class: InstClass,
    path_snap: u64,
    bpred_snap: u64,
    ras_snap: (usize, usize),
    // Rename results.
    map_reg: Option<Reg>,
    map_node: Option<NodeId>,
    prev_node: Option<NodeId>,
    srcs: [Option<NodeId>; 2],
    // Scheduling.
    issued: bool,
    complete_cycle: u64,
    mispredicted_branch: bool,
    // Memory.
    ssn: Ssn,
    load: Option<LoadState>,
    holds_lq: bool,
    holds_sq: bool,
    /// The store holds a reference on its data node until commit
    /// (NoSQ) or execute (baseline data capture).
    store_data_ref: Option<NodeId>,
}

/// An issue candidate whose operands are (or will shortly be) ready:
/// the entry's stable ROB position plus its cached *issue* class
/// (partial bypasses issue as the injected shift & mask, i.e.
/// [`InstClass::SimpleInt`]).
///
/// The issue stage is event-driven: candidates whose producers have not
/// issued are parked on a producer node ([`Waiter`]); candidates with a
/// known future ready cycle sit in a time-ordered wheel
/// ([`WheelEntry`]); only candidates that are eligible *now* live in
/// the scanned `iq_ready` list, sorted by age. A waiting instruction
/// therefore costs zero scan work per cycle, while the issue decisions
/// — age priority, per-class slots, load gates — are made over exactly
/// the same ready set, in exactly the same order, as a full ROB scan
/// would produce.
#[derive(Copy, Clone, Debug)]
pub(crate) struct ReadyCand {
    /// Absolute ROB position ([`Ring::get_abs`]).
    pos: u64,
    /// Cached issue class.
    class: InstClass,
}

/// A candidate whose operand-ready cycle is known but in the future,
/// filed in a min-heap keyed by (ready cycle, age). Producers set a
/// node's ready cycle exactly once (at issue, always a future cycle —
/// every execution latency is ≥ 1), so a wheel entry never needs
/// revisiting.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) struct WheelEntry {
    ready: u64,
    pos: u64,
    class: InstClass,
}

impl Ord for WheelEntry {
    fn cmp(&self, other: &WheelEntry) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first;
        // `pos` is unique, making the order total and deterministic.
        (other.ready, other.pos).cmp(&(self.ready, self.pos))
    }
}

impl PartialOrd for WheelEntry {
    fn partial_cmp(&self, other: &WheelEntry) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A candidate parked on an unissued producer's node, in an intrusive
/// free-list arena (`next` chains waiters of the same node). Woken when
/// the node's ready cycle is set; re-parked if another source is still
/// unknown.
#[derive(Copy, Clone, Debug)]
pub(crate) struct Waiter {
    pos: u64,
    class: InstClass,
    /// Cached source nodes (fixed after rename) for the readiness
    /// recompute on wake-up.
    srcs: [Option<NodeId>; 2],
    next: u32,
}

/// `next` sentinel / empty waiter-list head.
const NO_WAITER: u32 = u32::MAX;

/// Where the pipeline's dynamic instructions come from: a live
/// [`Tracer`] (functional execution interleaved with timing) or a
/// recorded [`TraceBuffer`] replay (functional work paid once, shared
/// by many configurations). Both produce the identical stream.
enum InstSource<'p> {
    Live(Box<Tracer<'p>>),
    Replay {
        insts: &'p [DynInst],
        next: usize,
        limit: usize,
    },
}

impl<'p> InstSource<'p> {
    /// Pulls the next instruction as a slab index. Live tracing copies
    /// the record into the pool; a replayed instruction's index *is*
    /// its trace position, so replay never copies a `DynInst` at all.
    #[inline]
    fn next_index(&mut self, slab: &mut InstSlab<'p>) -> Option<u32> {
        match self {
            InstSource::Live(t) => {
                let d = t.next()?;
                match slab {
                    InstSlab::Pool(pool) => Some(pool.alloc(d)),
                    InstSlab::Trace { .. } => unreachable!("live source pairs with a pool slab"),
                }
            }
            InstSource::Replay { next, limit, .. } => {
                if *next >= *limit {
                    return None;
                }
                let idx = *next as u32;
                *next += 1;
                Some(idx)
            }
        }
    }
}

/// Backing storage for in-flight [`DynInst`]s, addressed by the 4-byte
/// indices that travel through the fetch buffer, ROB, and replay queue.
///
/// Live tracing copies each instruction into a recycled
/// [`InstPool`](crate::arena) slab and recycles slots at retire; replay
/// addresses the recorded trace directly (the index is the trace
/// position), with the arena's pool riding along idle so
/// [`Simulator::finish`] can hand it back.
enum InstSlab<'p> {
    Pool(InstPool),
    Trace {
        insts: &'p [DynInst],
        pool: InstPool,
    },
}

impl InstSlab<'_> {
    /// Returns a pool slot to the free list (a no-op for trace-backed
    /// storage, whose slots are the immutable trace itself).
    #[inline]
    fn release(&mut self, idx: u32) {
        if let InstSlab::Pool(pool) = self {
            pool.release(idx);
        }
    }

    /// Extracts the recyclable pool for the arena hand-back.
    fn take_pool(&mut self) -> InstPool {
        match self {
            InstSlab::Pool(pool) => std::mem::take(pool),
            InstSlab::Trace { pool, .. } => std::mem::take(pool),
        }
    }
}

impl std::ops::Index<u32> for InstSlab<'_> {
    type Output = DynInst;

    #[inline]
    fn index(&self, idx: u32) -> &DynInst {
        match self {
            InstSlab::Pool(pool) => &pool[idx],
            InstSlab::Trace { insts, .. } => &insts[idx as usize],
        }
    }
}

/// A fetched-but-not-dispatched instruction (pool index + front-end
/// snapshots).
#[derive(Clone, Debug)]
pub(crate) struct Fetched {
    inst: u32,
    uid: u64,
    fetch_cycle: u64,
    path_snap: u64,
    bpred_snap: u64,
    ras_snap: (usize, usize),
    mispredicted_branch: bool,
}

/// When an incremental [`Simulator::run_until`] call should return.
///
/// Cycle and instruction targets are *absolute* session totals, not
/// deltas: a condition that is already satisfied returns immediately
/// without advancing the pipeline. The simulation also stops (for any
/// condition) once it finishes the program.
pub enum StopCondition<'a> {
    /// Run until the program completes.
    Done,
    /// Run until the session has executed at least this many cycles.
    Cycles(u64),
    /// Run until at least this many instructions have committed.
    Insts(u64),
    /// Run until the predicate over the live statistics returns `true`.
    /// Checked once per cycle, before stepping.
    Predicate(Box<dyn FnMut(&SimReport) -> bool + 'a>),
}

impl<'a> StopCondition<'a> {
    /// Builds a [`StopCondition::Predicate`] without the `Box` noise.
    pub fn predicate(f: impl FnMut(&SimReport) -> bool + 'a) -> StopCondition<'a> {
        StopCondition::Predicate(Box::new(f))
    }
}

impl std::fmt::Debug for StopCondition<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopCondition::Done => write!(f, "Done"),
            StopCondition::Cycles(n) => write!(f, "Cycles({n})"),
            StopCondition::Insts(n) => write!(f, "Insts({n})"),
            StopCondition::Predicate(_) => write!(f, "Predicate(..)"),
        }
    }
}

/// A self-contained snapshot of a replay session's complete
/// microarchitectural and architectural state, taken with
/// [`Simulator::checkpoint`] and turned back into a running session by
/// [`Simulator::resume`] / [`Simulator::resume_with_arena`].
///
/// Restoration is bit-identical: resuming a checkpoint and running to
/// completion produces the same [`SimReport`] as the uninterrupted
/// session (pinned by `tests/it_checkpoint.rs`). Checkpoints exist only
/// for *replay* sessions — the in-flight instruction window is captured
/// as 4-byte trace indices, so a checkpoint must be resumed against the
/// same recorded trace (same workload, same budget) it was taken from.
/// Live-tracer sessions, whose functional front-end state lives outside
/// the simulator, cannot be snapshotted.
pub struct SimCheckpoint {
    cfg: SimConfig,
    clock: u64,
    next_uid: u64,
    stream_next: usize,
    stream_limit: usize,
    stream_done: bool,
    pending: Ring<u32>,
    fetch_buffer: Ring<Fetched>,
    rob: Ring<Entry>,
    backend_exits: Ring<u64>,
    iq_ready: Vec<ReadyCand>,
    wheel: std::collections::BinaryHeap<WheelEntry>,
    waiters: Vec<Waiter>,
    waiter_free: Vec<u32>,
    node_waiters: Vec<u32>,
    iq_count: usize,
    lq_used: usize,
    sq_used: usize,
    regs: RegState,
    timing_mem: Memory,
    hierarchy: MemoryHierarchy,
    bpred: HybridPredictor,
    btb: Btb,
    ras: ReturnAddressStack,
    path: PathHistory,
    fetch_stall_until: u64,
    fetch_stalled_on: Option<u64>,
    halt_fetched: bool,
    ssn: SsnCounters,
    srq: StoreRegisterQueue,
    tssbf: Tssbf,
    predictor: BypassingPredictor,
    storesets: StoreSets,
    draining_for_wrap: bool,
    fault_bypass_seen: u64,
    stats: SimReport,
    done: bool,
}

/// The simulator for one (program, configuration) pair.
///
/// A `Simulator` is a *session*: construct it with [`Simulator::new`]
/// (or [`Simulator::with_arena`] to recycle a previous session's
/// buffers), optionally [attach observers](Simulator::attach_observer),
/// advance it incrementally with [`step`](Simulator::step) /
/// [`run_until`](Simulator::run_until) while reading
/// [`stats`](Simulator::stats) snapshots, and close it with
/// [`finish`](Simulator::finish) for the final [`SimReport`]. The
/// one-shot [`run`](Simulator::run) / [`simulate`] wrappers do exactly
/// that in a single call, and interleaved stepping reproduces the
/// one-shot counters bit for bit.
pub struct Simulator<'p> {
    cfg: SimConfig,
    clock: u64,
    cycle_cap: u64,
    next_uid: u64,
    // Instruction supply.
    stream: InstSource<'p>,
    stream_done: bool,
    /// In-flight dynamic instructions, stored once, addressed by index.
    insts: InstSlab<'p>,
    /// Squash-replay queue (pool indices, program order).
    pending: Ring<u32>,
    fetch_buffer: Ring<Fetched>,
    // Window.
    rob: Ring<Entry>,
    backend_exits: Ring<u64>,
    /// Issue-eligible candidates (operands ready), ascending ROB
    /// position = age order — the only list the per-cycle scan walks.
    iq_ready: Vec<ReadyCand>,
    /// Candidates with a known *future* ready cycle, earliest first.
    wheel: std::collections::BinaryHeap<WheelEntry>,
    /// Waiter arena (parked candidates chained per producer node).
    waiters: Vec<Waiter>,
    waiter_free: Vec<u32>,
    /// Per-node waiter-list heads, indexed by [`NodeId`]
    /// ([`NO_WAITER`] = empty), grown on demand.
    node_waiters: Vec<u32>,
    /// Issue-queue occupancy (ready + wheel + parked).
    iq_count: usize,
    lq_used: usize,
    sq_used: usize,
    /// Squash scratch (drained ROB entries), reused across squashes.
    scratch: Vec<Entry>,
    // Register state.
    regs: RegState,
    // Memory.
    timing_mem: Memory,
    hierarchy: MemoryHierarchy,
    // Front end.
    bpred: HybridPredictor,
    btb: Btb,
    ras: ReturnAddressStack,
    path: PathHistory,
    fetch_stall_until: u64,
    fetch_stalled_on: Option<u64>,
    halt_fetched: bool,
    // NoSQ / SVW machinery.
    ssn: SsnCounters,
    srq: StoreRegisterQueue,
    tssbf: Tssbf,
    predictor: BypassingPredictor,
    storesets: StoreSets,
    draining_for_wrap: bool,
    /// Bypassing loads planned so far, counted only under fault
    /// injection (selects every `period`-th victim deterministically).
    fault_bypass_seen: u64,
    // Results / instrumentation.
    stats: SimReport,
    observers: Vec<Box<dyn SimObserver + 'p>>,
    done: bool,
    /// Batch mode ([`LaneSet`](crate::LaneSet) / sampling windows):
    /// permits `run_until` to jump over provably idle cycle spans. Off
    /// for interactive sessions, whose per-cycle observer and predicate
    /// contracts require visiting every cycle.
    batch: bool,
    mispredict_pcs: std::collections::HashMap<u64, u64>,
    /// Where to return the recyclable buffers at `finish`.
    arena_core: Option<&'p mut CoreBuffers>,
}

impl<'p> Simulator<'p> {
    /// Builds a simulator over `program` with session-owned buffers.
    pub fn new(program: &'p Program, cfg: SimConfig) -> Simulator<'p> {
        let stream = InstSource::Live(Box::new(Tracer::new(program, cfg.max_insts)));
        Simulator::build(program, cfg, stream, None)
    }

    /// Builds a simulator over `program` that borrows its hot-path
    /// buffers from `arena` instead of allocating them, and returns
    /// them (grown to steady-state capacity) at
    /// [`finish`](Simulator::finish) for the next session.
    ///
    /// Reports are bit-identical to [`Simulator::new`]; the arena only
    /// removes per-session allocation. A session dropped without
    /// `finish` forfeits the buffers (the arena re-allocates on next
    /// use) but is otherwise safe.
    pub fn with_arena(
        program: &'p Program,
        cfg: SimConfig,
        arena: &'p mut SimArena,
    ) -> Simulator<'p> {
        let SimArena { trace, core, .. } = arena;
        let stream = InstSource::Live(Box::new(Tracer::with_arena(program, cfg.max_insts, trace)));
        Simulator::build(program, cfg, stream, Some(core))
    }

    /// Builds a simulator that replays a recorded [`TraceBuffer`]
    /// instead of tracing live. The functional front end runs once per
    /// (program, budget); every configuration sharing the trace skips
    /// it entirely, with bit-identical reports (the dynamic stream does
    /// not depend on the timing configuration).
    ///
    /// # Panics
    ///
    /// Panics if the trace's recording budget does not
    /// [cover](TraceBuffer::covers) `cfg.max_insts` (the replay would
    /// truncate earlier than a live trace).
    pub fn replay(program: &'p Program, cfg: SimConfig, trace: &'p TraceBuffer) -> Simulator<'p> {
        let stream = Simulator::replay_source(&cfg, trace);
        Simulator::build(program, cfg, stream, None)
    }

    /// [`Simulator::replay`] with arena-recycled buffers — the fastest
    /// way to run a configuration sweep over one workload.
    ///
    /// # Panics
    ///
    /// Panics if the trace does not [cover](TraceBuffer::covers)
    /// `cfg.max_insts`.
    pub fn replay_with_arena(
        program: &'p Program,
        cfg: SimConfig,
        trace: &'p TraceBuffer,
        arena: &'p mut SimArena,
    ) -> Simulator<'p> {
        let stream = Simulator::replay_source(&cfg, trace);
        Simulator::build(program, cfg, stream, Some(&mut arena.core))
    }

    fn replay_source(cfg: &SimConfig, trace: &'p TraceBuffer) -> InstSource<'p> {
        assert!(
            trace.covers(cfg.max_insts),
            "trace recorded with budget {} cannot replay budget {}",
            trace.max_insts(),
            cfg.max_insts
        );
        let limit = trace.len().min(cfg.max_insts as usize);
        assert!(
            limit <= u32::MAX as usize,
            "replay indices are 4 bytes; budget {limit} does not fit"
        );
        InstSource::Replay {
            insts: trace.insts(),
            next: 0,
            limit,
        }
    }

    /// Builds a simulator over the half-open trace window
    /// `[offset, offset + len)` for sampled simulation
    /// ([`sample`](crate::sample)). `mem` must be the functional memory
    /// image with every store older than `offset` already applied (the
    /// fast-forward), so loads that read pre-window stores observe the
    /// exact architectural values. The SSN counters are seeded with the
    /// absolute store count at the window start, keeping SSN arithmetic
    /// — bypass distances, rollback targets, wrap boundaries — identical
    /// to a full run's. Long-history microarchitectural state (caches,
    /// branch structures, the bypassing predictor, the T-SSBF) is
    /// injected from `warm`, the functional warmer's image of that
    /// state at `offset`; any residual divergence from a full run is
    /// the sampling estimator's documented bias, and every SVW filter
    /// fails *conservative* on a not-warmed entry (forced
    /// re-execution), so the window is still value-verified end to end.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn replay_window(
        program: &'p Program,
        cfg: SimConfig,
        trace: &'p TraceBuffer,
        offset: usize,
        len: usize,
        mem: Memory,
        warm: &crate::sample::WarmState,
        core: Option<&'p mut CoreBuffers>,
    ) -> Simulator<'p> {
        let insts = trace.insts();
        assert!(len >= 1, "sample window must contain an instruction");
        let end = offset.checked_add(len).expect("window end overflows");
        assert!(
            end <= insts.len(),
            "window [{offset}, {end}) exceeds trace length {}",
            insts.len()
        );
        assert!(
            end <= u32::MAX as usize,
            "replay indices are 4 bytes; window end {end} does not fit"
        );
        let stream = InstSource::Replay {
            insts,
            next: offset,
            limit: end,
        };
        let mut sim = Simulator::build(program, cfg, stream, core);
        sim.cycle_cap = 1_000_000 + (len as u64).saturating_mul(300);
        sim.timing_mem = mem;
        sim.ssn = SsnCounters::seeded(sim.cfg.machine.ssn_bits, insts[offset].stores_before);
        sim.hierarchy = warm.hierarchy.clone();
        sim.bpred = warm.bpred.clone();
        sim.btb = warm.btb.clone();
        sim.ras = warm.ras.clone();
        sim.path = warm.path;
        sim.predictor = warm.predictor.clone();
        sim.tssbf = warm.tssbf.clone();
        sim.batch = true;
        sim
    }

    fn build(
        program: &'p Program,
        cfg: SimConfig,
        stream: InstSource<'p>,
        core: Option<&'p mut CoreBuffers>,
    ) -> Simulator<'p> {
        let m = &cfg.machine;
        let mut arena_core = core;
        let mut bufs = match arena_core.as_deref_mut() {
            Some(c) => std::mem::take(c),
            None => CoreBuffers::default(),
        };
        bufs.clear();
        let CoreBuffers {
            insts,
            mut rob,
            fetch,
            exits,
            pending,
            scratch,
            iq_ready,
            wheel,
            waiters,
            waiter_free,
            node_waiters,
            srq,
        } = bufs;
        rob.reserve(m.rob_size);
        let insts = match &stream {
            InstSource::Live(_) => InstSlab::Pool(insts),
            InstSource::Replay { insts: trace, .. } => InstSlab::Trace {
                insts: trace,
                pool: insts,
            },
        };
        Simulator {
            clock: 0,
            cycle_cap: 1_000_000 + cfg.max_insts.saturating_mul(300),
            next_uid: 0,
            stream,
            stream_done: false,
            insts,
            pending,
            fetch_buffer: fetch,
            rob,
            backend_exits: exits,
            iq_ready,
            wheel,
            waiters,
            waiter_free,
            node_waiters,
            iq_count: 0,
            lq_used: 0,
            sq_used: 0,
            scratch,
            regs: RegState::new(m.phys_regs),
            timing_mem: program.initial_memory(),
            hierarchy: MemoryHierarchy::new(
                m.l1d,
                m.l2,
                Tlb::new(m.dtlb_entries, m.dtlb_ways),
                m.mem_latency,
                m.tlb_miss_penalty,
            ),
            bpred: HybridPredictor::new(m.bpred),
            btb: Btb::new(m.btb_entries, m.btb_ways),
            ras: ReturnAddressStack::new(m.ras_depth),
            path: PathHistory::new(),
            fetch_stall_until: 0,
            fetch_stalled_on: None,
            halt_fetched: false,
            ssn: SsnCounters::new(m.ssn_bits),
            srq: StoreRegisterQueue::with_storage(srq, 8192),
            tssbf: Tssbf::new(128, 4),
            predictor: BypassingPredictor::new(cfg.predictor),
            storesets: StoreSets::new(4096),
            draining_for_wrap: false,
            fault_bypass_seen: 0,
            stats: SimReport::default(),
            observers: Vec::new(),
            cfg,
            done: false,
            batch: false,
            mispredict_pcs: std::collections::HashMap::new(),
            arena_core,
        }
    }

    /// Installs an observer on this session. Hooks fire in attachment
    /// order; attach a `Box::new(&mut obs)` borrow to read the
    /// observer's state back after [`finish`](Simulator::finish).
    ///
    /// Observers receive events only for cycles executed *after*
    /// attachment, so install them before the first
    /// [`step`](Simulator::step).
    pub fn attach_observer(&mut self, obs: Box<dyn SimObserver + 'p>) {
        self.observers.push(obs);
    }

    /// Whether the program has run to completion.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Live statistics for the session so far. `cycles` tracks the
    /// current clock, so derived metrics (e.g. [`SimReport::ipc`]) are
    /// meaningful mid-run.
    pub fn stats(&self) -> &SimReport {
        &self.stats
    }

    /// Advances the pipeline by exactly one cycle. Returns `true` while
    /// the program is still running; once it reports `false` (program
    /// complete), further calls are no-ops.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline deadlocks (an internal invariant
    /// violation), bounded by a generous cycle cap.
    pub fn step(&mut self) -> bool {
        if self.done {
            return false;
        }
        self.clock += 1;
        assert!(
            self.clock < self.cycle_cap,
            "pipeline deadlock at cycle {} (retired {} insts)",
            self.clock,
            self.stats.insts
        );
        self.drain_backend_exits();
        self.commit_stage();
        self.issue_stage();
        self.dispatch_stage();
        self.fetch_stage();
        self.wrap_stage();
        self.check_done();
        self.stats.cycles = self.clock;
        if !self.observers.is_empty() {
            let ev = CycleEvent {
                cycle: self.clock,
                insts: self.stats.insts,
            };
            self.emit(|o| o.on_cycle(&ev));
        }
        !self.done
    }

    /// Steps until `stop` is satisfied or the program completes,
    /// whichever comes first. Returns `true` if the program completed.
    pub fn run_until(&mut self, mut stop: StopCondition) -> bool {
        // Idle-cycle skipping is sound only when nobody can observe the
        // skipped cycles: batch sessions without observers, advancing
        // toward a completion or committed-instruction target (idle
        // cycles commit nothing, so an `Insts` target cannot be
        // overshot; `Cycles` and `Predicate` inspect every cycle).
        let may_skip = self.batch
            && self.observers.is_empty()
            && matches!(stop, StopCondition::Done | StopCondition::Insts(_));
        loop {
            let met = match &mut stop {
                StopCondition::Done => false, // only completion stops it
                StopCondition::Cycles(n) => self.clock >= *n,
                StopCondition::Insts(n) => self.stats.insts >= *n,
                StopCondition::Predicate(f) => f(&self.stats),
            };
            if met || self.done {
                return self.done;
            }
            if may_skip {
                if let Some(target) = self.idle_skip_target() {
                    self.clock = target;
                }
            }
            self.step();
        }
    }

    /// If every pipeline stage is provably a no-op until some known
    /// future cycle, returns the last idle cycle (jump the clock there
    /// and step once to land exactly on the first non-idle cycle).
    ///
    /// The conditions mirror the stages back to front. Nothing can
    /// *issue* (the ready list is empty; blocked loads and wrap drains
    /// keep their candidates in it, so both force a `None` here), hence
    /// nothing can *commit* before the ROB head's known completion,
    /// *dispatch* before the fetch front matures or a backend exit
    /// frees ROB occupancy — dispatch-stall counters only tick once the
    /// front is mature, and a mature front's event is already in the
    /// past, vetoing the skip — and *fetch* before `fetch_stall_until`
    /// (irrelevant while fetch is blocked on a mispredicted branch, a
    /// fetched halt, or an exhausted stream). Every event that could
    /// end the idle span has a known cycle; the earliest one bounds the
    /// jump, so the skipped cycles are exactly the ones a stepped run
    /// would have executed as no-ops. Deadlocks still hit the cycle cap:
    /// with no future event scheduled this returns `None` and stepping
    /// proceeds to the cap as before.
    fn idle_skip_target(&self) -> Option<u64> {
        if !self.iq_ready.is_empty() || self.draining_for_wrap || self.ssn.wrap_pending() {
            return None;
        }
        let mut next = u64::MAX;
        if let Some(&t) = self.backend_exits.front() {
            next = next.min(t);
        }
        if let Some(e) = self.rob.front() {
            if e.complete_cycle != u64::MAX {
                next = next.min(e.complete_cycle);
            }
        }
        if let Some(w) = self.wheel.peek() {
            next = next.min(w.ready);
        }
        if let Some(f) = self.fetch_buffer.front() {
            next = next.min(f.fetch_cycle + self.cfg.machine.front_depth);
        }
        let fetch_blocked = self.halt_fetched
            || self.fetch_stalled_on.is_some()
            || (self.stream_done && self.pending.is_empty());
        if !fetch_blocked {
            next = next.min(self.fetch_stall_until);
        }
        (next != u64::MAX && next > self.clock + 1).then(|| next - 1)
    }

    /// Snapshots the session's complete state into a [`SimCheckpoint`].
    /// The session itself is untouched and can keep running.
    ///
    /// # Panics
    ///
    /// Panics on a live-tracer session (only replay sessions are
    /// snapshottable; see [`SimCheckpoint`]) or when observers are
    /// attached (observer state is caller-owned and cannot be
    /// captured).
    pub fn checkpoint(&self) -> SimCheckpoint {
        let InstSource::Replay { next, limit, .. } = &self.stream else {
            panic!("checkpoint requires a replay session; live tracer state is not snapshottable");
        };
        assert!(
            self.observers.is_empty(),
            "checkpoint with attached observers is not supported"
        );
        debug_assert!(self.scratch.is_empty(), "scratch is empty between steps");
        SimCheckpoint {
            cfg: self.cfg.clone(),
            clock: self.clock,
            next_uid: self.next_uid,
            stream_next: *next,
            stream_limit: *limit,
            stream_done: self.stream_done,
            pending: self.pending.clone(),
            fetch_buffer: self.fetch_buffer.clone(),
            rob: self.rob.clone(),
            backend_exits: self.backend_exits.clone(),
            iq_ready: self.iq_ready.clone(),
            wheel: self.wheel.clone(),
            waiters: self.waiters.clone(),
            waiter_free: self.waiter_free.clone(),
            node_waiters: self.node_waiters.clone(),
            iq_count: self.iq_count,
            lq_used: self.lq_used,
            sq_used: self.sq_used,
            regs: self.regs.clone(),
            timing_mem: self.timing_mem.clone(),
            hierarchy: self.hierarchy.clone(),
            bpred: self.bpred.clone(),
            btb: self.btb.clone(),
            ras: self.ras.clone(),
            path: self.path,
            fetch_stall_until: self.fetch_stall_until,
            fetch_stalled_on: self.fetch_stalled_on,
            halt_fetched: self.halt_fetched,
            ssn: self.ssn.clone(),
            srq: self.srq.clone(),
            tssbf: self.tssbf.clone(),
            predictor: self.predictor.clone(),
            storesets: self.storesets.clone(),
            draining_for_wrap: self.draining_for_wrap,
            fault_bypass_seen: self.fault_bypass_seen,
            stats: self.stats,
            done: self.done,
        }
    }

    /// Rebuilds a running replay session from a checkpoint, with
    /// session-owned buffers. `trace` must be the recorded trace the
    /// checkpointed session was replaying (same workload, same
    /// recording budget); continuing the resumed session reproduces the
    /// uninterrupted run bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `trace` does not match the checkpoint's recorded
    /// replay extent.
    pub fn resume(
        program: &'p Program,
        trace: &'p TraceBuffer,
        ckpt: &SimCheckpoint,
    ) -> Simulator<'p> {
        Simulator::resume_inner(program, trace, ckpt, None)
    }

    /// [`Simulator::resume`] with arena-recycled buffers.
    ///
    /// # Panics
    ///
    /// Panics if `trace` does not match the checkpoint's recorded
    /// replay extent.
    pub fn resume_with_arena(
        program: &'p Program,
        trace: &'p TraceBuffer,
        ckpt: &SimCheckpoint,
        arena: &'p mut SimArena,
    ) -> Simulator<'p> {
        Simulator::resume_inner(program, trace, ckpt, Some(&mut arena.core))
    }

    fn resume_inner(
        program: &'p Program,
        trace: &'p TraceBuffer,
        ckpt: &SimCheckpoint,
        core: Option<&'p mut CoreBuffers>,
    ) -> Simulator<'p> {
        let stream = Simulator::replay_source(&ckpt.cfg, trace);
        let InstSource::Replay { limit, .. } = &stream else {
            unreachable!("replay_source builds a replay stream");
        };
        assert_eq!(
            *limit, ckpt.stream_limit,
            "checkpoint was taken against a different trace extent"
        );
        let mut sim = Simulator::build(program, ckpt.cfg.clone(), stream, core);
        if let InstSource::Replay { next, .. } = &mut sim.stream {
            *next = ckpt.stream_next;
        }
        sim.clock = ckpt.clock;
        sim.next_uid = ckpt.next_uid;
        sim.stream_done = ckpt.stream_done;
        sim.pending = ckpt.pending.clone();
        sim.fetch_buffer = ckpt.fetch_buffer.clone();
        sim.rob = ckpt.rob.clone();
        sim.backend_exits = ckpt.backend_exits.clone();
        sim.iq_ready = ckpt.iq_ready.clone();
        sim.wheel = ckpt.wheel.clone();
        sim.waiters = ckpt.waiters.clone();
        sim.waiter_free = ckpt.waiter_free.clone();
        sim.node_waiters = ckpt.node_waiters.clone();
        sim.iq_count = ckpt.iq_count;
        sim.lq_used = ckpt.lq_used;
        sim.sq_used = ckpt.sq_used;
        sim.regs = ckpt.regs.clone();
        sim.timing_mem = ckpt.timing_mem.clone();
        sim.hierarchy = ckpt.hierarchy.clone();
        sim.bpred = ckpt.bpred.clone();
        sim.btb = ckpt.btb.clone();
        sim.ras = ckpt.ras.clone();
        sim.path = ckpt.path;
        sim.fetch_stall_until = ckpt.fetch_stall_until;
        sim.fetch_stalled_on = ckpt.fetch_stalled_on;
        sim.halt_fetched = ckpt.halt_fetched;
        sim.ssn = ckpt.ssn.clone();
        sim.srq = ckpt.srq.clone();
        sim.tssbf = ckpt.tssbf.clone();
        sim.predictor = ckpt.predictor.clone();
        sim.storesets = ckpt.storesets.clone();
        sim.draining_for_wrap = ckpt.draining_for_wrap;
        sim.fault_bypass_seen = ckpt.fault_bypass_seen;
        sim.stats = ckpt.stats;
        sim.done = ckpt.done;
        sim
    }

    /// Closes the session and returns the report for everything
    /// executed so far (the full program after a
    /// [`run_until(Done)`](Simulator::run_until), or a prefix if
    /// stopped early). A session built with
    /// [`with_arena`](Simulator::with_arena) hands its buffers back to
    /// the arena here.
    pub fn finish(mut self) -> SimReport {
        self.release_buffers();
        if !self.mispredict_pcs.is_empty() {
            let mut v: Vec<_> = self.mispredict_pcs.iter().collect();
            v.sort_by_key(|(_, c)| std::cmp::Reverse(**c));
            for (pc, c) in v.iter().take(10) {
                eprintln!("  mispredict pc={pc:#x} count={c}");
            }
        }
        self.stats
    }

    /// Returns the recyclable buffers to the arena, if this session
    /// borrowed one.
    fn release_buffers(&mut self) {
        if let Some(core) = self.arena_core.take() {
            *core = CoreBuffers {
                insts: self.insts.take_pool(),
                rob: std::mem::take(&mut self.rob),
                fetch: std::mem::take(&mut self.fetch_buffer),
                exits: std::mem::take(&mut self.backend_exits),
                pending: std::mem::take(&mut self.pending),
                scratch: std::mem::take(&mut self.scratch),
                iq_ready: std::mem::take(&mut self.iq_ready),
                wheel: std::mem::take(&mut self.wheel),
                waiters: std::mem::take(&mut self.waiters),
                waiter_free: std::mem::take(&mut self.waiter_free),
                node_waiters: std::mem::take(&mut self.node_waiters),
                srq: std::mem::take(&mut self.srq).into_storage(),
            };
        }
    }

    /// Runs to completion and returns the collected statistics —
    /// [`run_until(Done)`](Simulator::run_until) plus
    /// [`finish`](Simulator::finish) in one call.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline deadlocks (an internal invariant
    /// violation), bounded by a generous cycle cap.
    pub fn run(mut self) -> SimReport {
        self.run_until(StopCondition::Done);
        self.finish()
    }

    /// Fans an event out to every attached observer.
    fn emit(&mut self, f: impl Fn(&mut dyn SimObserver)) {
        for obs in self.observers.iter_mut() {
            f(obs.as_mut());
        }
    }

    fn check_done(&mut self) {
        if (self.stream_done || self.halt_fetched)
            && self.pending.is_empty()
            && self.fetch_buffer.is_empty()
            && self.rob.is_empty()
            && self.backend_exits.is_empty()
        {
            self.done = true;
        }
    }

    fn backend_depth(&self) -> u64 {
        self.cfg.lsu.backend_depth()
    }

    fn drain_backend_exits(&mut self) {
        while self.backend_exits.front().is_some_and(|&t| t <= self.clock) {
            self.backend_exits.pop_front();
        }
    }

    fn rob_occupancy(&self) -> usize {
        self.rob.len() + self.backend_exits.len()
    }

    // ----------------------------------------------------------------
    // Commit / back-end.
    // ----------------------------------------------------------------

    fn store_committed_visible(&self, ssn: Ssn) -> bool {
        if ssn > self.ssn.commit() {
            return false;
        }
        match self.srq.get(ssn) {
            Some(info) => info.commit_visible <= self.clock,
            None => true, // long committed, ring slot recycled
        }
    }

    fn commit_stage(&mut self) {
        let mut dcache_port = 1u32;
        let mut committed = 0usize;
        while committed < self.cfg.machine.width {
            let Some(head) = self.rob.front() else { break };
            if head.complete_cycle > self.clock {
                break;
            }
            let class = head.class;
            // Port reservation before any effect.
            let needs_port_now = match class {
                InstClass::Store => true,
                InstClass::Load => self.load_needs_reexec(head),
                _ => false,
            };
            if needs_port_now && dcache_port == 0 {
                break;
            }

            let entry = self.rob.pop_front().expect("head exists");
            self.backend_exits
                .push_back(self.clock + self.backend_depth());
            committed += 1;

            let mut squash = false;
            match class {
                InstClass::Store => {
                    dcache_port -= 1;
                    self.commit_store(&entry);
                }
                InstClass::Load => {
                    if needs_port_now {
                        dcache_port -= 1;
                    }
                    squash = self.verify_load(&entry, needs_port_now);
                }
                _ => {}
            }

            self.retire_bookkeeping(&entry);
            if !self.observers.is_empty() {
                let ev = CommitEvent {
                    cycle: self.clock,
                    pc: self.insts[entry.inst].rec.pc,
                    class,
                };
                self.emit(|o| o.on_commit(&ev));
            }
            if squash {
                let squashed = (self.rob.len() + self.fetch_buffer.len()) as u64;
                self.squash_younger_than_head();
                if !self.observers.is_empty() {
                    let ev = SquashEvent {
                        cycle: self.clock,
                        cause: if self.cfg.lsu.is_nosq() {
                            SquashCause::BypassMispredict
                        } else {
                            SquashCause::OrderingViolation
                        },
                        load_pc: self.insts[entry.inst].rec.pc,
                        squashed,
                    };
                    self.emit(|o| o.on_squash(&ev));
                }
                self.insts.release(entry.inst);
                break;
            }
            self.insts.release(entry.inst);
        }
    }

    /// Store effects at its data-cache stage: write the commit-ordered
    /// memory image, update the T-SSBF and SSN counters (paper Table 4).
    fn commit_store(&mut self, entry: &Entry) {
        let (addr, width) = {
            let d = &self.insts[entry.inst];
            (
                d.rec.addr,
                d.rec.inst.mem_width().expect("store width").bytes(),
            )
        };
        let store_mem_bits = self.insts[entry.inst].rec.store_mem_bits;
        self.timing_mem.write(addr, width, store_mem_bits);
        self.tssbf.record_store(addr, width as u8, entry.ssn);
        self.hierarchy.store_commit(addr);
        self.ssn.commit_store();
        let visible = self.clock + self.backend_depth() - 2;
        if let Some(info) = self.srq.get_mut(entry.ssn) {
            info.commit_visible = visible;
        }
        self.stats.memory.stores += 1;
        if entry.holds_sq {
            self.sq_used -= 1;
        }
        // NoSQ stores release their data-register pin here (the commit
        // pipeline has now read the register file).
        if self.cfg.lsu.is_nosq() {
            if let Some(node) = entry.store_data_ref {
                self.regs.release(node);
            }
        }
    }

    /// SVW filter decision for the load at the ROB head (paper §3.4: the
    /// equality test for bypassed loads, the inequality test otherwise).
    fn load_needs_reexec(&self, entry: &Entry) -> bool {
        let Some(ls) = &entry.load else { return false };
        if ls.oracle {
            return false;
        }
        if ls.injected {
            // The injected fault models a complicit SVW filter: the
            // corrupted bypass is (wrongly) claimed provably correct.
            return false;
        }
        let d = &self.insts[entry.inst];
        let width = d.rec.inst.mem_width().expect("load width").bytes() as u8;
        match ls.mode {
            LoadMode::Bypassed { .. } => {
                self.tssbf
                    .must_reexecute_equality(d.rec.addr, width, ls.ssn_nvul)
            }
            _ => self
                .tssbf
                .must_reexecute_inequality(d.rec.addr, width, ls.ssn_nvul),
        }
    }

    /// Verifies a load at commit. Returns `true` if younger instructions
    /// must be squashed.
    fn verify_load(&mut self, entry: &Entry, reexec: bool) -> bool {
        let ls = entry.load.as_ref().expect("load state");
        let d = self.insts[entry.inst]; // one local copy per committed load
        let width = d.rec.inst.mem_width().expect("load width");
        self.stats.memory.loads += 1;
        if let Some(dep) = d.mem_dep {
            if dep.inst_distance < self.cfg.machine.rob_size as u64 {
                self.stats.memory.comm_loads += 1;
                if d.is_partial_word_comm() {
                    self.stats.memory.partial_comm_loads += 1;
                }
            }
        }
        if entry.holds_lq {
            self.lq_used -= 1;
        }
        if ls.oracle {
            self.stats.verification.reexec_filtered += 1;
            self.emit_load_commit(&d, ls, false, false);
            return false;
        }

        let mut mispredict = false;
        if reexec {
            self.stats.verification.backend_dcache_reads += 1;
            // All older stores have committed: this read is correct.
            let raw = self.timing_mem.read(d.rec.addr, width.bytes());
            let ext = match d.rec.inst {
                Inst::Load { ext, .. } => ext,
                _ => unreachable!("load entry holds a load"),
            };
            let ndata = load_extend(raw, width, ext);
            debug_assert_eq!(ndata, d.rec.load_value, "re-execution must be correct");
            self.hierarchy.load_latency(d.rec.addr); // cache state effects
            if ndata != ls.exec_value {
                mispredict = true;
            }
            if !self.observers.is_empty() {
                let ev = ReexecEvent {
                    cycle: self.clock,
                    pc: d.rec.pc,
                    addr: d.rec.addr,
                    mismatch: mispredict,
                };
                self.emit(|o| o.on_reexec(&ev));
            }
        } else {
            self.stats.verification.reexec_filtered += 1;
            // The filter said the value is provably correct — except for a
            // predicted shift, which is verified without replay (§3.5).
            // Injected loads skip even the shift check: the modelled
            // filter bug vouches for them unconditionally.
            if !ls.injected {
                if let LoadMode::Bypassed { .. } = ls.mode {
                    if let TssbfLookup::Hit(e) = self.tssbf.lookup(d.rec.addr, width.bytes() as u8)
                    {
                        let actual_shift = d.rec.addr.wrapping_sub(e.store_addr()) as u8;
                        let predicted_shift = ls.pred.map(|p| p.shift).unwrap_or(0);
                        if actual_shift != predicted_shift {
                            mispredict = true;
                        } else {
                            debug_assert_eq!(
                                ls.exec_value, d.rec.load_value,
                                "filtered bypass with correct shift must be correct"
                            );
                        }
                    }
                }
            }
        }

        // Train the machinery.
        match self.cfg.lsu {
            LsuModel::BaselineSq { .. } => {
                if mispredict {
                    self.stats.verification.ordering_squashes += 1;
                    if let Some(dep_ssn) = d.dep_ssn() {
                        if let Some(info) = self.srq.get(Ssn(dep_ssn)) {
                            self.storesets.train_violation(d.rec.pc, info.pc);
                        }
                    }
                }
            }
            LsuModel::Nosq { .. } => self.train_bypass_predictor(entry, &d, ls, mispredict),
            LsuModel::NosqOracle => {}
        }
        self.emit_load_commit(&d, ls, reexec, mispredict);
        mispredict
    }

    /// Emits the commit-time verification record for one load (the
    /// event `nosq-audit` cross-checks against the dependence oracle).
    fn emit_load_commit(&mut self, d: &DynInst, ls: &LoadState, reexec: bool, mispredict: bool) {
        if self.observers.is_empty() {
            return;
        }
        let kind = match ls.mode {
            LoadMode::Normal => CommittedLoadKind::Normal,
            LoadMode::Delayed => CommittedLoadKind::Delayed,
            LoadMode::Bypassed { partial } => CommittedLoadKind::Bypassed { partial },
        };
        let ev = LoadCommitEvent {
            cycle: self.clock,
            seq: d.seq,
            pc: d.rec.pc,
            addr: d.rec.addr,
            kind,
            predicted_ssn: ls.ssn_byp.map(|s| s.0),
            value: ls.exec_value,
            arch_value: d.rec.load_value,
            reexec,
            mispredict,
            oracle: ls.oracle,
            stores_before: d.stores_before,
            injected: ls.injected,
        };
        self.emit(|o| o.on_load_commit(&ev));
    }

    fn train_bypass_predictor(
        &mut self,
        entry: &Entry,
        d: &DynInst,
        ls: &LoadState,
        mispredict: bool,
    ) {
        let mut history = PathHistory::new();
        history.restore(entry.path_snap);
        if mispredict {
            self.stats.verification.bypass_mispredicts += 1;
            if std::env::var_os("NOSQ_DEBUG_MISPREDICTS").is_some() {
                *self.mispredict_pcs.entry(d.rec.pc).or_insert(0) += 1;
            }
            let width = d.rec.inst.mem_width().expect("load width").bytes() as u8;
            // Compute the actual distance/shift from the T-SSBF (§3.1:
            // distbyp = SSNcommit − T-SSBF[addr]; at the load's commit
            // SSNcommit equals its rename-time SSNrename).
            let actual = match self.tssbf.lookup(d.rec.addr, width) {
                TssbfLookup::Hit(e) => {
                    let dist = d.stores_before.saturating_sub(e.ssn.0);
                    if dist <= 63 {
                        let shift = if e.covers(d.rec.addr, width) {
                            d.rec.addr.wrapping_sub(e.store_addr()) as u8
                        } else {
                            0
                        };
                        Some((dist as u16, shift))
                    } else {
                        None // beyond the 6-bit distance field
                    }
                }
                _ => None,
            };
            let had_path = ls.pred.map(|p| p.path_sensitive).unwrap_or(false);
            self.predictor
                .train_mispredict(d.rec.pc, &history, had_path, actual);
        } else if ls.pred.is_some() {
            self.predictor.train_correct(d.rec.pc, &history);
        }
    }

    /// Frees rename-side resources for a retiring entry.
    fn retire_bookkeeping(&mut self, entry: &Entry) {
        self.stats.insts += 1;
        if entry.map_reg.is_some() {
            if let Some(prev) = entry.prev_node {
                self.regs.release(prev);
            }
        }
    }

    // ----------------------------------------------------------------
    // Squash.
    // ----------------------------------------------------------------

    /// Squashes everything younger than the (already popped) ROB head:
    /// the whole ROB, the fetch buffer, and re-queues their dynamic
    /// instructions for refetch.
    fn squash_younger_than_head(&mut self) {
        // Drain the ROB into the reusable scratch, then walk it in
        // reverse for rename rollback.
        debug_assert!(self.scratch.is_empty());
        while let Some(e) = self.rob.pop_front() {
            self.scratch.push(e);
        }
        self.iq_ready.clear();
        self.wheel.clear();
        self.waiters.clear();
        self.waiter_free.clear();
        self.node_waiters.clear();
        self.iq_count = 0;
        for e in self.scratch.iter().rev() {
            if let Some(reg) = e.map_reg {
                self.regs.remap(reg, e.prev_node);
                if let Some(node) = e.map_node {
                    self.regs.release(node);
                }
            }
            if e.holds_lq {
                self.lq_used -= 1;
            }
            if e.holds_sq {
                self.sq_used -= 1;
            }
            if e.class == InstClass::Store {
                if let Some(node) = e.store_data_ref {
                    // Baseline releases at execute; if unexecuted (or
                    // NoSQ, which releases at commit), release now.
                    if self.cfg.lsu.is_nosq() || !e.issued {
                        self.regs.release(node);
                    }
                }
                self.srq.invalidate(e.ssn);
                self.storesets
                    .store_resolved(self.insts[e.inst].rec.pc, e.ssn);
            }
        }
        // Roll the rename SSN back to the squash point.
        if let Some(first) = self.scratch.first() {
            self.ssn
                .rollback_rename(Ssn(self.insts[first.inst].stores_before));
        } else if let Some(fb) = self.fetch_buffer.front() {
            self.ssn
                .rollback_rename(Ssn(self.insts[fb.inst].stores_before));
        }
        // Restore front-end speculative state to the oldest squashed
        // instruction's snapshots.
        let front_snap = self
            .scratch
            .first()
            .map(|e| (e.path_snap, e.bpred_snap, e.ras_snap))
            .or_else(|| {
                self.fetch_buffer
                    .front()
                    .map(|f| (f.path_snap, f.bpred_snap, f.ras_snap))
            });
        if let Some((path, bh, ras)) = front_snap {
            self.path.restore(path);
            self.bpred.set_history(bh);
            self.ras.restore(ras);
        }
        // Re-queue pool indices in program order: youngest first onto
        // the front, so the queue reads oldest-to-youngest.
        while let Some(f) = self.fetch_buffer.pop_back() {
            self.pending.push_front(f.inst);
        }
        for e in self.scratch.drain(..).rev() {
            self.pending.push_front(e.inst);
        }
        self.fetch_stalled_on = None;
        // A squashed halt returns to `pending` and must be refetched.
        self.halt_fetched = false;
        // Mis-speculation is detected at the end of the back-end pipe;
        // refetch begins after the redirect.
        self.fetch_stall_until = self.clock + self.backend_depth() - 1;
    }

    // ----------------------------------------------------------------
    // Issue.
    // ----------------------------------------------------------------

    /// Files a freshly dispatched IQ candidate into the right scheduler
    /// tier: eligible now, wheel (known future ready), or parked on an
    /// unissued producer's node.
    fn iq_insert(&mut self, pos: u64, class: InstClass, srcs: [Option<NodeId>; 2]) {
        self.iq_count += 1;
        let ready = srcs
            .iter()
            .flatten()
            .map(|&n| self.regs.ready(Some(n)))
            .max()
            .unwrap_or(0);
        if ready == u64::MAX {
            self.park(pos, class, srcs);
        } else if ready > self.clock {
            self.wheel.push(WheelEntry { ready, pos, class });
        } else {
            // Dispatch order is age order, so a plain push keeps
            // `iq_ready` sorted (the new position is the largest).
            debug_assert!(self.iq_ready.last().is_none_or(|c| c.pos < pos));
            self.iq_ready.push(ReadyCand { pos, class });
        }
    }

    /// Parks a candidate on its first not-yet-ready source node.
    fn park(&mut self, pos: u64, class: InstClass, srcs: [Option<NodeId>; 2]) {
        let node = srcs
            .iter()
            .flatten()
            .copied()
            .find(|&n| self.regs.ready(Some(n)) == u64::MAX)
            .expect("parked candidate has an unready source");
        let node = node as usize;
        if node >= self.node_waiters.len() {
            self.node_waiters.resize(node + 1, NO_WAITER);
        }
        let w = Waiter {
            pos,
            class,
            srcs,
            next: self.node_waiters[node],
        };
        let idx = match self.waiter_free.pop() {
            Some(i) => {
                self.waiters[i as usize] = w;
                i
            }
            None => {
                self.waiters.push(w);
                (self.waiters.len() - 1) as u32
            }
        };
        self.node_waiters[node] = idx;
    }

    /// Wakes every candidate parked on `node` after its ready cycle was
    /// set: re-park if another source is still unknown, otherwise file
    /// into the wheel (readiness is always a future cycle — every
    /// execution latency is ≥ 1, so no candidate can become eligible in
    /// the cycle its producer issues).
    fn wake_node(&mut self, node: NodeId) {
        let Some(head) = self.node_waiters.get_mut(node as usize) else {
            return;
        };
        let mut idx = std::mem::replace(head, NO_WAITER);
        while idx != NO_WAITER {
            let w = self.waiters[idx as usize];
            self.waiter_free.push(idx);
            idx = w.next;
            let ready = w
                .srcs
                .iter()
                .flatten()
                .map(|&n| self.regs.ready(Some(n)))
                .max()
                .unwrap_or(0);
            if ready == u64::MAX {
                self.park(w.pos, w.class, w.srcs);
            } else {
                debug_assert!(ready > self.clock, "producer latency must be >= 1");
                self.wheel.push(WheelEntry {
                    ready,
                    pos: w.pos,
                    class: w.class,
                });
            }
        }
    }

    /// Moves every wheel candidate whose ready cycle has arrived into
    /// the age-sorted eligible list (a binary-search insert per drained
    /// candidate — the list is small and drains are ~1-2 entries, so
    /// this beats re-sorting it).
    fn drain_wheel(&mut self) {
        while self
            .wheel
            .peek()
            .is_some_and(|entry| entry.ready <= self.clock)
        {
            let entry = self.wheel.pop().expect("peeked");
            let at = match self.iq_ready.binary_search_by_key(&entry.pos, |c| c.pos) {
                Err(i) => i,
                Ok(_) => unreachable!("ROB positions are unique"),
            };
            self.iq_ready.insert(
                at,
                ReadyCand {
                    pos: entry.pos,
                    class: entry.class,
                },
            );
        }
    }

    fn issue_stage(&mut self) {
        self.drain_wheel();
        let m = &self.cfg.machine;
        let mut total = m.width;
        let mut simple = m.simple_int_slots;
        let mut complex = m.complex_slots;
        let mut branch = m.branch_slots;
        let mut load = m.load_slots;
        let mut store = m.store_slots;

        // Walk the eligible candidates (ascending ROB positions = age
        // order); waiting instructions cost nothing here.
        let mut i = 0;
        while i < self.iq_ready.len() {
            if total == 0 {
                break;
            }
            let ReadyCand { pos, class } = self.iq_ready[i];
            let slot = match class {
                InstClass::SimpleInt | InstClass::Halt => &mut simple,
                InstClass::Complex => &mut complex,
                InstClass::Branch => &mut branch,
                InstClass::Load => &mut load,
                InstClass::Store => &mut store,
            };
            if *slot == 0 {
                i += 1;
                continue;
            }
            // Memory scheduling constraints.
            if class == InstClass::Load && !self.load_may_issue(pos) {
                i += 1;
                continue;
            }
            *slot -= 1;
            total -= 1;
            self.iq_ready.remove(i);
            self.iq_count -= 1;
            self.do_issue(pos);
        }
    }

    /// Load-specific scheduling gates; may rewrite the load's wait state.
    fn load_may_issue(&mut self, pos: u64) -> bool {
        let e = self.rob.get_abs(pos).expect("load resident");
        let inst_idx = e.inst;
        let ls = e.load.as_ref().expect("load state");
        if let Some(ssn) = ls.wait_commit {
            if !self.store_committed_visible(ssn) {
                return false;
            }
        }
        if let Some(ssn) = ls.wait_exec {
            if ssn > self.ssn.commit() {
                match self.srq.get(ssn) {
                    Some(info) if info.exec_cycle > self.clock => {
                        // The perfect-scheduling oracle waits only when
                        // issuing now would actually produce a wrong value:
                        // if the stale memory image already matches the
                        // architectural value, speculating is squash-free
                        // under value-based verification.
                        let oracle = matches!(
                            self.cfg.lsu,
                            LsuModel::BaselineSq {
                                scheduling: Scheduling::Perfect
                            }
                        );
                        if oracle {
                            let d = &self.insts[inst_idx];
                            if let Inst::Load { width, ext, .. } = d.rec.inst {
                                let stale = load_extend(
                                    self.timing_mem.read(d.rec.addr, width.bytes()),
                                    width,
                                    ext,
                                );
                                if stale == d.rec.load_value {
                                    return true;
                                }
                            }
                        }
                        return false;
                    }
                    _ => {}
                }
            }
        }
        // Baseline forwarding: if the true producing store has executed,
        // the load will forward — but only once the store's data is
        // ready; a partial-coverage match cannot forward at all and
        // converts to a wait-for-commit (replay).
        if !self.cfg.lsu.is_nosq() {
            let wait_commit_unset = ls.wait_commit.is_none();
            if let Some(dep_ssn) = self.insts[inst_idx].dep_ssn().map(Ssn) {
                if dep_ssn > self.ssn.commit() && wait_commit_unset {
                    if let Some(info) = self.srq.get(dep_ssn) {
                        if info.exec_cycle <= self.clock {
                            let coverage =
                                self.insts[inst_idx].mem_dep.expect("dep exists").coverage;
                            if coverage == Coverage::Partial {
                                let e = self.rob.get_abs_mut(pos).expect("load resident");
                                let ls = e.load.as_mut().expect("load");
                                ls.wait_commit = Some(dep_ssn);
                                return false;
                            }
                            if self.regs.ready(info.dtag_node) > self.clock {
                                return false; // forward data not ready yet
                            }
                        }
                    }
                }
            }
        }
        true
    }

    fn do_issue(&mut self, pos: u64) {
        let rr = self.cfg.machine.regread_depth;
        let e = self.rob.get_abs(pos).expect("issued entry resident");
        let inst_idx = e.inst;
        let class = e.class;
        let alu = match self.insts[inst_idx].rec.inst {
            Inst::Alu { kind, .. } => Some(kind),
            _ => None,
        };
        let uid = e.uid;
        let was_mispredicted = e.mispredicted_branch;
        let load_mode = e.load.as_ref().map(|ls| ls.mode);

        let (exec_total, extra) = match (&class, load_mode) {
            (InstClass::Load, Some(mode)) => match mode {
                LoadMode::Bypassed { .. } => (1, 0), // shift & mask uop
                _ => {
                    let addr = self.insts[inst_idx].rec.addr;
                    let lat = self.hierarchy.load_latency(addr);
                    self.stats.memory.ooo_dcache_reads += 1;
                    (1 + lat, 0)
                }
            },
            _ => (self.cfg.machine.exec_latency(class, alu), 0u64),
        };
        let complete = self.clock + rr + exec_total + extra;

        let e = self.rob.get_abs_mut(pos).expect("issued entry resident");
        e.issued = true;
        e.complete_cycle = complete;
        let map_node = e.map_node;
        let ssn = e.ssn;
        if let Some(node) = map_node {
            self.regs.set_ready(node, self.clock + exec_total);
            self.wake_node(node);
        }

        match class {
            InstClass::Branch if was_mispredicted && self.fetch_stalled_on == Some(uid) => {
                self.fetch_stalled_on = None;
                self.fetch_stall_until = complete;
            }
            InstClass::Branch => {}
            InstClass::Store => {
                // Baseline store execution: address generation + data
                // capture; the captured register pin is released.
                let pc = self.insts[inst_idx].rec.pc;
                if let Some(info) = self.srq.get_mut(ssn) {
                    info.exec_cycle = complete;
                }
                self.storesets.store_resolved(pc, ssn);
                let e = self.rob.get_abs_mut(pos).expect("store resident");
                if let Some(node) = e.store_data_ref.take() {
                    self.regs.release(node);
                }
            }
            InstClass::Load => self.execute_load(pos),
            _ => {}
        }
    }

    /// Computes a non-bypassed load's value from the commit-ordered
    /// memory image (stale if an in-flight store should have fed it), or
    /// forwards from the producing store in the baseline.
    fn execute_load(&mut self, pos: u64) {
        let e = self.rob.get_abs(pos).expect("load resident");
        let mode = e.load.as_ref().expect("load state").mode;
        if let LoadMode::Bypassed { .. } = mode {
            return; // value was computed at rename
        }
        let d = self.insts[e.inst];
        let (width, ext) = match d.rec.inst {
            Inst::Load { width, ext, .. } => (width, ext),
            _ => unreachable!("load entry"),
        };

        let mut exec_value =
            load_extend(self.timing_mem.read(d.rec.addr, width.bytes()), width, ext);
        let mut ssn_nvul = self.ssn.commit();
        if !self.cfg.lsu.is_nosq() {
            if let Some(dep_ssn) = d.dep_ssn().map(Ssn) {
                if dep_ssn > self.ssn.commit() {
                    if let Some(info) = self.srq.get(dep_ssn) {
                        let full = d.mem_dep.expect("dep").coverage == Coverage::Full;
                        if info.exec_cycle <= self.clock
                            && full
                            && self.regs.ready(info.dtag_node) <= self.clock
                        {
                            // Store-queue forwarding: correct by
                            // construction (address-checked).
                            exec_value = d.rec.load_value;
                            ssn_nvul = dep_ssn;
                            self.stats.memory.sq_forwards += 1;
                        }
                        // Otherwise: the load speculated past an
                        // unexecuted store; exec_value is stale and SVW
                        // re-execution will catch a real mismatch.
                    }
                }
            }
        }
        let e = self.rob.get_abs_mut(pos).expect("load resident");
        let ls = e.load.as_mut().expect("load state");
        ls.exec_value = exec_value;
        ls.ssn_nvul = ssn_nvul;
    }

    // ----------------------------------------------------------------
    // Dispatch (decode/rename).
    // ----------------------------------------------------------------

    fn dispatch_stage(&mut self) {
        if self.draining_for_wrap {
            return;
        }
        for _ in 0..self.cfg.machine.width {
            let Some(f) = self.fetch_buffer.front() else {
                break;
            };
            if f.fetch_cycle + self.cfg.machine.front_depth > self.clock {
                break;
            }
            if !self.dispatch_one() {
                break;
            }
        }
    }

    /// Renames and dispatches the oldest fetched instruction; returns
    /// `false` (leaving it in place) on a structural stall.
    fn dispatch_one(&mut self) -> bool {
        let m = &self.cfg.machine;
        let (rob_size, iq_size, lq_size, sq_size) = (m.rob_size, m.iq_size, m.lq_size, m.sq_size);
        if self.rob_occupancy() >= rob_size {
            return false;
        }
        let f = self.fetch_buffer.front().expect("caller checked");
        let inst_idx = f.inst;
        let path_snap = f.path_snap;
        let (class, needs_dest, is_jump) = {
            let d = &self.insts[inst_idx];
            (
                d.class,
                d.rec.inst.dest().is_some(),
                matches!(d.rec.inst, Inst::Jump { .. }),
            )
        };
        let is_nosq = self.cfg.lsu.is_nosq();

        // --- Resource checks (no mutation yet) ---
        let mut needs_iq = !matches!(class, InstClass::Halt) && !is_jump;
        let mut needs_lq = false;
        let mut needs_sq = false;
        let mut load_plan: Option<LoadPlan> = None;

        match class {
            InstClass::Store => {
                if is_nosq {
                    needs_iq = false;
                } else {
                    needs_sq = true;
                    if self.sq_used >= sq_size {
                        self.stats.stalls.sq_dispatch_stalls += 1;
                        return false;
                    }
                }
            }
            InstClass::Load => {
                if !is_nosq {
                    needs_lq = true;
                    if self.lq_used >= lq_size {
                        return false;
                    }
                } else {
                    // NoSQ decode-stage bypassing prediction.
                    let plan = self.plan_nosq_load(inst_idx, path_snap);
                    if matches!(plan.mode, LoadMode::Bypassed { partial: false }) {
                        needs_iq = false;
                    }
                    load_plan = Some(plan);
                }
            }
            _ => {}
        }

        if needs_iq && self.iq_count >= iq_size {
            self.stats.stalls.iq_dispatch_stalls += 1;
            return false;
        }
        let pure_bypass = matches!(
            load_plan,
            Some(LoadPlan {
                mode: LoadMode::Bypassed { partial: false },
                ..
            })
        );
        if needs_dest && !pure_bypass && !self.regs.can_alloc() {
            self.stats.stalls.reg_dispatch_stalls += 1;
            return false;
        }

        // --- Commit the dispatch ---
        let f = self.fetch_buffer.pop_front().expect("still present");
        let srcs = self.rename_sources(inst_idx, &load_plan);
        let mut entry = Entry {
            uid: f.uid,
            inst: inst_idx,
            class,
            path_snap: f.path_snap,
            bpred_snap: f.bpred_snap,
            ras_snap: f.ras_snap,
            map_reg: None,
            map_node: None,
            prev_node: None,
            srcs,
            issued: false,
            complete_cycle: if needs_iq { u64::MAX } else { self.clock },
            mispredicted_branch: f.mispredicted_branch,
            ssn: Ssn::NONE,
            load: None,
            holds_lq: needs_lq,
            holds_sq: needs_sq,
            store_data_ref: None,
        };
        if needs_lq {
            self.lq_used += 1;
        }
        if needs_sq {
            self.sq_used += 1;
        }

        match class {
            InstClass::Store => self.dispatch_store(&mut entry),
            InstClass::Load => self.dispatch_load(&mut entry, load_plan.take()),
            _ => {
                if let Some(rd) = self.insts[inst_idx].rec.inst.dest() {
                    let node = self.regs.alloc();
                    entry.prev_node = self.regs.remap(rd, Some(node));
                    entry.map_reg = Some(rd);
                    entry.map_node = Some(node);
                }
            }
        }
        let pos = self.rob.next_pos();
        if needs_iq {
            // Issue class: partial bypasses occupy a simple-int slot for
            // the injected shift & mask instruction.
            let issue_class = match (&class, &entry.load) {
                (
                    InstClass::Load,
                    Some(LoadState {
                        mode: LoadMode::Bypassed { .. },
                        ..
                    }),
                ) => InstClass::SimpleInt,
                (c, _) => *c,
            };
            self.iq_insert(pos, issue_class, entry.srcs);
        }
        self.rob.push_back(entry);
        true
    }

    fn rename_sources(&self, inst_idx: u32, load_plan: &Option<LoadPlan>) -> [Option<NodeId>; 2] {
        // A pure bypassed load has no out-of-order sources; a partial
        // bypass consumes only the store's data node (set later).
        if let Some(LoadPlan {
            mode: LoadMode::Bypassed { .. },
            ..
        }) = load_plan
        {
            return [None, None];
        }
        let mut srcs = [None, None];
        for (i, reg) in self.insts[inst_idx]
            .rec
            .inst
            .sources()
            .into_iter()
            .enumerate()
        {
            if let Some(r) = reg {
                srcs[i] = self.regs.mapping(r);
            }
        }
        srcs
    }

    fn dispatch_store(&mut self, entry: &mut Entry) {
        let (data_reg, width, float32, pc, addr, store_data, stores_before) = {
            let d = &self.insts[entry.inst];
            match d.rec.inst {
                Inst::Store {
                    data,
                    width,
                    float32,
                    ..
                } => (
                    data,
                    width,
                    float32,
                    d.rec.pc,
                    d.rec.addr,
                    d.rec.store_data,
                    d.stores_before,
                ),
                _ => unreachable!("store entry"),
            }
        };
        let ssn = self.ssn.next_rename();
        debug_assert_eq!(ssn.0, stores_before + 1, "ssn tracks the trace");
        entry.ssn = ssn;
        let dtag_node = self.regs.mapping(data_reg);
        if let Some(node) = dtag_node {
            self.regs.add_ref(node); // pinned until capture (baseline) or commit (NoSQ)
            entry.store_data_ref = Some(node);
        }
        self.srq.insert(StoreInfo {
            ssn,
            pc,
            addr,
            width: width.bytes() as u8,
            float32,
            data_value: store_data,
            dtag_node,
            exec_cycle: u64::MAX,
            commit_visible: u64::MAX,
        });
        if !self.cfg.lsu.is_nosq() {
            self.storesets.rename_store(pc, ssn);
        }
        // NoSQ: the store is complete at rename (Table 3: "nothing!").
        if self.cfg.lsu.is_nosq() {
            entry.complete_cycle = self.clock;
        }
    }

    /// Decode-stage classification of a NoSQ load (paper Table 3).
    fn plan_nosq_load(&mut self, inst_idx: u32, path_snap: u64) -> LoadPlan {
        let (pc, dinst, dep_ssn) = {
            let d = &self.insts[inst_idx];
            (d.rec.pc, d.rec.inst, d.dep_ssn())
        };
        if self.cfg.lsu == LsuModel::NosqOracle {
            // Perfect SMB: bypass exactly the loads with an in-flight
            // producing store, with idealized partial-word support.
            if let Some(dep_ssn) = dep_ssn.map(Ssn) {
                if dep_ssn > self.ssn.commit() {
                    return LoadPlan {
                        mode: LoadMode::Bypassed { partial: false },
                        pred: None,
                        ssn_byp: Some(dep_ssn),
                        injected: false,
                    };
                }
            }
            return LoadPlan::normal(None);
        }
        let delay_enabled = matches!(self.cfg.lsu, LsuModel::Nosq { delay: true });
        let mut history = PathHistory::new();
        history.restore(path_snap);
        let pred = self.predictor.predict(pc, &history);
        let Some(p) = pred else {
            return LoadPlan::normal(None);
        };
        let ssn_byp = Ssn(self.ssn.rename().0.saturating_sub(p.dist as u64));
        if ssn_byp <= self.ssn.commit() || ssn_byp == Ssn::NONE {
            // Predicted store already committed: non-bypassing.
            return LoadPlan::normal(pred);
        }
        if delay_enabled && !p.confident {
            return LoadPlan {
                mode: LoadMode::Delayed,
                pred,
                ssn_byp: Some(ssn_byp),
                injected: false,
            };
        }
        if self.srq.get(ssn_byp).is_none() {
            return LoadPlan::normal(pred);
        };
        let (lw, lext) = match dinst {
            Inst::Load { width, ext, .. } => (width, ext),
            _ => unreachable!("load"),
        };
        // Fault injection: every `period`-th bypassing load is pointed
        // at a neighboring in-flight store instead of the predicted one
        // and exempted from verification (see `FaultPlan`).
        let (ssn_byp, injected) = match self.cfg.faults.break_predictor {
            Some(period) => {
                self.fault_bypass_seen += 1;
                if self.fault_bypass_seen.is_multiple_of(period) {
                    match self.corrupt_bypass_target(ssn_byp) {
                        Some(bad) => (bad, true),
                        None => (ssn_byp, false),
                    }
                } else {
                    (ssn_byp, false)
                }
            }
            None => (ssn_byp, false),
        };
        let info = self.srq.get(ssn_byp).expect("bypass target in flight");
        let sw = match info.width {
            1 => MemWidth::B1,
            2 => MemWidth::B2,
            4 => MemWidth::B4,
            _ => MemWidth::B8,
        };
        let partial = needs_shift_mask(sw, info.float32, p.shift, lw, lext);
        LoadPlan {
            mode: LoadMode::Bypassed { partial },
            pred,
            ssn_byp: Some(ssn_byp),
            injected,
        }
    }

    /// Picks an in-flight store adjacent to the predicted bypass target,
    /// for fault injection. Returns `None` when the predicted store is
    /// the only eligible one (the victim is then left uncorrupted).
    fn corrupt_bypass_target(&self, predicted: Ssn) -> Option<Ssn> {
        [Ssn(predicted.0.wrapping_sub(1)), Ssn(predicted.0 + 1)]
            .into_iter()
            .find(|&candidate| {
                candidate != Ssn::NONE
                    && candidate > self.ssn.commit()
                    && candidate <= self.ssn.rename()
                    && self.srq.get(candidate).is_some()
            })
    }

    fn dispatch_load(&mut self, entry: &mut Entry, plan: Option<LoadPlan>) {
        let d = self.insts[entry.inst];
        let rd = d.rec.inst.dest();
        let mut ls = LoadState {
            mode: LoadMode::Normal,
            wait_exec: None,
            wait_commit: None,
            ssn_nvul: Ssn::NONE,
            ssn_byp: None,
            exec_value: 0,
            pred: None,
            oracle: false,
            injected: false,
        };

        match self.cfg.lsu {
            LsuModel::BaselineSq { scheduling } => {
                match scheduling {
                    Scheduling::Perfect => {
                        if let Some(dep_ssn) = d.dep_ssn().map(Ssn) {
                            if dep_ssn > self.ssn.commit() {
                                let coverage = d.mem_dep.expect("dep").coverage;
                                if coverage == Coverage::Full {
                                    ls.wait_exec = Some(dep_ssn);
                                } else {
                                    ls.wait_commit = Some(dep_ssn);
                                }
                            }
                        }
                    }
                    Scheduling::StoreSets => {
                        if let Some(ssn) = self.storesets.lookup_load(d.rec.pc) {
                            if ssn > self.ssn.commit() {
                                ls.wait_exec = Some(ssn);
                            }
                        }
                    }
                }
                let node = self.regs.alloc();
                entry.prev_node = self.regs.remap(rd.expect("load dest"), Some(node));
                entry.map_reg = rd;
                entry.map_node = Some(node);
            }
            LsuModel::Nosq { .. } | LsuModel::NosqOracle => {
                let LoadPlan {
                    mode,
                    pred,
                    ssn_byp,
                    injected,
                } = plan.expect("nosq load plan");
                ls.mode = mode;
                ls.pred = pred;
                ls.ssn_byp = ssn_byp;
                ls.oracle = self.cfg.lsu == LsuModel::NosqOracle;
                ls.injected = injected;
                match mode {
                    LoadMode::Bypassed { partial } => {
                        self.stats.memory.bypassed_loads += 1;
                        if !self.observers.is_empty() {
                            let ev = BypassEvent {
                                cycle: self.clock,
                                pc: d.rec.pc,
                                partial,
                                distance: ls.pred.map(|p| p.dist),
                            };
                            self.emit(|o| o.on_bypass(&ev));
                        }
                        let info = self.srq.get(ssn_byp.expect("bypass ssn")).copied();
                        let info = info.expect("bypassing store in flight");
                        ls.ssn_nvul = info.ssn;
                        ls.exec_value = if ls.oracle {
                            d.rec.load_value
                        } else {
                            let (lw, lext) = match d.rec.inst {
                                Inst::Load { width, ext, .. } => (width, ext),
                                _ => unreachable!("load"),
                            };
                            let sw = match info.width {
                                1 => MemWidth::B1,
                                2 => MemWidth::B2,
                                4 => MemWidth::B4,
                                _ => MemWidth::B8,
                            };
                            bypass_value(
                                info.data_value,
                                sw,
                                info.float32,
                                ls.pred.map(|p| p.shift).unwrap_or(0),
                                lw,
                                lext,
                            )
                        };
                        if partial && !ls.oracle {
                            // Injected shift & mask: new register, consumes
                            // the store's data node, 1-cycle ALU.
                            self.stats.memory.shift_mask_uops += 1;
                            let node = self.regs.alloc();
                            entry.prev_node = self.regs.remap(rd.expect("load dest"), Some(node));
                            entry.map_reg = rd;
                            entry.map_node = Some(node);
                            entry.srcs = [info.dtag_node, None];
                        } else {
                            // Pure short-circuit: share the DEF's register.
                            if let Some(node) = info.dtag_node {
                                self.regs.add_ref(node);
                            }
                            entry.prev_node =
                                self.regs.remap(rd.expect("load dest"), info.dtag_node);
                            entry.map_reg = rd;
                            entry.map_node = info.dtag_node;
                            entry.complete_cycle = self.clock;
                        }
                    }
                    LoadMode::Delayed => {
                        self.stats.memory.delayed_loads += 1;
                        ls.wait_commit = ssn_byp;
                        let node = self.regs.alloc();
                        entry.prev_node = self.regs.remap(rd.expect("load dest"), Some(node));
                        entry.map_reg = rd;
                        entry.map_node = Some(node);
                    }
                    LoadMode::Normal => {
                        let node = self.regs.alloc();
                        entry.prev_node = self.regs.remap(rd.expect("load dest"), Some(node));
                        entry.map_reg = rd;
                        entry.map_node = Some(node);
                    }
                }
            }
        }
        entry.load = Some(ls);
    }

    // ----------------------------------------------------------------
    // Fetch.
    // ----------------------------------------------------------------

    fn fetch_stage(&mut self) {
        if self.halt_fetched
            || self.fetch_stalled_on.is_some()
            || self.clock < self.fetch_stall_until
        {
            return;
        }
        let mut budget = self.cfg.machine.width;
        let mut branches = 0;
        while budget > 0 {
            let inst_idx = match self.pending.pop_front() {
                Some(i) => i,
                None => match self.stream.next_index(&mut self.insts) {
                    Some(i) => i,
                    None => {
                        self.stream_done = true;
                        break;
                    }
                },
            };
            budget -= 1;
            let uid = self.next_uid;
            self.next_uid += 1;
            let path_snap = self.path.snapshot();
            let bpred_snap = self.bpred.history();
            let ras_snap = self.ras.checkpoint();
            let mut mispredicted = false;

            let (pc, rinst, taken, next_pc) = {
                let d = &self.insts[inst_idx];
                (d.rec.pc, d.rec.inst, d.rec.taken, d.rec.next_pc)
            };
            match rinst {
                Inst::Branch { .. } => {
                    let pred_dir = self.bpred.predict(pc);
                    self.bpred.update(pc, taken);
                    self.path.push_branch(taken);
                    if taken {
                        self.btb.update(pc, next_pc);
                    }
                    mispredicted = pred_dir != taken;
                }
                Inst::Call { .. } => {
                    self.ras.push(pc + nosq_isa::INST_BYTES);
                    self.path.push_call(pc);
                    self.btb.update(pc, next_pc);
                }
                Inst::Ret { .. } => {
                    let predicted = self.ras.pop();
                    mispredicted = predicted != Some(next_pc);
                }
                Inst::Jump { .. } => {
                    self.btb.update(pc, next_pc);
                }
                Inst::Halt => {
                    self.halt_fetched = true;
                }
                _ => {}
            }

            if mispredicted {
                self.stats.frontend.branch_mispredicts += 1;
                self.fetch_stalled_on = Some(uid);
            }
            let is_control = rinst.is_control();
            self.fetch_buffer.push_back(Fetched {
                inst: inst_idx,
                uid,
                fetch_cycle: self.clock,
                path_snap,
                bpred_snap,
                ras_snap,
                mispredicted_branch: mispredicted,
            });
            if mispredicted || self.halt_fetched {
                break;
            }
            if is_control {
                branches += 1;
                if branches == 2 {
                    break; // two predicted control transfers per cycle max
                }
            }
        }
    }

    // ----------------------------------------------------------------
    // SSN wrap-around drain.
    // ----------------------------------------------------------------

    fn wrap_stage(&mut self) {
        if !self.draining_for_wrap {
            if self.ssn.wrap_pending() {
                self.draining_for_wrap = true;
            }
            return;
        }
        if self.rob.is_empty() && self.backend_exits.is_empty() {
            self.tssbf.clear();
            self.srq.clear();
            self.storesets.clear();
            self.ssn.acknowledge_wrap();
            self.draining_for_wrap = false;
            self.stats.verification.ssn_wrap_drains += 1;
        }
    }
}

/// Runs one simulation over `program` with `cfg` to completion and
/// returns the report — the classic one-shot entry point, now a thin
/// wrapper over the session API ([`Simulator::run`]).
///
/// For incremental execution, live statistics, or observer hooks, use
/// [`Simulator`] directly; for allocation-free back-to-back runs, see
/// [`Simulator::with_arena`].
///
/// ```
/// use nosq_isa::{Assembler, Reg, MemWidth, Extension};
/// use nosq_core::{simulate, SimConfig};
///
/// let mut asm = Assembler::new();
/// let (b, v) = (Reg::int(1), Reg::int(2));
/// asm.li(b, 0x1000);
/// asm.li(v, 7);
/// asm.store(v, b, 0, MemWidth::B8);
/// asm.load(v, b, 0, MemWidth::B8, Extension::Zero);
/// asm.halt();
/// let prog = asm.finish();
///
/// let report = simulate(&prog, SimConfig::nosq(100));
/// assert_eq!(report.memory.loads, 1);
/// assert_eq!(report.memory.stores, 1);
/// ```
pub fn simulate(program: &Program, cfg: SimConfig) -> SimReport {
    Simulator::new(program, cfg).run()
}
