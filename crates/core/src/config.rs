//! Simulation configuration: machine + load/store-unit model.

use nosq_uarch::MachineConfig;

use crate::predictor::PredictorConfig;

/// Why a [`SimConfigBuilder::try_build`] rejected a configuration.
///
/// The simulator's structures index with power-of-two set counts and
/// treat zero-sized resources as deadlock, so a degenerate machine
/// either panics deep inside the pipeline or silently models different
/// hardware than requested. `try_build` surfaces both classes up front.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A machine resource that must be non-zero is zero.
    ZeroResource(&'static str),
    /// A set-associative table's geometry is inconsistent (`ways == 0`,
    /// `ways > entries`, or `entries` not divisible by `ways`).
    TableGeometry {
        /// Which table.
        table: &'static str,
        /// Configured total entries.
        entries: usize,
        /// Configured associativity.
        ways: usize,
    },
    /// A set-associative table's set count is not a power of two. The
    /// indexing functions mask/round to powers of two, so a
    /// non-power-of-two request silently models a larger table.
    NonPowerOfTwoSets {
        /// Which table.
        table: &'static str,
        /// The implied (non-power-of-two) set count.
        sets: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroResource(what) => {
                write!(f, "machine resource `{what}` must be non-zero")
            }
            ConfigError::TableGeometry {
                table,
                entries,
                ways,
            } => write!(
                f,
                "{table}: invalid geometry ({entries} entries, {ways} ways); \
                 ways must be in 1..=entries and divide entries evenly"
            ),
            ConfigError::NonPowerOfTwoSets { table, sets } => write!(
                f,
                "{table}: {sets} sets is not a power of two; indexing assumes \
                 power-of-two set counts, so the modelled capacity would differ \
                 from the requested one"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Checks one set-associative table's geometry: consistent ways and a
/// power-of-two set count (the indexing assumption shared by the
/// bypassing predictor, BTB, and DTLB).
fn check_table(table: &'static str, entries: usize, ways: usize) -> Result<(), ConfigError> {
    if entries == 0 {
        return Err(ConfigError::ZeroResource(table));
    }
    if ways == 0 || ways > entries || !entries.is_multiple_of(ways) {
        return Err(ConfigError::TableGeometry {
            table,
            entries,
            ways,
        });
    }
    let sets = entries / ways;
    if !sets.is_power_of_two() {
        return Err(ConfigError::NonPowerOfTwoSets { table, sets });
    }
    Ok(())
}

/// Baseline load-scheduling policy (paper §4.3).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Scheduling {
    /// Oracle scheduling: loads wait exactly as long as needed, never
    /// squash (the Figure 2 normalization baseline).
    Perfect,
    /// Realistic StoreSets-based scheduling.
    StoreSets,
}

/// Which load/store unit the pipeline models.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LsuModel {
    /// Conventional associative store queue with SVW-filtered
    /// re-execution (the paper's baseline).
    BaselineSq {
        /// Load-scheduling policy.
        scheduling: Scheduling,
    },
    /// NoSQ: exclusive speculative memory bypassing, no store queue,
    /// stores execute in the commit pipeline.
    Nosq {
        /// Enable the confidence-based delay mechanism (paper §3.3).
        delay: bool,
    },
    /// NoSQ with a perfect bypassing predictor and idealized partial-word
    /// support (Figure 2's fourth bar).
    NosqOracle,
}

impl LsuModel {
    /// Whether this is a NoSQ variant (no store queue).
    pub fn is_nosq(&self) -> bool {
        !matches!(self, LsuModel::BaselineSq { .. })
    }

    /// Back-end commit-pipeline depth in stages: the baseline's 6 (setup,
    /// SVW, 3× data cache, commit) vs NoSQ's 8 (setup, 2× register read,
    /// agen/SVW, 3× data cache, commit) — paper §4.1.
    pub fn backend_depth(&self) -> u64 {
        if self.is_nosq() {
            8
        } else {
            6
        }
    }
}

/// Deliberate hardware-bug injection, used by `nosq audit
/// --break-predictor` to prove the dependence-oracle auditor catches
/// real violations.
///
/// A corrupted bypass alone is *not* observable at commit: value-based
/// verification squashes every wrong-value bypass, so the architectural
/// stream stays correct. The injected fault therefore models a
/// predictor bug *and* a complicit SVW filter: the victim load bypasses
/// from the wrong in-flight store and is exempted from verification, so
/// a genuinely wrong value commits — exactly the class of silent
/// failure the auditor exists to detect.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Corrupt every `period`-th bypassing load (1-based count over
    /// loads that dispatch in bypassing mode). `None` disables
    /// injection. Only NoSQ predictor-driven runs ([`LsuModel::Nosq`])
    /// are affected; loads with no alternative in-flight store to
    /// bypass from are skipped.
    pub break_predictor: Option<u64>,
}

impl FaultPlan {
    /// Whether any fault is enabled.
    pub fn is_active(&self) -> bool {
        self.break_predictor.is_some()
    }
}

/// Complete configuration for one simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Machine parameters (§4.1).
    pub machine: MachineConfig,
    /// Load/store-unit model.
    pub lsu: LsuModel,
    /// Bypassing-predictor sizing (NoSQ variants).
    pub predictor: PredictorConfig,
    /// Dynamic-instruction budget.
    pub max_insts: u64,
    /// Fault injection for auditor validation (defaults to none).
    pub faults: FaultPlan,
}

impl SimConfig {
    fn base(lsu: LsuModel, max_insts: u64) -> SimConfig {
        SimConfig {
            machine: MachineConfig::paper_default(),
            lsu,
            predictor: PredictorConfig::paper_default(),
            max_insts,
            faults: FaultPlan::default(),
        }
    }

    /// Starts a fluent [`SimConfigBuilder`] from the paper's defaults
    /// (headline NoSQ-with-delay on the 128-entry-window machine).
    ///
    /// ```
    /// use nosq_core::{LsuModel, SimConfig};
    ///
    /// let cfg = SimConfig::builder()
    ///     .lsu(LsuModel::Nosq { delay: false })
    ///     .window256()
    ///     .max_insts(50_000)
    ///     .build();
    /// assert_eq!(cfg.machine.rob_size, 256);
    /// ```
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            cfg: SimConfig::base(LsuModel::Nosq { delay: true }, 150_000),
        }
    }

    /// Reopens this configuration as a builder, for deriving variants
    /// from a preset (`SimConfig::nosq(n).into_builder().window256()...`).
    pub fn into_builder(self) -> SimConfigBuilder {
        SimConfigBuilder { cfg: self }
    }

    /// The idealized baseline: associative SQ + perfect scheduling (the
    /// denominator of every relative-execution-time figure).
    pub fn baseline_perfect(max_insts: u64) -> SimConfig {
        SimConfig::base(
            LsuModel::BaselineSq {
                scheduling: Scheduling::Perfect,
            },
            max_insts,
        )
    }

    /// The realistic baseline: associative SQ + StoreSets scheduling.
    pub fn baseline_storesets(max_insts: u64) -> SimConfig {
        SimConfig::base(
            LsuModel::BaselineSq {
                scheduling: Scheduling::StoreSets,
            },
            max_insts,
        )
    }

    /// NoSQ without delay (Figure 2's second bar).
    pub fn nosq_no_delay(max_insts: u64) -> SimConfig {
        SimConfig::base(LsuModel::Nosq { delay: false }, max_insts)
    }

    /// NoSQ with delay (Figure 2's third bar — the headline design).
    pub fn nosq(max_insts: u64) -> SimConfig {
        SimConfig::base(LsuModel::Nosq { delay: true }, max_insts)
    }

    /// Perfect SMB (Figure 2's fourth bar).
    pub fn perfect_smb(max_insts: u64) -> SimConfig {
        SimConfig::base(LsuModel::NosqOracle, max_insts)
    }

    /// Scales the machine to the 256-entry window of §4.4 (NoSQ's
    /// bypassing predictor is intentionally *not* enlarged).
    pub fn with_window256(self) -> SimConfig {
        self.into_builder().window256().build()
    }

    /// Validates this configuration against the simulator's structural
    /// assumptions; see [`ConfigError`] for what is rejected. The paper
    /// presets always validate.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let m = &self.machine;
        for (what, value) in [
            ("max_insts", self.max_insts as usize),
            ("width", m.width),
            ("rob_size", m.rob_size),
            ("iq_size", m.iq_size),
            ("lq_size", m.lq_size),
            ("phys_regs", m.phys_regs),
            ("ssn_bits", m.ssn_bits as usize),
        ] {
            if value == 0 {
                return Err(ConfigError::ZeroResource(what));
            }
        }
        if matches!(self.lsu, LsuModel::BaselineSq { .. }) && m.sq_size == 0 {
            return Err(ConfigError::ZeroResource("sq_size"));
        }
        check_table("btb", m.btb_entries, m.btb_ways)?;
        check_table("dtlb", m.dtlb_entries, m.dtlb_ways)?;
        let p = &self.predictor;
        if self.lsu.is_nosq() && !p.unbounded {
            check_table("bypassing predictor", p.entries_per_table, p.ways)?;
        }
        if self.faults.break_predictor == Some(0) {
            return Err(ConfigError::ZeroResource("faults.break_predictor"));
        }
        Ok(())
    }
}

/// Fluent builder for [`SimConfig`], replacing ad-hoc preset mutation.
///
/// Obtained from [`SimConfig::builder`] (paper defaults) or
/// [`SimConfig::into_builder`] (derive from a preset). Every setter
/// consumes and returns the builder; [`build`](Self::build) yields the
/// finished configuration. The five paper presets remain available as
/// named constructors ([`SimConfig::baseline_perfect`],
/// [`SimConfig::baseline_storesets`], [`SimConfig::nosq_no_delay`],
/// [`SimConfig::nosq`], [`SimConfig::perfect_smb`]).
#[derive(Clone, Debug)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    /// Sets the machine parameters wholesale.
    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.cfg.machine = machine;
        self
    }

    /// Selects the load/store-unit model.
    pub fn lsu(mut self, lsu: LsuModel) -> Self {
        self.cfg.lsu = lsu;
        self
    }

    /// Sets the bypassing-predictor sizing (NoSQ variants).
    pub fn predictor(mut self, predictor: PredictorConfig) -> Self {
        self.cfg.predictor = predictor;
        self
    }

    /// Sets the dynamic-instruction budget.
    pub fn max_insts(mut self, max_insts: u64) -> Self {
        self.cfg.max_insts = max_insts;
        self
    }

    /// Sets the fault-injection plan (auditor validation only; defaults
    /// to no faults).
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.cfg.faults = faults;
        self
    }

    /// Selects the paper's default 128-entry-window machine (§4.1).
    pub fn window128(self) -> Self {
        self.machine(MachineConfig::paper_default())
    }

    /// Selects the 256-entry-window machine of §4.4: window resources
    /// doubled, branch predictor quadrupled — the bypassing predictor
    /// is intentionally *not* enlarged.
    pub fn window256(self) -> Self {
        self.machine(MachineConfig::paper_window256())
    }

    /// Finishes the configuration, validating it first.
    ///
    /// Rejects degenerate machines — zero-sized window resources or
    /// instruction budget, zero-entry predictor tables, and
    /// non-power-of-two set counts where the indexing assumes powers of
    /// two; see [`ConfigError`].
    pub fn try_build(self) -> Result<SimConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }

    /// Finishes the configuration.
    ///
    /// Forwards to [`try_build`](Self::try_build) and panics on a
    /// validation error; use `try_build` to handle invalid
    /// configurations gracefully.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    pub fn build(self) -> SimConfig {
        match self.try_build() {
            Ok(cfg) => cfg,
            Err(e) => panic!("invalid SimConfig: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_depths_match_paper() {
        assert_eq!(
            LsuModel::BaselineSq {
                scheduling: Scheduling::Perfect
            }
            .backend_depth(),
            6
        );
        assert_eq!(LsuModel::Nosq { delay: true }.backend_depth(), 8);
        assert_eq!(LsuModel::NosqOracle.backend_depth(), 8);
    }

    #[test]
    fn constructors_select_models() {
        assert!(!SimConfig::baseline_storesets(1).lsu.is_nosq());
        assert!(SimConfig::nosq(1).lsu.is_nosq());
        assert!(SimConfig::perfect_smb(1).lsu.is_nosq());
        let big = SimConfig::nosq(1).with_window256();
        assert_eq!(big.machine.rob_size, 256);
        assert_eq!(
            big.predictor.entries_per_table,
            PredictorConfig::paper_default().entries_per_table,
            "bypassing predictor must not scale with the window"
        );
    }

    #[test]
    fn builder_defaults_match_the_headline_preset() {
        let built = SimConfig::builder().max_insts(5_000).build();
        assert_eq!(built.lsu, LsuModel::Nosq { delay: true });
        assert_eq!(
            built.machine.rob_size,
            SimConfig::nosq(5_000).machine.rob_size
        );
        assert_eq!(built.max_insts, 5_000);
    }

    #[test]
    fn builder_roundtrips_presets() {
        let direct = SimConfig::baseline_storesets(9_000).with_window256();
        let built = SimConfig::baseline_storesets(9_000)
            .into_builder()
            .window256()
            .build();
        assert_eq!(direct.lsu, built.lsu);
        assert_eq!(direct.machine.rob_size, built.machine.rob_size);
        assert_eq!(direct.max_insts, built.max_insts);
    }

    #[test]
    fn builder_window_toggles_are_inverse() {
        let cfg = SimConfig::builder().window256().window128().build();
        assert_eq!(cfg.machine.rob_size, SimConfig::nosq(1).machine.rob_size);
    }

    #[test]
    fn paper_presets_validate() {
        for cfg in [
            SimConfig::baseline_perfect(1),
            SimConfig::baseline_storesets(1),
            SimConfig::nosq_no_delay(1),
            SimConfig::nosq(1),
            SimConfig::perfect_smb(1),
            SimConfig::nosq(1).with_window256(),
        ] {
            assert_eq!(cfg.validate(), Ok(()));
        }
    }

    #[test]
    fn try_build_rejects_zero_resources() {
        let mut machine = MachineConfig::paper_default();
        machine.rob_size = 0;
        let err = SimConfig::builder().machine(machine).try_build().err();
        assert_eq!(err, Some(ConfigError::ZeroResource("rob_size")));
        let err = SimConfig::builder().max_insts(0).try_build().err();
        assert_eq!(err, Some(ConfigError::ZeroResource("max_insts")));
    }

    #[test]
    fn try_build_rejects_degenerate_predictors() {
        let zero = PredictorConfig {
            entries_per_table: 0,
            ..PredictorConfig::paper_default()
        };
        assert_eq!(
            SimConfig::builder().predictor(zero).try_build().err(),
            Some(ConfigError::ZeroResource("bypassing predictor"))
        );
        let lopsided = PredictorConfig {
            entries_per_table: 1000, // 250 sets: not a power of two
            ..PredictorConfig::paper_default()
        };
        assert_eq!(
            SimConfig::builder().predictor(lopsided).try_build().err(),
            Some(ConfigError::NonPowerOfTwoSets {
                table: "bypassing predictor",
                sets: 250
            })
        );
        let no_ways = PredictorConfig {
            ways: 0,
            ..PredictorConfig::paper_default()
        };
        assert!(matches!(
            SimConfig::builder().predictor(no_ways).try_build(),
            Err(ConfigError::TableGeometry { .. })
        ));
        // The unbounded predictor ignores capacity, and the baseline SQ
        // models never consult the predictor tables at all.
        let unbounded = PredictorConfig {
            entries_per_table: 0,
            unbounded: true,
            ..PredictorConfig::paper_default()
        };
        assert!(SimConfig::builder()
            .predictor(unbounded)
            .try_build()
            .is_ok());
        assert!(SimConfig::baseline_storesets(1)
            .into_builder()
            .predictor(zero)
            .try_build()
            .is_ok());
    }

    #[test]
    fn build_panics_on_invalid_config() {
        let r = std::panic::catch_unwind(|| SimConfig::builder().max_insts(0).build());
        assert!(r.is_err(), "build() must forward try_build's rejection");
    }

    #[test]
    fn config_errors_render() {
        let msgs = [
            ConfigError::ZeroResource("rob_size").to_string(),
            ConfigError::TableGeometry {
                table: "btb",
                entries: 7,
                ways: 3,
            }
            .to_string(),
            ConfigError::NonPowerOfTwoSets {
                table: "dtlb",
                sets: 12,
            }
            .to_string(),
        ];
        assert!(msgs[0].contains("rob_size"));
        assert!(msgs[1].contains("btb") && msgs[1].contains("7"));
        assert!(msgs[2].contains("power of two"));
    }
}
