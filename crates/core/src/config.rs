//! Simulation configuration: machine + load/store-unit model.

use nosq_uarch::MachineConfig;

use crate::predictor::PredictorConfig;

/// Baseline load-scheduling policy (paper §4.3).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Scheduling {
    /// Oracle scheduling: loads wait exactly as long as needed, never
    /// squash (the Figure 2 normalization baseline).
    Perfect,
    /// Realistic StoreSets-based scheduling.
    StoreSets,
}

/// Which load/store unit the pipeline models.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LsuModel {
    /// Conventional associative store queue with SVW-filtered
    /// re-execution (the paper's baseline).
    BaselineSq {
        /// Load-scheduling policy.
        scheduling: Scheduling,
    },
    /// NoSQ: exclusive speculative memory bypassing, no store queue,
    /// stores execute in the commit pipeline.
    Nosq {
        /// Enable the confidence-based delay mechanism (paper §3.3).
        delay: bool,
    },
    /// NoSQ with a perfect bypassing predictor and idealized partial-word
    /// support (Figure 2's fourth bar).
    NosqOracle,
}

impl LsuModel {
    /// Whether this is a NoSQ variant (no store queue).
    pub fn is_nosq(&self) -> bool {
        !matches!(self, LsuModel::BaselineSq { .. })
    }

    /// Back-end commit-pipeline depth in stages: the baseline's 6 (setup,
    /// SVW, 3× data cache, commit) vs NoSQ's 8 (setup, 2× register read,
    /// agen/SVW, 3× data cache, commit) — paper §4.1.
    pub fn backend_depth(&self) -> u64 {
        if self.is_nosq() {
            8
        } else {
            6
        }
    }
}

/// Complete configuration for one simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Machine parameters (§4.1).
    pub machine: MachineConfig,
    /// Load/store-unit model.
    pub lsu: LsuModel,
    /// Bypassing-predictor sizing (NoSQ variants).
    pub predictor: PredictorConfig,
    /// Dynamic-instruction budget.
    pub max_insts: u64,
}

impl SimConfig {
    fn base(lsu: LsuModel, max_insts: u64) -> SimConfig {
        SimConfig {
            machine: MachineConfig::paper_default(),
            lsu,
            predictor: PredictorConfig::paper_default(),
            max_insts,
        }
    }

    /// Starts a fluent [`SimConfigBuilder`] from the paper's defaults
    /// (headline NoSQ-with-delay on the 128-entry-window machine).
    ///
    /// ```
    /// use nosq_core::{LsuModel, SimConfig};
    ///
    /// let cfg = SimConfig::builder()
    ///     .lsu(LsuModel::Nosq { delay: false })
    ///     .window256()
    ///     .max_insts(50_000)
    ///     .build();
    /// assert_eq!(cfg.machine.rob_size, 256);
    /// ```
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            cfg: SimConfig::base(LsuModel::Nosq { delay: true }, 150_000),
        }
    }

    /// Reopens this configuration as a builder, for deriving variants
    /// from a preset (`SimConfig::nosq(n).into_builder().window256()...`).
    pub fn into_builder(self) -> SimConfigBuilder {
        SimConfigBuilder { cfg: self }
    }

    /// The idealized baseline: associative SQ + perfect scheduling (the
    /// denominator of every relative-execution-time figure).
    pub fn baseline_perfect(max_insts: u64) -> SimConfig {
        SimConfig::base(
            LsuModel::BaselineSq {
                scheduling: Scheduling::Perfect,
            },
            max_insts,
        )
    }

    /// The realistic baseline: associative SQ + StoreSets scheduling.
    pub fn baseline_storesets(max_insts: u64) -> SimConfig {
        SimConfig::base(
            LsuModel::BaselineSq {
                scheduling: Scheduling::StoreSets,
            },
            max_insts,
        )
    }

    /// NoSQ without delay (Figure 2's second bar).
    pub fn nosq_no_delay(max_insts: u64) -> SimConfig {
        SimConfig::base(LsuModel::Nosq { delay: false }, max_insts)
    }

    /// NoSQ with delay (Figure 2's third bar — the headline design).
    pub fn nosq(max_insts: u64) -> SimConfig {
        SimConfig::base(LsuModel::Nosq { delay: true }, max_insts)
    }

    /// Perfect SMB (Figure 2's fourth bar).
    pub fn perfect_smb(max_insts: u64) -> SimConfig {
        SimConfig::base(LsuModel::NosqOracle, max_insts)
    }

    /// Scales the machine to the 256-entry window of §4.4 (NoSQ's
    /// bypassing predictor is intentionally *not* enlarged).
    pub fn with_window256(self) -> SimConfig {
        self.into_builder().window256().build()
    }
}

/// Fluent builder for [`SimConfig`], replacing ad-hoc preset mutation.
///
/// Obtained from [`SimConfig::builder`] (paper defaults) or
/// [`SimConfig::into_builder`] (derive from a preset). Every setter
/// consumes and returns the builder; [`build`](Self::build) yields the
/// finished configuration. The five paper presets remain available as
/// named constructors ([`SimConfig::baseline_perfect`],
/// [`SimConfig::baseline_storesets`], [`SimConfig::nosq_no_delay`],
/// [`SimConfig::nosq`], [`SimConfig::perfect_smb`]).
#[derive(Clone, Debug)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    /// Sets the machine parameters wholesale.
    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.cfg.machine = machine;
        self
    }

    /// Selects the load/store-unit model.
    pub fn lsu(mut self, lsu: LsuModel) -> Self {
        self.cfg.lsu = lsu;
        self
    }

    /// Sets the bypassing-predictor sizing (NoSQ variants).
    pub fn predictor(mut self, predictor: PredictorConfig) -> Self {
        self.cfg.predictor = predictor;
        self
    }

    /// Sets the dynamic-instruction budget.
    pub fn max_insts(mut self, max_insts: u64) -> Self {
        self.cfg.max_insts = max_insts;
        self
    }

    /// Selects the paper's default 128-entry-window machine (§4.1).
    pub fn window128(self) -> Self {
        self.machine(MachineConfig::paper_default())
    }

    /// Selects the 256-entry-window machine of §4.4: window resources
    /// doubled, branch predictor quadrupled — the bypassing predictor
    /// is intentionally *not* enlarged.
    pub fn window256(self) -> Self {
        self.machine(MachineConfig::paper_window256())
    }

    /// Finishes the configuration.
    pub fn build(self) -> SimConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_depths_match_paper() {
        assert_eq!(
            LsuModel::BaselineSq {
                scheduling: Scheduling::Perfect
            }
            .backend_depth(),
            6
        );
        assert_eq!(LsuModel::Nosq { delay: true }.backend_depth(), 8);
        assert_eq!(LsuModel::NosqOracle.backend_depth(), 8);
    }

    #[test]
    fn constructors_select_models() {
        assert!(!SimConfig::baseline_storesets(1).lsu.is_nosq());
        assert!(SimConfig::nosq(1).lsu.is_nosq());
        assert!(SimConfig::perfect_smb(1).lsu.is_nosq());
        let big = SimConfig::nosq(1).with_window256();
        assert_eq!(big.machine.rob_size, 256);
        assert_eq!(
            big.predictor.entries_per_table,
            PredictorConfig::paper_default().entries_per_table,
            "bypassing predictor must not scale with the window"
        );
    }

    #[test]
    fn builder_defaults_match_the_headline_preset() {
        let built = SimConfig::builder().max_insts(5_000).build();
        assert_eq!(built.lsu, LsuModel::Nosq { delay: true });
        assert_eq!(
            built.machine.rob_size,
            SimConfig::nosq(5_000).machine.rob_size
        );
        assert_eq!(built.max_insts, 5_000);
    }

    #[test]
    fn builder_roundtrips_presets() {
        let direct = SimConfig::baseline_storesets(9_000).with_window256();
        let built = SimConfig::baseline_storesets(9_000)
            .into_builder()
            .window256()
            .build();
        assert_eq!(direct.lsu, built.lsu);
        assert_eq!(direct.machine.rob_size, built.machine.rob_size);
        assert_eq!(direct.max_insts, built.max_insts);
    }

    #[test]
    fn builder_window_toggles_are_inverse() {
        let cfg = SimConfig::builder().window256().window128().build();
        assert_eq!(cfg.machine.rob_size, SimConfig::nosq(1).machine.rob_size);
    }
}
