//! Simulation configuration: machine + load/store-unit model.

use nosq_uarch::MachineConfig;

use crate::predictor::PredictorConfig;

/// Baseline load-scheduling policy (paper §4.3).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Scheduling {
    /// Oracle scheduling: loads wait exactly as long as needed, never
    /// squash (the Figure 2 normalization baseline).
    Perfect,
    /// Realistic StoreSets-based scheduling.
    StoreSets,
}

/// Which load/store unit the pipeline models.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LsuModel {
    /// Conventional associative store queue with SVW-filtered
    /// re-execution (the paper's baseline).
    BaselineSq {
        /// Load-scheduling policy.
        scheduling: Scheduling,
    },
    /// NoSQ: exclusive speculative memory bypassing, no store queue,
    /// stores execute in the commit pipeline.
    Nosq {
        /// Enable the confidence-based delay mechanism (paper §3.3).
        delay: bool,
    },
    /// NoSQ with a perfect bypassing predictor and idealized partial-word
    /// support (Figure 2's fourth bar).
    NosqOracle,
}

impl LsuModel {
    /// Whether this is a NoSQ variant (no store queue).
    pub fn is_nosq(&self) -> bool {
        !matches!(self, LsuModel::BaselineSq { .. })
    }

    /// Back-end commit-pipeline depth in stages: the baseline's 6 (setup,
    /// SVW, 3× data cache, commit) vs NoSQ's 8 (setup, 2× register read,
    /// agen/SVW, 3× data cache, commit) — paper §4.1.
    pub fn backend_depth(&self) -> u64 {
        if self.is_nosq() {
            8
        } else {
            6
        }
    }
}

/// Complete configuration for one simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Machine parameters (§4.1).
    pub machine: MachineConfig,
    /// Load/store-unit model.
    pub lsu: LsuModel,
    /// Bypassing-predictor sizing (NoSQ variants).
    pub predictor: PredictorConfig,
    /// Dynamic-instruction budget.
    pub max_insts: u64,
}

impl SimConfig {
    fn base(lsu: LsuModel, max_insts: u64) -> SimConfig {
        SimConfig {
            machine: MachineConfig::paper_default(),
            lsu,
            predictor: PredictorConfig::paper_default(),
            max_insts,
        }
    }

    /// The idealized baseline: associative SQ + perfect scheduling (the
    /// denominator of every relative-execution-time figure).
    pub fn baseline_perfect(max_insts: u64) -> SimConfig {
        SimConfig::base(
            LsuModel::BaselineSq {
                scheduling: Scheduling::Perfect,
            },
            max_insts,
        )
    }

    /// The realistic baseline: associative SQ + StoreSets scheduling.
    pub fn baseline_storesets(max_insts: u64) -> SimConfig {
        SimConfig::base(
            LsuModel::BaselineSq {
                scheduling: Scheduling::StoreSets,
            },
            max_insts,
        )
    }

    /// NoSQ without delay (Figure 2's second bar).
    pub fn nosq_no_delay(max_insts: u64) -> SimConfig {
        SimConfig::base(LsuModel::Nosq { delay: false }, max_insts)
    }

    /// NoSQ with delay (Figure 2's third bar — the headline design).
    pub fn nosq(max_insts: u64) -> SimConfig {
        SimConfig::base(LsuModel::Nosq { delay: true }, max_insts)
    }

    /// Perfect SMB (Figure 2's fourth bar).
    pub fn perfect_smb(max_insts: u64) -> SimConfig {
        SimConfig::base(LsuModel::NosqOracle, max_insts)
    }

    /// Scales the machine to the 256-entry window of §4.4 (NoSQ's
    /// bypassing predictor is intentionally *not* enlarged).
    pub fn with_window256(mut self) -> SimConfig {
        self.machine = MachineConfig::paper_window256();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_depths_match_paper() {
        assert_eq!(
            LsuModel::BaselineSq {
                scheduling: Scheduling::Perfect
            }
            .backend_depth(),
            6
        );
        assert_eq!(LsuModel::Nosq { delay: true }.backend_depth(), 8);
        assert_eq!(LsuModel::NosqOracle.backend_depth(), 8);
    }

    #[test]
    fn constructors_select_models() {
        assert!(!SimConfig::baseline_storesets(1).lsu.is_nosq());
        assert!(SimConfig::nosq(1).lsu.is_nosq());
        assert!(SimConfig::perfect_smb(1).lsu.is_nosq());
        let big = SimConfig::nosq(1).with_window256();
        assert_eq!(big.machine.rob_size, 256);
        assert_eq!(
            big.predictor.entries_per_table,
            PredictorConfig::paper_default().entries_per_table,
            "bypassing predictor must not scale with the window"
        );
    }
}
