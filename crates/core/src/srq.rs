//! The store register queue (SRQ) and the store-information ring.
//!
//! The paper's SRQ "parallels a traditional store queue in structure, but
//! unlike a traditional store queue is not a datapath element. It
//! contains only physical register numbers (not addresses and values) and
//! it is accessed only at rename" (§3.2). The simulator additionally uses
//! the same ring to remember recently renamed/committed stores' PCs,
//! addresses and data (which hardware holds in the ROB fields of Table 4
//! and in the register file), indexed by the low-order bits of the SSN.

use nosq_uarch::Ssn;

use crate::pipeline::nodes::NodeId;

/// Per-store record, inserted at rename.
#[derive(Copy, Clone, Debug)]
pub struct StoreInfo {
    /// The store's SSN.
    pub ssn: Ssn,
    /// Static PC (StoreSets training).
    pub pc: u64,
    /// Effective address.
    pub addr: u64,
    /// Access width in bytes.
    pub width: u8,
    /// Whether this is an `sts` (float32 conversion on the memory side).
    pub float32: bool,
    /// The data register's value (what SMB's short-circuited register
    /// carries).
    pub data_value: u64,
    /// The data register's value node at the store's rename (`None` =
    /// architectural, already ready).
    pub dtag_node: Option<NodeId>,
    /// Cycle the store's address generation completed (baseline;
    /// `u64::MAX` until executed).
    pub exec_cycle: u64,
    /// Cycle the store's committed value is visible in the data cache
    /// (`u64::MAX` until committed).
    pub commit_visible: u64,
}

/// SSN-indexed ring of store records.
///
/// Capacity must exceed the maximum in-flight store count plus the
/// longest distance the commit stage may look back (for training); the
/// ring overwrites on wrap, and lookups validate the stored SSN.
#[derive(Clone, Debug)]
pub struct StoreRegisterQueue {
    ring: Vec<Option<StoreInfo>>,
}

impl Default for StoreRegisterQueue {
    /// An empty placeholder ring (no slots). Only useful as a
    /// `mem::take` stand-in; every lookup method expects a ring built
    /// by [`StoreRegisterQueue::new`] / [`with_storage`](Self::with_storage).
    fn default() -> StoreRegisterQueue {
        StoreRegisterQueue { ring: Vec::new() }
    }
}

impl StoreRegisterQueue {
    /// Creates a ring with `capacity` slots (rounded up to a power of
    /// two).
    pub fn new(capacity: usize) -> StoreRegisterQueue {
        StoreRegisterQueue::with_storage(Vec::new(), capacity)
    }

    /// Creates a ring reusing `storage`'s allocation (cleared and
    /// resized to `capacity` rounded up to a power of two) — the
    /// arena-recycling constructor.
    pub fn with_storage(
        mut storage: Vec<Option<StoreInfo>>,
        capacity: usize,
    ) -> StoreRegisterQueue {
        let cap = capacity.next_power_of_two().max(2);
        storage.clear();
        storage.resize(cap, None);
        StoreRegisterQueue { ring: storage }
    }

    /// Extracts the backing storage for reuse by a later queue.
    pub fn into_storage(self) -> Vec<Option<StoreInfo>> {
        self.ring
    }

    fn slot(&self, ssn: Ssn) -> usize {
        (ssn.0 as usize) & (self.ring.len() - 1)
    }

    /// Inserts a record at rename (overwrites the slot's previous, much
    /// older occupant).
    pub fn insert(&mut self, info: StoreInfo) {
        let i = self.slot(info.ssn);
        // Rename allocates SSNs monotonically and squashes invalidate
        // their stores' slots, so an occupied slot can only hold a
        // strictly older store (one full ring-wrap behind).
        debug_assert!(
            self.ring[i].is_none_or(|old| old.ssn < info.ssn),
            "SRQ insert out of order: slot {i} holds {:?}, inserting {:?}",
            self.ring[i].map(|old| old.ssn),
            info.ssn
        );
        self.ring[i] = Some(info);
    }

    /// Looks up the record for `ssn`, if still resident.
    pub fn get(&self, ssn: Ssn) -> Option<&StoreInfo> {
        self.ring[self.slot(ssn)]
            .as_ref()
            .filter(|info| info.ssn == ssn)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, ssn: Ssn) -> Option<&mut StoreInfo> {
        let i = self.slot(ssn);
        self.ring[i].as_mut().filter(|info| info.ssn == ssn)
    }

    /// Invalidates a squashed store's record.
    pub fn invalidate(&mut self, ssn: Ssn) {
        let i = self.slot(ssn);
        if self.ring[i].map(|info| info.ssn) == Some(ssn) {
            self.ring[i] = None;
        }
    }

    /// Clears the ring (SSN wrap-around drain).
    pub fn clear(&mut self) {
        self.ring.fill(None);
    }
}

nosq_wire::wire_struct!(StoreInfo {
    ssn,
    pc,
    addr,
    width,
    float32,
    data_value,
    dtag_node,
    exec_cycle,
    commit_visible
});
nosq_wire::wire_struct!(StoreRegisterQueue { ring });

#[cfg(test)]
mod tests {
    use super::*;

    fn info(ssn: u64) -> StoreInfo {
        StoreInfo {
            ssn: Ssn(ssn),
            pc: 0x40,
            addr: 0x1000,
            width: 8,
            float32: false,
            data_value: 7,
            dtag_node: None,
            exec_cycle: u64::MAX,
            commit_visible: u64::MAX,
        }
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut q = StoreRegisterQueue::new(64);
        q.insert(info(5));
        assert_eq!(q.get(Ssn(5)).unwrap().data_value, 7);
        assert!(q.get(Ssn(6)).is_none());
    }

    #[test]
    fn wrapped_slot_rejects_stale_ssn() {
        let mut q = StoreRegisterQueue::new(4);
        q.insert(info(1));
        q.insert(info(5)); // same slot as 1 in a 4-entry ring
        assert!(q.get(Ssn(1)).is_none(), "stale record must not match");
        assert!(q.get(Ssn(5)).is_some());
    }

    #[test]
    fn invalidate_only_matching() {
        let mut q = StoreRegisterQueue::new(4);
        q.insert(info(5));
        q.invalidate(Ssn(1)); // different ssn, same slot
        assert!(q.get(Ssn(5)).is_some());
        q.invalidate(Ssn(5));
        assert!(q.get(Ssn(5)).is_none());
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut q = StoreRegisterQueue::new(16);
        q.insert(info(3));
        q.get_mut(Ssn(3)).unwrap().exec_cycle = 99;
        assert_eq!(q.get(Ssn(3)).unwrap().exec_cycle, 99);
    }
}
