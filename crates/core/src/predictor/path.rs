//! Path history for the bypassing predictor (paper §3.3).
//!
//! "To capture both flow-sensitive (i.e., conditional branch) and
//! context-sensitive (i.e., call-site) bypassing patterns, the path
//! history contains both branch directions (1 bit per branch) and call
//! PCs (2 bits per call)."

/// A shift-register path history: conditional branches contribute one
/// direction bit, calls contribute two PC bits.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PathHistory {
    bits: u64,
}

impl PathHistory {
    /// An empty history.
    pub fn new() -> PathHistory {
        PathHistory::default()
    }

    /// Records a conditional branch direction (1 bit).
    pub fn push_branch(&mut self, taken: bool) {
        self.bits = (self.bits << 1) | taken as u64;
    }

    /// Records a call site (2 bits of the call PC).
    pub fn push_call(&mut self, call_pc: u64) {
        self.bits = (self.bits << 2) | ((call_pc >> 2) & 0b11);
    }

    /// The low `n` history bits, used in the path-sensitive table's index
    /// hash.
    pub fn fold(&self, n: u32) -> u64 {
        if n == 0 {
            0
        } else if n >= 64 {
            self.bits
        } else {
            self.bits & ((1u64 << n) - 1)
        }
    }

    /// Raw snapshot for checkpoint/restore across squashes.
    pub fn snapshot(&self) -> u64 {
        self.bits
    }

    /// Restores a snapshot.
    pub fn restore(&mut self, snapshot: u64) {
        self.bits = snapshot;
    }
}

nosq_wire::wire_struct!(PathHistory { bits });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_bits_shift_in() {
        let mut h = PathHistory::new();
        h.push_branch(true);
        h.push_branch(false);
        h.push_branch(true);
        assert_eq!(h.fold(3), 0b101);
        assert_eq!(h.fold(2), 0b01);
    }

    #[test]
    fn calls_contribute_two_bits() {
        let mut h = PathHistory::new();
        h.push_call(0x8); // (0x8 >> 2) & 3 = 2
        assert_eq!(h.fold(2), 0b10);
        h.push_branch(true);
        assert_eq!(h.fold(3), 0b101);
    }

    #[test]
    fn distinct_call_sites_distinct_history() {
        let mut a = PathHistory::new();
        let mut b = PathHistory::new();
        a.push_call(0x100);
        b.push_call(0x104);
        assert_ne!(a.fold(2), b.fold(2));
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut h = PathHistory::new();
        h.push_branch(true);
        let snap = h.snapshot();
        h.push_branch(false);
        h.push_call(0xc);
        h.restore(snap);
        assert_eq!(h.fold(1), 1);
    }

    #[test]
    fn fold_edge_widths() {
        let mut h = PathHistory::new();
        for _ in 0..70 {
            h.push_branch(true);
        }
        assert_eq!(h.fold(0), 0);
        assert_eq!(h.fold(64), u64::MAX);
    }
}
