//! The bypassing predictor's backing tables (paper §3.3, §4.1).
//!
//! "Each entry contains a 6-bit distance field (corresponding to 64
//! in-flight stores), a 3-bit shift amount, a 2-bit store size, a 7-bit
//! confidence counter, and a 22-bit tag."

/// One predictor entry.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BypassEntry {
    /// Partial tag (22 bits of the load PC).
    pub tag: u64,
    /// Predicted bypassing distance in dynamic stores (0 = most recent).
    pub dist: u16,
    /// Predicted partial-word shift amount in bytes.
    pub shift: u8,
    /// 7-bit confidence counter for the delay mechanism.
    pub conf: i16,
    lru: u64,
}

/// Sentinel marking an empty slot in the bounded flat table; a real
/// partial tag is at most [`TAG_BITS`] bits, so it can never collide.
const EMPTY_TAG: u64 = u64::MAX;

/// A set-associative (or unbounded, for the Figure-5 "Inf" points)
/// predictor table.
///
/// The bounded table keeps its entries in one flat `sets × ways` array
/// (way-major within a set) so a lookup touches a single contiguous run
/// of memory; the unbounded variant, which exists only to model the
/// paper's infinite predictor, keeps growable per-set vectors.
#[derive(Clone, Debug)]
pub struct BypassTable {
    flat: Vec<BypassEntry>,
    unbounded_sets: Vec<Vec<BypassEntry>>,
    set_mask: usize,
    set_bits: u32,
    ways: usize,
    unbounded: bool,
    tick: u64,
    conf_init: i16,
}

/// Width of the partial tag in bits (paper: 22).
const TAG_BITS: u32 = 22;

impl BypassTable {
    /// Creates a table with `entries` total entries, `ways` per set.
    /// `unbounded` ignores capacity (every set grows without eviction and
    /// sets are fully indexed), modelling the paper's infinite predictor.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or exceeds `entries`.
    pub fn new(entries: usize, ways: usize, unbounded: bool, conf_init: i16) -> BypassTable {
        assert!(ways > 0 && ways <= entries, "invalid predictor geometry");
        let n_sets = if unbounded {
            1 << 16
        } else {
            (entries / ways).next_power_of_two().max(1)
        };
        let empty = BypassEntry {
            tag: EMPTY_TAG,
            dist: 0,
            shift: 0,
            conf: 0,
            lru: 0,
        };
        BypassTable {
            flat: if unbounded {
                Vec::new()
            } else {
                vec![empty; n_sets * ways]
            },
            unbounded_sets: if unbounded {
                vec![Vec::new(); n_sets]
            } else {
                Vec::new()
            },
            set_mask: n_sets - 1,
            set_bits: n_sets.trailing_zeros(),
            ways,
            unbounded,
            tick: 0,
            conf_init,
        }
    }

    fn set_index(&self, key: u64) -> usize {
        (key as usize) & self.set_mask
    }

    /// The partial tag: the 22 key bits directly above the index bits, so
    /// (index, tag) identifies a key up to genuine partial-tag aliasing.
    fn tag_of(&self, key: u64) -> u64 {
        (key >> self.set_bits) & ((1 << TAG_BITS) - 1)
    }

    /// Looks up the entry for a hashed key (LRU refreshed on hit).
    pub fn lookup(&mut self, key: u64) -> Option<BypassEntry> {
        self.tick += 1;
        let tag = self.tag_of(key);
        let idx = self.set_index(key);
        let tick = self.tick;
        let set: &mut [BypassEntry] = if self.unbounded {
            &mut self.unbounded_sets[idx]
        } else {
            &mut self.flat[idx * self.ways..(idx + 1) * self.ways]
        };
        set.iter_mut().find(|e| e.tag == tag).map(|e| {
            e.lru = tick;
            *e
        })
    }

    /// Inserts or updates an entry's distance and shift, resetting its
    /// confidence on allocation only.
    pub fn install(&mut self, key: u64, dist: u16, shift: u8) {
        self.tick += 1;
        let tag = self.tag_of(key);
        let idx = self.set_index(key);
        let tick = self.tick;
        let fresh = BypassEntry {
            tag,
            dist,
            shift,
            conf: self.conf_init,
            lru: tick,
        };
        if self.unbounded {
            let set = &mut self.unbounded_sets[idx];
            if let Some(e) = set.iter_mut().find(|e| e.tag == tag) {
                e.dist = dist;
                e.shift = shift;
                e.lru = tick;
                return;
            }
            set.push(fresh);
            return;
        }
        let set = &mut self.flat[idx * self.ways..(idx + 1) * self.ways];
        if let Some(e) = set.iter_mut().find(|e| e.tag == tag) {
            e.dist = dist;
            e.shift = shift;
            e.lru = tick;
            return;
        }
        // First empty slot, or the LRU victim (ticks are unique, so the
        // minimum is unambiguous).
        let slot = match set.iter_mut().find(|e| e.tag == EMPTY_TAG) {
            Some(s) => s,
            None => set.iter_mut().min_by_key(|e| e.lru).expect("ways > 0"),
        };
        *slot = fresh;
    }

    /// Adjusts the confidence counter of an existing entry, saturating in
    /// [0, max].
    pub fn adjust_conf(&mut self, key: u64, delta: i16, max: i16) {
        let tag = self.tag_of(key);
        let idx = self.set_index(key);
        let set: &mut [BypassEntry] = if self.unbounded {
            &mut self.unbounded_sets[idx]
        } else {
            &mut self.flat[idx * self.ways..(idx + 1) * self.ways]
        };
        if let Some(e) = set.iter_mut().find(|e| e.tag == tag) {
            e.conf = (e.conf + delta).clamp(0, max);
        }
    }

    /// Number of live entries (diagnostics).
    pub fn len(&self) -> usize {
        if self.unbounded {
            self.unbounded_sets.iter().map(|s| s.len()).sum()
        } else {
            self.flat.iter().filter(|e| e.tag != EMPTY_TAG).count()
        }
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        for e in &mut self.flat {
            e.tag = EMPTY_TAG;
        }
        for set in &mut self.unbounded_sets {
            set.clear();
        }
    }
}

nosq_wire::wire_struct!(BypassEntry {
    tag,
    dist,
    shift,
    conf,
    lru
});
nosq_wire::wire_struct!(BypassTable {
    flat,
    unbounded_sets,
    set_mask,
    set_bits,
    ways,
    unbounded,
    tick,
    conf_init
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_then_lookup() {
        let mut t = BypassTable::new(1024, 4, false, 64);
        assert_eq!(t.lookup(0x123456), None);
        t.install(0x123456, 5, 2);
        let e = t.lookup(0x123456).unwrap();
        assert_eq!(e.dist, 5);
        assert_eq!(e.shift, 2);
        assert_eq!(e.conf, 64);
    }

    #[test]
    fn update_preserves_confidence() {
        let mut t = BypassTable::new(1024, 4, false, 64);
        t.install(0x40, 1, 0);
        t.adjust_conf(0x40, -30, 127);
        t.install(0x40, 2, 4); // retrain distance
        let e = t.lookup(0x40).unwrap();
        assert_eq!(e.dist, 2);
        assert_eq!(e.conf, 34, "retraining must not reset confidence");
    }

    #[test]
    fn conf_saturates() {
        let mut t = BypassTable::new(64, 4, false, 120);
        t.install(0x40, 0, 0);
        t.adjust_conf(0x40, 100, 127);
        assert_eq!(t.lookup(0x40).unwrap().conf, 127);
        t.adjust_conf(0x40, -500, 127);
        assert_eq!(t.lookup(0x40).unwrap().conf, 0);
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut t = BypassTable::new(4, 4, false, 64); // one set
        for key in 0..4u64 {
            t.install(key << 12, key as u16, 0); // same set, distinct tags
        }
        t.lookup(0 << 12); // refresh key 0
        t.install(5 << 12, 9, 0); // evicts LRU (key 1)
        assert!(t.lookup(0 << 12).is_some());
        assert!(t.lookup(1 << 12).is_none());
    }

    #[test]
    fn unbounded_never_evicts() {
        let mut t = BypassTable::new(4, 4, true, 64);
        for key in 0..1000u64 {
            t.install(key << 12, 1, 0);
        }
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn clear_empties_both_layouts() {
        for unbounded in [false, true] {
            let mut t = BypassTable::new(64, 4, unbounded, 64);
            for key in 0..32u64 {
                t.install(key << 12, 1, 0);
            }
            assert!(!t.is_empty());
            t.clear();
            assert!(t.is_empty());
            assert_eq!(t.lookup(0), None);
        }
    }
}
