//! The bypassing predictor's backing tables (paper §3.3, §4.1).
//!
//! "Each entry contains a 6-bit distance field (corresponding to 64
//! in-flight stores), a 3-bit shift amount, a 2-bit store size, a 7-bit
//! confidence counter, and a 22-bit tag."

/// One predictor entry.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BypassEntry {
    /// Partial tag (22 bits of the load PC).
    pub tag: u64,
    /// Predicted bypassing distance in dynamic stores (0 = most recent).
    pub dist: u16,
    /// Predicted partial-word shift amount in bytes.
    pub shift: u8,
    /// 7-bit confidence counter for the delay mechanism.
    pub conf: i16,
    lru: u64,
}

/// A set-associative (or unbounded, for the Figure-5 "Inf" points)
/// predictor table.
#[derive(Clone, Debug)]
pub struct BypassTable {
    sets: Vec<Vec<BypassEntry>>,
    ways: usize,
    unbounded: bool,
    tick: u64,
    conf_init: i16,
}

/// Width of the partial tag in bits (paper: 22).
const TAG_BITS: u32 = 22;

impl BypassTable {
    /// Creates a table with `entries` total entries, `ways` per set.
    /// `unbounded` ignores capacity (every set grows without eviction and
    /// sets are fully indexed), modelling the paper's infinite predictor.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or exceeds `entries`.
    pub fn new(entries: usize, ways: usize, unbounded: bool, conf_init: i16) -> BypassTable {
        assert!(ways > 0 && ways <= entries, "invalid predictor geometry");
        let n_sets = if unbounded {
            1 << 16
        } else {
            (entries / ways).next_power_of_two().max(1)
        };
        BypassTable {
            sets: vec![Vec::new(); n_sets],
            ways,
            unbounded,
            tick: 0,
            conf_init,
        }
    }

    fn set_index(&self, key: u64) -> usize {
        (key as usize) & (self.sets.len() - 1)
    }

    /// The partial tag: the 22 key bits directly above the index bits, so
    /// (index, tag) identifies a key up to genuine partial-tag aliasing.
    fn tag_of(&self, key: u64) -> u64 {
        let set_bits = self.sets.len().trailing_zeros();
        (key >> set_bits) & ((1 << TAG_BITS) - 1)
    }

    /// Looks up the entry for a hashed key (LRU refreshed on hit).
    pub fn lookup(&mut self, key: u64) -> Option<BypassEntry> {
        self.tick += 1;
        let tag = self.tag_of(key);
        let idx = self.set_index(key);
        let tick = self.tick;
        self.sets[idx].iter_mut().find(|e| e.tag == tag).map(|e| {
            e.lru = tick;
            *e
        })
    }

    /// Inserts or updates an entry's distance and shift, resetting its
    /// confidence on allocation only.
    pub fn install(&mut self, key: u64, dist: u16, shift: u8) {
        self.tick += 1;
        let tag = self.tag_of(key);
        let idx = self.set_index(key);
        let ways = self.ways;
        let unbounded = self.unbounded;
        let tick = self.tick;
        let conf_init = self.conf_init;
        let set = &mut self.sets[idx];
        if let Some(e) = set.iter_mut().find(|e| e.tag == tag) {
            e.dist = dist;
            e.shift = shift;
            e.lru = tick;
            return;
        }
        if !unbounded && set.len() == ways {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i)
                .expect("full set");
            set.remove(victim);
        }
        set.push(BypassEntry {
            tag,
            dist,
            shift,
            conf: conf_init,
            lru: tick,
        });
    }

    /// Adjusts the confidence counter of an existing entry, saturating in
    /// [0, max].
    pub fn adjust_conf(&mut self, key: u64, delta: i16, max: i16) {
        let tag = self.tag_of(key);
        let idx = self.set_index(key);
        if let Some(e) = self.sets[idx].iter_mut().find(|e| e.tag == tag) {
            e.conf = (e.conf + delta).clamp(0, max);
        }
    }

    /// Number of live entries (diagnostics).
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_then_lookup() {
        let mut t = BypassTable::new(1024, 4, false, 64);
        assert_eq!(t.lookup(0x123456), None);
        t.install(0x123456, 5, 2);
        let e = t.lookup(0x123456).unwrap();
        assert_eq!(e.dist, 5);
        assert_eq!(e.shift, 2);
        assert_eq!(e.conf, 64);
    }

    #[test]
    fn update_preserves_confidence() {
        let mut t = BypassTable::new(1024, 4, false, 64);
        t.install(0x40, 1, 0);
        t.adjust_conf(0x40, -30, 127);
        t.install(0x40, 2, 4); // retrain distance
        let e = t.lookup(0x40).unwrap();
        assert_eq!(e.dist, 2);
        assert_eq!(e.conf, 34, "retraining must not reset confidence");
    }

    #[test]
    fn conf_saturates() {
        let mut t = BypassTable::new(64, 4, false, 120);
        t.install(0x40, 0, 0);
        t.adjust_conf(0x40, 100, 127);
        assert_eq!(t.lookup(0x40).unwrap().conf, 127);
        t.adjust_conf(0x40, -500, 127);
        assert_eq!(t.lookup(0x40).unwrap().conf, 0);
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut t = BypassTable::new(4, 4, false, 64); // one set
        for key in 0..4u64 {
            t.install(key << 12, key as u16, 0); // same set, distinct tags
        }
        t.lookup(0 << 12); // refresh key 0
        t.install(5 << 12, 9, 0); // evicts LRU (key 1)
        assert!(t.lookup(0 << 12).is_some());
        assert!(t.lookup(1 << 12).is_none());
    }

    #[test]
    fn unbounded_never_evicts() {
        let mut t = BypassTable::new(4, 4, true, 64);
        for key in 0..1000u64 {
            t.install(key << 12, 1, 0);
        }
        assert_eq!(t.len(), 1000);
    }
}
