//! The store-load bypassing predictor (paper §3.3).
//!
//! A hybrid of two parallel set-associative tables:
//!
//! * a **path-insensitive** table indexed by load PC, and
//! * a **path-sensitive** table indexed by load PC XOR-hashed with the
//!   path history (branch direction bits + call-PC bits).
//!
//! Loads access both in parallel; a hit in both prefers the
//! path-sensitive prediction. On a mis-prediction, entries are created in
//! both tables. Each entry carries a distance (in dynamic stores), a
//! partial-word shift amount, and a 7-bit confidence counter driving the
//! delay mechanism: a sub-threshold prediction makes the load wait for
//! the predicted store's commit instead of bypassing from it.

mod path;
mod table;

pub use path::PathHistory;
pub use table::{BypassEntry, BypassTable};

/// Sizing and behaviour of the bypassing predictor.
#[derive(Copy, Clone, Debug)]
pub struct PredictorConfig {
    /// Entries in *each* of the two tables (paper: 1K each, 10KB total).
    pub entries_per_table: usize,
    /// Set associativity (paper: 4).
    pub ways: usize,
    /// Path history bits hashed into the path-sensitive index (paper: 8).
    pub history_bits: u32,
    /// Ignore capacity (the Figure-5 "Inf" predictor).
    pub unbounded: bool,
    /// Confidence ceiling (7-bit counter: 127).
    pub conf_max: i16,
    /// Initial confidence on allocation ("initialized at an
    /// above-threshold value").
    pub conf_init: i16,
    /// Delay threshold: predictions below this confidence are delayed.
    pub conf_threshold: i16,
    /// Confidence step on a correct (non-mis-predicted) outcome.
    pub conf_up: i16,
    /// Confidence step on a mis-prediction with path prediction available.
    pub conf_down: i16,
}

impl PredictorConfig {
    /// The paper's default 10KB predictor: two 1K-entry 4-way tables,
    /// 8 history bits.
    pub fn paper_default() -> PredictorConfig {
        PredictorConfig {
            entries_per_table: 1024,
            ways: 4,
            history_bits: 8,
            unbounded: false,
            conf_max: 127,
            conf_init: 96,
            conf_threshold: 32,
            conf_up: 1,
            conf_down: 127,
        }
    }

    /// A capacity-scaled variant (Figure 5 top: total entries across both
    /// tables, storage equally split).
    pub fn with_capacity(total_entries: usize) -> PredictorConfig {
        PredictorConfig {
            entries_per_table: (total_entries / 2).max(4),
            ..PredictorConfig::paper_default()
        }
    }

    /// A history-scaled variant (Figure 5 bottom).
    pub fn with_history_bits(bits: u32) -> PredictorConfig {
        PredictorConfig {
            history_bits: bits,
            ..PredictorConfig::paper_default()
        }
    }

    /// The unbounded predictor (Figure 5's "Inf" bars).
    pub fn unbounded() -> PredictorConfig {
        PredictorConfig {
            unbounded: true,
            ..PredictorConfig::paper_default()
        }
    }
}

/// A bypassing prediction for one dynamic load.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted distance in dynamic stores (0 = most recent).
    pub dist: u16,
    /// Predicted partial-word shift amount in bytes.
    pub shift: u8,
    /// Above-threshold confidence? (below ⇒ delay, paper §3.3)
    pub confident: bool,
    /// Whether the path-sensitive table provided the prediction (drives
    /// the confidence update rule).
    pub path_sensitive: bool,
}

/// The hybrid bypassing predictor.
#[derive(Clone, Debug)]
pub struct BypassingPredictor {
    cfg: PredictorConfig,
    pc_table: BypassTable,
    path_table: BypassTable,
}

fn pc_key(pc: u64) -> u64 {
    pc >> 2
}

fn path_key(pc: u64, folded_history: u64) -> u64 {
    // Spread the folded history across both the index bits (low) and the
    // tag bits (high) so distinct (pc, history) pairs rarely produce the
    // same (set, tag) pair — the tagged-table equivalent of using a
    // second hash for the tag.
    (pc >> 2) ^ (folded_history << 3) ^ folded_history ^ (folded_history << 17)
}

impl BypassingPredictor {
    /// Builds a predictor.
    pub fn new(cfg: PredictorConfig) -> BypassingPredictor {
        BypassingPredictor {
            cfg,
            pc_table: BypassTable::new(
                cfg.entries_per_table,
                cfg.ways,
                cfg.unbounded,
                cfg.conf_init,
            ),
            path_table: BypassTable::new(
                cfg.entries_per_table,
                cfg.ways,
                cfg.unbounded,
                cfg.conf_init,
            ),
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &PredictorConfig {
        &self.cfg
    }

    /// Decode-stage prediction: `None` means "predicted non-bypassing"
    /// (a miss in both tables). `history` must be the load's decode-time
    /// path history.
    pub fn predict(&mut self, load_pc: u64, history: &PathHistory) -> Option<Prediction> {
        let folded = history.fold(self.cfg.history_bits);
        let path_hit = self.path_table.lookup(path_key(load_pc, folded));
        let pc_hit = self.pc_table.lookup(pc_key(load_pc));
        let (entry, path_sensitive) = match (path_hit, pc_hit) {
            (Some(p), _) => (p, true),
            (None, Some(e)) => (e, false),
            (None, None) => return None,
        };
        Some(Prediction {
            dist: entry.dist,
            shift: entry.shift,
            confident: entry.conf >= self.cfg.conf_threshold,
            path_sensitive,
        })
    }

    /// Commit-stage training after a bypassing **mis-prediction**: install
    /// the observed distance/shift in both tables and decrement the
    /// confidence if a path-sensitive prediction was available but the
    /// load mis-predicted anyway (the paper's delay trigger). `actual` is
    /// `None` when the commit stage could not compute the true distance
    /// (T-SSBF miss): only the confidence is updated.
    pub fn train_mispredict(
        &mut self,
        load_pc: u64,
        history: &PathHistory,
        had_path_prediction: bool,
        actual: Option<(u16, u8)>,
    ) {
        let folded = history.fold(self.cfg.history_bits);
        let pkey = path_key(load_pc, folded);
        let ckey = pc_key(load_pc);
        if let Some((dist, shift)) = actual {
            self.path_table.install(pkey, dist, shift);
            self.pc_table.install(ckey, dist, shift);
        }
        if had_path_prediction {
            self.path_table
                .adjust_conf(pkey, -self.cfg.conf_down, self.cfg.conf_max);
            self.pc_table
                .adjust_conf(ckey, -self.cfg.conf_down, self.cfg.conf_max);
        }
    }

    /// Commit-stage training after a correct outcome (bypass verified, or
    /// a delayed/non-bypassing load that did not squash): confidence is
    /// incremented (paper: "incremented otherwise").
    pub fn train_correct(&mut self, load_pc: u64, history: &PathHistory) {
        let folded = history.fold(self.cfg.history_bits);
        self.path_table.adjust_conf(
            path_key(load_pc, folded),
            self.cfg.conf_up,
            self.cfg.conf_max,
        );
        self.pc_table
            .adjust_conf(pc_key(load_pc), self.cfg.conf_up, self.cfg.conf_max);
    }

    /// Total live entries across both tables (diagnostics).
    pub fn len(&self) -> usize {
        self.pc_table.len() + self.path_table.len()
    }

    /// Whether both tables are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears both tables.
    pub fn clear(&mut self) {
        self.pc_table.clear();
        self.path_table.clear();
    }
}

nosq_wire::wire_struct!(PredictorConfig {
    entries_per_table,
    ways,
    history_bits,
    unbounded,
    conf_max,
    conf_init,
    conf_threshold,
    conf_up,
    conf_down
});
nosq_wire::wire_struct!(Prediction {
    dist,
    shift,
    confident,
    path_sensitive
});
nosq_wire::wire_struct!(BypassingPredictor {
    cfg,
    pc_table,
    path_table
});

#[cfg(test)]
mod tests {
    use super::*;

    const PC: u64 = 0x400;

    fn predictor() -> BypassingPredictor {
        BypassingPredictor::new(PredictorConfig::paper_default())
    }

    #[test]
    fn cold_predictor_predicts_non_bypassing() {
        let mut p = predictor();
        assert_eq!(p.predict(PC, &PathHistory::new()), None);
    }

    #[test]
    fn training_installs_in_both_tables() {
        let mut p = predictor();
        let h = PathHistory::new();
        p.train_mispredict(PC, &h, false, Some((3, 0)));
        let pred = p.predict(PC, &h).unwrap();
        assert_eq!(pred.dist, 3);
        assert!(pred.path_sensitive, "path table hit takes precedence");
        // A different history misses the path table but falls back to PC.
        let mut h2 = PathHistory::new();
        h2.push_branch(true);
        let pred2 = p.predict(PC, &h2).unwrap();
        assert!(!pred2.path_sensitive);
        assert_eq!(pred2.dist, 3);
    }

    #[test]
    fn path_sensitive_distances_differ_per_history() {
        let mut p = predictor();
        let mut taken = PathHistory::new();
        taken.push_branch(true);
        let mut not_taken = PathHistory::new();
        not_taken.push_branch(false);
        p.train_mispredict(PC, &taken, false, Some((1, 0)));
        p.train_mispredict(PC, &not_taken, false, Some((0, 0)));
        assert_eq!(p.predict(PC, &taken).unwrap().dist, 1);
        assert_eq!(p.predict(PC, &not_taken).unwrap().dist, 0);
    }

    #[test]
    fn repeated_path_mispredicts_drop_below_threshold() {
        let mut p = predictor();
        let h = PathHistory::new();
        p.train_mispredict(PC, &h, false, Some((1, 0)));
        assert!(p.predict(PC, &h).unwrap().confident);
        // Path prediction now exists; repeated mispredicts erode it.
        for _ in 0..3 {
            p.train_mispredict(PC, &h, true, Some((1, 0)));
        }
        assert!(
            !p.predict(PC, &h).unwrap().confident,
            "conf {:?}",
            p.predict(PC, &h)
        );
    }

    #[test]
    fn correct_outcomes_slowly_restore_confidence() {
        let mut p = predictor();
        let h = PathHistory::new();
        p.train_mispredict(PC, &h, false, Some((1, 0)));
        for _ in 0..4 {
            p.train_mispredict(PC, &h, true, Some((1, 0)));
        }
        assert!(!p.predict(PC, &h).unwrap().confident);
        for _ in 0..200 {
            p.train_correct(PC, &h);
        }
        assert!(p.predict(PC, &h).unwrap().confident);
    }

    #[test]
    fn shift_amounts_are_learned() {
        let mut p = predictor();
        let h = PathHistory::new();
        p.train_mispredict(PC, &h, false, Some((0, 4)));
        assert_eq!(p.predict(PC, &h).unwrap().shift, 4);
    }

    #[test]
    fn tssbf_miss_training_updates_confidence_only() {
        let mut p = predictor();
        let h = PathHistory::new();
        p.train_mispredict(PC, &h, false, Some((2, 0)));
        p.train_mispredict(PC, &h, true, None); // no distance available
        let pred = p.predict(PC, &h).unwrap();
        assert_eq!(pred.dist, 2, "distance untouched on None training");
    }

    #[test]
    fn history_bits_zero_collapses_to_pc_indexing() {
        let mut p = BypassingPredictor::new(PredictorConfig::with_history_bits(0));
        let mut a = PathHistory::new();
        a.push_branch(true);
        let mut b = PathHistory::new();
        b.push_branch(false);
        p.train_mispredict(PC, &a, false, Some((5, 0)));
        // With no history bits both histories index the same entry.
        assert_eq!(p.predict(PC, &b).unwrap().dist, 5);
    }
}
