//! Exit-code and usage contract of the `nosq` binary.
//!
//! The conventions under test: exit 0 on success, exit 1 on runtime
//! failures (prefixed `nosq: error:` on stderr), exit 2 on usage
//! errors (usage text on stderr, never stdout). In particular, running
//! `nosq` with no subcommand is a usage *error* — it must not print
//! the help to stdout and exit as if that were a successful run.

use std::process::{Command, Output};

fn nosq(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_nosq"))
        .args(args)
        .output()
        .expect("spawn nosq")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("nosq must exit, not be killed")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn no_subcommand_is_a_usage_error_on_stderr() {
    let out = nosq(&[]);
    assert_eq!(code(&out), 2);
    assert!(stdout(&out).is_empty(), "usage errors must not use stdout");
    let err = stderr(&out);
    assert!(err.contains("a subcommand is required"), "{err}");
    assert!(err.contains("USAGE:"), "{err}");
}

#[test]
fn unknown_subcommand_exits_2() {
    let out = nosq(&["frobnicate"]);
    assert_eq!(code(&out), 2);
    assert!(stdout(&out).is_empty());
    assert!(stderr(&out).contains("unknown command `frobnicate`"));
}

#[test]
fn unknown_option_exits_2() {
    let out = nosq(&["smoke", "--frob"]);
    assert_eq!(code(&out), 2);
    assert!(stderr(&out).contains("unknown option `--frob`"));
}

#[test]
fn help_exits_0_on_stdout() {
    for invocation in [&["help"][..], &["--help"], &["-h"]] {
        let out = nosq(invocation);
        assert_eq!(code(&out), 0);
        let text = stdout(&out);
        assert!(text.contains("USAGE:"), "{text}");
        assert!(text.contains("nosq serve"), "help must list the daemon");
        assert!(text.contains("nosq loadgen"), "help must list the loadgen");
    }
}

#[test]
fn list_is_consistent_with_help() {
    let out = nosq(&["list", "presets"]);
    assert_eq!(code(&out), 0);
    assert!(stdout(&out).contains("nosq"));
    let out = nosq(&["list", "profiles"]);
    assert_eq!(code(&out), 0);
    assert!(stdout(&out).contains("gzip"));
}

#[test]
fn missing_positional_arguments_exit_2() {
    for args in [&["run"][..], &["submit"], &["run", "a", "b"]] {
        let out = nosq(args);
        assert_eq!(code(&out), 2, "nosq {args:?}");
        assert!(stderr(&out).contains("exactly one spec file"));
    }
    let out = nosq(&["serve", "stray"]);
    assert_eq!(code(&out), 2);
    assert!(stderr(&out).contains("no positional arguments"));
}

#[test]
fn malformed_sample_plans_exit_2() {
    // Shape, field, and range errors are all usage errors: usage text
    // on stderr, exit 2, nothing on stdout.
    for bad in ["1000", "1:2", "1:2:3:4", "a:2:3", "1:0:3", "1:2:0"] {
        let out = nosq(&["run", "spec.json", "--sample", bad]);
        assert_eq!(code(&out), 2, "--sample {bad}");
        assert!(stdout(&out).is_empty(), "usage errors must not use stdout");
        let err = stderr(&out);
        assert!(err.contains("--sample"), "{err}");
        assert!(err.contains("USAGE:"), "{err}");
    }
    let out = nosq(&["run", "spec.json", "--sample"]);
    assert_eq!(code(&out), 2);
    assert!(stderr(&out).contains("`--sample` needs a value"));
}

#[test]
fn fused_and_sample_are_mutually_exclusive() {
    let out = nosq(&["run", "spec.json", "--fused", "--sample", "100:50:2"]);
    assert_eq!(code(&out), 2);
    assert!(stderr(&out).contains("mutually exclusive"));
}

#[test]
fn durable_flag_contracts() {
    // `--resume` replaces the spec file; both together is a usage error.
    let out = nosq(&["run", "spec.json", "--resume", "j.journal"]);
    assert_eq!(code(&out), 2);
    assert!(stderr(&out).contains("in place of a spec file"));
    // Checkpointing snapshots the serial replay loop, so a durable run
    // excludes the fused and sampled engines.
    for extra in [&["--fused"][..], &["--sample", "100:50:2"]] {
        let mut args = vec!["run", "spec.json", "--journal", "j.journal"];
        args.extend_from_slice(extra);
        let out = nosq(&args);
        assert_eq!(code(&out), 2, "{extra:?}");
        assert!(stderr(&out).contains("incompatible"), "{extra:?}");
    }
    // An unopenable journal is a runtime failure, not a usage error.
    let out = nosq(&["run", "--resume", "/nonexistent/dir/nosq.journal"]);
    assert_eq!(code(&out), 1);
    assert!(stderr(&out).contains("nosq: error:"));
}

#[test]
fn fused_and_sampled_runs_succeed_on_a_real_spec() {
    let dir = std::env::temp_dir().join(format!("nosq-cli-fused-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let spec = dir.join("campaign.json");
    std::fs::write(
        &spec,
        r#"{
            "name": "cli-fused",
            "configs": ["nosq", "baseline-storesets"],
            "profiles": ["gzip"],
            "max_insts": 2000
        }"#,
    )
    .expect("write spec");
    let spec = spec.to_str().expect("utf-8 temp path");
    let out_dir = dir.join("artifacts");
    let out_flag = out_dir.to_str().expect("utf-8 temp path");

    let solo = nosq(&["run", spec, "--out", out_flag]);
    assert_eq!(code(&solo), 0, "{}", stderr(&solo));
    let fused = nosq(&["run", spec, "--out", out_flag, "--fused"]);
    assert_eq!(code(&fused), 0, "{}", stderr(&fused));
    // Fused execution reproduces the solo geomean lines byte for byte
    // (only timing lines may differ).
    let geomean = |s: &str| {
        s.lines()
            .filter(|l| l.starts_with("nosq ") || l.starts_with("baseline-storesets "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(geomean(&stdout(&solo)), geomean(&stdout(&fused)));

    let sampled = nosq(&["run", spec, "--sample", "500:250:3"]);
    assert_eq!(code(&sampled), 0, "{}", stderr(&sampled));
    let text = stdout(&sampled);
    assert!(text.contains("est IPC"), "{text}");
    assert!(text.contains("sampled campaign `cli-fused`"), "{text}");

    // A warm-up past the end of the run measures nothing: runtime
    // error, exit 1.
    let empty = nosq(&["run", spec, "--sample", "999999:250:3"]);
    assert_eq!(code(&empty), 1);
    assert!(stderr(&empty).contains("measured no windows"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn runtime_failures_exit_1_not_2() {
    // An unreadable spec is a runtime error, not a usage error.
    let out = nosq(&["submit", "/nonexistent/campaign.spec"]);
    assert_eq!(code(&out), 1);
    assert!(stderr(&out).contains("nosq: error:"));

    // A well-formed request against no daemon likewise.
    let out = nosq(&["shutdown", "--addr", "127.0.0.1:1"]);
    assert_eq!(code(&out), 1);
    assert!(stderr(&out).contains("nosq: error:"));

    let out = nosq(&["loadgen", "--addr", "127.0.0.1:1"]);
    assert_eq!(code(&out), 1);
    assert!(stderr(&out).contains("daemon not reachable"));
}
