//! # nosq-serve
//!
//! The campaign **service** layer: what turns the one-shot `nosq run`
//! engine into a long-running daemon under live traffic.
//!
//! * [`server`] — the `nosq serve` daemon: a line-delimited-JSON TCP
//!   frontend, a worker pool fed through the model-checked
//!   [`InjectionQueue`](nosq_lab::InjectionQueue), per-job progress
//!   streaming, an LRU result cache, a crash-safe fsync'd result
//!   journal, and graceful drain on SIGTERM or a `shutdown` request;
//! * [`protocol`] — the wire format (one JSON object per line, built
//!   on [`nosq_lab::json`] and [`nosq_core::ser`] — no serde in this
//!   environment);
//! * [`client`] — the blocking client every consumer shares (the CLI's
//!   `submit`/`shutdown` subcommands, the load generator, the
//!   integration suites);
//! * [`loadgen`] — `nosq loadgen`: open-loop mixed hot/cold traffic
//!   from N concurrent clients, latency percentiles + jobs/sec into
//!   `BENCH_serve.json`, and byte-identity verification of every
//!   served artifact against a local one-shot run;
//! * [`cache`] — the fingerprint-keyed LRU over deterministic
//!   artifacts;
//! * [`journal`] — the length-prefixed, checksummed, fsync'd
//!   append-only record of completed campaigns (a killed daemon
//!   resumes without re-simulating anything it finished);
//! * [`fingerprint`] — FNV-1a campaign identity: the cache key, the
//!   journal key, and the wire job id are all the same 64-bit hash;
//! * [`signal`] — SIGTERM/SIGINT → drain-flag plumbing (the one
//!   allowlisted `unsafe` + raw-atomics corner of the workspace).
//!
//! The `nosq` binary lives in this crate (the daemon and the one-shot
//! commands share a CLI), driving both this layer and everything
//! below it: `nosq serve`, `nosq loadgen`, `nosq submit`,
//! `nosq shutdown`, plus the original `run` / `table5` / `smoke` /
//! `audit` / `check` / `lint` / `list`.
//!
//! ## Determinism contract
//!
//! The daemon never invents result bytes: artifacts come from the same
//! [`run_campaign_serial`](nosq_lab::run_campaign_serial) →
//! [`artifacts`](nosq_lab::artifacts) pipeline the CLI uses, the cache
//! and journal store exactly those bytes, and `tests/it_serve.rs` +
//! `nosq loadgen` both assert byte-identity against one-shot local
//! runs. Timing (latency histograms, jobs/sec) is the only
//! nondeterministic output, quarantined in `BENCH_serve.json` like the
//! lab's timing artifact.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod durable;
pub mod fingerprint;
pub mod journal;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod signal;

pub use cache::ResultCache;
pub use client::{ClientError, JobOutcome, ServeClient, SubmitReply};
pub use durable::{DurableFile, DurableIo, Fault, FaultIo, FaultKind, OsIo};
pub use fingerprint::{campaign_fingerprint, fingerprint_hex, fnv1a, parse_fingerprint};
pub use journal::{resume_state, CheckpointEntry, Journal, JournalEntry, Recovered};
pub use loadgen::{loadgen_json, run_loadgen, LoadgenOptions, LoadgenReport};
pub use server::{ServeOptions, ServeStats, Server};
