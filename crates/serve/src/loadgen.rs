//! `nosq loadgen`: hammer a live daemon with realistic mixed traffic
//! and measure what users would feel.
//!
//! N concurrent clients each issue a fixed schedule of campaign
//! submissions with **open-loop arrivals**: request *i* is due at
//! `start + i·interval` regardless of how long earlier requests took,
//! so latency includes any queueing delay the daemon built up — the
//! honest way to load-test a service (closed-loop generators
//! self-throttle and hide overload). The mix interleaves **cache-hot**
//! requests (every client re-submitting one shared campaign, which the
//! daemon must serve from its LRU) with **cache-cold** ones (a unique
//! workload seed per request, forcing a full simulation), spread
//! evenly by Bresenham accumulation rather than clumped.
//!
//! Every response's artifacts are then verified two ways: against the
//! first response for the same campaign (daemon self-consistency under
//! concurrency) and against a local one-shot [`run_campaign`] of the
//! same spec (byte-identity with the `nosq run` CLI path). Any
//! mismatch counts as a divergence, and the CLI fails the run.
//!
//! The outcome is `BENCH_serve.json`: p50/p99/mean/max latency,
//! sustained jobs/sec, hit/miss counts, and the divergence count —
//! parsed back through [`nosq_lab::json`] before it is written, so a
//! malformed artifact can never land on disk.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use nosq_check::sync::StdSync;
use nosq_check::sync::SyncFacade;
use nosq_core::ser::JsonObject;
use nosq_lab::json::Json;
use nosq_lab::{artifacts, run_campaign, Artifact, Campaign, RunOptions};

use crate::client::ServeClient;

/// Load-generator knobs.
#[derive(Clone, Debug)]
pub struct LoadgenOptions {
    /// Daemon address.
    pub addr: String,
    /// Concurrent clients (the acceptance floor is 8).
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Percentage of requests that resubmit the shared hot campaign.
    pub hot_pct: u32,
    /// Open-loop arrival interval per client, in milliseconds.
    pub interval_ms: u64,
    /// Per-job instruction budget of the generated campaigns.
    pub max_insts: u64,
}

impl Default for LoadgenOptions {
    fn default() -> LoadgenOptions {
        LoadgenOptions {
            addr: "127.0.0.1:7433".to_owned(),
            clients: 8,
            requests_per_client: 4,
            hot_pct: 50,
            interval_ms: 40,
            max_insts: 2_000,
        }
    }
}

/// What a loadgen run measured; serialized by [`loadgen_json`].
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// Concurrent clients.
    pub clients: usize,
    /// Total requests completed.
    pub requests: usize,
    /// Hot-traffic percentage requested.
    pub hot_pct: u32,
    /// Median end-to-end latency (submit → artifacts), milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// Worst latency, milliseconds.
    pub max_ms: f64,
    /// Completed campaigns per wall-clock second.
    pub jobs_per_sec: f64,
    /// Wall-clock duration of the whole run, milliseconds.
    pub elapsed_ms: f64,
    /// Responses the daemon flagged as cache-served.
    pub cached_responses: usize,
    /// Daemon-side submit cache hits (from `status`).
    pub cache_hits: u64,
    /// Daemon-side submit cache misses (from `status`).
    pub cache_misses: u64,
    /// Artifact mismatches: daemon-vs-daemon or daemon-vs-local. Must
    /// be zero for a healthy daemon.
    pub divergence: usize,
    /// Requests that hit the daemon's structured `busy` backpressure
    /// at least once and succeeded after backing off.
    pub busy_retries: u64,
}

struct Sample {
    spec: String,
    latency_ms: f64,
    cached: bool,
    artifacts: Vec<Artifact>,
    busy_retries: u64,
}

/// Deterministic per-client jitter source (xorshift64*): backoff must
/// not synchronize the fleet into retry stampedes, but the generator
/// also must not pull in wall-clock entropy — reruns stay comparable.
fn jitter_ms(state: &mut u64, cap: u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    if cap == 0 {
        0
    } else {
        x.wrapping_mul(0x2545_f491_4f6c_dd1d) % cap
    }
}

/// How many times a busy response is retried before giving up.
const MAX_BUSY_RETRIES: u32 = 8;

/// The shared cache-hot campaign every client resubmits.
fn hot_spec(max_insts: u64) -> String {
    format!(
        "name = lg-hot\nconfigs = nosq, baseline-storesets\n\
         profiles = gzip, gsm.e\nmax_insts = {max_insts}\n\
         baseline = baseline-storesets\n"
    )
}

/// A cache-cold campaign: unique name and workload seed per request.
fn cold_spec(max_insts: u64, client: usize, request: usize) -> String {
    let seed = 10_000 + (client as u64) * 1_000 + request as u64;
    format!(
        "name = lg-cold-{client}-{request}\nconfigs = nosq, baseline-storesets\n\
         profiles = gzip, gsm.e\nmax_insts = {max_insts}\nseed = {seed}\n\
         baseline = baseline-storesets\n"
    )
}

/// Bresenham spread: request `i` of `n` is hot iff the running
/// `hot_pct` accumulator crosses an integer at `i` — even interleaving
/// at any ratio, no RNG needed (or wanted: the schedule must be
/// deterministic so reruns are comparable).
fn is_hot(i: usize, hot_pct: u32) -> bool {
    let p = u64::from(hot_pct.min(100));
    (i as u64 + 1) * p / 100 > (i as u64) * p / 100
}

/// Drives the load, verifies every artifact, and measures latency.
/// `Err` is a human-readable failure (connection refused, daemon
/// error, …); divergences are *not* an `Err` — they come back in the
/// report so the caller can print the numbers before failing.
pub fn run_loadgen(opts: &LoadgenOptions) -> Result<LoadgenReport, String> {
    let clients = opts.clients.max(1);
    let per_client = opts.requests_per_client.max(1);

    // Fail fast (and cheaply) if no daemon is listening.
    ServeClient::connect(&opts.addr)
        .and_then(|mut c| c.ping())
        .map_err(|e| format!("daemon not reachable: {e}"))?;

    let started = Instant::now();
    let outcomes: Vec<Result<Vec<Sample>, String>> = StdSync::run_threads(
        clients,
        |k| client_schedule(opts, k, per_client, started),
        None,
    );
    let elapsed = started.elapsed();

    let mut samples = Vec::with_capacity(clients * per_client);
    for outcome in outcomes {
        samples.extend(outcome?);
    }

    // Verification pass 1: every response for the same spec must match
    // the first one (daemon self-consistency under concurrency).
    let mut divergence = 0usize;
    let mut reference: BTreeMap<String, Vec<Artifact>> = BTreeMap::new();
    for sample in &samples {
        match reference.get(&sample.spec) {
            Some(first) => {
                if *first != sample.artifacts {
                    divergence += 1;
                }
            }
            None => {
                reference.insert(sample.spec.clone(), sample.artifacts.clone());
            }
        }
    }
    // Verification pass 2: the daemon's bytes must equal a local
    // one-shot `nosq run` of the same spec.
    for (spec, served) in &reference {
        let campaign =
            Campaign::from_spec(spec).map_err(|e| format!("loadgen generated a bad spec: {e}"))?;
        let local = artifacts(&run_campaign(&campaign, &RunOptions::default()));
        if local != *served {
            divergence += 1;
        }
    }

    // Daemon-side counters, after the dust settles.
    let status = ServeClient::connect(&opts.addr)
        .and_then(|mut c| c.status())
        .map_err(|e| format!("status after load: {e}"))?;
    let counter = |name: &str| status.get(name).and_then(Json::as_u64).unwrap_or(0);

    let mut latencies: Vec<f64> = samples.iter().map(|s| s.latency_ms).collect();
    latencies.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() - 1) as f64 * p / 100.0).round() as usize;
        latencies[idx]
    };
    let mean = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
    let secs = elapsed.as_secs_f64();

    Ok(LoadgenReport {
        clients,
        requests: samples.len(),
        hot_pct: opts.hot_pct,
        p50_ms: pct(50.0),
        p99_ms: pct(99.0),
        mean_ms: mean,
        max_ms: latencies.last().copied().unwrap_or(0.0),
        jobs_per_sec: if secs > 0.0 {
            samples.len() as f64 / secs
        } else {
            0.0
        },
        elapsed_ms: secs * 1_000.0,
        cached_responses: samples.iter().filter(|s| s.cached).count(),
        cache_hits: counter("cache_hits"),
        cache_misses: counter("cache_misses"),
        divergence,
        busy_retries: samples.iter().map(|s| s.busy_retries).sum(),
    })
}

/// One client's open-loop schedule.
fn client_schedule(
    opts: &LoadgenOptions,
    k: usize,
    per_client: usize,
    started: Instant,
) -> Result<Vec<Sample>, String> {
    let mut client = ServeClient::connect(&opts.addr).map_err(|e| format!("client {k}: {e}"))?;
    let mut samples = Vec::with_capacity(per_client);
    for i in 0..per_client {
        // Open-loop: the due time never moves, however slow the daemon
        // is; lateness becomes measured latency, not a slower schedule.
        let due = Duration::from_millis(opts.interval_ms * i as u64);
        let now = started.elapsed();
        if now < due {
            std::thread::sleep(due - now);
        }
        let spec = if is_hot(i, opts.hot_pct) {
            hot_spec(opts.max_insts)
        } else {
            cold_spec(opts.max_insts, k, i)
        };
        // Structured backpressure: a `busy` response is retried with
        // exponential backoff plus deterministic jitter; anything else
        // fails the run.
        let mut rng = 0x9e37_79b9_7f4a_7c15u64 ^ ((k as u64) << 32) ^ i as u64;
        let mut busy_retries = 0u64;
        let outcome = loop {
            match client.run_spec(&spec) {
                Ok(outcome) => break outcome,
                Err(e) if e.busy() && busy_retries < u64::from(MAX_BUSY_RETRIES) => {
                    let base = e.retry_ms.unwrap_or(100) << busy_retries.min(6);
                    let wait = base + jitter_ms(&mut rng, base.max(1));
                    busy_retries += 1;
                    std::thread::sleep(Duration::from_millis(wait));
                }
                Err(e) => return Err(format!("client {k} request {i}: {e}")),
            }
        };
        let latency_ms = (started.elapsed().saturating_sub(due)).as_secs_f64() * 1_000.0;
        samples.push(Sample {
            spec,
            latency_ms,
            cached: outcome.cached,
            artifacts: outcome.artifacts,
            busy_retries,
        });
    }
    Ok(samples)
}

/// Serializes the report as the `BENCH_serve.json` artifact.
pub fn loadgen_json(report: &LoadgenReport) -> String {
    let mut obj = JsonObject::new();
    obj.field_str("bench", "serve")
        .field_u64("clients", report.clients as u64)
        .field_u64("requests", report.requests as u64)
        .field_u64("hot_pct", u64::from(report.hot_pct))
        .field_f64("p50_ms", report.p50_ms)
        .field_f64("p99_ms", report.p99_ms)
        .field_f64("mean_ms", report.mean_ms)
        .field_f64("max_ms", report.max_ms)
        .field_f64("jobs_per_sec", report.jobs_per_sec)
        .field_f64("elapsed_ms", report.elapsed_ms)
        .field_u64("cached_responses", report.cached_responses as u64)
        .field_u64("cache_hits", report.cache_hits)
        .field_u64("cache_misses", report.cache_misses)
        .field_u64("divergence", report.divergence as u64)
        .field_u64("busy_retries", report.busy_retries);
    obj.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_mix_is_spread_not_clumped() {
        let hot: Vec<bool> = (0..10).map(|i| is_hot(i, 50)).collect();
        assert_eq!(hot.iter().filter(|&&h| h).count(), 5);
        // Alternating, not 5 hots followed by 5 colds.
        assert!(hot.windows(2).any(|w| w[0] != w[1]));
        assert_eq!((0..10).filter(|&i| is_hot(i, 0)).count(), 0);
        assert_eq!((0..10).filter(|&i| is_hot(i, 100)).count(), 10);
    }

    #[test]
    fn specs_parse_and_separate() {
        let hot = Campaign::from_spec(&hot_spec(2_000)).unwrap();
        assert_eq!(hot.jobs(), 4);
        let a = Campaign::from_spec(&cold_spec(2_000, 0, 1)).unwrap();
        let b = Campaign::from_spec(&cold_spec(2_000, 1, 0)).unwrap();
        assert_ne!(a.seed, b.seed, "cold seeds must be unique per request");
    }

    #[test]
    fn report_serializes_valid_json() {
        let report = LoadgenReport {
            clients: 8,
            requests: 32,
            hot_pct: 50,
            p50_ms: 12.5,
            p99_ms: 80.0,
            mean_ms: 20.0,
            max_ms: 81.0,
            jobs_per_sec: 40.0,
            elapsed_ms: 800.0,
            cached_responses: 15,
            cache_hits: 15,
            cache_misses: 17,
            divergence: 0,
            busy_retries: 2,
        };
        let doc = nosq_lab::json::parse(&loadgen_json(&report)).unwrap();
        assert_eq!(doc.get("bench").unwrap().as_str(), Some("serve"));
        assert_eq!(doc.get("clients").unwrap().as_u64(), Some(8));
        assert_eq!(doc.get("divergence").unwrap().as_u64(), Some(0));
        assert_eq!(doc.get("busy_retries").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let mut a = 42u64;
        let mut b = 42u64;
        for cap in [1u64, 7, 100, 1000] {
            let x = jitter_ms(&mut a, cap);
            assert_eq!(x, jitter_ms(&mut b, cap), "same seed, same stream");
            assert!(x < cap);
        }
        assert_eq!(jitter_ms(&mut a, 0), 0);
    }
}
