//! The `nosq serve` daemon: TCP frontend, MPMC-fed worker pool, LRU
//! result cache, crash-safe journal, graceful drain.
//!
//! # Architecture
//!
//! ```text
//!            ┌ handler thread per connection ┐
//!  TCP ──────┤ parse line → dispatch         │
//!            └───────────┬───────────────────┘
//!                 submit │ (registry lock: dedup → cache → enqueue)
//!                        ▼
//!              InjectionQueue<QueuedJob>      ← the model-checked MPMC
//!                        │                      queue from nosq-lab
//!            ┌ worker threads, one WorkerContext each ┐
//!            │ run_campaign_serial → artifacts        │
//!            │ journal.append (fsync) → cache.insert  │
//!            └───────────┬──────────────────────────┬─┘
//!                        ▼ registry: job → Done     ▼ condvar notify
//!                `wait` handlers stream progress / final artifacts
//! ```
//!
//! # Concurrency discipline
//!
//! The lock-free part — work hand-off — is exactly the
//! [`InjectionQueue`] that `nosq check` verifies exhaustively,
//! including the close/drain transition the daemon's shutdown uses
//! (`mpmc-close` model). Everything else is deliberately coarse: one
//! mutex over the job registry, one over the cache, one over the
//! journal. Those guard *per-campaign* operations (a handful per
//! second) while each job burns millions of simulated cycles between
//! lock touches, so there is nothing for finer locking to win.
//!
//! The drain protocol mirrors the `mpmc-close` model's happens-before
//! shape: `draining = true` and `queue.close()` happen under the
//! registry lock, and every submission checks `draining` under that
//! same lock *before* pushing — so no push can race the close, every
//! accepted job is drained, and workers may safely exit on
//! [`InjectionQueue::is_drained`].
//!
//! # Determinism
//!
//! Artifacts served over the wire are produced by the same
//! [`run_campaign_serial`] → [`artifacts`] pipeline `nosq run` uses,
//! and both are byte-identical to a one-shot
//! [`run_campaign`](nosq_lab::run_campaign) at any
//! thread count (the executor's core guarantee; `tests/it_serve.rs`
//! pins daemon-vs-CLI identity end to end). The cache and journal
//! store those same bytes, so a cache hit, a journal replay after a
//! crash, and a fresh simulation are indistinguishable to clients.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use nosq_check::sync::StdSync;
use nosq_lab::{
    artifacts, run_campaign_serial, synthesize_programs, Campaign, InjectionQueue,
    ProgressCounters, PushError, RunOptions, WorkerContext,
};

use crate::cache::ResultCache;
use crate::fingerprint::{campaign_fingerprint, fingerprint_hex, parse_fingerprint};
use crate::journal::Journal;
use crate::protocol::{done_line, error_line, parse_request, progress_line, submit_line, Request};
use crate::signal;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Listen address; port 0 binds an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads; 0 means one per available CPU.
    pub workers: usize,
    /// Journal path; `None` runs without crash safety (tests only).
    pub journal: Option<PathBuf>,
    /// LRU cache capacity in campaigns.
    pub cache_capacity: usize,
    /// Injection-queue capacity (rounded up to a power of two).
    pub queue_capacity: usize,
    /// Poll termination signals (the `nosq serve` binary installs
    /// handlers; in-process test servers leave this off).
    pub watch_signals: bool,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:0".to_owned(),
            workers: 0,
            journal: None,
            cache_capacity: 64,
            queue_capacity: 256,
            watch_signals: false,
        }
    }
}

/// What one daemon lifetime did, reported by [`Server::run`].
#[derive(Clone, Debug, Default)]
pub struct ServeStats {
    /// Campaigns simulated by the worker pool this lifetime.
    pub jobs_run: u64,
    /// Submissions answered from the LRU cache (journal replays
    /// included).
    pub cache_hits: u64,
    /// Submissions that had to simulate.
    pub cache_misses: u64,
    /// Completed results recovered from the journal at startup.
    pub recovered: u64,
    /// Connections accepted.
    pub connections: u64,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum JobStatus {
    Queued,
    Running,
    Done,
}

struct JobState {
    name: String,
    total_jobs: usize,
    status: JobStatus,
    cached: bool,
    progress: Arc<ProgressCounters<StdSync>>,
    artifacts: Option<Arc<Vec<nosq_lab::Artifact>>>,
}

struct QueuedJob {
    fingerprint: u64,
    campaign: Campaign,
}

#[derive(Default)]
struct Registry {
    jobs: BTreeMap<u64, JobState>,
    draining: bool,
    cache_hits: u64,
    cache_misses: u64,
    jobs_run: u64,
    connections: u64,
}

struct Shared {
    registry: Mutex<Registry>,
    cv: Condvar,
    queue: InjectionQueue<QueuedJob, StdSync>,
    cache: Mutex<ResultCache>,
    journal: Mutex<Option<Journal>>,
    watch_signals: bool,
}

impl Shared {
    /// Whether handlers and the accept loop should wind down: a drain
    /// was requested and every accepted job has completed.
    fn finished(&self) -> bool {
        let reg = self.registry.lock().expect("registry poisoned");
        reg.draining && reg.jobs.values().all(|job| job.status == JobStatus::Done)
    }

    /// Flips into draining state (idempotent). Taking the registry
    /// lock *before* closing the queue is the happens-before edge the
    /// `mpmc-close` model verifies: no submission can observe
    /// `draining == false` and push after the close.
    fn begin_drain(&self) {
        let mut reg = self.registry.lock().expect("registry poisoned");
        if !reg.draining {
            reg.draining = true;
            self.queue.close();
        }
        drop(reg);
        self.cv.notify_all();
    }
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    opts: ServeOptions,
    shared: Shared,
    recovered: u64,
}

impl Server {
    /// Binds the listener, opens the journal, and replays recovered
    /// results into the cache. No thread is spawned yet.
    pub fn bind(opts: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let mut cache = ResultCache::new(opts.cache_capacity);
        let mut recovered = 0u64;
        let journal = match &opts.journal {
            Some(path) => {
                let (journal, entries) = Journal::open(path)?;
                for entry in entries {
                    cache.insert(entry.fingerprint, entry.artifacts);
                    recovered += 1;
                }
                Some(journal)
            }
            None => None,
        };

        let shared = Shared {
            registry: Mutex::new(Registry::default()),
            cv: Condvar::new(),
            queue: InjectionQueue::new(opts.queue_capacity),
            cache: Mutex::new(cache),
            journal: Mutex::new(journal),
            watch_signals: opts.watch_signals,
        };
        Ok(Server {
            listener,
            local_addr,
            opts,
            shared,
            recovered,
        })
    }

    /// The bound address (the ephemeral port when `addr` ended in `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Completed results recovered from the journal at bind time.
    pub fn recovered(&self) -> u64 {
        self.recovered
    }

    /// Runs the daemon to completion: accept loop plus worker pool,
    /// returning once a drain (SIGTERM or `shutdown` request) finishes.
    pub fn run(self) -> std::io::Result<ServeStats> {
        let workers = if self.opts.workers == 0 {
            nosq_check::sync::available_parallelism().clamp(1, 8)
        } else {
            self.opts.workers
        };
        let shared = &self.shared;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| worker_loop(shared));
            }
            // The accept loop runs on the calling thread; handler
            // threads are scoped too, so `run` returns only after every
            // connection has wound down.
            loop {
                if shared.watch_signals && signal::drain_requested() {
                    shared.begin_drain();
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        shared
                            .registry
                            .lock()
                            .expect("registry poisoned")
                            .connections += 1;
                        scope.spawn(move || handle_connection(shared, stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if shared.finished() {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        })?;

        let reg = self.shared.registry.lock().expect("registry poisoned");
        Ok(ServeStats {
            jobs_run: reg.jobs_run,
            cache_hits: reg.cache_hits,
            cache_misses: reg.cache_misses,
            recovered: self.recovered,
            connections: reg.connections,
        })
    }
}

/// One pool worker: drain the injection queue until it is closed and
/// empty, keeping a persistent [`WorkerContext`] so arenas and recorded
/// traces survive across campaigns.
fn worker_loop(shared: &Shared) {
    let mut ctx = WorkerContext::new();
    loop {
        match shared.queue.try_pop() {
            Some(job) => run_one(shared, job, &mut ctx),
            None if shared.queue.is_drained() => return,
            None => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn run_one(shared: &Shared, job: QueuedJob, ctx: &mut WorkerContext) {
    let progress = {
        let mut reg = shared.registry.lock().expect("registry poisoned");
        let state = reg
            .jobs
            .get_mut(&job.fingerprint)
            .expect("queued job is registered");
        state.status = JobStatus::Running;
        Arc::clone(&state.progress)
    };
    shared.cv.notify_all();

    let opts = RunOptions {
        threads: 1,
        ..RunOptions::default()
    };
    let programs = synthesize_programs(&job.campaign, 1);
    let result = run_campaign_serial(&job.campaign, &programs, &opts, ctx, &progress);
    let files = Arc::new(artifacts(&result));

    // Journal first (fsync), then cache, then report done — a crash
    // after the append can only lose the *report*, never the result.
    if let Some(journal) = shared.journal.lock().expect("journal poisoned").as_mut() {
        if let Err(e) = journal.append(job.fingerprint, &job.campaign.name, &files) {
            // Keep serving from memory; the operator sees the warning.
            eprintln!(
                "nosq serve: warning: journal append failed for {}: {e}",
                fingerprint_hex(job.fingerprint)
            );
        }
    }
    shared
        .cache
        .lock()
        .expect("cache poisoned")
        .insert(job.fingerprint, Arc::clone(&files));

    let mut reg = shared.registry.lock().expect("registry poisoned");
    reg.jobs_run += 1;
    let state = reg
        .jobs
        .get_mut(&job.fingerprint)
        .expect("running job is registered");
    state.status = JobStatus::Done;
    state.artifacts = Some(files);
    drop(reg);
    shared.cv.notify_all();
}

/// Reads one request line, tolerating read timeouts (which the handler
/// uses to poll for drain). Returns `Ok(false)` on EOF or drain-exit.
fn read_line_patient(
    shared: &Shared,
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
) -> std::io::Result<bool> {
    loop {
        match reader.read_line(line) {
            Ok(0) => return Ok(false),
            Ok(_) => {
                // A timeout can split a line; keep reading until the
                // newline actually arrived.
                if line.ends_with('\n') {
                    return Ok(true);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                // Idle poll: once the daemon has fully drained, stop
                // waiting on quiet clients so `run` can return.
                if line.is_empty() && shared.finished() {
                    return Ok(false);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    // Errors on one connection only ever end that connection.
    let _ = serve_connection(shared, stream);
}

fn serve_connection(shared: &Shared, stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if !read_line_patient(shared, &mut reader, &mut line)? {
            return Ok(());
        }
        let request = match parse_request(line.trim_end()) {
            Ok(req) => req,
            Err(msg) => {
                writeln!(writer, "{}", error_line(&msg))?;
                continue;
            }
        };
        match request {
            Request::Ping => {
                writeln!(writer, "{{\"ok\":true}}")?;
            }
            Request::Status => {
                writeln!(writer, "{}", status_response(shared))?;
            }
            Request::Submit { spec } => {
                writeln!(writer, "{}", submit_response(shared, &spec))?;
            }
            Request::Wait { job } => {
                stream_wait(shared, &mut writer, &job)?;
            }
            Request::Shutdown => {
                shared.begin_drain();
                writeln!(writer, "{{\"ok\":true,\"draining\":true}}")?;
            }
        }
        writer.flush()?;
    }
}

/// The submit path. Everything that decides queued-vs-cached-vs-dup —
/// and the push itself — happens under the registry lock, which is
/// what makes the drain cutoff sound (see the module docs).
fn submit_response(shared: &Shared, spec: &str) -> String {
    let campaign = match Campaign::from_spec(spec) {
        Ok(c) => c,
        Err(e) => return error_line(&format!("bad spec: {e}")),
    };
    let fingerprint = campaign_fingerprint(&campaign);
    let id = fingerprint_hex(fingerprint);

    let mut reg = shared.registry.lock().expect("registry poisoned");
    if reg.draining {
        return error_line("draining: not accepting new campaigns");
    }
    // Idempotent resubmission: same spec, same job id. A completed
    // result re-served from the registry counts as a cache hit — the
    // client gets its bytes with no new simulation — while an
    // in-flight duplicate just shares the pending job.
    match reg.jobs.get(&fingerprint).map(|j| j.status.clone()) {
        Some(JobStatus::Done) => {
            reg.cache_hits += 1;
            reg.jobs.get_mut(&fingerprint).expect("job present").cached = true;
            return submit_line(&id, "cached");
        }
        Some(JobStatus::Running) => return submit_line(&id, "running"),
        Some(JobStatus::Queued) => return submit_line(&id, "queued"),
        None => {}
    }
    let total_jobs = campaign.jobs();
    let name = campaign.name.clone();
    if let Some(files) = shared
        .cache
        .lock()
        .expect("cache poisoned")
        .lookup(fingerprint)
    {
        reg.cache_hits += 1;
        reg.jobs.insert(
            fingerprint,
            JobState {
                name,
                total_jobs,
                status: JobStatus::Done,
                cached: true,
                progress: Arc::new(ProgressCounters::new()),
                artifacts: Some(files),
            },
        );
        drop(reg);
        shared.cv.notify_all();
        return submit_line(&id, "cached");
    }
    reg.cache_misses += 1;
    reg.jobs.insert(
        fingerprint,
        JobState {
            name,
            total_jobs,
            status: JobStatus::Queued,
            cached: false,
            progress: Arc::new(ProgressCounters::new()),
            artifacts: None,
        },
    );
    match shared.queue.try_push(QueuedJob {
        fingerprint,
        campaign,
    }) {
        Ok(()) => submit_line(&id, "queued"),
        Err(err) => {
            reg.jobs.remove(&fingerprint);
            reg.cache_misses -= 1;
            if matches!(err, PushError::Full(_)) {
                error_line("queue full: retry later")
            } else {
                // Unreachable while the drain check above holds; kept
                // as a real branch rather than a panic so a protocol
                // bug degrades to an error response.
                error_line("draining: not accepting new campaigns")
            }
        }
    }
}

/// Streams `progress` events until the job completes, then the `done`
/// event with artifacts.
fn stream_wait(shared: &Shared, writer: &mut TcpStream, id: &str) -> std::io::Result<()> {
    let Some(fingerprint) = parse_fingerprint(id) else {
        writeln!(
            writer,
            "{}",
            error_line(&format!("malformed job id `{id}`"))
        )?;
        return Ok(());
    };
    let mut last = (usize::MAX, u64::MAX);
    loop {
        enum Step {
            Done(String, Arc<Vec<nosq_lab::Artifact>>, bool),
            Progress(usize, usize, u64),
            Missing,
        }
        let step = {
            let mut reg = shared.registry.lock().expect("registry poisoned");
            loop {
                let Some(job) = reg.jobs.get(&fingerprint) else {
                    break Step::Missing;
                };
                if job.status == JobStatus::Done {
                    let files = job.artifacts.clone().expect("done job has artifacts");
                    break Step::Done(job.name.clone(), files, job.cached);
                }
                let (done, insts) = job.progress.snapshot();
                let total = job.total_jobs;
                if (done, insts) != last {
                    last = (done, insts);
                    break Step::Progress(done, total, insts);
                }
                let (guard, _timeout) = shared
                    .cv
                    .wait_timeout(reg, Duration::from_millis(50))
                    .expect("registry poisoned");
                reg = guard;
            }
        };
        match step {
            Step::Missing => {
                writeln!(writer, "{}", error_line(&format!("unknown job `{id}`")))?;
                return Ok(());
            }
            Step::Done(name, files, cached) => {
                writeln!(writer, "{}", done_line(id, &name, cached, &files))?;
                return Ok(());
            }
            Step::Progress(done, total, insts) => {
                writeln!(writer, "{}", progress_line(id, done, total, insts))?;
                writer.flush()?;
            }
        }
    }
}

fn status_response(shared: &Shared) -> String {
    use nosq_core::ser::JsonObject;
    let reg = shared.registry.lock().expect("registry poisoned");
    let count = |s: JobStatus| reg.jobs.values().filter(|j| j.status == s).count() as u64;
    let (hits, misses, evictions) = shared.cache.lock().expect("cache poisoned").stats();
    let (journal_records, journal_truncated) = shared
        .journal
        .lock()
        .expect("journal poisoned")
        .as_ref()
        .map_or((0, 0), |j| (j.records(), j.truncated_bytes()));
    let mut obj = JsonObject::new();
    obj.field_bool("ok", true)
        .field_bool("draining", reg.draining)
        .field_u64("queued", count(JobStatus::Queued))
        .field_u64("running", count(JobStatus::Running))
        .field_u64("completed", count(JobStatus::Done))
        .field_u64("jobs_run", reg.jobs_run)
        .field_u64("cache_hits", reg.cache_hits)
        .field_u64("cache_misses", reg.cache_misses)
        .field_u64("cache_lookup_hits", hits)
        .field_u64("cache_lookup_misses", misses)
        .field_u64("cache_evictions", evictions)
        .field_u64("queue_len", shared.queue.len() as u64)
        .field_u64("journal_records", journal_records)
        .field_u64("journal_truncated_bytes", journal_truncated)
        .field_u64("connections", reg.connections);
    obj.finish()
}
