//! The `nosq serve` daemon: TCP frontend, MPMC-fed worker pool, LRU
//! result cache, crash-safe journal, graceful drain.
//!
//! # Architecture
//!
//! ```text
//!            ┌ handler thread per connection ┐
//!  TCP ──────┤ parse line → dispatch         │
//!            └───────────┬───────────────────┘
//!                 submit │ (registry lock: dedup → cache → enqueue)
//!                        ▼
//!              InjectionQueue<QueuedJob>      ← the model-checked MPMC
//!                        │                      queue from nosq-lab
//!            ┌ worker threads, one WorkerContext each ┐
//!            │ run_campaign_serial → artifacts        │
//!            │ journal.append (fsync) → cache.insert  │
//!            └───────────┬──────────────────────────┬─┘
//!                        ▼ registry: job → Done     ▼ condvar notify
//!                `wait` handlers stream progress / final artifacts
//! ```
//!
//! # Concurrency discipline
//!
//! The lock-free part — work hand-off — is exactly the
//! [`InjectionQueue`] that `nosq check` verifies exhaustively,
//! including the close/drain transition the daemon's shutdown uses
//! (`mpmc-close` model). Everything else is deliberately coarse: one
//! mutex over the job registry, one over the cache, one over the
//! journal. Those guard *per-campaign* operations (a handful per
//! second) while each job burns millions of simulated cycles between
//! lock touches, so there is nothing for finer locking to win.
//!
//! The drain protocol mirrors the `mpmc-close` model's happens-before
//! shape: `draining = true` and `queue.close()` happen under the
//! registry lock, and every submission checks `draining` under that
//! same lock *before* pushing — so no push can race the close, every
//! accepted job is drained, and workers may safely exit on
//! [`InjectionQueue::is_drained`].
//!
//! # Determinism
//!
//! Artifacts served over the wire are produced by the same
//! [`run_campaign_serial`] → [`artifacts`] pipeline `nosq run` uses,
//! and both are byte-identical to a one-shot
//! [`run_campaign`](nosq_lab::run_campaign) at any
//! thread count (the executor's core guarantee; `tests/it_serve.rs`
//! pins daemon-vs-CLI identity end to end). The cache and journal
//! store those same bytes, so a cache hit, a journal replay after a
//! crash, and a fresh simulation are indistinguishable to clients.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use nosq_check::sync::StdSync;
use nosq_lab::{
    artifacts, run_campaign_durable, run_campaign_serial, synthesize_programs, Campaign,
    CampaignResult, InjectionQueue, ProgressCounters, PushError, RunOptions, WorkerContext,
};

use crate::cache::ResultCache;
use crate::fingerprint::{campaign_fingerprint, fingerprint_hex, parse_fingerprint};
use crate::journal::{CheckpointEntry, Journal};
use crate::protocol::{
    busy_line, done_line, error_line, evicted_line, parse_request, progress_line, submit_line,
    unknown_job_line, Request,
};
use crate::signal;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Listen address; port 0 binds an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads; 0 means one per available CPU.
    pub workers: usize,
    /// Journal path; `None` runs without crash safety (tests only).
    pub journal: Option<PathBuf>,
    /// LRU cache capacity in campaigns.
    pub cache_capacity: usize,
    /// Injection-queue capacity (rounded up to a power of two).
    pub queue_capacity: usize,
    /// Poll termination signals (the `nosq serve` binary installs
    /// handlers; in-process test servers leave this off).
    pub watch_signals: bool,
    /// Mid-job checkpoint cadence in committed instructions (journaled
    /// campaigns only); `0` checkpoints at job boundaries only.
    pub ckpt_every_insts: u64,
    /// How long a started-but-unfinished request line may stall before
    /// the connection is dropped (the slow-loris defense); `0`
    /// disables the limit. Idle connections that have sent nothing are
    /// never timed out.
    pub request_timeout_ms: u64,
    /// Socket write timeout for responses (a stalled reader cannot pin
    /// a handler thread forever); `0` disables the limit.
    pub write_timeout_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:0".to_owned(),
            workers: 0,
            journal: None,
            cache_capacity: 64,
            queue_capacity: 256,
            watch_signals: false,
            ckpt_every_insts: 50_000,
            request_timeout_ms: 10_000,
            write_timeout_ms: 10_000,
        }
    }
}

/// What one daemon lifetime did, reported by [`Server::run`].
#[derive(Clone, Debug, Default)]
pub struct ServeStats {
    /// Campaigns simulated by the worker pool this lifetime.
    pub jobs_run: u64,
    /// Submissions answered from the LRU cache (journal replays
    /// included).
    pub cache_hits: u64,
    /// Submissions that had to simulate.
    pub cache_misses: u64,
    /// Completed results recovered from the journal at startup.
    pub recovered: u64,
    /// Half-finished campaigns re-enqueued from journal checkpoints at
    /// startup.
    pub resumed: u64,
    /// Connections accepted.
    pub connections: u64,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum JobStatus {
    Queued,
    Running,
    Done,
}

/// Per-job registry entry. Deliberately artifact-free: completed
/// artifacts live in the LRU cache (and the journal) only, so a
/// long-lived daemon's registry stays O(jobs seen), not O(bytes
/// served). A `Done` job whose artifacts were evicted answers `wait`
/// with a structured `evicted` error instead of pinning memory.
struct JobState {
    name: String,
    total_jobs: usize,
    status: JobStatus,
    cached: bool,
    progress: Arc<ProgressCounters<StdSync>>,
}

struct QueuedJob {
    fingerprint: u64,
    campaign: Campaign,
    /// The spec text, verbatim — embedded in checkpoint records so a
    /// journal is self-contained for recovery.
    spec: String,
    /// Where to pick the campaign back up (journal recovery); `None`
    /// for fresh submissions.
    resume: Option<CheckpointEntry>,
}

#[derive(Default)]
struct Registry {
    jobs: BTreeMap<u64, JobState>,
    draining: bool,
    cache_hits: u64,
    cache_misses: u64,
    jobs_run: u64,
    connections: u64,
}

struct Shared {
    registry: Mutex<Registry>,
    cv: Condvar,
    queue: InjectionQueue<QueuedJob, StdSync>,
    cache: Mutex<ResultCache>,
    journal: Mutex<Option<Journal>>,
    watch_signals: bool,
    ckpt_every_insts: u64,
    request_timeout_ms: u64,
    write_timeout_ms: u64,
}

impl Shared {
    /// Whether handlers and the accept loop should wind down: a drain
    /// was requested and every accepted job has completed.
    fn finished(&self) -> bool {
        let reg = self.registry.lock().expect("registry poisoned");
        reg.draining && reg.jobs.values().all(|job| job.status == JobStatus::Done)
    }

    /// Flips into draining state (idempotent). Taking the registry
    /// lock *before* closing the queue is the happens-before edge the
    /// `mpmc-close` model verifies: no submission can observe
    /// `draining == false` and push after the close.
    fn begin_drain(&self) {
        let mut reg = self.registry.lock().expect("registry poisoned");
        if !reg.draining {
            reg.draining = true;
            self.queue.close();
        }
        drop(reg);
        self.cv.notify_all();
    }
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    opts: ServeOptions,
    shared: Shared,
    recovered: u64,
    resumed: u64,
}

impl Server {
    /// Binds the listener, opens the journal, replays recovered results
    /// into the cache, and re-enqueues half-finished campaigns from
    /// their latest valid checkpoints. No thread is spawned yet.
    pub fn bind(opts: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let mut cache = ResultCache::new(opts.cache_capacity);
        let mut recovered = 0u64;
        let mut partial = Vec::new();
        let journal = match &opts.journal {
            Some(path) => {
                let (journal, salvaged) = Journal::open(path)?;
                for entry in salvaged.completed {
                    cache.insert(entry.fingerprint, entry.artifacts);
                    recovered += 1;
                }
                partial = salvaged.partial;
                Some(journal)
            }
            None => None,
        };

        let shared = Shared {
            registry: Mutex::new(Registry::default()),
            cv: Condvar::new(),
            queue: InjectionQueue::new(opts.queue_capacity),
            cache: Mutex::new(cache),
            journal: Mutex::new(journal),
            watch_signals: opts.watch_signals,
            ckpt_every_insts: opts.ckpt_every_insts,
            request_timeout_ms: opts.request_timeout_ms,
            write_timeout_ms: opts.write_timeout_ms,
        };

        // Re-enqueue half-finished campaigns. Checkpoint records embed
        // the spec verbatim, so recovery needs nothing beyond the
        // journal itself; a record that no longer parses (or whose
        // fingerprint disagrees with its spec) is reported and skipped,
        // never served.
        let mut resumed = 0u64;
        for entry in partial {
            let id = fingerprint_hex(entry.fingerprint);
            let campaign = match Campaign::from_spec(&entry.spec) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("nosq serve: warning: cannot resume {id}: bad spec: {e}");
                    continue;
                }
            };
            if campaign_fingerprint(&campaign) != entry.fingerprint {
                eprintln!("nosq serve: warning: cannot resume {id}: spec/fingerprint mismatch");
                continue;
            }
            let mut reg = shared.registry.lock().expect("registry poisoned");
            reg.jobs.insert(
                entry.fingerprint,
                JobState {
                    name: campaign.name.clone(),
                    total_jobs: campaign.jobs(),
                    status: JobStatus::Queued,
                    cached: false,
                    progress: Arc::new(ProgressCounters::new()),
                },
            );
            let fingerprint = entry.fingerprint;
            let spec = entry.spec.clone();
            if shared
                .queue
                .try_push(QueuedJob {
                    fingerprint,
                    campaign,
                    spec,
                    resume: Some(entry),
                })
                .is_err()
            {
                reg.jobs.remove(&fingerprint);
                eprintln!("nosq serve: warning: cannot resume {id}: queue full");
                continue;
            }
            resumed += 1;
        }

        Ok(Server {
            listener,
            local_addr,
            opts,
            shared,
            recovered,
            resumed,
        })
    }

    /// The bound address (the ephemeral port when `addr` ended in `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Completed results recovered from the journal at bind time.
    pub fn recovered(&self) -> u64 {
        self.recovered
    }

    /// Half-finished campaigns re-enqueued from checkpoints at bind
    /// time.
    pub fn resumed(&self) -> u64 {
        self.resumed
    }

    /// Runs the daemon to completion: accept loop plus worker pool,
    /// returning once a drain (SIGTERM or `shutdown` request) finishes.
    pub fn run(self) -> std::io::Result<ServeStats> {
        let workers = if self.opts.workers == 0 {
            nosq_check::sync::available_parallelism().clamp(1, 8)
        } else {
            self.opts.workers
        };
        let shared = &self.shared;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| worker_loop(shared));
            }
            // The accept loop runs on the calling thread; handler
            // threads are scoped too, so `run` returns only after every
            // connection has wound down.
            loop {
                if shared.watch_signals && signal::drain_requested() {
                    shared.begin_drain();
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        shared
                            .registry
                            .lock()
                            .expect("registry poisoned")
                            .connections += 1;
                        scope.spawn(move || handle_connection(shared, stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if shared.finished() {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        })?;

        let reg = self.shared.registry.lock().expect("registry poisoned");
        Ok(ServeStats {
            jobs_run: reg.jobs_run,
            cache_hits: reg.cache_hits,
            cache_misses: reg.cache_misses,
            recovered: self.recovered,
            resumed: self.resumed,
            connections: reg.connections,
        })
    }
}

/// One pool worker: drain the injection queue until it is closed and
/// empty, keeping a persistent [`WorkerContext`] so arenas and recorded
/// traces survive across campaigns.
fn worker_loop(shared: &Shared) {
    let mut ctx = WorkerContext::new();
    loop {
        match shared.queue.try_pop() {
            Some(job) => run_one(shared, job, &mut ctx),
            None if shared.queue.is_drained() => return,
            None => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn run_one(shared: &Shared, job: QueuedJob, ctx: &mut WorkerContext) {
    let progress = {
        let mut reg = shared.registry.lock().expect("registry poisoned");
        let state = reg
            .jobs
            .get_mut(&job.fingerprint)
            .expect("queued job is registered");
        state.status = JobStatus::Running;
        Arc::clone(&state.progress)
    };
    shared.cv.notify_all();

    let programs = synthesize_programs(&job.campaign, 1);
    let journaled = shared.journal.lock().expect("journal poisoned").is_some();
    let result: CampaignResult = if journaled {
        // The durable path: periodic mid-job checkpoints into the
        // journal, and a resume point when recovery handed us one.
        let resume = job
            .resume
            .as_ref()
            .and_then(|entry| crate::journal::resume_state(&job.campaign, entry));
        let mut sink = |ev: nosq_lab::CkptEvent<'_>| {
            let entry = CheckpointEntry {
                fingerprint: job.fingerprint,
                name: job.campaign.name.clone(),
                spec: job.spec.clone(),
                job_index: ev.job_index as u64,
                completed: ev.completed.to_vec(),
                state: ev.state.map(nosq_core::SimCheckpoint::to_bytes),
            };
            if let Some(journal) = shared.journal.lock().expect("journal poisoned").as_mut() {
                if let Err(e) = journal.append_checkpoint(&entry) {
                    eprintln!(
                        "nosq serve: warning: checkpoint append failed for {}: {e}",
                        fingerprint_hex(job.fingerprint)
                    );
                }
            }
        };
        run_campaign_durable(
            &job.campaign,
            &programs,
            ctx,
            &progress,
            shared.ckpt_every_insts,
            resume,
            &mut sink,
        )
    } else {
        let opts = RunOptions {
            threads: 1,
            ..RunOptions::default()
        };
        run_campaign_serial(&job.campaign, &programs, &opts, ctx, &progress)
    };
    let files = Arc::new(artifacts(&result));

    // Journal first (fsync), then cache, then report done — a crash
    // after the append can only lose the *report*, never the result.
    if let Some(journal) = shared.journal.lock().expect("journal poisoned").as_mut() {
        if let Err(e) = journal.append(job.fingerprint, &job.campaign.name, &files) {
            // Keep serving from memory; the operator sees the warning.
            eprintln!(
                "nosq serve: warning: journal append failed for {}: {e}",
                fingerprint_hex(job.fingerprint)
            );
        }
    }
    shared
        .cache
        .lock()
        .expect("cache poisoned")
        .insert(job.fingerprint, Arc::clone(&files));

    let mut reg = shared.registry.lock().expect("registry poisoned");
    reg.jobs_run += 1;
    let state = reg
        .jobs
        .get_mut(&job.fingerprint)
        .expect("running job is registered");
    state.status = JobStatus::Done;
    drop(reg);
    shared.cv.notify_all();
}

/// Reads one request line, tolerating read timeouts (which the handler
/// uses to poll for drain). Returns `Ok(false)` on EOF or drain-exit.
///
/// The slow-loris defense lives here: once a request line has
/// *started* (any byte received), the clock runs — a connection that
/// stalls mid-line for `request_timeout_ms` gets `TimedOut` and the
/// handler thread is freed. Idle connections that have sent nothing
/// wait indefinitely (they cost one parked thread, not a wedged one,
/// and drain-exit still reclaims them). Waiting is accumulated from
/// the socket's 100 ms poll ticks rather than a wall clock, keeping
/// the handler loop free of `Instant::now` (the determinism lint's
/// domain) and the timeout exact in poll units.
fn read_line_patient(
    shared: &Shared,
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
) -> std::io::Result<bool> {
    let mut stalled_ms: u64 = 0;
    loop {
        match reader.read_line(line) {
            Ok(0) => return Ok(false),
            Ok(_) => {
                // A timeout can split a line; keep reading until the
                // newline actually arrived.
                if line.ends_with('\n') {
                    return Ok(true);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if line.is_empty() {
                    // Idle poll: once the daemon has fully drained,
                    // stop waiting on quiet clients so `run` can
                    // return.
                    if shared.finished() {
                        return Ok(false);
                    }
                } else {
                    stalled_ms += READ_POLL_MS;
                    if shared.request_timeout_ms != 0 && stalled_ms >= shared.request_timeout_ms {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "request line stalled",
                        ));
                    }
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// The socket read-poll tick; also the unit [`read_line_patient`]
/// accumulates stall time in.
const READ_POLL_MS: u64 = 100;

fn handle_connection(shared: &Shared, stream: TcpStream) {
    // Errors on one connection only ever end that connection.
    let _ = serve_connection(shared, stream);
}

fn serve_connection(shared: &Shared, stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(READ_POLL_MS)))?;
    if shared.write_timeout_ms != 0 {
        stream.set_write_timeout(Some(Duration::from_millis(shared.write_timeout_ms)))?;
    }
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match read_line_patient(shared, &mut reader, &mut line) {
            Ok(true) => {}
            Ok(false) => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::TimedOut => {
                // Slow loris: tell the peer why (best effort) and free
                // the thread.
                let _ = writeln!(writer, "{}", error_line("request line timed out"));
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        let request = match parse_request(line.trim_end()) {
            Ok(req) => req,
            Err(msg) => {
                writeln!(writer, "{}", error_line(&msg))?;
                continue;
            }
        };
        match request {
            Request::Ping => {
                writeln!(writer, "{{\"ok\":true}}")?;
            }
            Request::Status => {
                writeln!(writer, "{}", status_response(shared))?;
            }
            Request::Submit { spec } => {
                writeln!(writer, "{}", submit_response(shared, &spec))?;
            }
            Request::Wait { job } => {
                stream_wait(shared, &mut writer, &job)?;
            }
            Request::Shutdown => {
                shared.begin_drain();
                writeln!(writer, "{{\"ok\":true,\"draining\":true}}")?;
            }
        }
        writer.flush()?;
    }
}

/// The submit path. Everything that decides queued-vs-cached-vs-dup —
/// and the push itself — happens under the registry lock, which is
/// what makes the drain cutoff sound (see the module docs).
fn submit_response(shared: &Shared, spec: &str) -> String {
    let campaign = match Campaign::from_spec(spec) {
        Ok(c) => c,
        Err(e) => return error_line(&format!("bad spec: {e}")),
    };
    let fingerprint = campaign_fingerprint(&campaign);
    let id = fingerprint_hex(fingerprint);

    let mut reg = shared.registry.lock().expect("registry poisoned");
    if reg.draining {
        return error_line("draining: not accepting new campaigns");
    }
    // Idempotent resubmission: same spec, same job id. A completed
    // result still in the cache counts as a cache hit — the client
    // gets its bytes with no new simulation — while an in-flight
    // duplicate just shares the pending job. A completed job whose
    // artifacts were since evicted falls through to a fresh enqueue
    // (the resubmit *is* the documented recovery path for eviction).
    match reg.jobs.get(&fingerprint).map(|j| j.status.clone()) {
        Some(JobStatus::Done) => {
            if shared
                .cache
                .lock()
                .expect("cache poisoned")
                .lookup(fingerprint)
                .is_some()
            {
                reg.cache_hits += 1;
                reg.jobs.get_mut(&fingerprint).expect("job present").cached = true;
                return submit_line(&id, "cached");
            }
            reg.jobs.remove(&fingerprint);
        }
        Some(JobStatus::Running) => return submit_line(&id, "running"),
        Some(JobStatus::Queued) => return submit_line(&id, "queued"),
        None => {}
    }
    let total_jobs = campaign.jobs();
    let name = campaign.name.clone();
    if shared
        .cache
        .lock()
        .expect("cache poisoned")
        .lookup(fingerprint)
        .is_some()
    {
        reg.cache_hits += 1;
        reg.jobs.insert(
            fingerprint,
            JobState {
                name,
                total_jobs,
                status: JobStatus::Done,
                cached: true,
                progress: Arc::new(ProgressCounters::new()),
            },
        );
        drop(reg);
        shared.cv.notify_all();
        return submit_line(&id, "cached");
    }
    reg.cache_misses += 1;
    reg.jobs.insert(
        fingerprint,
        JobState {
            name,
            total_jobs,
            status: JobStatus::Queued,
            cached: false,
            progress: Arc::new(ProgressCounters::new()),
        },
    );
    match shared.queue.try_push(QueuedJob {
        fingerprint,
        campaign,
        spec: spec.to_owned(),
        resume: None,
    }) {
        Ok(()) => submit_line(&id, "queued"),
        Err(err) => {
            reg.jobs.remove(&fingerprint);
            reg.cache_misses -= 1;
            if matches!(err, PushError::Full(_)) {
                // Structured backpressure: the client backs off and
                // retries instead of string-matching an error.
                busy_line(BUSY_RETRY_MS)
            } else {
                // Unreachable while the drain check above holds; kept
                // as a real branch rather than a panic so a protocol
                // bug degrades to an error response.
                error_line("draining: not accepting new campaigns")
            }
        }
    }
}

/// Retry hint sent with [`busy_line`] responses: roughly how long one
/// queued campaign takes to start draining under load.
const BUSY_RETRY_MS: u64 = 100;

/// Streams `progress` events until the job completes, then the `done`
/// event with artifacts (looked up in the cache — the registry holds
/// none). `wait` never blocks on an id the daemon is not actually
/// working on: an unknown id and an evicted result each get an
/// immediate structured error.
fn stream_wait(shared: &Shared, writer: &mut TcpStream, id: &str) -> std::io::Result<()> {
    let Some(fingerprint) = parse_fingerprint(id) else {
        writeln!(
            writer,
            "{}",
            error_line(&format!("malformed job id `{id}`"))
        )?;
        return Ok(());
    };
    let mut last = (usize::MAX, u64::MAX);
    loop {
        enum Step {
            Done(String, bool),
            Progress(usize, usize, u64),
            Missing,
        }
        let step = {
            let mut reg = shared.registry.lock().expect("registry poisoned");
            loop {
                let Some(job) = reg.jobs.get(&fingerprint) else {
                    break Step::Missing;
                };
                if job.status == JobStatus::Done {
                    break Step::Done(job.name.clone(), job.cached);
                }
                let (done, insts) = job.progress.snapshot();
                let total = job.total_jobs;
                if (done, insts) != last {
                    last = (done, insts);
                    break Step::Progress(done, total, insts);
                }
                let (guard, _timeout) = shared
                    .cv
                    .wait_timeout(reg, Duration::from_millis(50))
                    .expect("registry poisoned");
                reg = guard;
            }
        };
        match step {
            Step::Missing => {
                writeln!(writer, "{}", unknown_job_line(id))?;
                return Ok(());
            }
            Step::Done(name, cached) => {
                let files = shared
                    .cache
                    .lock()
                    .expect("cache poisoned")
                    .lookup(fingerprint);
                match files {
                    Some(files) => writeln!(writer, "{}", done_line(id, &name, cached, &files))?,
                    None => writeln!(writer, "{}", evicted_line(id))?,
                }
                return Ok(());
            }
            Step::Progress(done, total, insts) => {
                writeln!(writer, "{}", progress_line(id, done, total, insts))?;
                writer.flush()?;
            }
        }
    }
}

fn status_response(shared: &Shared) -> String {
    use nosq_core::ser::JsonObject;
    let reg = shared.registry.lock().expect("registry poisoned");
    let count = |s: JobStatus| reg.jobs.values().filter(|j| j.status == s).count() as u64;
    let (hits, misses, evictions) = shared.cache.lock().expect("cache poisoned").stats();
    let (journal_records, journal_truncated) = shared
        .journal
        .lock()
        .expect("journal poisoned")
        .as_ref()
        .map_or((0, 0), |j| (j.records(), j.truncated_bytes()));
    let mut obj = JsonObject::new();
    obj.field_bool("ok", true)
        .field_bool("draining", reg.draining)
        .field_u64("queued", count(JobStatus::Queued))
        .field_u64("running", count(JobStatus::Running))
        .field_u64("completed", count(JobStatus::Done))
        .field_u64("jobs_run", reg.jobs_run)
        .field_u64("cache_hits", reg.cache_hits)
        .field_u64("cache_misses", reg.cache_misses)
        .field_u64("cache_lookup_hits", hits)
        .field_u64("cache_lookup_misses", misses)
        .field_u64("cache_evictions", evictions)
        .field_u64("queue_len", shared.queue.len() as u64)
        .field_u64("journal_records", journal_records)
        .field_u64("journal_truncated_bytes", journal_truncated)
        .field_u64("connections", reg.connections);
    obj.finish()
}
