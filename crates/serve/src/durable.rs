//! The durable-I/O seam: every file write and fsync in the service
//! layer goes through [`DurableIo`], so the journal's crash-safety
//! argument can be *tested* instead of trusted.
//!
//! Two implementations:
//!
//! * [`OsIo`] — the real thing, a thin wrapper over `std::fs`. This
//!   module is the **only** place in `crates/serve` allowed to touch
//!   raw file APIs (`nosq lint` enforces it).
//! * [`FaultIo`] — a deterministic, seeded, in-memory filesystem model
//!   with scheduled faults: torn writes, short writes, `ENOSPC`, fsync
//!   failures, and whole-process crashes. Its state lives behind an
//!   [`Arc`], so it survives a simulated "reboot" — tests crash the
//!   journal at op *k*, reboot, reopen, and assert the recovery
//!   invariant from the durable-queue literature (ROADMAP refs): a
//!   record is observed fully applied or not at all, and everything
//!   acknowledged *after* an fsync is never lost.
//!
//! The fault model is conservative in the direction that matters: on a
//! crash, data beyond the last successful `sync_data` survives only as
//! a *seeded-arbitrary prefix* (the page cache may have written back
//! any amount of the tail, in order), and a failed fsync never marks
//! its bytes durable — the classic fsync-gate failure mode.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// One open durable file. Append-only plus truncate — exactly the
/// operations a recovery-truncating journal needs, nothing more.
pub trait DurableFile: Send {
    /// Reads the entire file from the start into `buf`.
    fn read_to_end(&mut self, buf: &mut Vec<u8>) -> std::io::Result<usize>;
    /// Appends `bytes` at the end of the file.
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()>;
    /// Forces appended data to stable storage. Only data covered by a
    /// *successful* `sync_data` is guaranteed to survive a crash.
    fn sync_data(&mut self) -> std::io::Result<()>;
    /// Truncates the file to `len` bytes.
    fn truncate(&mut self, len: u64) -> std::io::Result<()>;
}

/// A factory of [`DurableFile`]s — the seam the journal is written
/// against.
pub trait DurableIo: Send {
    /// Opens (creating if absent) the file at `path` for durable
    /// append access.
    fn open(&mut self, path: &Path) -> std::io::Result<Box<dyn DurableFile>>;
}

/// The production implementation: real files, real fsync.
#[derive(Clone, Copy, Debug, Default)]
pub struct OsIo;

struct OsFile(File);

impl DurableIo for OsIo {
    fn open(&mut self, path: &Path) -> std::io::Result<Box<dyn DurableFile>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(Box::new(OsFile(file)))
    }
}

impl DurableFile for OsFile {
    fn read_to_end(&mut self, buf: &mut Vec<u8>) -> std::io::Result<usize> {
        self.0.seek(SeekFrom::Start(0))?;
        self.0.read_to_end(buf)
    }

    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.0.seek(SeekFrom::End(0))?;
        self.0.write_all(bytes)
    }

    fn sync_data(&mut self) -> std::io::Result<()> {
        self.0.sync_data()
    }

    fn truncate(&mut self, len: u64) -> std::io::Result<()> {
        self.0.set_len(len)?;
        self.0.seek(SeekFrom::End(0))?;
        Ok(())
    }
}

/// What a scheduled fault does when its operation comes up.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// On an append: a seeded-arbitrary prefix of the bytes lands in
    /// the (unsynced) file, then the process dies — the canonical torn
    /// write. On a sync: the sync fails and the process dies.
    TornWrite,
    /// On an append: a prefix lands, the call returns `WriteZero`, the
    /// process lives. On a sync: the sync fails, the process lives.
    ShortWrite,
    /// On an append: nothing lands, the call returns `StorageFull`. On
    /// a sync: the sync fails (nothing becomes durable).
    Enospc,
    /// On a sync: the sync fails and *none* of the pending bytes become
    /// durable (the fsync-gate failure). On an append: behaves like
    /// [`FaultKind::Enospc`].
    SyncFail,
    /// The process dies before the operation does anything.
    Crash,
}

/// A fault scheduled at a specific operation index. Appends, syncs,
/// and truncates each consume one index, in call order — a schedule is
/// therefore a deterministic crash *point*, reproducible run to run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Fault {
    /// The 0-based operation index the fault fires at.
    pub at_op: u64,
    /// What happens.
    pub kind: FaultKind,
}

#[derive(Default)]
struct FileModel {
    data: Vec<u8>,
    /// Bytes guaranteed to survive a crash (covered by a successful
    /// `sync_data`).
    durable_len: usize,
}

struct FaultState {
    files: BTreeMap<PathBuf, FileModel>,
    faults: Vec<Fault>,
    op: u64,
    crashed: bool,
    rng: u64,
}

impl FaultState {
    fn next_rand(&mut self) -> u64 {
        // xorshift64* — deterministic, seed-stable, no external deps.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn take_fault(&mut self) -> Option<FaultKind> {
        let op = self.op;
        self.op += 1;
        self.faults.iter().find(|f| f.at_op == op).map(|f| f.kind)
    }
}

fn crash_error() -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::BrokenPipe, "simulated crash")
}

/// The seeded fault-injection [`DurableIo`]. Cloning shares the
/// underlying "disk", so a clone opened after [`FaultIo::reboot`] sees
/// exactly what survived the crash.
#[derive(Clone)]
pub struct FaultIo {
    state: Arc<Mutex<FaultState>>,
}

impl FaultIo {
    /// A fault-free in-memory filesystem with the given RNG seed (the
    /// seed decides how much of an unsynced tail survives each crash
    /// and where torn writes tear).
    pub fn new(seed: u64) -> FaultIo {
        FaultIo {
            state: Arc::new(Mutex::new(FaultState {
                files: BTreeMap::new(),
                faults: Vec::new(),
                op: 0,
                crashed: false,
                rng: seed | 1,
            })),
        }
    }

    /// Schedules `kind` to fire at operation `at_op` (builder-style).
    pub fn with_fault(self, at_op: u64, kind: FaultKind) -> FaultIo {
        self.state
            .lock()
            .expect("fault state poisoned")
            .faults
            .push(Fault { at_op, kind });
        self
    }

    /// Whether a crash fault has fired (every operation now fails
    /// until [`FaultIo::reboot`]).
    pub fn crashed(&self) -> bool {
        self.state.lock().expect("fault state poisoned").crashed
    }

    /// Operations performed so far (append + sync + truncate).
    pub fn ops(&self) -> u64 {
        self.state.lock().expect("fault state poisoned").op
    }

    /// Simulates the machine coming back up after a crash: for every
    /// file, the durable prefix survives intact and a seeded-arbitrary
    /// prefix of the unsynced tail survives with it (the page cache
    /// wrote back *some* of it, in order — never out of order, never
    /// bytes that were never written). Clears the crash flag and the
    /// remaining fault schedule.
    pub fn reboot(&self) {
        let mut st = self.state.lock().expect("fault state poisoned");
        let mut keeps = Vec::new();
        for model in st.files.values() {
            keeps.push(model.data.len() - model.durable_len);
        }
        let keeps: Vec<usize> = keeps
            .into_iter()
            .map(|tail| {
                if tail == 0 {
                    0
                } else {
                    (st.next_rand() as usize) % (tail + 1)
                }
            })
            .collect();
        for (model, keep) in st.files.values_mut().zip(keeps) {
            let survive = model.durable_len + keep;
            model.data.truncate(survive);
            // What survived the reboot is on stable storage now.
            model.durable_len = model.data.len();
        }
        st.crashed = false;
        st.faults.clear();
    }

    /// The current full contents of `path` (test inspection).
    pub fn contents(&self, path: &Path) -> Vec<u8> {
        self.state
            .lock()
            .expect("fault state poisoned")
            .files
            .get(path)
            .map(|m| m.data.clone())
            .unwrap_or_default()
    }
}

impl DurableIo for FaultIo {
    fn open(&mut self, path: &Path) -> std::io::Result<Box<dyn DurableFile>> {
        let mut st = self.state.lock().expect("fault state poisoned");
        if st.crashed {
            return Err(crash_error());
        }
        st.files.entry(path.to_path_buf()).or_default();
        Ok(Box::new(FaultFile {
            state: Arc::clone(&self.state),
            path: path.to_path_buf(),
        }))
    }
}

struct FaultFile {
    state: Arc<Mutex<FaultState>>,
    path: PathBuf,
}

impl DurableFile for FaultFile {
    fn read_to_end(&mut self, buf: &mut Vec<u8>) -> std::io::Result<usize> {
        let st = self.state.lock().expect("fault state poisoned");
        if st.crashed {
            return Err(crash_error());
        }
        let data = &st.files.get(&self.path).expect("file opened").data;
        buf.extend_from_slice(data);
        Ok(data.len())
    }

    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let mut st = self.state.lock().expect("fault state poisoned");
        if st.crashed {
            return Err(crash_error());
        }
        match st.take_fault() {
            None => {
                let model = st.files.get_mut(&self.path).expect("file opened");
                model.data.extend_from_slice(bytes);
                Ok(())
            }
            Some(FaultKind::TornWrite) => {
                let tear = if bytes.is_empty() {
                    0
                } else {
                    (st.next_rand() as usize) % bytes.len()
                };
                let model = st.files.get_mut(&self.path).expect("file opened");
                model.data.extend_from_slice(&bytes[..tear]);
                st.crashed = true;
                Err(crash_error())
            }
            Some(FaultKind::ShortWrite) => {
                let short = if bytes.is_empty() {
                    0
                } else {
                    (st.next_rand() as usize) % bytes.len()
                };
                let model = st.files.get_mut(&self.path).expect("file opened");
                model.data.extend_from_slice(&bytes[..short]);
                Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "simulated short write",
                ))
            }
            Some(FaultKind::Enospc) | Some(FaultKind::SyncFail) => Err(std::io::Error::new(
                std::io::ErrorKind::StorageFull,
                "simulated ENOSPC",
            )),
            Some(FaultKind::Crash) => {
                st.crashed = true;
                Err(crash_error())
            }
        }
    }

    fn sync_data(&mut self) -> std::io::Result<()> {
        let mut st = self.state.lock().expect("fault state poisoned");
        if st.crashed {
            return Err(crash_error());
        }
        match st.take_fault() {
            None => {
                let model = st.files.get_mut(&self.path).expect("file opened");
                model.durable_len = model.data.len();
                Ok(())
            }
            Some(FaultKind::TornWrite) | Some(FaultKind::Crash) => {
                // The sync fails AND the process dies; durable_len is
                // untouched — unsynced bytes stay at the crash's mercy.
                st.crashed = true;
                Err(crash_error())
            }
            Some(_) => Err(std::io::Error::other("simulated fsync failure")),
        }
    }

    fn truncate(&mut self, len: u64) -> std::io::Result<()> {
        let mut st = self.state.lock().expect("fault state poisoned");
        if st.crashed {
            return Err(crash_error());
        }
        match st.take_fault() {
            Some(FaultKind::TornWrite) | Some(FaultKind::Crash) => {
                st.crashed = true;
                return Err(crash_error());
            }
            Some(_) => return Err(std::io::Error::other("simulated truncate failure")),
            None => {}
        }
        let model = st.files.get_mut(&self.path).expect("file opened");
        model.data.truncate(len as usize);
        model.durable_len = model.durable_len.min(len as usize);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path() -> PathBuf {
        PathBuf::from("/virtual/journal")
    }

    fn exercise_basics(io: &mut dyn DurableIo, target: &Path) {
        let mut f = io.open(target).unwrap();
        f.append(b"hello ").unwrap();
        f.append(b"world").unwrap();
        f.sync_data().unwrap();
        f.truncate(5).unwrap();
        f.append(b"!").unwrap();
        let mut buf = Vec::new();
        f.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"hello!");
    }

    #[test]
    fn os_and_fault_io_agree_on_the_basics() {
        let dir = std::env::temp_dir().join(format!("nosq-durable-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let real_path = dir.join("basics.bin");
        let _ = std::fs::remove_file(&real_path);
        exercise_basics(&mut OsIo, &real_path);
        exercise_basics(&mut FaultIo::new(1), &path());
        let _ = std::fs::remove_file(&real_path);
    }

    #[test]
    fn synced_bytes_survive_any_crash() {
        let io = FaultIo::new(42).with_fault(3, FaultKind::Crash);
        let mut handle = io.clone();
        let mut f = handle.open(&path()).unwrap();
        f.append(b"durable").unwrap(); // op 0
        f.sync_data().unwrap(); // op 1
        f.append(b" lost?").unwrap(); // op 2
        assert!(f.sync_data().is_err()); // op 3: crash
        assert!(io.crashed());
        assert!(f.append(b"after").is_err(), "dead process cannot write");

        io.reboot();
        let survived = io.contents(&path());
        assert!(survived.starts_with(b"durable"), "synced prefix survives");
        assert!(
            survived.len() <= b"durable lost?".len(),
            "nothing invents bytes"
        );
    }

    #[test]
    fn torn_write_leaves_a_strict_prefix() {
        for seed in 1..20u64 {
            let io = FaultIo::new(seed).with_fault(0, FaultKind::TornWrite);
            let mut handle = io.clone();
            let mut f = handle.open(&path()).unwrap();
            assert!(f.append(b"0123456789").is_err());
            assert!(io.crashed());
            io.reboot();
            let survived = io.contents(&path());
            assert!(survived.len() < 10, "a torn write is never complete");
            assert_eq!(&b"0123456789"[..survived.len()], &survived[..]);
        }
    }

    #[test]
    fn failed_fsync_makes_nothing_durable() {
        // Op 1's fsync fails, op 2's does too (crashing the process);
        // because the first failure left durable_len at 0, the crash
        // may claw back everything.
        let io = FaultIo::new(7)
            .with_fault(1, FaultKind::SyncFail)
            .with_fault(2, FaultKind::Crash);
        let mut handle = io.clone();
        let mut f = handle.open(&path()).unwrap();
        f.append(b"pending").unwrap(); // op 0
        assert!(f.sync_data().is_err()); // op 1: fsync fails
        assert!(f.sync_data().is_err()); // op 2: crash
        io.reboot();
        let survived = io.contents(&path());
        assert!(
            survived.len() <= b"pending".len() && b"pending".starts_with(&survived[..]),
            "bytes behind a failed fsync have no durability guarantee"
        );
    }

    #[test]
    fn enospc_writes_nothing() {
        let io = FaultIo::new(3).with_fault(0, FaultKind::Enospc);
        let mut handle = io.clone();
        let mut f = handle.open(&path()).unwrap();
        let err = f.append(b"data").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
        assert!(io.contents(&path()).is_empty());
        assert!(!io.crashed(), "ENOSPC is an error, not a crash");
        // The process lives: later writes work.
        f.append(b"ok").unwrap();
        f.sync_data().unwrap();
        assert_eq!(io.contents(&path()), b"ok");
    }

    #[test]
    fn short_write_is_an_error_with_a_prefix() {
        let io = FaultIo::new(11).with_fault(0, FaultKind::ShortWrite);
        let mut handle = io.clone();
        let mut f = handle.open(&path()).unwrap();
        assert!(f.append(b"0123456789").is_err());
        assert!(!io.crashed());
        let data = io.contents(&path());
        assert!(data.len() < 10);
        assert_eq!(&b"0123456789"[..data.len()], &data[..]);
    }

    #[test]
    fn reboot_is_seed_deterministic() {
        let run = |seed: u64| -> Vec<u8> {
            let io = FaultIo::new(seed).with_fault(2, FaultKind::Crash);
            let mut handle = io.clone();
            let mut f = handle.open(&path()).unwrap();
            f.append(b"abc").unwrap();
            f.sync_data().unwrap();
            let _ = f.append(b"defghij"); // op 2: the scheduled crash
            let _ = f.sync_data();
            io.reboot();
            io.contents(&path())
        };
        assert_eq!(run(5), run(5), "same seed, same surviving bytes");
    }
}
