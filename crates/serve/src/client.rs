//! A blocking TCP client for the `nosq serve` protocol.
//!
//! One [`ServeClient`] owns one connection and issues any number of
//! sequential requests over it. The load generator, the `nosq submit`
//! / `nosq shutdown` subcommands, and the integration suites all talk
//! to the daemon through this type, so the wire protocol has exactly
//! one client-side implementation.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use nosq_lab::json::{self, Json};
use nosq_lab::Artifact;

use crate::protocol::{artifacts_from_json, request_line, Request};

/// A client-side failure: transport, protocol, or a daemon-reported
/// error message.
#[derive(Debug)]
pub struct ClientError {
    /// Human-readable description.
    pub msg: String,
    /// Set when the daemon sent a structured `busy` backpressure
    /// response: retry after roughly this many milliseconds.
    pub retry_ms: Option<u64>,
}

impl ClientError {
    /// A plain (non-retryable) error.
    pub fn new(msg: impl Into<String>) -> ClientError {
        ClientError {
            msg: msg.into(),
            retry_ms: None,
        }
    }

    /// Whether this is the daemon's structured backpressure response —
    /// the request was well-formed and can simply be retried after
    /// [`retry_ms`](ClientError::retry_ms).
    pub fn busy(&self) -> bool {
        self.retry_ms.is_some()
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::new(format!("connection error: {e}"))
    }
}

/// The `submit` acknowledgement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubmitReply {
    /// The job id (the campaign fingerprint in hex).
    pub job: String,
    /// `queued`, `running`, `done`, or `cached`.
    pub state: String,
}

/// The final outcome of waiting on a job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The campaign name, echoed back from the daemon's registry.
    pub name: String,
    /// The deterministic artifacts, byte-identical to `nosq run`.
    pub artifacts: Vec<Artifact>,
    /// Whether the daemon served the result from cache or journal.
    pub cached: bool,
    /// How many progress events streamed before `done`.
    pub progress_events: usize,
}

/// One connection to a `nosq serve` daemon.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServeClient {
    /// Connects to `addr` (e.g. `127.0.0.1:7433`).
    pub fn connect(addr: &str) -> Result<ServeClient, ClientError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ClientError::new(format!("connecting to {addr}: {e}")))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(ServeClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        writeln!(self.writer, "{}", request_line(req))?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_event(&mut self) -> Result<Json, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::new("daemon closed the connection"));
        }
        let doc = json::parse(line.trim_end())
            .map_err(|e| ClientError::new(format!("malformed response: {e}")))?;
        if doc.get("ok") == Some(&Json::Bool(false)) {
            let msg = doc
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unspecified daemon error");
            // The structured backpressure response is retryable; carry
            // the daemon's hint so callers can back off sensibly.
            let retry_ms = if doc.get("busy") == Some(&Json::Bool(true)) {
                Some(doc.get("retry_ms").and_then(Json::as_u64).unwrap_or(100))
            } else {
                None
            };
            return Err(ClientError {
                msg: format!("daemon error: {msg}"),
                retry_ms,
            });
        }
        Ok(doc)
    }

    /// Submits a campaign spec (text or JSON form).
    pub fn submit(&mut self, spec: &str) -> Result<SubmitReply, ClientError> {
        self.send(&Request::Submit {
            spec: spec.to_owned(),
        })?;
        let doc = self.read_event()?;
        let field = |name: &str| -> Result<String, ClientError> {
            doc.get(name)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| ClientError::new(format!("submit reply missing `{name}`")))
        };
        Ok(SubmitReply {
            job: field("job")?,
            state: field("state")?,
        })
    }

    /// Blocks until `job` completes, consuming the progress stream.
    /// `on_progress` sees each `(jobs done, total jobs, insts)` event.
    pub fn wait_with(
        &mut self,
        job: &str,
        mut on_progress: impl FnMut(u64, u64, u64),
    ) -> Result<JobOutcome, ClientError> {
        self.send(&Request::Wait {
            job: job.to_owned(),
        })?;
        let mut progress_events = 0;
        loop {
            let doc = self.read_event()?;
            match doc.get("event").and_then(Json::as_str) {
                Some("progress") => {
                    progress_events += 1;
                    let num = |name: &str| doc.get(name).and_then(Json::as_u64).unwrap_or(0);
                    on_progress(num("done"), num("total"), num("insts"));
                }
                Some("done") => {
                    let cached = doc.get("cached") == Some(&Json::Bool(true));
                    let name = doc
                        .get("name")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_owned();
                    let artifacts = artifacts_from_json(&doc).map_err(ClientError::new)?;
                    return Ok(JobOutcome {
                        name,
                        artifacts,
                        cached,
                        progress_events,
                    });
                }
                other => {
                    return Err(ClientError::new(format!(
                        "unexpected wait event: {other:?}"
                    )));
                }
            }
        }
    }

    /// [`wait_with`](Self::wait_with) without a progress callback.
    pub fn wait(&mut self, job: &str) -> Result<JobOutcome, ClientError> {
        self.wait_with(job, |_, _, _| {})
    }

    /// Submit-then-wait in one call.
    pub fn run_spec(&mut self, spec: &str) -> Result<JobOutcome, ClientError> {
        let reply = self.submit(spec)?;
        self.wait(&reply.job)
    }

    /// Fetches the daemon status object.
    pub fn status(&mut self) -> Result<Json, ClientError> {
        self.send(&Request::Status)?;
        self.read_event()
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Ping)?;
        self.read_event().map(|_| ())
    }

    /// Asks the daemon to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Shutdown)?;
        self.read_event().map(|_| ())
    }
}
