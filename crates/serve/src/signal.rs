//! SIGTERM / SIGINT → graceful drain, without a libc crate.
//!
//! The daemon promises "graceful shutdown on SIGTERM": the handler may
//! only do async-signal-safe work, so it sets one static atomic flag
//! and returns; the accept loop polls [`drain_requested`] and runs the
//! same drain path a `shutdown` request takes. Registration goes
//! through the C `signal(2)` entry point directly — the workspace has
//! no crates.io access, and one two-argument FFI declaration is not
//! worth a libc stub crate.
//!
//! This is the one module in the workspace allowed to touch
//! `std::sync::atomic` outside the `nosq_check::sync` facade
//! (allowlisted in `lint.allow`): a signal handler cannot take the
//! facade's generic machinery, and a `static` needs a `const`
//! constructor the facade trait cannot promise. Nothing is
//! model-checked here because nothing concurrent happens here — one
//! relaxed store in the handler, one relaxed load in the poll loop.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

static DRAIN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod unix {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: a single relaxed atomic store.
        super::DRAIN.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    pub(super) fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

/// Installs the SIGTERM/SIGINT handlers (no-op off Unix). Idempotent.
pub fn install() {
    #[cfg(unix)]
    unix::install();
}

/// Whether a termination signal has arrived since [`install`].
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::Relaxed)
}
