//! Campaign fingerprints: the cache / journal / job-id key space.
//!
//! A fingerprint condenses everything that determines a campaign's
//! artifact bytes — name, workload seed, every `(profile,
//! configuration)` pair in grid order, and the baseline choice — into
//! one 64-bit FNV-1a hash. Two spec files that resolve to the same
//! campaign (text vs JSON form, alias vs canonical preset names)
//! therefore share a fingerprint, and the daemon serves the second one
//! from cache; any change that could alter a single artifact byte
//! (budget, seed, an extra profile) lands in a different slot.
//!
//! The hash is hand-rolled FNV-1a, same as the rest of the workspace —
//! no crates.io access, and 64 bits is plenty for a cache key space
//! measured in thousands of campaigns, not billions.

use nosq_lab::Campaign;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64 hasher.
#[derive(Copy, Clone, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET)
    }

    /// Folds bytes into the running hash.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// Hashes one byte slice in one call.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// The campaign's service identity: a stable hash over every input
/// that determines its deterministic artifact bytes.
pub fn campaign_fingerprint(campaign: &Campaign) -> u64 {
    let mut h = Fnv1a::new();
    h.update(campaign.name.as_bytes()).update(b"\0");
    h.update(&campaign.seed.to_le_bytes());
    // Baseline index, or a sentinel distinct from any index.
    let base = campaign.baseline.map_or(u64::MAX, |b| b as u64);
    h.update(&base.to_le_bytes());
    for profile in &campaign.profiles {
        h.update(profile.name.as_bytes()).update(b"\0");
    }
    for named in &campaign.configs {
        h.update(named.name.as_bytes()).update(b"\0");
        // `SimConfig` derives `Debug` over every field; the debug text
        // is a deterministic function of the full configuration, so
        // hashing it captures any parameter a sweep may have touched.
        h.update(format!("{:?}", named.config).as_bytes());
        h.update(b"\0");
    }
    h.finish()
}

/// A fingerprint rendered as the 16-hex-digit job id the protocol uses.
pub fn fingerprint_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

/// Parses a 16-hex-digit job id back into a fingerprint.
pub fn parse_fingerprint(hex: &str) -> Option<u64> {
    if hex.len() == 16 {
        u64::from_str_radix(hex, 16).ok()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nosq_lab::Preset;

    fn campaign(name: &str, insts: u64, seed: u64) -> Campaign {
        Campaign::builder(name)
            .preset(Preset::Nosq)
            .preset(Preset::BaselineStoresets)
            .profiles(["gzip", "gsm.e"])
            .max_insts(insts)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fingerprint_separates_what_artifacts_separate() {
        let base = campaign_fingerprint(&campaign("x", 2000, 42));
        assert_eq!(base, campaign_fingerprint(&campaign("x", 2000, 42)));
        assert_ne!(base, campaign_fingerprint(&campaign("y", 2000, 42)));
        assert_ne!(base, campaign_fingerprint(&campaign("x", 2001, 42)));
        assert_ne!(base, campaign_fingerprint(&campaign("x", 2000, 43)));
    }

    #[test]
    fn spec_form_does_not_matter() {
        let text = "name = same\nconfigs = nosq, assoc-sq\nprofiles = gzip\nmax_insts = 3000\n";
        let json = r#"{"name":"same","configs":["nosq","baseline-storesets"],
                       "profiles":["gzip"],"max_insts":3000}"#;
        let a = Campaign::from_spec(text).unwrap();
        let b = Campaign::from_spec(json).unwrap();
        assert_eq!(campaign_fingerprint(&a), campaign_fingerprint(&b));
    }

    #[test]
    fn hex_roundtrip() {
        let fp = 0x0123_4567_89ab_cdef;
        let hex = fingerprint_hex(fp);
        assert_eq!(hex.len(), 16);
        assert_eq!(parse_fingerprint(&hex), Some(fp));
        assert_eq!(parse_fingerprint("xyz"), None);
        assert_eq!(parse_fingerprint("0123"), None);
    }
}
