//! The `nosq serve` wire protocol: line-delimited JSON over TCP.
//!
//! Every request and every response is exactly one `\n`-terminated JSON
//! object — no framing beyond the newline, no binary, so a session is
//! inspectable with `nc`. Requests carry a `"cmd"` discriminator;
//! responses carry `"ok"` (and errors an `"error"` string). The one
//! multi-line exchange is `wait`, which streams `progress` event
//! objects and terminates with a single `done` event carrying the
//! artifacts (artifact contents embed newline-free thanks to JSON
//! string escaping).
//!
//! ```text
//! → {"cmd":"submit","spec":"name = demo\n..."}
//! ← {"ok":true,"job":"91f0a30fb2a9e6c4","state":"queued"}
//! → {"cmd":"wait","job":"91f0a30fb2a9e6c4"}
//! ← {"ok":true,"event":"progress","job":"91f0…","done":1,"total":4,"insts":8000}
//! ← {"ok":true,"event":"done","job":"91f0…","cached":false,"artifacts":[…]}
//! ```
//!
//! Parsing reuses the lab's hand-rolled [`nosq_lab::json`] parser and
//! the [`nosq_core::ser`] writers — the protocol layer owns no
//! serialization machinery of its own.

use nosq_core::ser::{JsonArray, JsonObject};
use nosq_lab::json::{self, Json};
use nosq_lab::Artifact;

/// A parsed client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Submit a campaign spec (text or JSON form) for execution.
    Submit {
        /// The spec file contents, verbatim.
        spec: String,
    },
    /// Stream progress for a job until it completes.
    Wait {
        /// The job id returned by `submit`.
        job: String,
    },
    /// One-line daemon health / queue / cache snapshot.
    Status,
    /// Liveness probe.
    Ping,
    /// Begin a graceful drain: stop accepting work, finish what is
    /// queued, journal everything, exit.
    Shutdown,
}

/// Parses one request line. `Err` is the message to send back in an
/// error response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = json::parse(line).map_err(|e| format!("malformed request: {e}"))?;
    let cmd = doc
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or("request needs a string `cmd` field")?;
    let field = |name: &str| -> Result<String, String> {
        doc.get(name)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or(format!("`{cmd}` needs a string `{name}` field"))
    };
    match cmd {
        "submit" => Ok(Request::Submit {
            spec: field("spec")?,
        }),
        "wait" => Ok(Request::Wait { job: field("job")? }),
        "status" => Ok(Request::Status),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown cmd `{other}`")),
    }
}

/// Serializes a request — the client side of [`parse_request`].
pub fn request_line(req: &Request) -> String {
    let mut obj = JsonObject::new();
    match req {
        Request::Submit { spec } => obj.field_str("cmd", "submit").field_str("spec", spec),
        Request::Wait { job } => obj.field_str("cmd", "wait").field_str("job", job),
        Request::Status => obj.field_str("cmd", "status"),
        Request::Ping => obj.field_str("cmd", "ping"),
        Request::Shutdown => obj.field_str("cmd", "shutdown"),
    };
    obj.finish()
}

/// An error response line.
pub fn error_line(msg: &str) -> String {
    let mut obj = JsonObject::new();
    obj.field_bool("ok", false).field_str("error", msg);
    obj.finish()
}

/// The backpressure response: the queue is full *right now*, try again
/// in roughly `retry_ms`. Structured (`"busy":true` + machine-readable
/// delay) so clients can implement backoff instead of string-matching.
pub fn busy_line(retry_ms: u64) -> String {
    let mut obj = JsonObject::new();
    obj.field_bool("ok", false)
        .field_str("error", "busy: queue full")
        .field_bool("busy", true)
        .field_u64("retry_ms", retry_ms);
    obj.finish()
}

/// The structured `wait`-on-unknown-id error: the id was never
/// submitted this daemon lifetime (or is malformed). Carries
/// `"unknown_job":true` so clients distinguish it from transport
/// errors.
pub fn unknown_job_line(id: &str) -> String {
    let mut obj = JsonObject::new();
    obj.field_bool("ok", false)
        .field_str(
            "error",
            &format!("unknown job `{id}`: not submitted this daemon lifetime"),
        )
        .field_bool("unknown_job", true);
    obj.finish()
}

/// The structured cache-evicted error: the job completed, but its
/// artifacts have been evicted from the LRU cache; resubmitting the
/// spec recomputes (or journal-recovers) them.
pub fn evicted_line(id: &str) -> String {
    let mut obj = JsonObject::new();
    obj.field_bool("ok", false)
        .field_str(
            "error",
            &format!("job `{id}` completed but its artifacts were evicted; resubmit the spec"),
        )
        .field_bool("evicted", true);
    obj.finish()
}

/// The `submit` success response.
pub fn submit_line(job: &str, state: &str) -> String {
    let mut obj = JsonObject::new();
    obj.field_bool("ok", true)
        .field_str("job", job)
        .field_str("state", state);
    obj.finish()
}

/// One `wait` progress event.
pub fn progress_line(job: &str, done: usize, total: usize, insts: u64) -> String {
    let mut obj = JsonObject::new();
    obj.field_bool("ok", true)
        .field_str("event", "progress")
        .field_str("job", job)
        .field_u64("done", done as u64)
        .field_u64("total", total as u64)
        .field_u64("insts", insts);
    obj.finish()
}

/// The terminal `wait` event, artifacts inline.
pub fn done_line(job: &str, name: &str, cached: bool, artifacts: &[Artifact]) -> String {
    let mut arr = JsonArray::new();
    for a in artifacts {
        let mut obj = JsonObject::new();
        obj.field_str("file_name", &a.file_name)
            .field_str("contents", &a.contents);
        arr.push_raw(&obj.finish());
    }
    let mut obj = JsonObject::new();
    obj.field_bool("ok", true)
        .field_str("event", "done")
        .field_str("job", job)
        .field_str("name", name)
        .field_bool("cached", cached)
        .field_raw("artifacts", &arr.finish());
    obj.finish()
}

/// Extracts the artifacts array from a parsed `done` event (or a
/// journal record, which shares the shape).
pub fn artifacts_from_json(doc: &Json) -> Result<Vec<Artifact>, String> {
    let arr = doc
        .get("artifacts")
        .and_then(Json::as_array)
        .ok_or("missing `artifacts` array")?;
    arr.iter()
        .map(|item| {
            let file_name = item
                .get("file_name")
                .and_then(Json::as_str)
                .ok_or("artifact missing `file_name`")?
                .to_owned();
            let contents = item
                .get("contents")
                .and_then(Json::as_str)
                .ok_or("artifact missing `contents`")?
                .to_owned();
            Ok(Artifact {
                file_name,
                contents,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let reqs = [
            Request::Submit {
                spec: "name = x\nconfigs = nosq\nprofiles = gzip\n".into(),
            },
            Request::Wait { job: "abcd".into() },
            Request::Status,
            Request::Ping,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = request_line(&req);
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(parse_request(&line).unwrap(), req);
        }
    }

    #[test]
    fn bad_requests_are_described() {
        assert!(parse_request("nonsense").unwrap_err().contains("malformed"));
        assert!(parse_request("{}").unwrap_err().contains("cmd"));
        assert!(parse_request(r#"{"cmd":"fly"}"#)
            .unwrap_err()
            .contains("fly"));
        assert!(parse_request(r#"{"cmd":"wait"}"#)
            .unwrap_err()
            .contains("job"));
    }

    #[test]
    fn done_event_roundtrips_artifacts() {
        let artifacts = vec![
            Artifact {
                file_name: "x.matrix.csv".into(),
                contents: "a,b\n1,2\n".into(),
            },
            Artifact {
                file_name: "x.summary.json".into(),
                contents: "{\"k\":\"quote \\\" here\"}".into(),
            },
        ];
        let line = done_line("01", "demo", false, &artifacts);
        assert!(!line.contains('\n'), "artifacts must embed newline-free");
        let doc = nosq_lab::json::parse(&line).unwrap();
        assert_eq!(doc.get("event").unwrap().as_str(), Some("done"));
        assert_eq!(doc.get("name").unwrap().as_str(), Some("demo"));
        assert_eq!(doc.get("cached").unwrap(), &Json::Bool(false));
        assert_eq!(artifacts_from_json(&doc).unwrap(), artifacts);
    }

    #[test]
    fn structured_error_lines_are_machine_readable() {
        let b = json::parse(&busy_line(250)).unwrap();
        assert_eq!(b.get("ok").unwrap(), &Json::Bool(false));
        assert_eq!(b.get("busy").unwrap(), &Json::Bool(true));
        assert_eq!(b.get("retry_ms").unwrap().as_u64(), Some(250));
        let u = json::parse(&unknown_job_line("ff00")).unwrap();
        assert_eq!(u.get("unknown_job").unwrap(), &Json::Bool(true));
        assert!(u.get("error").unwrap().as_str().unwrap().contains("ff00"));
        let e = json::parse(&evicted_line("ff00")).unwrap();
        assert_eq!(e.get("evicted").unwrap(), &Json::Bool(true));
        assert!(e
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("resubmit"));
    }

    #[test]
    fn progress_and_error_lines_parse() {
        let p = nosq_lab::json::parse(&progress_line("j", 2, 4, 900)).unwrap();
        assert_eq!(p.get("done").unwrap().as_u64(), Some(2));
        assert_eq!(p.get("insts").unwrap().as_u64(), Some(900));
        let e = nosq_lab::json::parse(&error_line("busy")).unwrap();
        assert_eq!(e.get("ok").unwrap(), &Json::Bool(false));
        assert_eq!(e.get("error").unwrap().as_str(), Some("busy"));
    }
}
