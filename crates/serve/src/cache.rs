//! The daemon's LRU result cache, keyed by campaign fingerprint.
//!
//! A campaign's artifacts are a pure function of its fingerprint (see
//! [`fingerprint`](crate::fingerprint)), so the cache never needs
//! invalidation — only bounded capacity. Entries are shared as
//! `Arc<Vec<Artifact>>` because a hit is typically handed to several
//! concurrent `wait` streams at once.
//!
//! The implementation is a `BTreeMap` plus a monotonic access tick —
//! not a `HashMap` (forbidden by the determinism lint: randomized
//! iteration order) and not an intrusive list (the cache is consulted
//! once per *campaign*, not per simulated instruction; O(log n) per
//! touch is invisible next to a single job's millions of cycles).

use std::collections::BTreeMap;
use std::sync::Arc;

use nosq_lab::Artifact;

struct Entry {
    artifacts: Arc<Vec<Artifact>>,
    /// Last-access tick; the smallest tick is the eviction victim.
    used: u64,
}

/// A bounded least-recently-used map from campaign fingerprint to its
/// deterministic artifacts. Not thread-safe by itself — the daemon
/// guards it with one mutex, which also serializes the tick counter.
pub struct ResultCache {
    entries: BTreeMap<u64, Entry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` campaigns (minimum 1).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            entries: BTreeMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up a fingerprint, refreshing its recency and counting a
    /// hit or miss.
    pub fn lookup(&mut self, fingerprint: u64) -> Option<Arc<Vec<Artifact>>> {
        self.tick += 1;
        match self.entries.get_mut(&fingerprint) {
            Some(entry) => {
                entry.used = self.tick;
                self.hits += 1;
                Some(Arc::clone(&entry.artifacts))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) a result, evicting the least recently
    /// used entry when over capacity. Does not count as a hit or miss.
    pub fn insert(&mut self, fingerprint: u64, artifacts: Arc<Vec<Artifact>>) {
        self.tick += 1;
        self.entries.insert(
            fingerprint,
            Entry {
                artifacts,
                used: self.tick,
            },
        );
        while self.entries.len() > self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.used)
                .map(|(&fp, _)| fp)
                .expect("non-empty over capacity");
            self.entries.remove(&victim);
            self.evictions += 1;
        }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses, evictions)` since construction.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifacts(tag: &str) -> Arc<Vec<Artifact>> {
        Arc::new(vec![Artifact {
            file_name: format!("{tag}.summary.json"),
            contents: format!("{{\"tag\":\"{tag}\"}}"),
        }])
    }

    #[test]
    fn hit_miss_accounting() {
        let mut cache = ResultCache::new(4);
        assert!(cache.lookup(1).is_none());
        cache.insert(1, artifacts("a"));
        let got = cache.lookup(1).unwrap();
        assert_eq!(got[0].file_name, "a.summary.json");
        assert_eq!(cache.stats(), (1, 1, 0));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = ResultCache::new(2);
        cache.insert(1, artifacts("a"));
        cache.insert(2, artifacts("b"));
        assert!(cache.lookup(1).is_some()); // 2 is now the LRU
        cache.insert(3, artifacts("c"));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(2).is_none(), "LRU entry must be the victim");
        assert!(cache.lookup(1).is_some());
        assert!(cache.lookup(3).is_some());
        assert_eq!(cache.stats(), (3, 1, 1));
    }

    #[test]
    fn capacity_one_still_serves() {
        let mut cache = ResultCache::new(0); // clamped to 1
        cache.insert(1, artifacts("a"));
        cache.insert(2, artifacts("b"));
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(2).is_some());
        assert!(!cache.is_empty());
    }
}
