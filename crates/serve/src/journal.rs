//! The crash-safe append-only result journal.
//!
//! Every completed campaign is appended as one self-verifying record
//! and fsync'd before the daemon reports the job done, so a daemon
//! killed at *any* instant — mid-write included — restarts with every
//! previously completed result intact and re-simulates nothing. The
//! design follows the durable-queue literature the ROADMAP cites: the
//! recovery invariant is that a record either passes its checksum and
//! is replayed, or is discarded along with everything after it (a torn
//! tail can only be the one in-flight append, never a completed
//! record — completion is reported only after `sync_data` returns).
//!
//! # On-disk format
//!
//! ```text
//! "NOSQJRNL" magic (8 bytes)  |  u32 LE version (1)
//! repeated records:
//!   u32 LE payload length  |  u64 LE FNV-1a of payload  |  payload
//! ```
//!
//! The payload is one JSON object `{"job": "<16-hex>", "name": …,
//! "artifacts": [{"file_name", "contents"}, …]}` — the same artifact
//! encoding the wire protocol's `done` event uses, parsed by the same
//! [`protocol::artifacts_from_json`](crate::protocol::artifacts_from_json).
//! Recovery truncates the file back to the last valid record, so a
//! torn tail is also *physically* removed and the next append starts
//! from a clean boundary.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use nosq_core::ser::{JsonArray, JsonObject};
use nosq_lab::{json, Artifact};

use crate::fingerprint::{fnv1a, parse_fingerprint};
use crate::protocol::artifacts_from_json;

const MAGIC: &[u8; 8] = b"NOSQJRNL";
const VERSION: u32 = 1;
/// Sanity bound on one record's payload; a length prefix beyond this is
/// treated as corruption, not an allocation request.
const MAX_RECORD: u32 = 256 * 1024 * 1024;

/// One recovered journal entry.
#[derive(Clone, Debug)]
pub struct JournalEntry {
    /// The campaign fingerprint (also the wire job id).
    pub fingerprint: u64,
    /// The campaign name (diagnostic only).
    pub name: String,
    /// The deterministic artifacts, ready to serve.
    pub artifacts: Arc<Vec<Artifact>>,
}

/// The append-only journal: an open file plus what recovery salvaged.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    records: u64,
    /// Bytes discarded by recovery (0 on a clean open).
    truncated: u64,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, validating every
    /// record and truncating the file back to the last intact one.
    /// Returns the journal and the recovered entries in append order.
    pub fn open(path: &Path) -> std::io::Result<(Journal, Vec<JournalEntry>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut entries = Vec::new();
        let mut valid_end = 0usize;
        if bytes.len() >= MAGIC.len() + 4 {
            if &bytes[..8] != MAGIC
                || u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) != VERSION
            {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{} is not a nosq journal", path.display()),
                ));
            }
            valid_end = 12;
            let mut pos = 12usize;
            while let Some((entry, next)) = read_record(&bytes, pos) {
                entries.push(entry);
                valid_end = next;
                pos = next;
            }
        } else if !bytes.is_empty() {
            // A torn header write: shorter than magic+version. Treat as
            // empty — nothing could have been reported complete yet.
        }

        if valid_end == 0 {
            // Fresh or unusable header: rewrite from scratch.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(MAGIC)?;
            file.write_all(&VERSION.to_le_bytes())?;
            file.sync_data()?;
        } else if valid_end < bytes.len() {
            // Torn tail: physically discard it so the next append
            // starts at a record boundary.
            file.set_len(valid_end as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;

        let truncated = bytes.len().saturating_sub(valid_end.max(12)) as u64;
        let records = entries.len() as u64;
        Ok((
            Journal {
                file,
                path: path.to_path_buf(),
                records,
                truncated,
            },
            entries,
        ))
    }

    /// Appends one completed campaign and fsyncs. Only after this
    /// returns may the daemon report the job complete — that ordering
    /// is the whole crash-safety argument.
    pub fn append(
        &mut self,
        fingerprint: u64,
        name: &str,
        artifacts: &[Artifact],
    ) -> std::io::Result<()> {
        let payload = record_payload(fingerprint, name, artifacts);
        let bytes = payload.as_bytes();
        self.file
            .write_all(&(u32::try_from(bytes.len()).expect("record < 4 GiB")).to_le_bytes())?;
        self.file.write_all(&fnv1a(bytes).to_le_bytes())?;
        self.file.write_all(bytes)?;
        self.file.sync_data()?;
        self.records += 1;
        Ok(())
    }

    /// Records appended plus records recovered.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes the recovery pass discarded on open (0 for a clean file).
    pub fn truncated_bytes(&self) -> u64 {
        self.truncated
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn record_payload(fingerprint: u64, name: &str, artifacts: &[Artifact]) -> String {
    let mut arr = JsonArray::new();
    for a in artifacts {
        let mut obj = JsonObject::new();
        obj.field_str("file_name", &a.file_name)
            .field_str("contents", &a.contents);
        arr.push_raw(&obj.finish());
    }
    let mut obj = JsonObject::new();
    obj.field_str("job", &crate::fingerprint::fingerprint_hex(fingerprint))
        .field_str("name", name)
        .field_raw("artifacts", &arr.finish());
    obj.finish()
}

/// Validates and decodes the record starting at `pos`; `None` on a
/// short, corrupt, or malformed record (recovery stops there).
fn read_record(bytes: &[u8], pos: usize) -> Option<(JournalEntry, usize)> {
    let header = bytes.get(pos..pos + 12)?;
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
    if len > MAX_RECORD {
        return None;
    }
    let checksum = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
    let payload = bytes.get(pos + 12..pos + 12 + len as usize)?;
    if fnv1a(payload) != checksum {
        return None;
    }
    let text = std::str::from_utf8(payload).ok()?;
    let doc = json::parse(text).ok()?;
    let fingerprint = parse_fingerprint(doc.get("job")?.as_str()?)?;
    let name = doc.get("name")?.as_str()?.to_owned();
    let artifacts = artifacts_from_json(&doc).ok()?;
    Some((
        JournalEntry {
            fingerprint,
            name,
            artifacts: Arc::new(artifacts),
        },
        pos + 12 + len as usize,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nosq-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    fn artifacts(tag: &str) -> Vec<Artifact> {
        vec![
            Artifact {
                file_name: format!("{tag}.matrix.csv"),
                contents: format!("a,b\n{tag},2\n"),
            },
            Artifact {
                file_name: format!("{tag}.summary.json"),
                contents: format!("{{\"tag\":\"{tag}\"}}"),
            },
        ]
    }

    #[test]
    fn roundtrips_across_reopen() {
        let path = scratch("roundtrip.journal");
        {
            let (mut j, recovered) = Journal::open(&path).unwrap();
            assert!(recovered.is_empty());
            j.append(7, "one", &artifacts("one")).unwrap();
            j.append(9, "two", &artifacts("two")).unwrap();
            assert_eq!(j.records(), 2);
        }
        let (j, recovered) = Journal::open(&path).unwrap();
        assert_eq!(j.records(), 2);
        assert_eq!(j.truncated_bytes(), 0);
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0].fingerprint, 7);
        assert_eq!(recovered[1].name, "two");
        assert_eq!(*recovered[1].artifacts, artifacts("two"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let path = scratch("torn.journal");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(1, "keep", &artifacts("keep")).unwrap();
            j.append(2, "torn", &artifacts("torn")).unwrap();
        }
        // Chop the last record mid-payload, as a crash mid-append would.
        let full = std::fs::metadata(&path).unwrap().len();
        let torn_len = full - 10;
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(torn_len).unwrap();
        drop(file);

        let (mut j, recovered) = Journal::open(&path).unwrap();
        assert_eq!(recovered.len(), 1, "only the intact record survives");
        assert_eq!(recovered[0].name, "keep");
        assert!(j.truncated_bytes() > 0);
        // The file was physically truncated back to a record boundary,
        // so appends keep working and survive another reopen.
        j.append(3, "after", &artifacts("after")).unwrap();
        drop(j);
        let (_, again) = Journal::open(&path).unwrap();
        assert_eq!(
            again.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            vec!["keep", "after"]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_checksum_stops_recovery() {
        let path = scratch("corrupt.journal");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(1, "good", &artifacts("good")).unwrap();
            j.append(2, "bad", &artifacts("bad")).unwrap();
        }
        // Flip one payload byte of the second record.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let (_, recovered) = Journal::open(&path).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].name, "good");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_file_is_rejected() {
        let path = scratch("foreign.journal");
        std::fs::write(&path, b"this is not a journal file at all").unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_header_is_reset() {
        let path = scratch("torn-header.journal");
        std::fs::write(&path, b"NOSQ").unwrap(); // crash before version
        let (mut j, recovered) = Journal::open(&path).unwrap();
        assert!(recovered.is_empty());
        j.append(5, "fresh", &artifacts("fresh")).unwrap();
        drop(j);
        let (_, again) = Journal::open(&path).unwrap();
        assert_eq!(again.len(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
