//! The crash-safe append-only journal: completed campaigns *and*
//! mid-job checkpoints.
//!
//! Every completed campaign is appended as one self-verifying record
//! and fsync'd before the daemon reports the job done, so a daemon
//! killed at *any* instant — mid-write included — restarts with every
//! previously completed result intact and re-simulates nothing. The
//! design follows the durable-queue literature the ROADMAP cites: the
//! recovery invariant is that a record either passes its checksum and
//! is replayed, or is discarded along with everything after it (a torn
//! tail can only be the one in-flight append, never a completed
//! record — completion is reported only after `sync_data` returns).
//! The seeded [`FaultIo`](crate::durable::FaultIo) harness drives this
//! invariant through torn writes, short writes, `ENOSPC`, fsync
//! failures, and crash-point schedules in the tests below.
//!
//! Between completions, a running job periodically appends
//! **checkpoint records**: the job's position in its campaign grid,
//! the reports of the jobs already finished, and a sealed
//! [`SimCheckpoint`](nosq_core::SimCheckpoint) of the in-flight
//! simulation. Recovery hands back the *latest valid* checkpoint per
//! campaign (superseded checkpoints and checkpoints of campaigns that
//! later completed are dropped), so a killed daemon — or a killed
//! `nosq run --journal` — resumes a half-finished campaign from its
//! last checkpoint and re-simulates only the tail. Checkpoint records
//! are never compacted: the journal is append-only by design, and a
//! campaign's obsolete checkpoints cost disk, not correctness. All
//! file writes and fsyncs go through the [`DurableIo`] seam — this
//! module never touches `std::fs` outside its tests.
//!
//! # On-disk format
//!
//! ```text
//! "NOSQJRNL" magic (8 bytes)  |  u32 LE version (1)
//! repeated records:
//!   u32 LE payload length  |  u64 LE FNV-1a of payload  |  payload
//! ```
//!
//! A completed-campaign payload is one JSON object `{"job": "<16-hex>",
//! "name": …, "artifacts": [{"file_name", "contents"}, …]}` — the same
//! artifact encoding the wire protocol's `done` event uses. A
//! checkpoint payload is `{"ckpt": "<16-hex>", "name": …, "spec": …,
//! "job_index": n, "completed": "<hex>", "state": "<hex>"}`, where
//! `completed` is the wire encoding of the finished jobs' reports and
//! `state` (absent at a job boundary) is the sealed simulator
//! checkpoint — itself independently versioned, checksummed, and
//! config-fingerprinted. Recovery truncates the file back to the last
//! valid record, so a torn tail is also *physically* removed and the
//! next append starts from a clean boundary.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use nosq_core::ser::{JsonArray, JsonObject};
use nosq_core::SimReport;
use nosq_lab::{json, Artifact};

use crate::durable::{DurableFile, DurableIo, OsIo};
use crate::fingerprint::{fnv1a, parse_fingerprint};
use crate::protocol::artifacts_from_json;

const MAGIC: &[u8; 8] = b"NOSQJRNL";
const VERSION: u32 = 1;
/// Sanity bound on one record's payload; a length prefix beyond this is
/// treated as corruption, not an allocation request.
const MAX_RECORD: u32 = 256 * 1024 * 1024;

/// One recovered completed-campaign entry.
#[derive(Clone, Debug)]
pub struct JournalEntry {
    /// The campaign fingerprint (also the wire job id).
    pub fingerprint: u64,
    /// The campaign name (diagnostic only).
    pub name: String,
    /// The deterministic artifacts, ready to serve.
    pub artifacts: Arc<Vec<Artifact>>,
}

/// One mid-campaign checkpoint: everything needed to resume a
/// half-finished campaign without re-simulating its finished prefix.
#[derive(Clone, Debug)]
pub struct CheckpointEntry {
    /// The campaign fingerprint (also the wire job id).
    pub fingerprint: u64,
    /// The campaign name (diagnostic only).
    pub name: String,
    /// The campaign spec, verbatim — recovery rebuilds the campaign
    /// from this text, so the journal is self-contained.
    pub spec: String,
    /// Grid index of the in-flight job (jobs `0..job_index` are in
    /// `completed`).
    pub job_index: u64,
    /// Reports of the already-finished grid jobs, in grid order.
    pub completed: Vec<SimReport>,
    /// The sealed [`SimCheckpoint`](nosq_core::SimCheckpoint) bytes of
    /// the in-flight job, `None` at a job boundary (the next job
    /// simply starts from scratch).
    pub state: Option<Vec<u8>>,
}

/// What recovery salvaged from a journal.
#[derive(Debug, Default)]
pub struct Recovered {
    /// Completed campaigns, in append order.
    pub completed: Vec<JournalEntry>,
    /// The latest valid checkpoint of each campaign that never
    /// completed, ordered by fingerprint.
    pub partial: Vec<CheckpointEntry>,
}

/// The append-only journal: an open durable file plus recovery stats.
pub struct Journal {
    file: Box<dyn DurableFile>,
    path: PathBuf,
    records: u64,
    /// Bytes discarded by recovery (0 on a clean open).
    truncated: u64,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("records", &self.records)
            .field("truncated", &self.truncated)
            .finish_non_exhaustive()
    }
}

impl Journal {
    /// Opens (or creates) the journal at `path` on the real
    /// filesystem; see [`Journal::open_with`].
    pub fn open(path: &Path) -> std::io::Result<(Journal, Recovered)> {
        Journal::open_with(&mut OsIo, path)
    }

    /// Opens (or creates) the journal at `path` through `io`,
    /// validating every record and truncating the file back to the
    /// last intact one. Returns the journal and what recovery
    /// salvaged.
    pub fn open_with(io: &mut dyn DurableIo, path: &Path) -> std::io::Result<(Journal, Recovered)> {
        let mut file = io.open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut recovered = Recovered::default();
        let mut partials: BTreeMap<u64, CheckpointEntry> = BTreeMap::new();
        let mut records = 0u64;
        let mut valid_end = 0usize;
        if bytes.len() >= MAGIC.len() + 4 {
            if &bytes[..8] != MAGIC
                || u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) != VERSION
            {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{} is not a nosq journal", path.display()),
                ));
            }
            valid_end = 12;
            let mut pos = 12usize;
            while let Some((record, next)) = read_record(&bytes, pos) {
                match record {
                    Record::Completed(entry) => {
                        // A completed campaign supersedes every
                        // checkpoint it ever wrote.
                        partials.remove(&entry.fingerprint);
                        recovered.completed.push(entry);
                    }
                    Record::Checkpoint(entry) => {
                        partials.insert(entry.fingerprint, entry);
                    }
                }
                records += 1;
                valid_end = next;
                pos = next;
            }
        } else if !bytes.is_empty() {
            // A torn header write: shorter than magic+version. Treat as
            // empty — nothing could have been reported complete yet.
        }

        if valid_end == 0 {
            // Fresh or unusable header: rewrite from scratch.
            file.truncate(0)?;
            let mut header = Vec::with_capacity(12);
            header.extend_from_slice(MAGIC);
            header.extend_from_slice(&VERSION.to_le_bytes());
            file.append(&header)?;
            file.sync_data()?;
        } else if valid_end < bytes.len() {
            // Torn tail: physically discard it so the next append
            // starts at a record boundary.
            file.truncate(valid_end as u64)?;
            file.sync_data()?;
        }

        recovered.partial = partials.into_values().collect();
        let truncated = bytes.len().saturating_sub(valid_end.max(12)) as u64;
        Ok((
            Journal {
                file,
                path: path.to_path_buf(),
                records,
                truncated,
            },
            recovered,
        ))
    }

    /// Appends one record (length + checksum + payload) and fsyncs.
    fn append_record(&mut self, payload: &str) -> std::io::Result<()> {
        let bytes = payload.as_bytes();
        let mut record = Vec::with_capacity(12 + bytes.len());
        record.extend_from_slice(
            &(u32::try_from(bytes.len()).expect("record < 4 GiB")).to_le_bytes(),
        );
        record.extend_from_slice(&fnv1a(bytes).to_le_bytes());
        record.extend_from_slice(bytes);
        self.file.append(&record)?;
        self.file.sync_data()?;
        self.records += 1;
        Ok(())
    }

    /// Appends one completed campaign and fsyncs. Only after this
    /// returns may the daemon report the job complete — that ordering
    /// is the whole crash-safety argument.
    pub fn append(
        &mut self,
        fingerprint: u64,
        name: &str,
        artifacts: &[Artifact],
    ) -> std::io::Result<()> {
        self.append_record(&record_payload(fingerprint, name, artifacts))
    }

    /// Appends one mid-campaign checkpoint and fsyncs. A later
    /// checkpoint or a completed record for the same campaign
    /// supersedes it at recovery.
    pub fn append_checkpoint(&mut self, entry: &CheckpointEntry) -> std::io::Result<()> {
        self.append_record(&checkpoint_payload(entry))
    }

    /// Records appended plus records recovered (checkpoints included).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes the recovery pass discarded on open (0 for a clean file).
    pub fn truncated_bytes(&self) -> u64 {
        self.truncated
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn record_payload(fingerprint: u64, name: &str, artifacts: &[Artifact]) -> String {
    let mut arr = JsonArray::new();
    for a in artifacts {
        let mut obj = JsonObject::new();
        obj.field_str("file_name", &a.file_name)
            .field_str("contents", &a.contents);
        arr.push_raw(&obj.finish());
    }
    let mut obj = JsonObject::new();
    obj.field_str("job", &crate::fingerprint::fingerprint_hex(fingerprint))
        .field_str("name", name)
        .field_raw("artifacts", &arr.finish());
    obj.finish()
}

fn checkpoint_payload(entry: &CheckpointEntry) -> String {
    let mut obj = JsonObject::new();
    obj.field_str(
        "ckpt",
        &crate::fingerprint::fingerprint_hex(entry.fingerprint),
    )
    .field_str("name", &entry.name)
    .field_str("spec", &entry.spec)
    .field_u64("job_index", entry.job_index)
    .field_str(
        "completed",
        &bytes_to_hex(&nosq_wire::to_bytes(&entry.completed)),
    );
    if let Some(state) = &entry.state {
        obj.field_str("state", &bytes_to_hex(state));
    }
    obj.finish()
}

fn bytes_to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_to_bytes(hex: &str) -> Option<Vec<u8>> {
    if !hex.len().is_multiple_of(2) {
        return None;
    }
    (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(hex.get(i..i + 2)?, 16).ok())
        .collect()
}

/// Turns a recovered [`CheckpointEntry`] into an executor
/// [`ResumeState`](nosq_lab::ResumeState), decoding the sealed
/// simulator snapshot under the in-flight job's configuration. Any
/// inconsistency — grid mismatch, undecodable state — degrades to
/// re-running from the nearest safe point (the job boundary, or a
/// fresh run) with a warning: recovery may lose work, never
/// correctness.
pub fn resume_state(
    campaign: &nosq_lab::Campaign,
    entry: &CheckpointEntry,
) -> Option<nosq_lab::ResumeState> {
    let id = crate::fingerprint::fingerprint_hex(entry.fingerprint);
    let job_index = entry.job_index as usize;
    if job_index > campaign.jobs() || entry.completed.len() != job_index {
        eprintln!("nosq: warning: checkpoint for {id} does not fit the grid; rerunning");
        return None;
    }
    let n_configs = campaign.configs.len();
    let checkpoint = entry.state.as_deref().and_then(|bytes| {
        if job_index >= campaign.jobs() {
            return None;
        }
        let cfg = &campaign.configs[job_index % n_configs].config;
        match nosq_core::SimCheckpoint::from_bytes(bytes, cfg) {
            Ok(ck) => Some(ck),
            Err(e) => {
                // A corrupt snapshot is never resumed (and thus never
                // influences produced bytes); the job restarts from its
                // boundary instead.
                eprintln!(
                    "nosq: warning: checkpoint state for {id} rejected ({e}); \
                     resuming from job boundary"
                );
                None
            }
        }
    });
    Some(nosq_lab::ResumeState {
        job_index,
        completed: entry.completed.clone(),
        checkpoint,
    })
}

enum Record {
    Completed(JournalEntry),
    Checkpoint(CheckpointEntry),
}

/// Validates and decodes the record starting at `pos`; `None` on a
/// short, corrupt, or malformed record (recovery stops there).
fn read_record(bytes: &[u8], pos: usize) -> Option<(Record, usize)> {
    let header = bytes.get(pos..pos + 12)?;
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
    if len > MAX_RECORD {
        return None;
    }
    let checksum = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
    let payload = bytes.get(pos + 12..pos + 12 + len as usize)?;
    if fnv1a(payload) != checksum {
        return None;
    }
    let text = std::str::from_utf8(payload).ok()?;
    let doc = json::parse(text).ok()?;
    let next = pos + 12 + len as usize;
    if let Some(ckpt) = doc.get("ckpt") {
        let fingerprint = parse_fingerprint(ckpt.as_str()?)?;
        let name = doc.get("name")?.as_str()?.to_owned();
        let spec = doc.get("spec")?.as_str()?.to_owned();
        let job_index = doc.get("job_index")?.as_u64()?;
        let completed_hex = doc.get("completed")?.as_str()?;
        let completed: Vec<SimReport> =
            nosq_wire::from_bytes(&hex_to_bytes(completed_hex)?).ok()?;
        let state = match doc.get("state") {
            Some(s) => Some(hex_to_bytes(s.as_str()?)?),
            None => None,
        };
        return Some((
            Record::Checkpoint(CheckpointEntry {
                fingerprint,
                name,
                spec,
                job_index,
                completed,
                state,
            }),
            next,
        ));
    }
    let fingerprint = parse_fingerprint(doc.get("job")?.as_str()?)?;
    let name = doc.get("name")?.as_str()?.to_owned();
    let artifacts = artifacts_from_json(&doc).ok()?;
    Some((
        Record::Completed(JournalEntry {
            fingerprint,
            name,
            artifacts: Arc::new(artifacts),
        }),
        next,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::{FaultIo, FaultKind};
    use std::fs::OpenOptions;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nosq-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    fn artifacts(tag: &str) -> Vec<Artifact> {
        vec![
            Artifact {
                file_name: format!("{tag}.matrix.csv"),
                contents: format!("a,b\n{tag},2\n"),
            },
            Artifact {
                file_name: format!("{tag}.summary.json"),
                contents: format!("{{\"tag\":\"{tag}\"}}"),
            },
        ]
    }

    fn report(seed: u64) -> SimReport {
        SimReport {
            cycles: seed * 10,
            insts: seed * 7,
            ..SimReport::default()
        }
    }

    fn ckpt_entry(fp: u64, job_index: u64, with_state: bool) -> CheckpointEntry {
        CheckpointEntry {
            fingerprint: fp,
            name: format!("camp-{fp}"),
            spec: format!("name = camp-{fp}\nconfigs = nosq\nprofiles = gzip\n"),
            job_index,
            completed: (0..job_index).map(report).collect(),
            state: with_state.then(|| vec![0xab; 64]),
        }
    }

    #[test]
    fn roundtrips_across_reopen() {
        let path = scratch("roundtrip.journal");
        {
            let (mut j, recovered) = Journal::open(&path).unwrap();
            assert!(recovered.completed.is_empty());
            j.append(7, "one", &artifacts("one")).unwrap();
            j.append(9, "two", &artifacts("two")).unwrap();
            assert_eq!(j.records(), 2);
        }
        let (j, recovered) = Journal::open(&path).unwrap();
        assert_eq!(j.records(), 2);
        assert_eq!(j.truncated_bytes(), 0);
        assert_eq!(recovered.completed.len(), 2);
        assert_eq!(recovered.completed[0].fingerprint, 7);
        assert_eq!(recovered.completed[1].name, "two");
        assert_eq!(*recovered.completed[1].artifacts, artifacts("two"));
        assert!(recovered.partial.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let path = scratch("torn.journal");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(1, "keep", &artifacts("keep")).unwrap();
            j.append(2, "torn", &artifacts("torn")).unwrap();
        }
        // Chop the last record mid-payload, as a crash mid-append would.
        let full = std::fs::metadata(&path).unwrap().len();
        let torn_len = full - 10;
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(torn_len).unwrap();
        drop(file);

        let (mut j, recovered) = Journal::open(&path).unwrap();
        assert_eq!(
            recovered.completed.len(),
            1,
            "only the intact record survives"
        );
        assert_eq!(recovered.completed[0].name, "keep");
        assert!(j.truncated_bytes() > 0);
        // The file was physically truncated back to a record boundary,
        // so appends keep working and survive another reopen.
        j.append(3, "after", &artifacts("after")).unwrap();
        drop(j);
        let (_, again) = Journal::open(&path).unwrap();
        assert_eq!(
            again
                .completed
                .iter()
                .map(|e| e.name.as_str())
                .collect::<Vec<_>>(),
            vec!["keep", "after"]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_checksum_stops_recovery() {
        let path = scratch("corrupt.journal");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(1, "good", &artifacts("good")).unwrap();
            j.append(2, "bad", &artifacts("bad")).unwrap();
        }
        // Flip one payload byte of the second record.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let (_, recovered) = Journal::open(&path).unwrap();
        assert_eq!(recovered.completed.len(), 1);
        assert_eq!(recovered.completed[0].name, "good");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_file_is_rejected() {
        let path = scratch("foreign.journal");
        std::fs::write(&path, b"this is not a journal file at all").unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_header_is_reset() {
        let path = scratch("torn-header.journal");
        std::fs::write(&path, b"NOSQ").unwrap(); // crash before version
        let (mut j, recovered) = Journal::open(&path).unwrap();
        assert!(recovered.completed.is_empty());
        j.append(5, "fresh", &artifacts("fresh")).unwrap();
        drop(j);
        let (_, again) = Journal::open(&path).unwrap();
        assert_eq!(again.completed.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoints_roundtrip_and_supersede() {
        let path = scratch("ckpt.journal");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append_checkpoint(&ckpt_entry(1, 0, true)).unwrap();
            j.append_checkpoint(&ckpt_entry(1, 2, true)).unwrap(); // supersedes
            j.append_checkpoint(&ckpt_entry(2, 1, false)).unwrap(); // boundary
            j.append_checkpoint(&ckpt_entry(3, 1, true)).unwrap();
            j.append(3, "camp-3", &artifacts("done")).unwrap(); // completes 3
        }
        let (_, recovered) = Journal::open(&path).unwrap();
        assert_eq!(recovered.completed.len(), 1);
        assert_eq!(recovered.partial.len(), 2, "campaign 3 completed");
        let one = &recovered.partial[0];
        assert_eq!((one.fingerprint, one.job_index), (1, 2));
        assert_eq!(one.completed.len(), 2);
        assert_eq!(one.completed[1], report(1));
        assert_eq!(one.state.as_deref(), Some(&[0xab; 64][..]));
        assert!(one.spec.contains("camp-1"));
        let two = &recovered.partial[1];
        assert_eq!((two.fingerprint, two.job_index), (2, 1));
        assert!(two.state.is_none(), "boundary checkpoint has no state");
        let _ = std::fs::remove_file(&path);
    }

    /// The durable-queue invariant under the full fault matrix: run a
    /// scripted append sequence against every crash point and every
    /// fault kind; after reboot + recovery, every *acknowledged*
    /// append is present, the recovered records form a prefix of the
    /// acknowledged sequence plus at most nothing — never a corrupt or
    /// partially-applied record.
    #[test]
    fn recovery_is_prefix_or_nothing_under_every_fault() {
        let kinds = [
            FaultKind::TornWrite,
            FaultKind::ShortWrite,
            FaultKind::Enospc,
            FaultKind::SyncFail,
            FaultKind::Crash,
        ];
        let path = PathBuf::from("/virtual/fault.journal");
        for seed in 1..=3u64 {
            for at_op in 0..12u64 {
                for kind in kinds {
                    let io = FaultIo::new(seed).with_fault(at_op, kind);
                    let mut handle = io.clone();
                    let mut acked: Vec<u64> = Vec::new();
                    // Open may itself hit the fault (header write ops).
                    if let Ok((mut j, _)) = Journal::open_with(&mut handle, &path) {
                        for fp in 1..=4u64 {
                            let tag = format!("f{fp}");
                            match j.append(fp, &tag, &artifacts(&tag)) {
                                Ok(()) => acked.push(fp),
                                Err(_) => break,
                            }
                        }
                    }
                    io.reboot();
                    let mut handle = io.clone();
                    let (_, recovered) =
                        Journal::open_with(&mut handle, &path).expect("post-reboot open succeeds");
                    let got: Vec<u64> = recovered.completed.iter().map(|e| e.fingerprint).collect();
                    // Every acknowledged record survived...
                    assert!(
                        got.len() >= acked.len(),
                        "seed {seed} op {at_op} {kind:?}: acked {acked:?} but recovered {got:?}"
                    );
                    assert_eq!(
                        &got[..acked.len()],
                        &acked[..],
                        "seed {seed} op {at_op} {kind:?}"
                    );
                    // ...and anything beyond is a fully-applied record
                    // from the failed append (a torn write that
                    // happened to land completely), in sequence.
                    let expect: Vec<u64> = (1..=got.len() as u64).collect();
                    assert_eq!(got, expect, "seed {seed} op {at_op} {kind:?}");
                    for e in &recovered.completed {
                        assert_eq!(
                            *e.artifacts,
                            artifacts(&format!("f{}", e.fingerprint)),
                            "recovered artifacts must be bit-exact"
                        );
                    }
                }
            }
        }
    }

    /// Same invariant for checkpoint records: recovery never hands
    /// back a corrupt or partially-written checkpoint.
    #[test]
    fn checkpoint_recovery_survives_crash_points() {
        let path = PathBuf::from("/virtual/ckpt-fault.journal");
        for seed in 1..=3u64 {
            for at_op in 2..10u64 {
                let io = FaultIo::new(seed).with_fault(at_op, FaultKind::TornWrite);
                let mut handle = io.clone();
                let mut acked = 0u64;
                if let Ok((mut j, _)) = Journal::open_with(&mut handle, &path) {
                    for step in 1..=4u64 {
                        match j.append_checkpoint(&ckpt_entry(9, step, true)) {
                            Ok(()) => acked = step,
                            Err(_) => break,
                        }
                    }
                }
                io.reboot();
                let mut handle = io.clone();
                let (_, recovered) =
                    Journal::open_with(&mut handle, &path).expect("post-reboot open succeeds");
                match recovered.partial.first() {
                    Some(entry) => {
                        assert_eq!(entry.fingerprint, 9);
                        assert!(
                            entry.job_index >= acked,
                            "seed {seed} op {at_op}: acked step {acked}, recovered {}",
                            entry.job_index
                        );
                        assert_eq!(entry.completed.len() as u64, entry.job_index);
                        assert_eq!(entry.state.as_deref(), Some(&[0xab; 64][..]));
                    }
                    None => assert_eq!(acked, 0, "acked checkpoints cannot vanish"),
                }
            }
        }
    }
}
