//! `nosq` — run and serve NoSQ experiment campaigns from the command
//! line.
//!
//! ```text
//! nosq run <spec-file> [--threads N] [--out DIR] [--max-insts N] [--progress]
//!                      [--fused] [--sample WARMUP:INTERVAL:COUNT]
//!                      [--journal FILE] [--ckpt-every N]
//! nosq run --resume <journal> [--out DIR]
//! nosq table5          [--threads N] [--out DIR] [--max-insts N]
//! nosq smoke           [--threads N] [--out DIR]
//! nosq audit           [--small] [--break-predictor N] [--threads N] [--out DIR] [--max-insts N]
//! nosq check           [--bound small|full] [--model NAME] [--seed-bug] [--out DIR]
//! nosq lint            [--allow FILE] [--root DIR]
//! nosq serve           [--addr HOST:PORT] [--workers N] [--journal FILE] [--out DIR]
//! nosq loadgen         [--addr HOST:PORT] [--clients N] [--requests N] [--hot PCT] [--out DIR]
//! nosq submit <spec-file> [--addr HOST:PORT] [--out DIR]
//! nosq shutdown        [--addr HOST:PORT]
//! nosq list [profiles|presets]
//! ```
//!
//! Artifacts land in `--out`, else `$NOSQ_ARTIFACT_DIR`, else
//! `./nosq-artifacts`. See `crates/lab/src/spec.rs` (or the README's
//! "Running campaigns" section) for the spec-file format, and
//! `crates/serve/src/protocol.rs` (README "Serving campaigns") for the
//! daemon's wire protocol.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use nosq_check::sync::StdSync;
use nosq_lab::lint::{lint_tree, Allowlist};
use nosq_lab::reports::{table5, table5_json, Table5Row};
use nosq_lab::{
    artifacts, audit_json, check_json, json, run_audit, run_campaign, run_campaign_durable,
    run_checks, synthesize_programs, timing_artifact, write_artifacts, Artifact, AuditOptions,
    BoundPreset, Campaign, CampaignResult, CheckOptions, Preset, ProgressCounters, RunOptions,
    WorkerContext,
};
use nosq_serve::{
    campaign_fingerprint, fingerprint_hex, loadgen_json, resume_state, run_loadgen, signal,
    CheckpointEntry, Journal, LoadgenOptions, ServeClient, ServeOptions, Server,
};
use nosq_trace::{Profile, Suite};

const USAGE: &str = "\
nosq — NoSQ experiment-campaign runner

USAGE:
    nosq run <spec-file> [OPTIONS]   run a campaign from a spec file
    nosq run --resume <journal>      finish half-done campaigns from a journal
    nosq table5 [OPTIONS]            regenerate paper Table 5 (47 benchmarks)
    nosq smoke [OPTIONS]             sub-second self-check campaign
    nosq audit [OPTIONS]             prove every speculative bypass against the
                                     dependence oracle (4 profiles x 3 NoSQ presets)
    nosq check [OPTIONS]             model-check the lock-free executor core and
                                     injection queue over every thread interleaving
    nosq lint [OPTIONS]              determinism source lint over crates/
    nosq serve [OPTIONS]             campaign service daemon: job queue over TCP,
                                     LRU result cache, crash-safe journal
    nosq loadgen [OPTIONS]           hammer a live daemon with mixed hot/cold
                                     traffic; write BENCH_serve.json
    nosq submit <spec-file> [OPTIONS] run one campaign through a live daemon
    nosq shutdown [OPTIONS]          ask a live daemon to drain and exit
    nosq list [profiles|presets]     show available benchmarks / presets
    nosq help                        this text

OPTIONS:
    --threads N          worker threads (default: one per CPU)
    --out DIR            artifact directory (default: $NOSQ_ARTIFACT_DIR or ./nosq-artifacts)
    --max-insts N        override the per-job dynamic-instruction budget
    --progress           live progress line on stderr
    --fused              fuse each profile's configuration block into one
                         lockstep multi-lane replay (identical reports, one
                         trace pass per profile instead of one per job)
    --sample W:I:C       (run) sampled estimate instead of full simulation:
                         fast-forward W instructions, then measure C windows
                         of I instructions spread over the rest
    --resume FILE        (run) recover a crash-safe journal: write artifacts of
                         every completed campaign, resume every half-finished
                         one from its latest valid checkpoint
    --ckpt-every N       (run --journal / serve) mid-job checkpoint cadence in
                         committed instructions (default 50000; 0 = job
                         boundaries only)
    --small              (audit) single-cell gzip x nosq grid, small budget
    --break-predictor N  (audit) corrupt every Nth bypass and hide it from
                         verification; exits 0 only if the auditor catches it
    --allow FILE         (lint) allowlist path (default: ./lint.allow)
    --root DIR           (lint) workspace root to scan (default: .)
    --bound NAME         (check) exploration preset: `small` (preemption-bounded,
                         the CI setting) or `full` (exhaustive); default small
    --model NAME         (check) run a single model instead of the whole suite
    --seed-bug           (check) run the deliberately broken models; exits 0
                         only if the checker flags them
    --addr HOST:PORT     (serve/loadgen/submit/shutdown) daemon address
                         (default 127.0.0.1:7433; serve accepts :0 for an
                         ephemeral port, printed on startup)
    --workers N          (serve) worker pool size (default: one per CPU, max 8)
    --journal FILE       (run/serve) crash-safe journal path: completed results
                         plus mid-job checkpoints, resumable after kill -9
                         (serve default: <out>/serve.journal)
    --cache-cap N        (serve) LRU result-cache capacity (default 64)
    --clients N          (loadgen) concurrent clients (default 8)
    --requests N         (loadgen) requests per client (default 4)
    --hot PCT            (loadgen) percentage of cache-hot traffic (default 50)
    --interval-ms N      (loadgen) open-loop arrival interval (default 40)
";

/// The built-in smoke campaign: 2 presets × 3 profiles, small budget.
/// Written as a JSON spec so `nosq smoke` also exercises the parser.
const SMOKE_SPEC: &str = r#"{
    "name": "smoke",
    "configs": ["nosq", "baseline-storesets"],
    "profiles": ["gzip", "gsm.e", "applu"],
    "max_insts": 4000,
    "baseline": "baseline-storesets"
}"#;

struct Options {
    threads: usize,
    out: PathBuf,
    max_insts: Option<u64>,
    progress: bool,
    fused: bool,
    sample: Option<nosq_core::SamplePlan>,
    small: bool,
    break_predictor: Option<u64>,
    allow: Option<PathBuf>,
    root: PathBuf,
    bound: BoundPreset,
    model: Option<String>,
    seed_bug: bool,
    addr: String,
    workers: usize,
    journal: Option<PathBuf>,
    resume: Option<PathBuf>,
    ckpt_every: u64,
    cache_cap: usize,
    clients: usize,
    requests: usize,
    hot: u32,
    interval_ms: u64,
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("nosq: error: {msg}");
    ExitCode::FAILURE
}

fn usage_error(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("nosq: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        // No subcommand is a usage error: usage text on stderr, exit 2
        // (same convention as every other malformed invocation).
        eprintln!("nosq: a subcommand is required\n\n{USAGE}");
        return ExitCode::from(2);
    };
    let (positional, options) = match parse_options(&args[1..]) {
        Ok(parsed) => parsed,
        Err(msg) => return usage_error(msg),
    };
    match command.as_str() {
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        "list" => cmd_list(positional.first().map(String::as_str)),
        "run" => match positional.as_slice() {
            [] if options.resume.is_some() => cmd_resume(&options),
            [_] if options.resume.is_some() => {
                usage_error("`--resume` takes the journal in place of a spec file")
            }
            [spec] => cmd_run(spec, &options),
            _ => usage_error("`nosq run` takes exactly one spec file (or `--resume <journal>`)"),
        },
        cmd @ ("table5" | "smoke") if !positional.is_empty() => {
            usage_error(format!("`nosq {cmd}` takes no positional arguments"))
        }
        "table5" => cmd_table5(&options),
        "smoke" => cmd_smoke(&options),
        "audit" if !positional.is_empty() => {
            usage_error("`nosq audit` takes no positional arguments")
        }
        "audit" => cmd_audit(&options),
        "check" if !positional.is_empty() => {
            usage_error("`nosq check` takes no positional arguments")
        }
        "check" => cmd_check(&options),
        "lint" if !positional.is_empty() => {
            usage_error("`nosq lint` takes no positional arguments")
        }
        "lint" => cmd_lint(&options),
        cmd @ ("serve" | "loadgen" | "shutdown") if !positional.is_empty() => {
            usage_error(format!("`nosq {cmd}` takes no positional arguments"))
        }
        "serve" => cmd_serve(&options),
        "loadgen" => cmd_loadgen(&options),
        "submit" => match positional.as_slice() {
            [spec] => cmd_submit(spec, &options),
            _ => usage_error("`nosq submit` takes exactly one spec file"),
        },
        "shutdown" => cmd_shutdown(&options),
        other => usage_error(format!("unknown command `{other}`")),
    }
}

fn parse_options(args: &[String]) -> Result<(Vec<String>, Options), String> {
    let mut options = Options {
        threads: 0,
        out: std::env::var_os("NOSQ_ARTIFACT_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("nosq-artifacts")),
        max_insts: None,
        progress: false,
        fused: false,
        sample: None,
        small: false,
        break_predictor: None,
        allow: None,
        root: PathBuf::from("."),
        bound: BoundPreset::Small,
        model: None,
        seed_bug: false,
        addr: "127.0.0.1:7433".to_owned(),
        workers: 0,
        journal: None,
        resume: None,
        ckpt_every: 50_000,
        cache_cap: 64,
        clients: 8,
        requests: 4,
        hot: 50,
        interval_ms: 40,
    };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("`{flag}` needs a value"))
        };
        match arg.as_str() {
            "--threads" => {
                options.threads = value_of("--threads")?
                    .parse()
                    .map_err(|_| "`--threads` expects an integer".to_owned())?;
            }
            "--out" => options.out = PathBuf::from(value_of("--out")?),
            "--max-insts" => {
                let v: u64 = value_of("--max-insts")?
                    .replace('_', "")
                    .parse()
                    .map_err(|_| "`--max-insts` expects an integer".to_owned())?;
                options.max_insts = Some(v);
            }
            "--progress" => options.progress = true,
            "--fused" => options.fused = true,
            "--sample" => {
                let v = value_of("--sample")?;
                let plan =
                    nosq_core::SamplePlan::parse(&v).map_err(|e| format!("`--sample` {e}"))?;
                options.sample = Some(plan);
            }
            "--small" => options.small = true,
            "--break-predictor" => {
                let v: u64 = value_of("--break-predictor")?
                    .parse()
                    .map_err(|_| "`--break-predictor` expects an integer".to_owned())?;
                if v == 0 {
                    return Err("`--break-predictor` expects a period >= 1".to_owned());
                }
                options.break_predictor = Some(v);
            }
            "--allow" => options.allow = Some(PathBuf::from(value_of("--allow")?)),
            "--root" => options.root = PathBuf::from(value_of("--root")?),
            "--bound" => {
                let name = value_of("--bound")?;
                options.bound = BoundPreset::parse(&name)
                    .ok_or_else(|| format!("`--bound` expects `small` or `full`, got `{name}`"))?;
            }
            "--model" => options.model = Some(value_of("--model")?),
            "--seed-bug" => options.seed_bug = true,
            "--addr" => options.addr = value_of("--addr")?,
            "--workers" => {
                options.workers = value_of("--workers")?
                    .parse()
                    .map_err(|_| "`--workers` expects an integer".to_owned())?;
            }
            "--journal" => options.journal = Some(PathBuf::from(value_of("--journal")?)),
            "--resume" => options.resume = Some(PathBuf::from(value_of("--resume")?)),
            "--ckpt-every" => {
                options.ckpt_every = value_of("--ckpt-every")?
                    .replace('_', "")
                    .parse()
                    .map_err(|_| "`--ckpt-every` expects an instruction count".to_owned())?;
            }
            "--cache-cap" => {
                options.cache_cap = value_of("--cache-cap")?
                    .parse()
                    .map_err(|_| "`--cache-cap` expects an integer".to_owned())?;
            }
            "--clients" => {
                options.clients = value_of("--clients")?
                    .parse()
                    .map_err(|_| "`--clients` expects an integer".to_owned())?;
            }
            "--requests" => {
                options.requests = value_of("--requests")?
                    .parse()
                    .map_err(|_| "`--requests` expects an integer".to_owned())?;
            }
            "--hot" => {
                let v: u32 = value_of("--hot")?
                    .parse()
                    .map_err(|_| "`--hot` expects an integer percentage".to_owned())?;
                if v > 100 {
                    return Err("`--hot` expects a percentage in 0..=100".to_owned());
                }
                options.hot = v;
            }
            "--interval-ms" => {
                options.interval_ms = value_of("--interval-ms")?
                    .parse()
                    .map_err(|_| "`--interval-ms` expects an integer".to_owned())?;
            }
            flag if flag.starts_with('-') => return Err(format!("unknown option `{flag}`")),
            _ => positional.push(arg.clone()),
        }
    }
    if options.fused && options.sample.is_some() {
        return Err("`--fused` and `--sample` are mutually exclusive".to_owned());
    }
    // Checkpointing snapshots the serial replay loop; the fused
    // multi-lane engine and the sampling estimator have no snapshot
    // form, so a durable run (or a journal resume) excludes both.
    if (options.journal.is_some() || options.resume.is_some())
        && (options.fused || options.sample.is_some())
    {
        return Err(
            "`--journal`/`--resume` are incompatible with `--fused` and `--sample`".to_owned(),
        );
    }
    Ok((positional, options))
}

fn run_options(options: &Options) -> RunOptions {
    RunOptions {
        threads: options.threads,
        progress: options.progress,
        fused: options.fused,
        ..RunOptions::default()
    }
}

fn cmd_list(what: Option<&str>) -> ExitCode {
    match what {
        None | Some("profiles") => {
            for suite in Suite::all() {
                println!("{suite}:");
                for p in Profile::suite(suite) {
                    println!("  {}", p.name);
                }
            }
            if what.is_none() {
                println!();
                list_presets();
            }
            ExitCode::SUCCESS
        }
        Some("presets") => {
            list_presets();
            ExitCode::SUCCESS
        }
        Some(other) => usage_error(format!("unknown list `{other}`")),
    }
}

fn list_presets() {
    println!("presets:");
    for preset in Preset::all() {
        println!("  {}", preset.name());
    }
}

/// Runs a campaign, writes its artifacts, prints the summary. The body
/// of `nosq run`, shared by `nosq smoke`.
fn execute(campaign: &Campaign, options: &Options) -> Result<Vec<Artifact>, ExitCode> {
    let result = run_campaign(campaign, &run_options(options));
    write_and_report(campaign, &result, options)
}

/// The artifact-writing + summary-printing tail of a campaign run,
/// shared by the plain, durable, and resumed paths.
fn write_and_report(
    campaign: &Campaign,
    result: &CampaignResult,
    options: &Options,
) -> Result<Vec<Artifact>, ExitCode> {
    let files = artifacts(result);
    // The timing artifact is written alongside but kept out of `files`:
    // it is deliberately nondeterministic (wall-clock), while `files`
    // must be byte-identical across re-runs and thread counts.
    let timing = timing_artifact(result);
    let mut paths = write_artifacts(&options.out, &files).map_err(|e| {
        fail(format!(
            "writing artifacts to {}: {e}",
            options.out.display()
        ))
    })?;
    paths.extend(
        write_artifacts(&options.out, std::slice::from_ref(&timing))
            .map_err(|e| fail(format!("writing timing artifact: {e}")))?,
    );

    println!(
        "campaign `{}`: {} configs × {} profiles = {} jobs on {} thread{} in {:.2?} ({:.1} MIPS/worker)",
        campaign.name,
        campaign.configs.len(),
        campaign.profiles.len(),
        campaign.jobs(),
        result.threads,
        if result.threads == 1 { "" } else { "s" },
        result.elapsed,
        result.aggregate_mips(),
    );
    println!("\n{:<24} {:>12}", "config", "geomean IPC");
    for (ci, config) in campaign.configs.iter().enumerate() {
        let ipcs: Vec<f64> = (0..campaign.profiles.len())
            .map(|p| result.report(p, ci).ipc())
            .collect();
        let mut line = format!(
            "{:<24} {:>12.3}",
            config.name,
            nosq_core::geometric_mean(&ipcs)
        );
        if let Some(base) = campaign.baseline {
            let rels: Vec<f64> = (0..campaign.profiles.len())
                .map(|p| result.report(p, ci).relative_time(result.report(p, base)))
                .collect();
            line.push_str(&format!(
                "   rel-time {:.3}",
                nosq_core::geometric_mean(&rels)
            ));
        }
        println!("{line}");
    }
    println!();
    for path in &paths {
        println!("wrote {}", path.display());
    }
    Ok(files)
}

fn cmd_run(spec_path: &str, options: &Options) -> ExitCode {
    let text = match std::fs::read_to_string(spec_path) {
        Ok(text) => text,
        Err(e) => return fail(format!("reading {spec_path}: {e}")),
    };
    let mut campaign = match Campaign::from_spec(&text) {
        Ok(c) => c,
        Err(e) => return fail(format!("{spec_path}: {e}")),
    };
    if let Some(n) = options.max_insts {
        campaign = match rebudget(campaign, n) {
            Ok(c) => c,
            Err(e) => return fail(e),
        };
    }
    if let Some(plan) = &options.sample {
        return execute_sampled(&campaign, plan, options);
    }
    if options.journal.is_some() {
        // Checkpoint records embed the spec verbatim so the journal is
        // self-contained for recovery; a CLI-side rebudget would make
        // the executed campaign diverge from the recorded text.
        if options.max_insts.is_some() {
            return fail(
                "`--journal` records the spec verbatim for recovery; \
                 set max_insts in the spec instead of `--max-insts`",
            );
        }
        return run_durable(&campaign, &text, options);
    }
    match execute(&campaign, options) {
        Ok(_) => ExitCode::SUCCESS,
        Err(code) => code,
    }
}

/// `nosq run --journal`: the one-shot runner with the daemon's crash
/// durability — completed results and mid-job checkpoints land in the
/// journal (fsync'd before anything is reported), and a re-run against
/// the same journal resumes instead of restarting.
fn run_durable(campaign: &Campaign, spec: &str, options: &Options) -> ExitCode {
    let path = options.journal.clone().expect("caller checked --journal");
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                return fail(format!("creating {}: {e}", parent.display()));
            }
        }
    }
    let (mut journal, recovered) = match Journal::open(&path) {
        Ok(opened) => opened,
        Err(e) => return fail(format!("opening journal {}: {e}", path.display())),
    };
    if journal.truncated_bytes() > 0 {
        eprintln!(
            "nosq: warning: journal recovery discarded {} torn byte(s)",
            journal.truncated_bytes()
        );
    }
    let fingerprint = campaign_fingerprint(campaign);
    if let Some(entry) = recovered
        .completed
        .iter()
        .find(|e| e.fingerprint == fingerprint)
    {
        println!(
            "journal already holds completed results for `{}` ({}); \
             writing them without re-simulating",
            entry.name,
            fingerprint_hex(fingerprint)
        );
        return match write_artifacts(&options.out, entry.artifacts.as_slice()) {
            Ok(paths) => {
                for p in &paths {
                    println!("wrote {}", p.display());
                }
                ExitCode::SUCCESS
            }
            Err(e) => fail(format!("writing artifacts: {e}")),
        };
    }
    let resume = recovered
        .partial
        .iter()
        .find(|e| e.fingerprint == fingerprint)
        .and_then(|entry| resume_state(campaign, entry));
    if let Some(r) = &resume {
        println!(
            "resuming `{}` from checkpoint: {}/{} jobs already complete{}",
            campaign.name,
            r.job_index,
            campaign.jobs(),
            if r.checkpoint.is_some() {
                ", mid-job state restored"
            } else {
                ""
            }
        );
    }
    match run_durable_campaign(campaign, spec, &mut journal, resume, options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(code) => code,
    }
}

/// Runs one campaign under checkpoint durability against an open
/// journal: mid-job [`CheckpointEntry`] records at the configured
/// cadence, then the completion record (fsync'd) *before* success is
/// reported — the same ordering contract as the daemon.
fn run_durable_campaign(
    campaign: &Campaign,
    spec: &str,
    journal: &mut Journal,
    resume: Option<nosq_lab::ResumeState>,
    options: &Options,
) -> Result<(), ExitCode> {
    let fingerprint = campaign_fingerprint(campaign);
    let programs = synthesize_programs(campaign, options.threads);
    let mut ctx = WorkerContext::new();
    let progress: ProgressCounters<StdSync> = ProgressCounters::new();
    let mut sink = |ev: nosq_lab::CkptEvent<'_>| {
        let entry = CheckpointEntry {
            fingerprint,
            name: campaign.name.clone(),
            spec: spec.to_owned(),
            job_index: ev.job_index as u64,
            completed: ev.completed.to_vec(),
            state: ev.state.map(nosq_core::SimCheckpoint::to_bytes),
        };
        if let Err(e) = journal.append_checkpoint(&entry) {
            eprintln!(
                "nosq: warning: checkpoint append failed for {}: {e}",
                fingerprint_hex(fingerprint)
            );
        }
    };
    let result = run_campaign_durable(
        campaign,
        &programs,
        &mut ctx,
        &progress,
        options.ckpt_every,
        resume,
        &mut sink,
    );
    let files = artifacts(&result);
    if let Err(e) = journal.append(fingerprint, &campaign.name, &files) {
        return Err(fail(format!("journaling completed campaign: {e}")));
    }
    write_and_report(campaign, &result, options)?;
    Ok(())
}

/// `nosq run --resume <journal>`: recovery without a spec file. Every
/// completed campaign's artifacts are re-written from the journal;
/// every half-finished campaign is rebuilt from its journaled spec and
/// finished from its latest valid checkpoint.
fn cmd_resume(options: &Options) -> ExitCode {
    let path = options.resume.clone().expect("dispatch checked --resume");
    let (mut journal, recovered) = match Journal::open(&path) {
        Ok(opened) => opened,
        Err(e) => return fail(format!("opening journal {}: {e}", path.display())),
    };
    if journal.truncated_bytes() > 0 {
        eprintln!(
            "nosq: warning: journal recovery discarded {} torn byte(s)",
            journal.truncated_bytes()
        );
    }
    if recovered.completed.is_empty() && recovered.partial.is_empty() {
        return fail(format!("{}: nothing to recover", path.display()));
    }
    for entry in &recovered.completed {
        println!(
            "recovered completed campaign `{}` ({})",
            entry.name,
            fingerprint_hex(entry.fingerprint)
        );
        match write_artifacts(&options.out, entry.artifacts.as_slice()) {
            Ok(paths) => {
                for p in &paths {
                    println!("wrote {}", p.display());
                }
            }
            Err(e) => return fail(format!("writing artifacts: {e}")),
        }
    }
    for entry in &recovered.partial {
        let campaign = match Campaign::from_spec(&entry.spec) {
            Ok(c) => c,
            Err(e) => {
                return fail(format!(
                    "journaled spec for {} no longer parses: {e}",
                    fingerprint_hex(entry.fingerprint)
                ))
            }
        };
        let resume = if campaign_fingerprint(&campaign) == entry.fingerprint {
            resume_state(&campaign, entry)
        } else {
            eprintln!(
                "nosq: warning: checkpoint {} does not match its own spec (recorded under \
                 different overrides?); rerunning `{}` from scratch",
                fingerprint_hex(entry.fingerprint),
                campaign.name
            );
            None
        };
        match &resume {
            Some(r) => println!(
                "resuming `{}` ({}): {}/{} jobs already complete{}",
                campaign.name,
                fingerprint_hex(entry.fingerprint),
                r.job_index,
                campaign.jobs(),
                if r.checkpoint.is_some() {
                    ", mid-job state restored"
                } else {
                    ""
                }
            ),
            None => println!(
                "rerunning `{}` ({}) from scratch",
                campaign.name,
                fingerprint_hex(entry.fingerprint)
            ),
        }
        if let Err(code) =
            run_durable_campaign(&campaign, &entry.spec, &mut journal, resume, options)
        {
            return code;
        }
    }
    ExitCode::SUCCESS
}

/// `nosq run --sample`: replace each grid job's full simulation with
/// the checkpointed-sampling estimator — fast-forward functionally,
/// measure periodic windows, extrapolate. Prints the estimate table;
/// no byte-stable campaign artifacts are written (an estimate is not a
/// [`nosq_core::SimReport`], and must never be mistaken for one).
fn execute_sampled(
    campaign: &Campaign,
    plan: &nosq_core::SamplePlan,
    options: &Options,
) -> ExitCode {
    use nosq_core::{sampled_replay_with_arena, SimArena};
    use nosq_trace::TraceBuffer;

    let programs = nosq_lab::synthesize_programs(campaign, options.threads);
    let started = std::time::Instant::now();
    let mut arena = SimArena::new();
    println!(
        "{:<10} {:<20} {:>7} {:>12} {:>12} {:>9} {:>14}",
        "profile", "config", "windows", "measured", "total", "est IPC", "est cycles"
    );
    for (p, profile) in campaign.profiles.iter().enumerate() {
        let budget = campaign
            .configs
            .iter()
            .map(|c| c.config.max_insts)
            .max()
            .unwrap_or(0);
        let trace = TraceBuffer::record_with_arena(&programs[p], budget, &mut arena.trace);
        for named in &campaign.configs {
            let est = sampled_replay_with_arena(
                &programs[p],
                named.config.clone(),
                &trace,
                plan,
                &mut arena,
            );
            if est.windows == 0 {
                return fail(format!(
                    "sample plan measured no windows for {} × {} (warmup {} covers the whole \
                     {}-instruction run)",
                    profile.name, named.name, plan.warmup, est.total_insts
                ));
            }
            println!(
                "{:<10} {:<20} {:>7} {:>12} {:>12} {:>9.3} {:>14.0}",
                profile.name,
                named.name,
                est.windows,
                est.measured_insts,
                est.total_insts,
                est.ipc(),
                est.est_cycles(),
            );
        }
    }
    println!(
        "\nsampled campaign `{}`: {} jobs estimated in {:.2?} (plan {}:{}:{})",
        campaign.name,
        campaign.jobs(),
        started.elapsed(),
        plan.warmup,
        plan.interval,
        plan.count,
    );
    ExitCode::SUCCESS
}

/// Re-applies a CLI `--max-insts` override to every configuration.
fn rebudget(mut campaign: Campaign, max_insts: u64) -> Result<Campaign, String> {
    for named in &mut campaign.configs {
        named.config = named
            .config
            .clone()
            .into_builder()
            .max_insts(max_insts)
            .try_build()
            .map_err(|e| e.to_string())?;
    }
    Ok(campaign)
}

fn cmd_table5(options: &Options) -> ExitCode {
    let max_insts = options.max_insts.unwrap_or(nosq_lab::DEFAULT_MAX_INSTS);
    let (rows, result) = match table5(max_insts, &run_options(options)) {
        Ok(out) => out,
        Err(e) => return fail(e),
    };
    print_table5(&rows);
    let mut files = artifacts(&result);
    files.push(Artifact {
        file_name: "table5.json".to_owned(),
        contents: table5_json(&rows),
    });
    match write_artifacts(&options.out, &files) {
        Ok(paths) => {
            for path in &paths {
                println!("wrote {}", path.display());
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail(format!("writing artifacts: {e}")),
    }
}

fn print_table5(rows: &[Table5Row]) {
    println!(
        "{:<10} {:>7} {:>7} {:>9} {:>9} {:>7}",
        "benchmark", "comm%", "part%", "mis/10k-nd", "mis/10k-d", "del%"
    );
    for suite in Suite::all() {
        let in_suite: Vec<&Table5Row> = rows.iter().filter(|r| r.profile.suite == suite).collect();
        if in_suite.is_empty() {
            continue;
        }
        for r in &in_suite {
            println!(
                "{:<10} {:>7.1} {:>7.1} {:>9.1} {:>9.1} {:>7.1}",
                r.profile.name,
                r.comm_pct,
                r.partial_pct,
                r.no_delay.mispredicts_per_10k_loads(),
                r.delay.mispredicts_per_10k_loads(),
                r.delay.delayed_pct(),
            );
        }
        let mean = |f: &dyn Fn(&Table5Row) -> f64| {
            in_suite.iter().map(|r| f(r)).sum::<f64>() / in_suite.len() as f64
        };
        println!(
            "{:<10} {:>7.1} {:>7.1} {:>9.1} {:>9.1} {:>7.1}\n",
            format!("{suite}.avg"),
            mean(&|r| r.comm_pct),
            mean(&|r| r.partial_pct),
            mean(&|r| r.no_delay.mispredicts_per_10k_loads()),
            mean(&|r| r.delay.mispredicts_per_10k_loads()),
            mean(&|r| r.delay.delayed_pct()),
        );
    }
}

/// `nosq smoke`: run the built-in campaign, then *prove* the artifacts
/// are present, well-formed, and thread-count-independent — the CI
/// gate for the whole engine. Any failure exits non-zero.
fn cmd_smoke(options: &Options) -> ExitCode {
    let mut campaign = match Campaign::from_spec(SMOKE_SPEC) {
        Ok(c) => c,
        Err(e) => return fail(format!("built-in smoke spec: {e}")),
    };
    if let Some(n) = options.max_insts {
        campaign = match rebudget(campaign, n) {
            Ok(c) => c,
            Err(e) => return fail(e),
        };
    }
    let files = match execute(&campaign, options) {
        Ok(files) => files,
        Err(code) => return code,
    };

    // 1. Every artifact exists on disk with the exact bytes produced.
    for artifact in &files {
        let path = options.out.join(&artifact.file_name);
        match std::fs::read_to_string(&path) {
            Ok(on_disk) if on_disk == artifact.contents => {}
            Ok(_) => return fail(format!("{} differs from produced bytes", path.display())),
            Err(e) => return fail(format!("missing artifact {}: {e}", path.display())),
        }
        if artifact.contents.is_empty() {
            return fail(format!("artifact {} is empty", artifact.file_name));
        }
    }

    // 2. JSON artifacts parse; CSV artifacts have the right shape.
    for artifact in &files {
        if artifact.file_name.ends_with(".json") {
            if let Err(e) = json::parse(&artifact.contents) {
                return fail(format!("{} is malformed: {e}", artifact.file_name));
            }
        } else if artifact.file_name.ends_with(".csv") {
            let mut lines = artifact.contents.lines();
            let header_cols = lines.next().map_or(0, |h| h.split(',').count());
            if header_cols < 3 || lines.any(|l| l.split(',').count() != header_cols) {
                return fail(format!("{} has ragged rows", artifact.file_name));
            }
        }
    }
    let matrix = files
        .iter()
        .find(|a| a.file_name.ends_with(".matrix.json"))
        .expect("matrix artifact exists");
    let parsed = json::parse(&matrix.contents).expect("validated above");
    if parsed.as_array().map(<[_]>::len) != Some(campaign.jobs()) {
        return fail("matrix.json does not cover the whole job grid");
    }

    // 3. Serial and forced-multi-thread re-runs both aggregate to
    //    byte-identical artifacts (the executor's determinism
    //    contract). The explicit 2-thread run keeps the check real on
    //    single-core machines, where the auto thread count is 1.
    for threads in [1usize, 2] {
        let rerun = run_campaign(
            &campaign,
            &RunOptions {
                threads,
                ..RunOptions::default()
            },
        );
        if artifacts(&rerun) != files {
            return fail(format!(
                "{threads}-thread re-run produced different artifact bytes"
            ));
        }
    }

    println!(
        "smoke OK: {} artifacts validated, determinism checked",
        files.len()
    );
    ExitCode::SUCCESS
}

/// `nosq audit`: run the dependence-oracle grid, write `audit.json`,
/// and gate on the verdict. Without `--break-predictor`, any violation
/// fails; with it, *zero* violations fail — the injected faults must be
/// caught for the auditor to count as healthy.
fn cmd_audit(options: &Options) -> ExitCode {
    let mut opts = AuditOptions {
        threads: options.threads,
        break_predictor: options.break_predictor,
        ..AuditOptions::default()
    };
    if options.small {
        opts.profiles.truncate(1); // gzip
        opts.presets = vec![Preset::Nosq];
        opts.max_insts = 20_000;
    }
    if let Some(n) = options.max_insts {
        opts.max_insts = n;
    }

    let result = run_audit(&opts);
    println!(
        "{:<10} {:<12} {:>9} {:>9} {:>8} {:>12} {:>10}",
        "profile", "preset", "loads", "bypassed", "exact", "coincidental", "violations"
    );
    for cell in &result.cells {
        println!(
            "{:<10} {:<12} {:>9} {:>9} {:>8} {:>12} {:>10}",
            cell.profile.name,
            cell.preset.name(),
            cell.audit.stats.loads,
            cell.audit.stats.bypassed,
            cell.audit.stats.exact_bypasses,
            cell.audit.stats.coincidental_bypasses,
            cell.audit.violations,
        );
    }

    let contents = audit_json(&result);
    if let Err(e) = json::parse(&contents) {
        return fail(format!("generated audit.json is malformed: {e}"));
    }
    let artifact = Artifact {
        file_name: "audit.json".to_owned(),
        contents,
    };
    match write_artifacts(&options.out, std::slice::from_ref(&artifact)) {
        Ok(paths) => {
            for path in &paths {
                println!("wrote {}", path.display());
            }
        }
        Err(e) => return fail(format!("writing audit.json: {e}")),
    }

    let violations = result.total_violations();
    if result.injecting {
        if violations == 0 {
            return fail("fault injection was active but the auditor reported no violations");
        }
        println!(
            "audit OK (self-test): {} injected-fault violations caught across {} loads",
            violations,
            result.total_loads()
        );
        ExitCode::SUCCESS
    } else if violations > 0 {
        for cell in &result.cells {
            for diag in &cell.audit.diagnostics {
                eprintln!(
                    "nosq audit: {} × {}: {diag}",
                    cell.profile.name,
                    cell.preset.name()
                );
            }
        }
        fail(format!(
            "{violations} audit violations across {} cells",
            result.cells.len()
        ))
    } else {
        println!(
            "audit OK: {} loads across {} cells proved against the dependence oracle",
            result.total_loads(),
            result.cells.len()
        );
        ExitCode::SUCCESS
    }
}

/// `nosq check`: model-check the lock-free lab structures over every
/// thread interleaving, write `check.json`, and gate on the verdict.
/// A clean run fails on any violation or incomplete exploration; a
/// `--seed-bug` run fails unless the checker flags the planted bug (a
/// checker that passes its seeded bug proves nothing).
fn cmd_check(options: &Options) -> ExitCode {
    let opts = CheckOptions {
        bound: options.bound,
        model: options.model.clone(),
        seed_bug: options.seed_bug,
    };
    let reports = match run_checks(&opts) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };

    println!(
        "{:<15} {:>14} {:>9} {:>9} {:>12} {:>9} {:>11}",
        "model", "interleavings", "pruned", "skipped", "ops", "complete", "violations"
    );
    for r in &reports {
        println!(
            "{:<15} {:>14} {:>9} {:>9} {:>12} {:>9} {:>11}",
            r.model,
            r.interleavings,
            r.pruned_states,
            r.skipped_preemptions,
            r.ops,
            r.complete,
            r.violations,
        );
    }

    let contents = check_json(&opts, &reports);
    if let Err(e) = json::parse(&contents) {
        return fail(format!("generated check.json is malformed: {e}"));
    }
    let artifact = Artifact {
        file_name: "check.json".to_owned(),
        contents,
    };
    match write_artifacts(&options.out, std::slice::from_ref(&artifact)) {
        Ok(paths) => {
            for path in &paths {
                println!("wrote {}", path.display());
            }
        }
        Err(e) => return fail(format!("writing check.json: {e}")),
    }

    let violations: u64 = reports.iter().map(|r| r.violations).sum();
    let interleavings: u64 = reports.iter().map(|r| r.interleavings).sum();
    if opts.seed_bug {
        if violations == 0 {
            return fail("the seeded bug was active but the checker reported no violations");
        }
        println!(
            "check OK (self-test): {violations} seeded-bug violations caught across {} models",
            reports.len()
        );
        ExitCode::SUCCESS
    } else if violations > 0 {
        for r in &reports {
            for diag in &r.diagnostics {
                eprintln!("nosq check: {}: {diag}", r.model);
            }
        }
        fail(format!(
            "{violations} concurrency violations across {} models",
            reports.len()
        ))
    } else if let Some(r) = reports.iter().find(|r| !r.complete) {
        fail(format!(
            "model `{}` hit an exploration bound before finishing; rerun with `--bound full`",
            r.model
        ))
    } else {
        println!(
            "check OK: {} models verified clean over {interleavings} interleavings ({} bounds)",
            reports.len(),
            opts.bound.name()
        );
        ExitCode::SUCCESS
    }
}

/// `nosq lint`: the determinism source lint over `crates/`. Violations
/// exit non-zero (the CI hard gate); stale allowlist entries warn.
fn cmd_lint(options: &Options) -> ExitCode {
    let allow_path = options
        .allow
        .clone()
        .unwrap_or_else(|| options.root.join("lint.allow"));
    let allow = match Allowlist::load(&allow_path) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    let result = match lint_tree(&options.root, &allow) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    for finding in &result.findings {
        eprintln!("nosq lint: {finding}");
    }
    for stale in &result.stale_allows {
        eprintln!("nosq lint: warning: stale allowlist entry {stale}");
    }
    if !result.is_clean() {
        return fail(format!(
            "{} determinism violations in {} scanned files (allowlist: {})",
            result.findings.len(),
            result.files_scanned,
            allow_path.display()
        ));
    }
    println!(
        "lint OK: {} files scanned, 0 violations, {} stale allowlist entries",
        result.files_scanned,
        result.stale_allows.len()
    );
    ExitCode::SUCCESS
}

/// `nosq serve`: bind, announce the port, and run until drained. The
/// journal defaults to `<out>/serve.journal` so a bare `nosq serve`
/// is crash-safe out of the box.
fn cmd_serve(options: &Options) -> ExitCode {
    signal::install();
    let journal = options
        .journal
        .clone()
        .unwrap_or_else(|| options.out.join("serve.journal"));
    if let Some(parent) = journal.parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                return fail(format!("creating {}: {e}", parent.display()));
            }
        }
    }
    let server = match Server::bind(ServeOptions {
        addr: options.addr.clone(),
        workers: options.workers,
        journal: Some(journal.clone()),
        cache_capacity: options.cache_cap,
        ckpt_every_insts: options.ckpt_every,
        watch_signals: true,
        ..ServeOptions::default()
    }) {
        Ok(s) => s,
        Err(e) => return fail(format!("binding {}: {e}", options.addr)),
    };
    println!(
        "nosq serve: listening on {} (journal {}, {} recovered)",
        server.local_addr(),
        journal.display(),
        server.recovered()
    );
    // CI scrapes the port from a redirected stdout; don't let the
    // announcement sit in a block buffer while the daemon runs.
    let _ = std::io::Write::flush(&mut std::io::stdout());
    match server.run() {
        Ok(stats) => {
            println!(
                "nosq serve: drained after {} jobs ({} cache hits, {} misses, {} connections)",
                stats.jobs_run, stats.cache_hits, stats.cache_misses, stats.connections
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(format!("serving: {e}")),
    }
}

/// `nosq loadgen`: drive a live daemon, verify every byte, and write
/// `BENCH_serve.json`. Any artifact divergence is a hard failure.
fn cmd_loadgen(options: &Options) -> ExitCode {
    let opts = LoadgenOptions {
        addr: options.addr.clone(),
        clients: options.clients,
        requests_per_client: options.requests,
        hot_pct: options.hot,
        interval_ms: options.interval_ms,
        max_insts: options.max_insts.unwrap_or(2_000),
    };
    let report = match run_loadgen(&opts) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    println!(
        "loadgen: {} clients x {} requests, p50 {:.1} ms, p99 {:.1} ms, {:.1} jobs/s, \
         {} cached responses, {} divergences",
        report.clients,
        report.requests / report.clients.max(1),
        report.p50_ms,
        report.p99_ms,
        report.jobs_per_sec,
        report.cached_responses,
        report.divergence
    );
    let contents = loadgen_json(&report);
    // Validate before writing: a malformed artifact must never land.
    if let Err(e) = json::parse(&contents) {
        return fail(format!("generated BENCH_serve.json is invalid: {e}"));
    }
    let artifact = Artifact {
        file_name: "BENCH_serve.json".to_owned(),
        contents,
    };
    match write_artifacts(&options.out, std::slice::from_ref(&artifact)) {
        Ok(paths) => {
            for path in &paths {
                println!("wrote {}", path.display());
            }
        }
        Err(e) => return fail(format!("writing BENCH_serve.json: {e}")),
    }
    if report.divergence > 0 {
        return fail(format!(
            "{} artifact divergences between daemon and local runs",
            report.divergence
        ));
    }
    ExitCode::SUCCESS
}

/// `nosq submit`: run one campaign through a live daemon and write the
/// returned artifacts exactly where `nosq run` would.
fn cmd_submit(spec_path: &str, options: &Options) -> ExitCode {
    let spec = match std::fs::read_to_string(spec_path) {
        Ok(text) => text,
        Err(e) => return fail(format!("reading {spec_path}: {e}")),
    };
    // Parse locally first: a bad spec should fail with the same
    // message whether or not a daemon is up.
    if let Err(e) = Campaign::from_spec(&spec) {
        return fail(format!("{spec_path}: {e}"));
    }
    let mut client = match ServeClient::connect(&options.addr) {
        Ok(c) => c,
        Err(e) => return fail(e),
    };
    let reply = match client.submit(&spec) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    println!("submitted job {} ({})", reply.job, reply.state);
    let progress = options.progress;
    let outcome = match client.wait_with(&reply.job, |done, total, insts| {
        if progress {
            eprint!("\r{done}/{total} jobs, {insts} insts");
        }
    }) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    if progress && outcome.progress_events > 0 {
        eprintln!();
    }
    if outcome.cached {
        println!("served from cache/journal (no re-simulation)");
    }
    match write_artifacts(&options.out, &outcome.artifacts) {
        Ok(paths) => {
            for path in &paths {
                println!("wrote {}", path.display());
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail(format!("writing artifacts: {e}")),
    }
}

/// `nosq shutdown`: ask a live daemon to drain and exit.
fn cmd_shutdown(options: &Options) -> ExitCode {
    match ServeClient::connect(&options.addr).and_then(|mut c| c.shutdown()) {
        Ok(()) => {
            println!("daemon at {} is draining", options.addr);
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}
