//! Vector clocks: the happens-before partial order the race detector
//! and the synchronization model are built on.
//!
//! Every model thread carries a [`VClock`]; every synchronizing
//! operation (spawn, join, release-store → acquire-load) merges clocks,
//! and every plain-data access is checked against them. Two accesses
//! race exactly when neither's epoch is contained in the other
//! thread's clock at access time.

use std::fmt;

/// A vector clock: one logical-time component per model thread.
///
/// Components default to zero; the vector grows on demand, so clocks
/// created before a thread existed compare correctly against it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u32>);

impl VClock {
    /// The all-zero clock.
    pub fn new() -> VClock {
        VClock::default()
    }

    /// This clock's component for `tid` (zero when never touched).
    pub fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Sets component `tid` to `value`, growing the vector as needed.
    pub fn set(&mut self, tid: usize, value: u32) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] = value;
    }

    /// Advances this thread's own component by one; returns the new
    /// value (the epoch of the event that just happened).
    pub fn bump(&mut self, tid: usize) -> u32 {
        let next = self.get(tid) + 1;
        self.set(tid, next);
        next
    }

    /// Componentwise maximum: after `a.join(&b)`, everything ordered
    /// before either clock is ordered before `a`.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Whether the event `(tid, epoch)` happens-before (or is) the
    /// point in time this clock represents.
    pub fn contains(&self, tid: usize, epoch: u32) -> bool {
        self.get(tid) >= epoch
    }

    /// Folds every component into a state hash (see the explorer's
    /// state-hashing pruner).
    pub fn fold_hash(&self, hash: &mut crate::sched::StateHash) {
        for (tid, &component) in self.0.iter().enumerate() {
            if component != 0 {
                hash.mix(tid as u64);
                hash.mix(u64::from(component));
            }
        }
    }
}

impl fmt::Display for VClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clocks_grow_and_join() {
        let mut a = VClock::new();
        assert_eq!(a.get(3), 0);
        assert_eq!(a.bump(1), 1);
        assert_eq!(a.bump(1), 2);
        let mut b = VClock::new();
        b.set(0, 5);
        b.set(2, 1);
        a.join(&b);
        assert_eq!((a.get(0), a.get(1), a.get(2)), (5, 2, 1));
        assert!(a.contains(1, 2));
        assert!(!a.contains(1, 3));
        assert!(a.contains(7, 0));
    }
}
