//! Structured checker output: diagnostics and per-model reports.
//!
//! Like `nosq-audit`, the checker never panics on a finding — every
//! violation becomes a [`CheckDiagnostic`] collected into a
//! [`CheckReport`], so a grid of models can run to completion and CI
//! can gate on the aggregate verdict (and on the *absence* of findings
//! in the deliberately broken self-test model).

use std::fmt;

use nosq_core::ser::{JsonArray, JsonObject};

/// Cap on retained diagnostics per report; findings beyond the cap are
/// still counted in [`CheckReport::violations`].
pub const MAX_DIAGNOSTICS: usize = 64;

/// The class of defect a diagnostic reports.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CheckRule {
    /// Two accesses to a plain-data location, at least one a write,
    /// with no happens-before edge between them: a data race.
    DataRace,
    /// A model assertion failed (a thread panicked) under some
    /// explored interleaving.
    AssertFailed,
    /// Unfinished threads remained but none was runnable.
    Deadlock,
    /// A replayed schedule diverged from its recording: the model is
    /// nondeterministic beyond scheduling (forbidden — models must
    /// derive all nondeterminism from thread interleaving).
    NondeterministicModel,
}

impl CheckRule {
    /// Stable machine-readable rule identifier.
    pub fn id(self) -> &'static str {
        match self {
            CheckRule::DataRace => "data-race",
            CheckRule::AssertFailed => "assert-failed",
            CheckRule::Deadlock => "deadlock",
            CheckRule::NondeterministicModel => "nondeterministic-model",
        }
    }
}

impl fmt::Display for CheckRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One access in a reported race pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessInfo {
    /// Model thread id (0 is the model's main thread).
    pub thread: usize,
    /// Human-readable operation kind (`"write"` / `"read"`).
    pub op: &'static str,
}

/// One checker finding, in the structured-diagnostic style of
/// `nosq-audit`: rule id, the location involved, and the two accesses
/// (for races) or a message (for assertion failures).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckDiagnostic {
    /// The violated rule.
    pub rule: CheckRule,
    /// The shared location involved (registration-order name such as
    /// `cell#2` or `atomic#0`), when one is.
    pub location: Option<String>,
    /// The earlier access of a racing pair.
    pub prior: Option<AccessInfo>,
    /// The access that exposed the defect.
    pub current: Option<AccessInfo>,
    /// Free-form detail (assertion payloads, deadlock thread sets).
    pub message: String,
    /// 0-based index of the interleaving that exposed the defect.
    pub interleaving: u64,
}

impl CheckDiagnostic {
    /// Serializes the diagnostic as a JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_str("rule", self.rule.id());
        if let Some(loc) = &self.location {
            obj.field_str("location", loc);
        }
        if let Some(prior) = &self.prior {
            obj.field_u64("prior_thread", prior.thread as u64);
            obj.field_str("prior_op", prior.op);
        }
        if let Some(current) = &self.current {
            obj.field_u64("thread", current.thread as u64);
            obj.field_str("op", current.op);
        }
        obj.field_str("message", &self.message);
        obj.field_u64("interleaving", self.interleaving);
        obj.finish()
    }
}

impl fmt::Display for CheckDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.rule)?;
        if let Some(loc) = &self.location {
            write!(f, " {loc}")?;
        }
        if let (Some(p), Some(c)) = (&self.prior, &self.current) {
            write!(
                f,
                ": {} by thread {} unordered against {} by thread {}",
                c.op, c.thread, p.op, p.thread
            )?;
        }
        if !self.message.is_empty() {
            write!(f, ": {}", self.message)?;
        }
        write!(f, " (interleaving {})", self.interleaving)
    }
}

/// The outcome of exhaustively (or boundedly) checking one model.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckReport {
    /// The model's name.
    pub model: String,
    /// Interleavings executed to completion.
    pub interleavings: u64,
    /// Executions abandoned because their frontier state had already
    /// been fully explored (state-hash pruning).
    pub pruned_states: u64,
    /// Executions abandoned because a thread exceeded the spin bound
    /// (a possible livelock; also clears [`CheckReport::complete`]).
    pub pruned_spin: u64,
    /// Schedule alternatives never explored because taking them would
    /// exceed the preemption bound.
    pub skipped_preemptions: u64,
    /// Total scheduled operations across all executions.
    pub ops: u64,
    /// Whether exploration ran to natural exhaustion — no interleaving
    /// cap, per-execution op budget, or spin bound was hit. A clean
    /// verdict is only a proof (modulo the documented memory model)
    /// when this is `true`.
    pub complete: bool,
    /// Total violations found (diagnostics beyond [`MAX_DIAGNOSTICS`]
    /// are counted here but not retained).
    pub violations: u64,
    /// Retained diagnostics, deduplicated by (rule, location, thread
    /// pair).
    pub diagnostics: Vec<CheckDiagnostic>,
}

impl CheckReport {
    /// Whether the model came back with zero violations.
    pub fn is_clean(&self) -> bool {
        self.violations == 0
    }

    /// Serializes the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut diags = JsonArray::new();
        for d in &self.diagnostics {
            diags.push_raw(&d.to_json());
        }
        let mut obj = JsonObject::new();
        obj.field_str("model", &self.model)
            .field_u64("interleavings", self.interleavings)
            .field_u64("pruned_states", self.pruned_states)
            .field_u64("pruned_spin", self.pruned_spin)
            .field_u64("skipped_preemptions", self.skipped_preemptions)
            .field_u64("ops", self.ops)
            .field_raw("complete", if self.complete { "true" } else { "false" })
            .field_u64("violations", self.violations)
            .field_raw("diagnostics", &diags.finish());
        obj.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_renders_and_serializes() {
        let diag = CheckDiagnostic {
            rule: CheckRule::DataRace,
            location: Some("cell#1".to_owned()),
            prior: Some(AccessInfo {
                thread: 1,
                op: "write",
            }),
            current: Some(AccessInfo {
                thread: 2,
                op: "read",
            }),
            message: String::new(),
            interleaving: 7,
        };
        let text = diag.to_string();
        assert!(text.contains("data-race"), "{text}");
        assert!(text.contains("cell#1"), "{text}");
        let json = diag.to_json();
        assert!(json.contains("\"rule\":\"data-race\""), "{json}");
        assert!(json.contains("\"interleaving\":7"), "{json}");
    }

    #[test]
    fn report_json_is_wellformed() {
        let report = CheckReport {
            model: "m".to_owned(),
            interleavings: 3,
            pruned_states: 1,
            pruned_spin: 0,
            skipped_preemptions: 2,
            ops: 40,
            complete: true,
            violations: 0,
            diagnostics: Vec::new(),
        };
        let json = report.to_json();
        assert!(json.contains("\"complete\":true"), "{json}");
        assert!(json.contains("\"diagnostics\":[]"), "{json}");
        assert!(report.is_clean());
    }
}
