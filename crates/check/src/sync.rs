//! The `sync` facade: the one door through which workspace code
//! reaches atomics and threads.
//!
//! Concurrent code in this workspace is written against the
//! [`SyncFacade`] trait instead of `std` directly, so the *same*
//! algorithm compiles two ways:
//!
//! * [`StdSync`] — real `std` atomics and scoped threads, fully
//!   inlined, zero overhead: what production binaries run;
//! * [`ModelSync`](crate::model::ModelSync) — checker-shimmed types
//!   whose every operation is a scheduling point: what `nosq check`
//!   explores exhaustively.
//!
//! The `nosq lint` concurrency rule enforces the funnel: outside this
//! module (and the checker's own scheduler), `std::sync::atomic` and
//! `std::thread` are forbidden in `crates/`, so everything concurrent
//! is model-checkable by construction.

use std::sync::Mutex;
use std::time::Duration;

/// Memory-ordering selector, mirroring `std::sync::atomic::Ordering`.
///
/// The facade defines its own enum so facade clients never name the
/// `std` module (the lint rule's door stays shut) and so the model
/// checker can interpret orderings directly: under
/// [`ModelSync`](crate::model::ModelSync) an `Acquire` load reading a
/// `Release` store joins vector clocks, while `Relaxed` accesses move
/// values but never synchronize.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Ordering {
    /// No synchronization; only the access itself is atomic.
    Relaxed,
    /// Loads (and the load half of RMWs) observe the release clock of
    /// the store they read from.
    Acquire,
    /// Stores (and the store half of RMWs) publish the writer's clock.
    Release,
    /// Both halves: `Acquire` on the read, `Release` on the write.
    AcqRel,
    /// Treated by the checker as [`Ordering::AcqRel`]; the model does
    /// not additionally enforce a single total order over `SeqCst`
    /// operations (see the crate docs for the memory-model caveats).
    SeqCst,
}

impl Ordering {
    /// Whether a load at this ordering acquires.
    pub fn acquires(self) -> bool {
        matches!(
            self,
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
        )
    }

    /// Whether a store at this ordering releases.
    pub fn releases(self) -> bool {
        matches!(
            self,
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
        )
    }

    fn to_std(self) -> std::sync::atomic::Ordering {
        match self {
            Ordering::Relaxed => std::sync::atomic::Ordering::Relaxed,
            Ordering::Acquire => std::sync::atomic::Ordering::Acquire,
            Ordering::Release => std::sync::atomic::Ordering::Release,
            Ordering::AcqRel => std::sync::atomic::Ordering::AcqRel,
            Ordering::SeqCst => std::sync::atomic::Ordering::SeqCst,
        }
    }
}

/// An atomic integer cell; implemented by the real `std` atomics and by
/// the checker's shims.
///
/// Orderings must be valid for the operation exactly as in `std`
/// (`load` rejects `Release`/`AcqRel`, `store` rejects
/// `Acquire`/`AcqRel`) — [`StdSync`] delegates to `std`, which panics
/// on misuse.
pub trait AtomicCell<T: Copy>: Send + Sync {
    /// Creates a cell holding `value`.
    fn new(value: T) -> Self;
    /// Atomically reads the value.
    fn load(&self, order: Ordering) -> T;
    /// Atomically writes the value.
    fn store(&self, value: T, order: Ordering);
    /// Atomically adds, returning the previous value.
    fn fetch_add(&self, value: T, order: Ordering) -> T;
    /// Strong compare-exchange: `Ok(previous)` on success, the observed
    /// value in `Err` on failure.
    fn compare_exchange(
        &self,
        current: T,
        new: T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<T, T>;
}

/// A single-value plain-data hand-off cell: the *non-atomic* shared
/// storage whose safe use the surrounding atomic protocol must prove.
///
/// Under [`StdSync`] this is a mutex-protected option — safe Rust needs
/// *some* interior-mutability wrapper, and an uncontended mutex costs a
/// few nanoseconds — but correctness must never depend on that lock:
/// the protocol around it has to guarantee exclusive access on its own.
/// That is precisely what the checker proves — under
/// [`ModelSync`](crate::model::ModelSync) every `put`/`take` is a
/// vector-clock-checked plain write, and any pair of accesses without a
/// happens-before edge is reported as a data race.
pub trait SlotCell<T: Send>: Send + Sync {
    /// Creates an empty slot.
    fn new() -> Self;
    /// Stores `value`, returning whatever the slot previously held (a
    /// correctly synchronized protocol sees `None`).
    fn put(&self, value: T) -> Option<T>;
    /// Removes and returns the stored value, if any.
    fn take(&self) -> Option<T>;
}

/// The family of synchronization primitives an algorithm is generic
/// over; see the [module docs](self) for the two implementations.
pub trait SyncFacade: 'static + Sized {
    /// `usize` atomic (job cursors, queue positions).
    type AtomicUsize: AtomicCell<usize>;
    /// `u64` atomic (progress counters).
    type AtomicU64: AtomicCell<u64>;
    /// Plain-data hand-off slot.
    type Slot<T: Send>: SlotCell<T>;

    /// Runs `threads` logical threads of `f(thread_index)` to
    /// completion and returns their results in index order. The spawns
    /// happen-before every `f`, and every `f` happens-before the
    /// return — the join edges lock-free hand-offs rely on.
    ///
    /// `poll` (when given) runs periodically on the calling thread
    /// while workers drain; it must not block.
    fn run_threads<T, F>(threads: usize, f: F, poll: Option<&mut dyn FnMut()>) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync;

    /// Tells the scheduler this thread is spinning without progress.
    /// Real hardware gets a `spin_loop` hint; the checker deprioritizes
    /// the thread until another thread writes, which keeps polling
    /// loops explorable without unbounded schedules.
    fn spin_hint();
}

/// The production facade: real `std` atomics and scoped OS threads.
/// Every method is a direct, inlinable delegation — code generic over
/// [`SyncFacade`] instantiated at `StdSync` compiles to exactly what it
/// would with `std` types written in place.
#[derive(Copy, Clone, Debug, Default)]
pub struct StdSync;

impl AtomicCell<usize> for std::sync::atomic::AtomicUsize {
    #[inline]
    fn new(value: usize) -> Self {
        std::sync::atomic::AtomicUsize::new(value)
    }
    #[inline]
    fn load(&self, order: Ordering) -> usize {
        self.load(order.to_std())
    }
    #[inline]
    fn store(&self, value: usize, order: Ordering) {
        self.store(value, order.to_std())
    }
    #[inline]
    fn fetch_add(&self, value: usize, order: Ordering) -> usize {
        self.fetch_add(value, order.to_std())
    }
    #[inline]
    fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        self.compare_exchange(current, new, success.to_std(), failure.to_std())
    }
}

impl AtomicCell<u64> for std::sync::atomic::AtomicU64 {
    #[inline]
    fn new(value: u64) -> Self {
        std::sync::atomic::AtomicU64::new(value)
    }
    #[inline]
    fn load(&self, order: Ordering) -> u64 {
        self.load(order.to_std())
    }
    #[inline]
    fn store(&self, value: u64, order: Ordering) {
        self.store(value, order.to_std())
    }
    #[inline]
    fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
        self.fetch_add(value, order.to_std())
    }
    #[inline]
    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.compare_exchange(current, new, success.to_std(), failure.to_std())
    }
}

/// [`SlotCell`] for [`StdSync`]: a mutex-protected option (see the
/// trait docs for why the lock is belt-and-braces, not load-bearing).
#[derive(Debug, Default)]
pub struct StdSlot<T>(Mutex<Option<T>>);

impl<T: Send> SlotCell<T> for StdSlot<T> {
    fn new() -> Self {
        StdSlot(Mutex::new(None))
    }
    fn put(&self, value: T) -> Option<T> {
        self.0.lock().expect("slot poisoned").replace(value)
    }
    fn take(&self) -> Option<T> {
        self.0.lock().expect("slot poisoned").take()
    }
}

impl SyncFacade for StdSync {
    type AtomicUsize = std::sync::atomic::AtomicUsize;
    type AtomicU64 = std::sync::atomic::AtomicU64;
    type Slot<T: Send> = StdSlot<T>;

    fn run_threads<T, F>(threads: usize, f: F, mut poll: Option<&mut dyn FnMut()>) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = (0..threads).map(|k| scope.spawn(move || f(k))).collect();
            // Watch worker liveness, not a completion counter: a
            // panicking worker is `finished` too, so this loop always
            // terminates and the panic propagates at join below.
            if let Some(poll) = poll.as_mut() {
                while !handles.iter().all(|h| h.is_finished()) {
                    poll();
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    }

    #[inline]
    fn spin_hint() {
        std::hint::spin_loop();
    }
}

/// Hardware threads available to this process (at least 1). Lives here
/// so facade clients never need `std::thread` directly.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_atomics_roundtrip_through_the_facade() {
        fn exercise<S: SyncFacade>() -> (usize, u64) {
            let a = S::AtomicUsize::new(5);
            assert_eq!(a.fetch_add(3, Ordering::Relaxed), 5);
            assert_eq!(
                a.compare_exchange(8, 1, Ordering::AcqRel, Ordering::Acquire),
                Ok(8)
            );
            assert_eq!(
                a.compare_exchange(8, 2, Ordering::AcqRel, Ordering::Acquire),
                Err(1)
            );
            let b = S::AtomicU64::new(0);
            b.store(7, Ordering::Release);
            (a.load(Ordering::Acquire), b.load(Ordering::Acquire))
        }
        assert_eq!(exercise::<StdSync>(), (1, 7));
    }

    #[test]
    fn std_slots_hand_off() {
        let slot = <StdSync as SyncFacade>::Slot::<String>::new();
        assert_eq!(slot.take(), None);
        assert_eq!(slot.put("a".into()), None);
        assert_eq!(slot.put("b".into()), Some("a".into()));
        assert_eq!(slot.take(), Some("b".into()));
    }

    #[test]
    fn run_threads_returns_in_index_order() {
        let mut polled = 0usize;
        let mut poll = || polled += 1;
        let out = StdSync::run_threads(4, |k| k * 10, Some(&mut poll));
        assert_eq!(out, vec![0, 10, 20, 30]);
        let empty: Vec<usize> = StdSync::run_threads(0, |k| k, None);
        assert!(empty.is_empty());
        assert!(available_parallelism() >= 1);
    }
}
