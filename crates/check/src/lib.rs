//! `nosq-check`: an exhaustive interleaving model checker and
//! happens-before race detector for the workspace's lock-free code.
//!
//! The crate has two faces:
//!
//! * the [`sync`] facade — [`SyncFacade`] and friends — that the
//!   workspace's concurrent algorithms are written against, with
//!   [`StdSync`] (real atomics, zero overhead) for production;
//! * the checker — [`check_model`] plus [`ModelSync`] — which runs the
//!   *same* generic code under a deterministic scheduler, enumerates
//!   every interleaving of its shimmed operations (bounded by
//!   [`Bounds`]), and reports unsynchronized access pairs and failed
//!   assertions as structured [`CheckDiagnostic`]s, never panics.
//!
//! # Example
//!
//! ```
//! use nosq_check::sync::{AtomicCell, Ordering, SyncFacade};
//! use nosq_check::{check_model, Bounds, ModelSync};
//!
//! let report = check_model("counter", &Bounds::default(), || {
//!     let counter = <ModelSync as SyncFacade>::AtomicUsize::new(0);
//!     ModelSync::run_threads(
//!         2,
//!         |_| {
//!             counter.fetch_add(1, Ordering::Relaxed);
//!         },
//!         None,
//!     );
//!     // Runs under every interleaving the scheduler can produce:
//!     assert_eq!(counter.load(Ordering::Relaxed), 2);
//! });
//! assert!(report.is_clean() && report.complete);
//! ```
//!
//! # What a clean report proves — and what it does not
//!
//! Within its memory model, an exploration with
//! [`CheckReport::complete`] set proves that *no* interleaving of the
//! model's operations produces a data race on a
//! [`SlotCell`](sync::SlotCell), a failed assertion, or a deadlock.
//! The model is deliberately stronger than real hardware in one way
//! and standard in another:
//!
//! * Atomic **values** are sequentially consistent (a load always
//!   observes the most recent store), so stale-value behaviors of
//!   genuinely relaxed hardware are not enumerated. Instead,
//!   **synchronization** is tracked precisely: only release→acquire
//!   edges (including C++20-style release sequences through RMWs)
//!   establish happens-before, and every plain-data access is checked
//!   against the resulting vector clocks. A publish over a `Relaxed`
//!   store is therefore reported as a race even though the value
//!   "arrives" — the DRF-style discipline under which SC reasoning is
//!   sound is exactly what gets enforced.
//! * `SeqCst` is modeled as `AcqRel`: the single total order over
//!   `SeqCst` operations is not additionally enforced, so algorithms
//!   whose correctness *requires* SC beyond acquire/release (e.g.
//!   Dekker-style flags) are outside the model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod model;
pub mod report;
pub mod sched;
pub mod sync;

pub use model::ModelSync;
pub use report::{AccessInfo, CheckDiagnostic, CheckReport, CheckRule, MAX_DIAGNOSTICS};
pub use sched::{check_model, Bounds, StateHash};
pub use sync::{available_parallelism, Ordering, StdSync, SyncFacade};
