//! The checker engine: a deterministic cooperative scheduler, a DFS
//! schedule explorer, and the vector-clock race detector.
//!
//! # How an execution runs
//!
//! The model closure runs on a real OS thread, but every shimmed
//! operation (atomic access, slot access, spin hint, child spawn/join)
//! funnels through the engine's shim, which parks the thread until the
//! controller grants it the next turn. Exactly one model thread is
//! ever between grant and park, so the whole execution is a sequential
//! interleaving chosen by the controller — and the *choice points* are
//! precisely the shimmed operations.
//!
//! # How exploration works
//!
//! The controller records each scheduling decision (which paused
//! thread to grant) together with the viable alternatives, runs the
//! execution to completion, then backtracks: flip the deepest decision
//! with an untried alternative, replay the unchanged prefix, and
//! continue fresh from there — classic stateless DFS in the CHESS
//! style. Three bounds keep it finite and fast:
//!
//! * a **preemption bound** (alternatives that would switch away from
//!   a still-runnable thread beyond the budget are skipped);
//! * **state-hash pruning**: at every frontier decision the shared
//!   state — atomic values and sync clocks, per-thread positions and
//!   observation hashes, slot epochs, remaining preemption budget — is
//!   hashed; re-reaching a seen state abandons the execution, because
//!   a deterministic model behaves identically from equal states;
//! * **spin fairness**: a yield shim op deprioritizes the spinning
//!   thread until some other thread writes, so polling loops do not
//!   inflate the schedule space.
//!
//! # The memory model
//!
//! Atomic *values* are sequentially consistent (every load sees the
//! latest store), but *synchronization* follows the ordering
//! arguments: only an acquire load reading from a release store (or a
//! release sequence continued by RMWs) joins vector clocks. Plain-data
//! [`SlotCell`](crate::sync::SlotCell) accesses are checked against
//! those clocks, so a publish over a `Relaxed` store is reported as a
//! data race even though the value itself arrives. This is the
//! standard DRF-style compromise: it cannot witness stale-value reads
//! that genuinely relaxed hardware could produce, but it proves the
//! absence of the unsynchronized access pairs that make such reads
//! dangerous. `SeqCst` is modeled as `AcqRel` (no global SC order).

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};

use crate::clock::VClock;
use crate::report::{AccessInfo, CheckDiagnostic, CheckReport, CheckRule, MAX_DIAGNOSTICS};
use crate::sync::Ordering;

/// Exploration bounds for one model run; [`Bounds::default`] explores
/// exhaustively (no preemption bound) with generous safety caps.
#[derive(Clone, Debug)]
pub struct Bounds {
    /// Maximum preemptive context switches per schedule (`None` =
    /// unbounded, i.e. exhaustive modulo the other caps). Two or three
    /// preemptions find almost all real concurrency bugs at a tiny
    /// fraction of the exhaustive cost (the CHESS observation).
    pub preemptions: Option<u32>,
    /// Hard cap on executions (completed + pruned); exceeding it
    /// clears [`CheckReport::complete`].
    pub max_interleavings: u64,
    /// Per-execution operation budget; exceeding it abandons the
    /// execution and clears [`CheckReport::complete`].
    pub max_ops: u64,
    /// Consecutive unproductive spins allowed per thread before the
    /// execution is abandoned as a possible livelock.
    pub max_spins: u32,
}

impl Default for Bounds {
    fn default() -> Bounds {
        Bounds {
            preemptions: None,
            max_interleavings: 250_000,
            max_ops: 50_000,
            max_spins: 256,
        }
    }
}

impl Bounds {
    /// A preemption-bounded preset for bigger models (`--bound small`).
    pub fn small() -> Bounds {
        Bounds {
            preemptions: Some(2),
            max_interleavings: 60_000,
            ..Bounds::default()
        }
    }
}

/// 128-bit FNV-1a accumulator for state and observation hashing. With
/// a 128-bit digest, accidental collisions (which would prune a
/// genuinely new state) are negligible at the ≤10⁶-state scales the
/// checker runs at.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StateHash(u128);

impl StateHash {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;

    /// The empty hash.
    pub fn new() -> StateHash {
        StateHash(Self::OFFSET)
    }

    /// Folds a word into the digest.
    pub fn mix(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u128::from(byte);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn digest(self) -> u128 {
        self.0
    }
}

impl Default for StateHash {
    fn default() -> StateHash {
        StateHash::new()
    }
}

/// The kind of plain-data slot access (both mutate, so both are
/// "writes" to the race detector).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum RaceOpKind {
    Put,
    Take,
}

impl RaceOpKind {
    fn name(self) -> &'static str {
        match self {
            RaceOpKind::Put => "put",
            RaceOpKind::Take => "take",
        }
    }
}

/// One shimmed operation: the unit of scheduling.
#[derive(Clone, Debug)]
pub(crate) enum ShimOp {
    /// First scheduling point of every thread, before any model code.
    Start,
    /// Atomic load.
    Load { loc: usize, order: Ordering },
    /// Atomic store.
    Store {
        loc: usize,
        order: Ordering,
        value: u64,
    },
    /// Atomic fetch-add (wrapping).
    FetchAdd {
        loc: usize,
        order: Ordering,
        value: u64,
    },
    /// Atomic strong compare-exchange.
    CompareExchange {
        loc: usize,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    },
    /// Plain-data slot access (race-checked).
    RaceAccess { loc: usize, kind: RaceOpKind },
    /// Spin hint: deprioritize until another thread writes.
    Yield,
    /// Parent resuming after all children finished (join edge).
    JoinDone { children: Vec<usize> },
}

impl ShimOp {
    fn tag(&self) -> u64 {
        match self {
            ShimOp::Start => 1,
            ShimOp::Load { .. } => 2,
            ShimOp::Store { .. } => 3,
            ShimOp::FetchAdd { .. } => 4,
            ShimOp::CompareExchange { .. } => 5,
            ShimOp::RaceAccess { .. } => 6,
            ShimOp::Yield => 7,
            ShimOp::JoinDone { .. } => 8,
        }
    }
}

/// Result of applying a [`ShimOp`].
pub(crate) enum ShimResult {
    Unit,
    Value(u64),
    Cas(Result<u64, u64>),
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Status {
    /// Between grant and the next park (or registered, not yet run).
    Running,
    /// Parked at a shim point, runnable.
    Paused,
    /// Waiting for children to finish (not runnable).
    Blocked(Vec<usize>),
    Finished,
}

struct ThreadSt {
    status: Status,
    clock: VClock,
    /// Rolling hash of everything this thread has observed; equal
    /// hashes mean (up to collision) equal local state, which is what
    /// makes state-hash pruning sound for deterministic models.
    obs: StateHash,
    yielded: bool,
    spins: u32,
    ops: u64,
}

struct AtomicSt {
    value: u64,
    /// The clock published by the last release store (and joined by
    /// RMWs continuing the release sequence); `None` after a relaxed
    /// store breaks the chain.
    sync: Option<VClock>,
}

struct RaceSt {
    /// Last access: (thread, epoch, kind). Slot accesses all mutate,
    /// so one epoch suffices — any later access unordered with it is a
    /// race.
    last: Option<(usize, u32, RaceOpKind)>,
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum AbortCause {
    StatePruned,
    SpinBound,
    OpBudget,
    Failed,
}

struct ExecState {
    threads: Vec<ThreadSt>,
    atomics: Vec<AtomicSt>,
    races: Vec<RaceSt>,
    /// Which paused thread currently holds the grant.
    active: Option<usize>,
    aborted: Option<AbortCause>,
    diagnostics: Vec<CheckDiagnostic>,
    ops: u64,
    interleaving: u64,
    /// Copy of [`Bounds::max_spins`] so `apply`/`shim` see it without
    /// threading the bounds through every call.
    spin_bound: u32,
}

pub(crate) struct ExecShared {
    state: Mutex<ExecState>,
    cv: Condvar,
}

impl ExecShared {
    fn lock(&self) -> MutexGuard<'_, ExecState> {
        // A model panic (assertion or abort sentinel) can poison the
        // mutex while unwinding out of a shim point; the state is
        // still consistent (mutations are never partial), so recover.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait<'a>(&self, guard: MutexGuard<'a, ExecState>) -> MutexGuard<'a, ExecState> {
        self.cv.wait(guard).unwrap_or_else(|e| e.into_inner())
    }
}

/// Sentinel panic payload: tear down the current execution quietly.
struct Aborted;

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<ExecShared>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

fn bind(exec: Arc<ExecShared>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((exec, tid)));
}

fn current() -> (Arc<ExecShared>, usize) {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .expect("nosq-check model types may only be used inside a model run")
    })
}

fn in_model_thread() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Installs (once) a panic hook that silences panics on model threads:
/// sentinel aborts are routine control flow, and model assertion
/// failures are captured as diagnostics, so neither should spray
/// backtraces over test output.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !in_model_thread() {
                previous(info);
            }
        }));
    });
}

fn abort_sentinel() -> ! {
    std::panic::panic_any(Aborted)
}

/// Registers a fresh atomic location; called from shim constructors
/// (only one model thread runs at a time, so registration order — and
/// therefore location ids — is a deterministic function of the
/// schedule).
pub(crate) fn register_atomic(init: u64) -> usize {
    let (exec, _) = current();
    let mut st = exec.lock();
    st.atomics.push(AtomicSt {
        value: init,
        sync: None,
    });
    st.atomics.len() - 1
}

/// Registers a fresh plain-data (race-checked) location. The creating
/// thread is recorded as the initial writer so any access unordered
/// with creation is already a race.
pub(crate) fn register_race_cell() -> usize {
    let (exec, tid) = current();
    let mut st = exec.lock();
    let epoch = st.threads[tid].clock.get(tid);
    st.races.push(RaceSt {
        last: Some((tid, epoch, RaceOpKind::Put)),
    });
    st.races.len() - 1
}

/// The heart of the shim: park at a scheduling point, wait for the
/// grant, apply the operation's effect, and return its result.
pub(crate) fn shim(op: ShimOp) -> ShimResult {
    let (exec, tid) = current();
    let mut st = exec.lock();
    if st.aborted.is_some() {
        drop(st);
        abort_sentinel();
    }
    st.threads[tid].status = Status::Paused;
    exec.cv.notify_all();
    while st.active != Some(tid) {
        st = exec.wait(st);
        if st.aborted.is_some() {
            drop(st);
            abort_sentinel();
        }
    }
    st.active = None;
    st.threads[tid].status = Status::Running;
    let result = apply(&mut st, tid, &op);
    if st.threads[tid].spins > st.spin_bound {
        st.aborted = Some(AbortCause::SpinBound);
        exec.cv.notify_all();
        drop(st);
        abort_sentinel();
    }
    exec.cv.notify_all();
    result
}

/// Applies one granted operation: value semantics, clock updates, race
/// checks, observation hashing, yield bookkeeping.
fn apply(st: &mut ExecState, tid: usize, op: &ShimOp) -> ShimResult {
    st.threads[tid].clock.bump(tid);
    st.threads[tid].ops += 1;
    let mut obs = st.threads[tid].obs;
    obs.mix(op.tag());
    let mut wrote = false;
    let result = match op {
        ShimOp::Start => ShimResult::Unit,
        ShimOp::Load { loc, order } => {
            debug_assert!(
                !matches!(order, Ordering::Release | Ordering::AcqRel),
                "invalid load ordering"
            );
            let (value, sync) = {
                let a = &st.atomics[*loc];
                (a.value, a.sync.clone())
            };
            if order.acquires() {
                if let Some(vc) = &sync {
                    st.threads[tid].clock.join(vc);
                }
            }
            obs.mix(*loc as u64);
            obs.mix(value);
            ShimResult::Value(value)
        }
        ShimOp::Store { loc, order, value } => {
            debug_assert!(
                !matches!(order, Ordering::Acquire | Ordering::AcqRel),
                "invalid store ordering"
            );
            wrote = true;
            let clock = st.threads[tid].clock.clone();
            let a = &mut st.atomics[*loc];
            a.value = *value;
            // A release store publishes this thread's clock; a relaxed
            // store breaks the release sequence, so later acquire
            // loads synchronize with nothing.
            a.sync = if order.releases() { Some(clock) } else { None };
            obs.mix(*loc as u64);
            obs.mix(*value);
            ShimResult::Unit
        }
        ShimOp::FetchAdd { loc, order, value } => {
            wrote = true;
            let old = st.atomics[*loc].value;
            if order.acquires() {
                if let Some(vc) = st.atomics[*loc].sync.clone() {
                    st.threads[tid].clock.join(&vc);
                }
            }
            let clock = st.threads[tid].clock.clone();
            let a = &mut st.atomics[*loc];
            a.value = old.wrapping_add(*value);
            if order.releases() {
                // RMWs continue the release sequence: the published
                // clock accumulates the prior sync clock.
                let mut vc = a.sync.take().unwrap_or_default();
                vc.join(&clock);
                a.sync = Some(vc);
            }
            // A relaxed RMW leaves the existing sync clock in place
            // (it continues, without extending, the release sequence).
            obs.mix(*loc as u64);
            obs.mix(old);
            ShimResult::Value(old)
        }
        ShimOp::CompareExchange {
            loc,
            current,
            new,
            success,
            failure,
        } => {
            let old = st.atomics[*loc].value;
            obs.mix(*loc as u64);
            obs.mix(old);
            if old == *current {
                wrote = true;
                if success.acquires() {
                    if let Some(vc) = st.atomics[*loc].sync.clone() {
                        st.threads[tid].clock.join(&vc);
                    }
                }
                let clock = st.threads[tid].clock.clone();
                let a = &mut st.atomics[*loc];
                a.value = *new;
                if success.releases() {
                    let mut vc = a.sync.take().unwrap_or_default();
                    vc.join(&clock);
                    a.sync = Some(vc);
                }
                obs.mix(1);
                ShimResult::Cas(Ok(old))
            } else {
                if failure.acquires() {
                    if let Some(vc) = st.atomics[*loc].sync.clone() {
                        st.threads[tid].clock.join(&vc);
                    }
                }
                obs.mix(0);
                ShimResult::Cas(Err(old))
            }
        }
        ShimOp::RaceAccess { loc, kind } => {
            wrote = true;
            let epoch = st.threads[tid].clock.get(tid);
            let prior = st.races[*loc].last;
            if let Some((ptid, pepoch, pkind)) = prior {
                if ptid != tid && !st.threads[tid].clock.contains(ptid, pepoch) {
                    let diag = CheckDiagnostic {
                        rule: CheckRule::DataRace,
                        location: Some(format!("cell#{loc}")),
                        prior: Some(AccessInfo {
                            thread: ptid,
                            op: pkind.name(),
                        }),
                        current: Some(AccessInfo {
                            thread: tid,
                            op: kind.name(),
                        }),
                        message: format!(
                            "no happens-before edge orders these accesses to cell#{loc}"
                        ),
                        interleaving: st.interleaving,
                    };
                    st.diagnostics.push(diag);
                }
                // The taken value is identified by its producing write
                // event, so mixing the prior epoch into the observation
                // hash captures the (engine-invisible) slot payload.
                obs.mix(ptid as u64);
                obs.mix(u64::from(pepoch));
            }
            st.races[*loc].last = Some((tid, epoch, *kind));
            obs.mix(*loc as u64);
            obs.mix(*kind as u64);
            ShimResult::Unit
        }
        ShimOp::Yield => {
            st.threads[tid].yielded = true;
            st.threads[tid].spins += 1;
            ShimResult::Unit
        }
        ShimOp::JoinDone { children } => {
            for &c in children {
                let child_clock = st.threads[c].clock.clone();
                st.threads[tid].clock.join(&child_clock);
                let child_obs = st.threads[c].obs;
                obs.mix(child_obs.digest() as u64);
                obs.mix((child_obs.digest() >> 64) as u64);
            }
            ShimResult::Unit
        }
    };
    if !matches!(op, ShimOp::Yield) {
        st.threads[tid].spins = 0;
    }
    if wrote {
        // A write is progress: wake every spinner so polling loops get
        // exactly one fresh look per state change.
        for (other, t) in st.threads.iter_mut().enumerate() {
            if other != tid {
                t.yielded = false;
            }
        }
    }
    st.threads[tid].obs = obs;
    result
}

/// Registers `n` children of `parent` (spawn edges included) and
/// returns their ids. Must be called by the running parent thread.
fn register_children(exec: &ExecShared, parent: usize, n: usize) -> Vec<usize> {
    let mut st = exec.lock();
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        st.threads[parent].clock.bump(parent);
        let tid = st.threads.len();
        let mut clock = st.threads[parent].clock.clone();
        clock.bump(tid);
        let mut obs = StateHash::new();
        obs.mix(tid as u64);
        st.threads.push(ThreadSt {
            status: Status::Paused,
            clock,
            obs,
            yielded: false,
            spins: 0,
            ops: 0,
        });
        ids.push(tid);
    }
    ids
}

fn thread_finished(exec: &ExecShared, tid: usize, panic: Option<Box<dyn std::any::Any + Send>>) {
    let mut st = exec.lock();
    if let Some(payload) = panic {
        if payload.downcast_ref::<Aborted>().is_none() {
            // A real model panic: a failed assertion under this
            // interleaving. Capture it and tear the execution down.
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "model thread panicked".to_owned());
            let diag = CheckDiagnostic {
                rule: CheckRule::AssertFailed,
                location: None,
                prior: None,
                current: Some(AccessInfo {
                    thread: tid,
                    op: "panic",
                }),
                message,
                interleaving: st.interleaving,
            };
            st.diagnostics.push(diag);
            st.aborted = Some(AbortCause::Failed);
        } else if st.aborted.is_none() {
            st.aborted = Some(AbortCause::Failed);
        }
    }
    st.threads[tid].status = Status::Finished;
    exec.cv.notify_all();
}

/// Runs `n` logical child threads of the calling model thread; the
/// engine half of `ModelSync::run_threads`.
pub(crate) fn run_child_threads<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let (exec, parent) = current();
    let ids = register_children(&exec, parent, n);
    let outputs: Vec<Option<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ids
            .iter()
            .enumerate()
            .map(|(k, &tid)| {
                let exec = Arc::clone(&exec);
                let f = &f;
                scope.spawn(move || {
                    bind(Arc::clone(&exec), tid);
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        shim(ShimOp::Start);
                        f(k)
                    }));
                    let (value, panic) = match out {
                        Ok(v) => (Some(v), None),
                        Err(p) => (None, Some(p)),
                    };
                    thread_finished(&exec, tid, panic);
                    value
                })
            })
            .collect();
        {
            // Park the parent for the duration of the physical joins
            // below so the controller schedules only the children.
            let mut st = exec.lock();
            st.threads[parent].status = Status::Blocked(ids.clone());
            exec.cv.notify_all();
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("model child wrapper never panics"))
            .collect()
    });
    // All children are finished; re-enter the schedule (this is the
    // join edge: the parent's clock absorbs every child's).
    shim(ShimOp::JoinDone {
        children: ids.clone(),
    });
    outputs
        .into_iter()
        .map(|v| v.unwrap_or_else(|| abort_sentinel()))
        .collect()
}

// ---------------------------------------------------------------------
// The explorer.
// ---------------------------------------------------------------------

struct Decision {
    taken: usize,
    alternatives: Vec<usize>,
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum ExecEnd {
    Completed,
    Pruned(AbortCause),
}

/// Dedup key for diagnostics across interleavings: the same defect
/// reached along a different schedule must not be reported twice.
type DiagKey = (CheckRule, Option<String>, Option<usize>, Option<usize>);

struct Explorer<'m, F> {
    bounds: &'m Bounds,
    model: &'m F,
    stack: Vec<Decision>,
    visited: BTreeSet<u128>,
    // Report accumulators.
    interleavings: u64,
    pruned_states: u64,
    pruned_spin: u64,
    skipped_preemptions: u64,
    op_budget_hits: u64,
    total_ops: u64,
    diagnostics: Vec<CheckDiagnostic>,
    diag_keys: Vec<DiagKey>,
    violations: u64,
}

impl ExecState {
    fn new(interleaving: u64, spin_bound: u32) -> ExecState {
        let mut obs = StateHash::new();
        obs.mix(0);
        let mut clock = VClock::new();
        clock.bump(0);
        ExecState {
            threads: vec![ThreadSt {
                status: Status::Paused,
                clock,
                obs,
                yielded: false,
                spins: 0,
                ops: 0,
            }],
            atomics: Vec::new(),
            races: Vec::new(),
            active: None,
            aborted: None,
            diagnostics: Vec::new(),
            ops: 0,
            interleaving,
            spin_bound,
        }
    }

    fn all_finished(&self) -> bool {
        self.threads
            .iter()
            .all(|t| matches!(t.status, Status::Finished))
    }

    /// Quiescent: nobody running, no grant outstanding, and no parent
    /// about to resume from a completed join (its OS thread is in
    /// flight between the physical join and the `JoinDone` shim).
    fn quiescent(&self) -> bool {
        self.active.is_none()
            && self.threads.iter().all(|t| match &t.status {
                Status::Running => false,
                Status::Blocked(children) => !children
                    .iter()
                    .all(|&c| matches!(self.threads[c].status, Status::Finished)),
                _ => true,
            })
    }

    fn enabled(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.status, Status::Paused))
            .map(|(i, _)| i)
            .collect()
    }

    /// Candidate grant order: fresh (non-yielded) threads first — if
    /// every enabled thread has yielded, clear the flags and consider
    /// them all — with the previously running thread preferred (a
    /// non-switch costs no preemption budget).
    fn candidates(&mut self, enabled: &[usize], prev: Option<usize>) -> Vec<usize> {
        let mut pool: Vec<usize> = enabled
            .iter()
            .copied()
            .filter(|&t| !self.threads[t].yielded)
            .collect();
        if pool.is_empty() {
            for &t in enabled {
                self.threads[t].yielded = false;
            }
            pool = enabled.to_vec();
        }
        pool.sort_unstable_by_key(|&t| (Some(t) != prev, t));
        pool
    }

    /// The frontier state digest; see the module docs for what makes
    /// this a sound pruning key for deterministic models.
    fn state_hash(&self, budget_left: Option<u32>, prev: Option<usize>) -> u128 {
        let mut h = StateHash::new();
        for t in &self.threads {
            h.mix(match t.status {
                Status::Running => 0,
                Status::Paused => 1,
                Status::Blocked(_) => 2,
                Status::Finished => 3,
            });
            h.mix(u64::from(t.yielded));
            h.mix(t.ops);
            h.mix(t.obs.digest() as u64);
            h.mix((t.obs.digest() >> 64) as u64);
            t.clock.fold_hash(&mut h);
        }
        for a in &self.atomics {
            h.mix(a.value);
            match &a.sync {
                None => h.mix(0),
                Some(vc) => {
                    h.mix(1);
                    vc.fold_hash(&mut h);
                }
            }
        }
        for r in &self.races {
            match r.last {
                None => h.mix(0),
                Some((tid, epoch, kind)) => {
                    h.mix(1 + tid as u64);
                    h.mix(u64::from(epoch));
                    h.mix(kind as u64);
                }
            }
        }
        h.mix(budget_left.map_or(u64::MAX, u64::from));
        h.mix(prev.map_or(u64::MAX, |p| p as u64));
        h.digest()
    }
}

impl<'m, F: Fn() + Sync> Explorer<'m, F> {
    fn new(bounds: &'m Bounds, model: &'m F) -> Explorer<'m, F> {
        Explorer {
            bounds,
            model,
            stack: Vec::new(),
            visited: BTreeSet::new(),
            interleavings: 0,
            pruned_states: 0,
            pruned_spin: 0,
            skipped_preemptions: 0,
            op_budget_hits: 0,
            total_ops: 0,
            diagnostics: Vec::new(),
            diag_keys: Vec::new(),
            violations: 0,
        }
    }

    fn explore(mut self, name: &str) -> CheckReport {
        install_quiet_hook();
        let mut executions = 0u64;
        let mut capped = false;
        loop {
            if executions >= self.bounds.max_interleavings {
                capped = true;
                break;
            }
            let end = self.run_one(executions);
            executions += 1;
            match end {
                ExecEnd::Completed | ExecEnd::Pruned(AbortCause::Failed) => {
                    self.interleavings += 1;
                }
                ExecEnd::Pruned(AbortCause::StatePruned) => self.pruned_states += 1,
                ExecEnd::Pruned(AbortCause::SpinBound) => self.pruned_spin += 1,
                ExecEnd::Pruned(AbortCause::OpBudget) => self.op_budget_hits += 1,
            }
            if !self.advance() {
                break;
            }
        }
        let complete = !capped && self.pruned_spin == 0 && self.op_budget_hits == 0;
        CheckReport {
            model: name.to_owned(),
            interleavings: self.interleavings,
            pruned_states: self.pruned_states,
            pruned_spin: self.pruned_spin,
            skipped_preemptions: self.skipped_preemptions,
            ops: self.total_ops,
            complete,
            violations: self.violations,
            diagnostics: self.diagnostics,
        }
    }

    /// Flips the deepest decision with an untried alternative;
    /// `false` when the whole tree is exhausted.
    fn advance(&mut self) -> bool {
        while let Some(d) = self.stack.last_mut() {
            if let Some(alt) = d.alternatives.pop() {
                d.taken = alt;
                return true;
            }
            self.stack.pop();
        }
        false
    }

    fn run_one(&mut self, interleaving: u64) -> ExecEnd {
        let shared = Arc::new(ExecShared {
            state: Mutex::new(ExecState::new(interleaving, self.bounds.max_spins)),
            cv: Condvar::new(),
        });
        let end = std::thread::scope(|scope| {
            let exec = Arc::clone(&shared);
            let model = self.model;
            scope.spawn(move || {
                bind(Arc::clone(&exec), 0);
                let out = catch_unwind(AssertUnwindSafe(|| {
                    shim(ShimOp::Start);
                    model();
                }));
                thread_finished(&exec, 0, out.err());
            });
            self.drive(&shared)
        });
        // Merge this execution's diagnostics, deduplicated across the
        // whole exploration by (rule, location, thread pair).
        let diags = std::mem::take(&mut shared.lock().diagnostics);
        for d in diags {
            let key = (
                d.rule,
                d.location.clone(),
                d.prior.as_ref().map(|a| a.thread),
                d.current.as_ref().map(|a| a.thread),
            );
            if !self.diag_keys.contains(&key) {
                self.diag_keys.push(key);
                self.violations += 1;
                if self.diagnostics.len() < MAX_DIAGNOSTICS {
                    self.diagnostics.push(d);
                }
            }
        }
        end
    }

    /// The controller loop for one execution: wait for quiescence,
    /// choose (or replay) the next grant, hand the turn over.
    fn drive(&mut self, shared: &ExecShared) -> ExecEnd {
        let mut step = 0usize;
        let mut preemptions = 0u32;
        let mut prev: Option<usize> = None;
        loop {
            let mut st = shared.lock();
            while !st.quiescent() {
                st = shared.wait(st);
            }
            if let Some(cause) = st.aborted {
                while !st.all_finished() {
                    st = shared.wait(st);
                }
                self.total_ops += st.ops;
                return ExecEnd::Pruned(cause);
            }
            if st.all_finished() {
                self.total_ops += st.ops;
                return ExecEnd::Completed;
            }
            let enabled = st.enabled();
            if enabled.is_empty() {
                // Unreachable with join-only blocking (a blocked
                // parent always has a non-finished, schedulable
                // descendant), but diagnose rather than hang.
                let diag = CheckDiagnostic {
                    rule: CheckRule::Deadlock,
                    location: None,
                    prior: None,
                    current: None,
                    message: "no runnable threads but the model has not finished".to_owned(),
                    interleaving: st.interleaving,
                };
                st.diagnostics.push(diag);
                st.aborted = Some(AbortCause::Failed);
                shared.cv.notify_all();
                continue;
            }
            // Whether the previously granted thread sits at a yield
            // point, captured before `candidates` may clear the flags:
            // switching away from a spinner is a free (non-preemptive)
            // switch — the CHESS rule that keeps polling loops
            // schedulable after the preemption budget is spent.
            let prev_spinning = prev.is_some_and(|p| st.threads[p].yielded);
            let candidates = st.candidates(&enabled, prev);
            let chosen = if step < self.stack.len() {
                let taken = self.stack[step].taken;
                if !enabled.contains(&taken) {
                    let diag = CheckDiagnostic {
                        rule: CheckRule::NondeterministicModel,
                        location: None,
                        prior: None,
                        current: None,
                        message: format!(
                            "replayed schedule step {step} chose thread {taken}, \
                             which is no longer runnable"
                        ),
                        interleaving: st.interleaving,
                    };
                    st.diagnostics.push(diag);
                    st.aborted = Some(AbortCause::Failed);
                    shared.cv.notify_all();
                    continue;
                }
                taken
            } else {
                let budget_left = self.bounds.preemptions.map(|b| b - preemptions.min(b));
                let hash = st.state_hash(budget_left, prev);
                if !self.visited.insert(hash) {
                    // Frontier state already fully explored elsewhere:
                    // a deterministic model behaves identically from
                    // here, so abandon this execution.
                    st.aborted = Some(AbortCause::StatePruned);
                    shared.cv.notify_all();
                    continue;
                }
                let costs = |t: usize| -> u32 {
                    u32::from(
                        !prev_spinning && prev.is_some_and(|p| p != t && enabled.contains(&p)),
                    )
                };
                let viable: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&t| budget_left.is_none_or(|b| costs(t) <= b))
                    .collect();
                self.skipped_preemptions += (candidates.len() - viable.len()) as u64;
                // Never empty: if any candidate costs a preemption,
                // `prev` is enabled and not spinning, so it is itself
                // a zero-cost candidate.
                let chosen = viable[0];
                self.stack.push(Decision {
                    taken: chosen,
                    alternatives: viable[1..].to_vec(),
                });
                chosen
            };
            if !prev_spinning && prev.is_some_and(|p| p != chosen && enabled.contains(&p)) {
                preemptions += 1;
            }
            prev = Some(chosen);
            step += 1;
            st.ops += 1;
            if st.ops > self.bounds.max_ops {
                st.aborted = Some(AbortCause::OpBudget);
                shared.cv.notify_all();
                continue;
            }
            st.active = Some(chosen);
            shared.cv.notify_all();
        }
    }
}

/// Exhaustively (modulo `bounds`) explores every interleaving of
/// `model`, returning a structured [`CheckReport`]. The model runs
/// once per explored schedule; it must be deterministic apart from
/// thread interleaving (same shim-visible behavior whenever it
/// observes the same values), which every pure in-memory model is.
pub fn check_model<F: Fn() + Sync>(name: &str, bounds: &Bounds, model: F) -> CheckReport {
    Explorer::new(bounds, &model).explore(name)
}
