//! [`ModelSync`]: the checker-side implementation of the `sync`
//! facade.
//!
//! Every operation on a [`ModelAtomic`] or [`ModelSlot`] is a
//! scheduling point routed through the engine in
//! [`sched`], so code generic over
//! [`SyncFacade`] is explored exhaustively
//! when instantiated at [`ModelSync`] — the same source that runs on
//! real atomics under [`StdSync`](crate::sync::StdSync).
//!
//! Model types may only be constructed and used *inside* a model run
//! (within the closure passed to [`check_model`](crate::check_model));
//! use elsewhere panics with a clear message.

use std::marker::PhantomData;
use std::sync::Mutex;

use crate::sched::{self, RaceOpKind, ShimOp, ShimResult};
use crate::sync::{AtomicCell, Ordering, SlotCell, SyncFacade};

/// The model-checking facade; see the [module docs](self).
#[derive(Copy, Clone, Debug, Default)]
pub struct ModelSync;

/// A checker-shimmed atomic: a handle to an engine-owned location.
/// The engine stores every value as `u64`; the type parameter fixes
/// the client-facing width.
#[derive(Debug)]
pub struct ModelAtomic<T> {
    loc: usize,
    _width: PhantomData<T>,
}

impl<T> ModelAtomic<T> {
    fn register(init: u64) -> ModelAtomic<T> {
        ModelAtomic {
            loc: sched::register_atomic(init),
            _width: PhantomData,
        }
    }
}

fn expect_value(r: ShimResult) -> u64 {
    match r {
        ShimResult::Value(v) => v,
        _ => unreachable!("engine returned wrong result kind"),
    }
}

fn expect_cas(r: ShimResult) -> Result<u64, u64> {
    match r {
        ShimResult::Cas(v) => v,
        _ => unreachable!("engine returned wrong result kind"),
    }
}

impl AtomicCell<usize> for ModelAtomic<usize> {
    fn new(value: usize) -> Self {
        ModelAtomic::register(value as u64)
    }
    fn load(&self, order: Ordering) -> usize {
        expect_value(sched::shim(ShimOp::Load {
            loc: self.loc,
            order,
        })) as usize
    }
    fn store(&self, value: usize, order: Ordering) {
        sched::shim(ShimOp::Store {
            loc: self.loc,
            order,
            value: value as u64,
        });
    }
    fn fetch_add(&self, value: usize, order: Ordering) -> usize {
        expect_value(sched::shim(ShimOp::FetchAdd {
            loc: self.loc,
            order,
            value: value as u64,
        })) as usize
    }
    fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        expect_cas(sched::shim(ShimOp::CompareExchange {
            loc: self.loc,
            current: current as u64,
            new: new as u64,
            success,
            failure,
        }))
        .map(|v| v as usize)
        .map_err(|v| v as usize)
    }
}

impl AtomicCell<u64> for ModelAtomic<u64> {
    fn new(value: u64) -> Self {
        ModelAtomic::register(value)
    }
    fn load(&self, order: Ordering) -> u64 {
        expect_value(sched::shim(ShimOp::Load {
            loc: self.loc,
            order,
        }))
    }
    fn store(&self, value: u64, order: Ordering) {
        sched::shim(ShimOp::Store {
            loc: self.loc,
            order,
            value,
        });
    }
    fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
        expect_value(sched::shim(ShimOp::FetchAdd {
            loc: self.loc,
            order,
            value,
        }))
    }
    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        expect_cas(sched::shim(ShimOp::CompareExchange {
            loc: self.loc,
            current,
            new,
            success,
            failure,
        }))
    }
}

/// A checker-shimmed plain-data slot: the payload lives in an
/// (uncontended — the engine runs one thread at a time) mutex, while
/// every `put`/`take` is reported to the race detector as a plain
/// write against the slot's engine location.
#[derive(Debug)]
pub struct ModelSlot<T> {
    loc: usize,
    value: Mutex<Option<T>>,
}

impl<T: Send> SlotCell<T> for ModelSlot<T> {
    fn new() -> Self {
        ModelSlot {
            loc: sched::register_race_cell(),
            value: Mutex::new(None),
        }
    }
    fn put(&self, value: T) -> Option<T> {
        sched::shim(ShimOp::RaceAccess {
            loc: self.loc,
            kind: RaceOpKind::Put,
        });
        self.value
            .lock()
            .expect("model slot poisoned")
            .replace(value)
    }
    fn take(&self) -> Option<T> {
        sched::shim(ShimOp::RaceAccess {
            loc: self.loc,
            kind: RaceOpKind::Take,
        });
        self.value.lock().expect("model slot poisoned").take()
    }
}

impl SyncFacade for ModelSync {
    type AtomicUsize = ModelAtomic<usize>;
    type AtomicU64 = ModelAtomic<u64>;
    type Slot<T: Send> = ModelSlot<T>;

    /// Runs `threads` logical model threads under the engine's
    /// scheduler. `poll` is ignored: polling is a wall-clock-driven
    /// progress affordance with no bearing on the synchronization
    /// protocol under check.
    fn run_threads<T, F>(threads: usize, f: F, _poll: Option<&mut dyn FnMut()>) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        sched::run_child_threads(threads, f)
    }

    fn spin_hint() {
        sched::shim(ShimOp::Yield);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CheckRule;
    use crate::sched::{check_model, Bounds};

    #[test]
    fn counter_explores_both_orders_and_is_clean() {
        let report = check_model("counter", &Bounds::default(), || {
            let counter = <ModelSync as SyncFacade>::AtomicUsize::new(0);
            ModelSync::run_threads(
                2,
                |_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                },
                None,
            );
            assert_eq!(counter.load(Ordering::Relaxed), 2);
        });
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert!(report.complete);
        assert!(report.interleavings >= 2, "{report:?}");
    }

    fn publish_model(store_order: Ordering) {
        let slot = <ModelSync as SyncFacade>::Slot::<u32>::new();
        let flag = <ModelSync as SyncFacade>::AtomicUsize::new(0);
        ModelSync::run_threads(
            2,
            |k| {
                if k == 0 {
                    slot.put(42);
                    flag.store(1, store_order);
                } else {
                    while flag.load(Ordering::Acquire) == 0 {
                        ModelSync::spin_hint();
                    }
                    assert_eq!(slot.take(), Some(42));
                }
            },
            None,
        );
    }

    #[test]
    fn release_acquire_publish_is_clean() {
        let report = check_model("spsc", &Bounds::default(), || {
            publish_model(Ordering::Release)
        });
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert!(report.complete);
        assert!(report.interleavings >= 2, "{report:?}");
    }

    #[test]
    fn relaxed_publish_is_flagged_as_a_race() {
        let report = check_model("spsc-relaxed", &Bounds::default(), || {
            publish_model(Ordering::Relaxed)
        });
        assert!(!report.is_clean());
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.rule == CheckRule::DataRace),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn failed_assertions_become_diagnostics() {
        let report = check_model("boom", &Bounds::default(), || {
            let v = <ModelSync as SyncFacade>::AtomicUsize::new(0);
            assert_eq!(v.load(Ordering::Relaxed), 1, "seeded failure");
        });
        assert!(!report.is_clean());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == CheckRule::AssertFailed && d.message.contains("seeded failure")));
    }

    #[test]
    fn cas_loop_is_exact_under_contention() {
        let report = check_model("cas", &Bounds::default(), || {
            let total = <ModelSync as SyncFacade>::AtomicU64::new(0);
            ModelSync::run_threads(
                2,
                |k| loop {
                    let cur = total.load(Ordering::Relaxed);
                    if total
                        .compare_exchange(
                            cur,
                            cur + (k as u64 + 1),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        break;
                    }
                    ModelSync::spin_hint();
                },
                None,
            );
            assert_eq!(total.load(Ordering::Relaxed), 3);
        });
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert!(report.complete);
    }
}
