//! A tiny, dependency-free binary codec for durable on-disk state.
//!
//! Everything written to disk by the workspace that must survive a
//! crash goes through this crate: a little-endian [`Wire`] codec whose
//! decoder ([`Dec`]) is bounds-checked and never panics on hostile
//! bytes, plus a versioned, checksummed [`envelope`] that rejects any
//! truncation or bit-flip before a single payload byte is interpreted.
//!
//! The durable-structure correctness criterion (after any crash,
//! recovery observes a fully-applied record or none of it — never a
//! corrupt result served as truth) is only as strong as the decode
//! path, so the decoder's contract is strict: every read is
//! length-checked, every length field is validated against the bytes
//! actually present, and [`from_bytes`] rejects trailing garbage.

use std::collections::BinaryHeap;

pub mod envelope;

/// 64-bit FNV-1a over `bytes`.
///
/// The per-byte step (xor, then multiply by the odd FNV prime) is a
/// bijection on `u64`, so any single-byte substitution anywhere in the
/// input changes the digest — the property the [`envelope`] checksum
/// and the corruption test matrix rely on.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Decode failure: the bytes do not describe a value of the requested
/// type. Always a clean error, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A field held a value outside its type's domain.
    Invalid(&'static str),
    /// Decoding finished with bytes left over.
    Trailing(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(f, "truncated: needed {needed} bytes, {remaining} remaining")
            }
            WireError::Invalid(what) => write!(f, "invalid field: {what}"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only encode buffer. All integers are little-endian.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Consumes the encoder and returns the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Bounds-checked cursor over untrusted bytes. Every read either
/// returns a value or a [`WireError`]; no input can make it panic.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Takes one byte.
    pub fn take_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Takes a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Takes a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Takes a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Asserts the buffer is fully consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Trailing(self.remaining()));
        }
        Ok(())
    }
}

/// A type with a canonical little-endian binary form.
///
/// `enc` must be deterministic and canonical (equal values encode to
/// equal bytes); `dec` must accept exactly what `enc` produces and
/// reject everything else with a [`WireError`], never a panic.
pub trait Wire: Sized {
    /// Appends this value's encoding to `e`.
    fn enc(&self, e: &mut Enc);
    /// Decodes one value from the cursor.
    fn dec(d: &mut Dec) -> Result<Self, WireError>;
}

/// Encodes `v` to a standalone byte vector.
pub fn to_bytes<T: Wire>(v: &T) -> Vec<u8> {
    let mut e = Enc::new();
    v.enc(&mut e);
    e.into_bytes()
}

/// Decodes exactly one `T` from `bytes`, rejecting trailing garbage.
pub fn from_bytes<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    let mut d = Dec::new(bytes);
    let v = T::dec(&mut d)?;
    d.finish()?;
    Ok(v)
}

impl Wire for u8 {
    fn enc(&self, e: &mut Enc) {
        e.put_u8(*self);
    }
    fn dec(d: &mut Dec) -> Result<Self, WireError> {
        d.take_u8()
    }
}

impl Wire for u16 {
    fn enc(&self, e: &mut Enc) {
        e.put_u16(*self);
    }
    fn dec(d: &mut Dec) -> Result<Self, WireError> {
        d.take_u16()
    }
}

impl Wire for u32 {
    fn enc(&self, e: &mut Enc) {
        e.put_u32(*self);
    }
    fn dec(d: &mut Dec) -> Result<Self, WireError> {
        d.take_u32()
    }
}

impl Wire for u64 {
    fn enc(&self, e: &mut Enc) {
        e.put_u64(*self);
    }
    fn dec(d: &mut Dec) -> Result<Self, WireError> {
        d.take_u64()
    }
}

impl Wire for i16 {
    fn enc(&self, e: &mut Enc) {
        e.put_u16(*self as u16);
    }
    fn dec(d: &mut Dec) -> Result<Self, WireError> {
        Ok(d.take_u16()? as i16)
    }
}

// usize travels as u64 so the encoding is identical across platforms.
impl Wire for usize {
    fn enc(&self, e: &mut Enc) {
        e.put_u64(*self as u64);
    }
    fn dec(d: &mut Dec) -> Result<Self, WireError> {
        usize::try_from(d.take_u64()?).map_err(|_| WireError::Invalid("usize overflow"))
    }
}

impl Wire for bool {
    fn enc(&self, e: &mut Enc) {
        e.put_u8(*self as u8);
    }
    fn dec(d: &mut Dec) -> Result<Self, WireError> {
        match d.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("bool tag")),
        }
    }
}

impl<T: Wire> Wire for Option<T> {
    fn enc(&self, e: &mut Enc) {
        match self {
            None => e.put_u8(0),
            Some(v) => {
                e.put_u8(1);
                v.enc(e);
            }
        }
    }
    fn dec(d: &mut Dec) -> Result<Self, WireError> {
        match d.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::dec(d)?)),
            _ => Err(WireError::Invalid("option tag")),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn enc(&self, e: &mut Enc) {
        e.put_u64(self.len() as u64);
        for v in self {
            v.enc(e);
        }
    }
    fn dec(d: &mut Dec) -> Result<Self, WireError> {
        let len =
            usize::try_from(d.take_u64()?).map_err(|_| WireError::Invalid("vec len overflow"))?;
        // A hostile length cannot force an allocation larger than the
        // bytes actually present: every element consumes at least one.
        let mut out = Vec::with_capacity(len.min(d.remaining()));
        for _ in 0..len {
            out.push(T::dec(d)?);
        }
        Ok(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn enc(&self, e: &mut Enc) {
        self.0.enc(e);
        self.1.enc(e);
    }
    fn dec(d: &mut Dec) -> Result<Self, WireError> {
        Ok((A::dec(d)?, B::dec(d)?))
    }
}

impl<T: Wire, const N: usize> Wire for [T; N] {
    fn enc(&self, e: &mut Enc) {
        for v in self {
            v.enc(e);
        }
    }
    fn dec(d: &mut Dec) -> Result<Self, WireError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::dec(d)?);
        }
        out.try_into()
            .map_err(|_| WireError::Invalid("array length"))
    }
}

// Canonical form: sorted ascending. `into_sorted_vec` makes equal heaps
// (same elements, different internal layout) encode identically.
impl<T: Wire + Ord + Clone> Wire for BinaryHeap<T> {
    fn enc(&self, e: &mut Enc) {
        self.clone().into_sorted_vec().enc(e);
    }
    fn dec(d: &mut Dec) -> Result<Self, WireError> {
        Ok(BinaryHeap::from(Vec::<T>::dec(d)?))
    }
}

/// Derives [`Wire`] for a struct from its field list, in declaration
/// order. Expand it in the module that defines the struct so private
/// fields are reachable:
///
/// ```
/// struct Point {
///     x: u64,
///     y: u64,
/// }
/// nosq_wire::wire_struct!(Point { x, y });
/// let p = Point { x: 3, y: 9 };
/// let q: Point = nosq_wire::from_bytes(&nosq_wire::to_bytes(&p)).unwrap();
/// assert_eq!((q.x, q.y), (3, 9));
/// ```
#[macro_export]
macro_rules! wire_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::Wire for $ty {
            fn enc(&self, e: &mut $crate::Enc) {
                $( $crate::Wire::enc(&self.$field, e); )+
            }
            fn dec(d: &mut $crate::Dec) -> Result<Self, $crate::WireError> {
                Ok(Self { $( $field: $crate::Wire::dec(d)? ),+ })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Sample {
        a: u64,
        b: Option<u32>,
        c: Vec<u16>,
        d: [bool; 3],
        e: (usize, i16),
    }
    wire_struct!(Sample { a, b, c, d, e });

    fn sample() -> Sample {
        Sample {
            a: 0xdead_beef_0042,
            b: Some(7),
            c: vec![1, 2, 3],
            d: [true, false, true],
            e: (99, -3),
        }
    }

    #[test]
    fn roundtrip_struct() {
        let bytes = to_bytes(&sample());
        let back: Sample = from_bytes(&bytes).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = to_bytes(&sample());
        for cut in 0..bytes.len() {
            assert!(
                from_bytes::<Sample>(&bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = to_bytes(&sample());
        bytes.push(0);
        assert_eq!(from_bytes::<Sample>(&bytes), Err(WireError::Trailing(1)));
    }

    #[test]
    fn hostile_vec_length_cannot_overallocate() {
        let mut e = Enc::new();
        e.put_u64(u64::MAX); // claims 2^64-1 elements
        let err = from_bytes::<Vec<u8>>(&e.into_bytes()).unwrap_err();
        assert!(matches!(
            err,
            WireError::Truncated { .. } | WireError::Invalid(_)
        ));
    }

    #[test]
    fn invalid_tags_are_rejected() {
        assert!(from_bytes::<bool>(&[2]).is_err());
        assert!(from_bytes::<Option<u8>>(&[9, 0]).is_err());
    }

    #[test]
    fn binary_heap_is_canonical() {
        let mut h1 = BinaryHeap::new();
        let mut h2 = BinaryHeap::new();
        for v in [5u64, 1, 9, 3] {
            h1.push(v);
        }
        for v in [9u64, 3, 5, 1] {
            h2.push(v);
        }
        assert_eq!(to_bytes(&h1), to_bytes(&h2));
        let back: BinaryHeap<u64> = from_bytes(&to_bytes(&h1)).unwrap();
        assert_eq!(back.into_sorted_vec(), vec![1, 3, 5, 9]);
    }

    #[test]
    fn fnv1a_single_byte_sensitivity() {
        let base = vec![0u8; 64];
        let h0 = fnv1a(&base);
        for i in 0..base.len() {
            let mut m = base.clone();
            m[i] ^= 1;
            assert_ne!(fnv1a(&m), h0, "flip at {i} not detected");
        }
    }
}
